//! Storage device models: an SSD with a page-mapped FTL (garbage collection,
//! erase-cycle accounting, channel parallelism) and an HDD with a
//! seek/rotation model.
//!
//! The models answer two questions for every I/O the file system issues:
//!
//! 1. **When does it complete?** — service time from the device's latency
//!    profile (sequential vs random, size, queueing on channels), consumed
//!    by the DES through [`Device::submit`].
//! 2. **What does it cost the medium?** — [`DeviceStats`] tracks op/byte
//!    counts, in-place overwrites (the paper's *write penalty*), and — for
//!    SSDs — pages programmed, pages migrated by GC, and blocks erased,
//!    from which the lifespan comparison (Table 1, §5.3.4) is derived.
//!
//! Device models hold no user data; block content lives in the OSD layer.
//! Scale note: the FTL maps pages sparsely, so model capacity should match
//! the experiment footprint (GBs, not the testbed's 400 GB) — the paper's
//! *relative* wear and latency effects are preserved.

pub mod hdd;
pub mod ssd;

pub use hdd::HddModel;
pub use ssd::{SsdModel, PAGE_SIZE};

use tsue_sim::{Time, MICROSECOND};

/// Direction of an I/O operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoKind {
    /// Read from the device.
    Read,
    /// Write to the device.
    Write,
}

/// Whether an access continued the previous access of its stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Locality {
    /// Continues exactly where the stream's previous op ended.
    Sequential,
    /// Anywhere else.
    Random,
}

/// Aggregated I/O accounting for one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Completed read operations.
    pub read_ops: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Completed write operations.
    pub write_ops: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Writes that hit already-written logical space (in-place updates —
    /// the paper's "overwrite / write penalty" column).
    pub overwrite_ops: u64,
    /// Bytes of such overwrites.
    pub overwrite_bytes: u64,
    /// Sequential ops (stream-adjacent).
    pub seq_ops: u64,
    /// Random ops.
    pub rand_ops: u64,
    /// Flash pages programmed (SSD only; includes GC migrations).
    pub pages_programmed: u64,
    /// Flash pages migrated by garbage collection (SSD only).
    pub pages_migrated: u64,
    /// Flash blocks erased (SSD only) — the lifespan currency.
    pub erase_ops: u64,
}

impl DeviceStats {
    /// Total foreground operations.
    pub fn total_ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }

    /// Total foreground bytes.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }

    /// Merges another stats block into this one (for cluster aggregation).
    pub fn merge(&mut self, other: &DeviceStats) {
        self.read_ops += other.read_ops;
        self.read_bytes += other.read_bytes;
        self.write_ops += other.write_ops;
        self.write_bytes += other.write_bytes;
        self.overwrite_ops += other.overwrite_ops;
        self.overwrite_bytes += other.overwrite_bytes;
        self.seq_ops += other.seq_ops;
        self.rand_ops += other.rand_ops;
        self.pages_programmed += other.pages_programmed;
        self.pages_migrated += other.pages_migrated;
        self.erase_ops += other.erase_ops;
    }

    /// Flash write amplification: physical pages programmed per logical
    /// page written. 1.0 when GC never migrated anything.
    pub fn write_amplification(&self) -> f64 {
        let logical = self.pages_programmed.saturating_sub(self.pages_migrated);
        if logical == 0 {
            1.0
        } else {
            self.pages_programmed as f64 / logical as f64
        }
    }
}

/// Identifies an I/O stream for sequentiality detection. Each log pool,
/// and each bulk reader/writer, passes a distinct stream id so interleaved
/// appends from different pools still count as sequential within their own
/// stream — matching how SSD multi-queue firmware detects streams.
pub type StreamId = u32;

/// A storage device: latency/wear model + stats, shared across SSD and HDD.
#[derive(Debug)]
pub struct Device {
    backend: Backend,
    stats: DeviceStats,
    /// `stream -> end offset of its previous access`.
    stream_tails: std::collections::HashMap<StreamId, u64>,
    /// 4 KiB-granularity map of logical space that has been written, for
    /// overwrite classification (kept in the device so every scheme is
    /// accounted identically).
    written: WrittenMap,
}

#[derive(Debug)]
enum Backend {
    Ssd(SsdModel),
    Hdd(HddModel),
}

/// Sparse bitmap over 4 KiB logical pages.
#[derive(Debug, Default)]
struct WrittenMap {
    pages: std::collections::HashSet<u64>,
}

impl WrittenMap {
    const GRAIN: u64 = 4096;

    /// Marks `[offset, offset+len)` written; returns true if *any* page in
    /// the range had been written before (i.e. this is an overwrite).
    fn mark(&mut self, offset: u64, len: u64) -> bool {
        let first = offset / Self::GRAIN;
        let last = (offset + len.max(1) - 1) / Self::GRAIN;
        let mut any_old = false;
        for p in first..=last {
            if !self.pages.insert(p) {
                any_old = true;
            }
        }
        any_old
    }
}

impl Device {
    /// Creates an SSD-backed device.
    pub fn new_ssd(model: SsdModel) -> Self {
        Device {
            backend: Backend::Ssd(model),
            stats: DeviceStats::default(),
            stream_tails: std::collections::HashMap::new(),
            written: WrittenMap::default(),
        }
    }

    /// Creates an HDD-backed device.
    pub fn new_hdd(model: HddModel) -> Self {
        Device {
            backend: Backend::Hdd(model),
            stats: DeviceStats::default(),
            stream_tails: std::collections::HashMap::new(),
            written: WrittenMap::default(),
        }
    }

    /// Is this an SSD?
    pub fn is_ssd(&self) -> bool {
        matches!(self.backend, Backend::Ssd(_))
    }

    /// Immutable stats view.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// SSD erase count so far (0 for HDDs).
    pub fn erase_count(&self) -> u64 {
        self.stats.erase_ops
    }

    /// Total device busy time (channel/actuator service ticks), virtual
    /// ns — the observability "device busy" gauge.
    pub fn busy_ticks(&self) -> Time {
        match &self.backend {
            Backend::Ssd(ssd) => ssd.busy_ticks(),
            Backend::Hdd(hdd) => hdd.busy_ticks(),
        }
    }

    /// Queue pressure at `now`: how far ahead of `now` the device is
    /// booked, virtual ns (0 when a server is idle).
    pub fn queue_ns(&self, now: Time) -> Time {
        let free = match &self.backend {
            Backend::Ssd(ssd) => ssd.next_free(),
            Backend::Hdd(hdd) => hdd.next_free(),
        };
        free.saturating_sub(now)
    }

    /// Zeroes the accumulated statistics (end of a setup phase); wear state
    /// (FTL mapping, head position) is deliberately preserved.
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    /// Submits an I/O arriving at `now`; returns its completion time.
    ///
    /// `stream` identifies the logical access stream for sequentiality
    /// detection (per-pool for log appends, per-reader for scans).
    pub fn submit(
        &mut self,
        now: Time,
        kind: IoKind,
        offset: u64,
        len: u64,
        stream: StreamId,
    ) -> Time {
        self.submit_inner(now, kind, offset, len, stream, true)
    }

    /// Like [`Self::submit`], but exempt from overwrite (write-penalty)
    /// classification — for circular log regions, whose rewrites are
    /// appends by design, not in-place update penalties. FTL wear is still
    /// charged: log churn does erase flash.
    pub fn submit_log(
        &mut self,
        now: Time,
        kind: IoKind,
        offset: u64,
        len: u64,
        stream: StreamId,
    ) -> Time {
        self.submit_inner(now, kind, offset, len, stream, false)
    }

    /// Marks `[offset, offset+len)` as written and programs its FTL pages
    /// without charging time or statistics — initial provisioning of
    /// blocks and reserved log regions.
    pub fn prefill(&mut self, offset: u64, len: u64) {
        self.written.mark(offset, len);
        if let Backend::Ssd(ssd) = &mut self.backend {
            let mut sink = DeviceStats::default();
            ssd.prefill(offset, len, &mut sink);
        }
    }

    fn submit_inner(
        &mut self,
        now: Time,
        kind: IoKind,
        offset: u64,
        len: u64,
        stream: StreamId,
        count_overwrite: bool,
    ) -> Time {
        let locality = self.classify(stream, offset, len);
        match kind {
            IoKind::Read => {
                self.stats.read_ops += 1;
                self.stats.read_bytes += len;
            }
            IoKind::Write => {
                self.stats.write_ops += 1;
                self.stats.write_bytes += len;
                if self.written.mark(offset, len) && count_overwrite {
                    self.stats.overwrite_ops += 1;
                    self.stats.overwrite_bytes += len;
                }
            }
        }
        match locality {
            Locality::Sequential => self.stats.seq_ops += 1,
            Locality::Random => self.stats.rand_ops += 1,
        }
        match &mut self.backend {
            Backend::Ssd(ssd) => ssd.submit(now, kind, offset, len, locality, &mut self.stats),
            Backend::Hdd(hdd) => hdd.submit(now, kind, offset, len, locality),
        }
    }

    /// Convenience: a small metadata touch (index update, commit record)
    /// modeled as a 512-byte sequential write on a dedicated stream.
    pub fn submit_meta(&mut self, now: Time) -> Time {
        self.submit(now, IoKind::Write, u64::MAX / 2, 512, u32::MAX) + MICROSECOND
    }

    fn classify(&mut self, stream: StreamId, offset: u64, len: u64) -> Locality {
        let tail = self.stream_tails.insert(stream, offset + len);
        match tail {
            Some(end) if end == offset => Locality::Sequential,
            _ => Locality::Random,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssd() -> Device {
        Device::new_ssd(SsdModel::datacenter(1 << 30))
    }

    #[test]
    fn sequential_stream_is_detected() {
        let mut d = ssd();
        d.submit(0, IoKind::Write, 0, 4096, 1);
        d.submit(0, IoKind::Write, 4096, 4096, 1);
        d.submit(0, IoKind::Write, 8192, 4096, 1);
        assert_eq!(d.stats().seq_ops, 2);
        assert_eq!(d.stats().rand_ops, 1); // the first op has no predecessor
    }

    #[test]
    fn interleaved_streams_remain_sequential() {
        let mut d = ssd();
        // Two pools appending to disjoint regions, interleaved.
        for i in 0..4u64 {
            d.submit(0, IoKind::Write, i * 4096, 4096, 1);
            d.submit(0, IoKind::Write, 1 << 20 | (i * 4096), 4096, 2);
        }
        assert_eq!(d.stats().rand_ops, 2); // one first-op per stream
        assert_eq!(d.stats().seq_ops, 6);
    }

    #[test]
    fn overwrites_are_classified() {
        let mut d = ssd();
        d.submit(0, IoKind::Write, 0, 8192, 1);
        assert_eq!(d.stats().overwrite_ops, 0);
        d.submit(0, IoKind::Write, 4096, 4096, 2);
        assert_eq!(d.stats().overwrite_ops, 1);
        assert_eq!(d.stats().overwrite_bytes, 4096);
        // Reads never count as overwrites.
        d.submit(0, IoKind::Read, 0, 4096, 3);
        assert_eq!(d.stats().overwrite_ops, 1);
    }

    #[test]
    fn random_is_slower_than_sequential_on_ssd() {
        let mut d = ssd();
        // Warm the stream, then measure one sequential and one random op.
        d.submit(0, IoKind::Read, 0, 4096, 1);
        let t0 = d.submit(1_000_000_000, IoKind::Read, 4096, 4096, 1);
        let seq = t0 - 1_000_000_000;
        let t1 = d.submit(2_000_000_000, IoKind::Read, 123 << 20, 4096, 1);
        let rand = t1 - 2_000_000_000;
        assert!(
            rand > seq * 2,
            "random ({rand} ns) should be much slower than sequential ({seq} ns)"
        );
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = DeviceStats {
            read_ops: 1,
            write_bytes: 10,
            erase_ops: 3,
            ..Default::default()
        };
        let b = DeviceStats {
            read_ops: 2,
            write_bytes: 5,
            erase_ops: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.read_ops, 3);
        assert_eq!(a.write_bytes, 15);
        assert_eq!(a.erase_ops, 7);
    }

    #[test]
    fn write_amplification_starts_at_one() {
        let s = DeviceStats::default();
        assert_eq!(s.write_amplification(), 1.0);
    }
}
