//! HDD model: seek + rotational latency + transfer, single actuator.
//!
//! Used for the paper's §5.4 HDD-cluster experiments. The decisive property
//! is the brutal gap between sequential streaming and scattered small
//! accesses: a random 4 KiB op pays a distance-dependent seek plus half a
//! rotation, while a sequential continuation pays only transfer time.

use crate::{IoKind, Locality};
use tsue_sim::{FifoResource, Time, MICROSECOND, MILLISECOND};

/// Latency parameters for a spinning disk.
#[derive(Clone, Copy, Debug)]
pub struct HddSpec {
    /// Capacity used for seek-distance normalization, bytes.
    pub capacity: u64,
    /// Minimum (track-to-track) seek, ns.
    pub min_seek: Time,
    /// Full-stroke seek, ns.
    pub max_seek: Time,
    /// Average rotational delay (half a revolution), ns.
    pub rotational_delay: Time,
    /// Media transfer rate, bytes/second.
    pub transfer_bw: u64,
    /// Fixed controller overhead per op, ns.
    pub base: Time,
}

impl Default for HddSpec {
    fn default() -> Self {
        // 7200 rpm 2 TB nearline drive.
        HddSpec {
            capacity: 2 << 40,
            min_seek: 500 * MICROSECOND,
            max_seek: 12 * MILLISECOND,
            rotational_delay: 4_170 * MICROSECOND / 1000 * 1000, // ~4.17 ms
            transfer_bw: 160_000_000,
            base: 150 * MICROSECOND,
        }
    }
}

/// The HDD: one actuator modeled as a single FIFO server plus a head
/// position for distance-dependent seeks.
#[derive(Debug)]
pub struct HddModel {
    spec: HddSpec,
    actuator: FifoResource,
    head: u64,
}

impl HddModel {
    /// Creates a drive with the default nearline spec but explicit capacity.
    pub fn nearline(capacity: u64) -> Self {
        let spec = HddSpec {
            capacity,
            ..HddSpec::default()
        };
        Self::new(spec)
    }

    /// Creates a drive from an explicit spec.
    pub fn new(spec: HddSpec) -> Self {
        HddModel {
            spec,
            actuator: FifoResource::new(),
            head: 0,
        }
    }

    /// Spec accessor.
    pub fn spec(&self) -> &HddSpec {
        &self.spec
    }

    /// Total actuator busy time, virtual ns.
    pub fn busy_ticks(&self) -> Time {
        self.actuator.busy_ticks()
    }

    /// Time the actuator frees up — `next_free - now` is the drive's
    /// queue pressure (0 when idle).
    pub fn next_free(&self) -> Time {
        self.actuator.next_free()
    }

    /// Submits one op; returns its completion time.
    pub fn submit(
        &mut self,
        now: Time,
        _kind: IoKind,
        offset: u64,
        len: u64,
        locality: Locality,
    ) -> Time {
        let service = match locality {
            Locality::Sequential => self.spec.base / 4 + self.transfer(len),
            Locality::Random => {
                let seek = self.seek_time(offset);
                self.spec.base + seek + self.spec.rotational_delay + self.transfer(len)
            }
        };
        self.head = offset + len;
        self.actuator.submit(now, service)
    }

    fn seek_time(&self, target: u64) -> Time {
        let dist = self.head.abs_diff(target);
        let frac = (dist as f64 / self.spec.capacity as f64).min(1.0);
        // Square-root profile: short seeks dominated by settle time.
        let span = (self.spec.max_seek - self.spec.min_seek) as f64;
        self.spec.min_seek + (span * frac.sqrt()) as Time
    }

    fn transfer(&self, len: u64) -> Time {
        ((len as u128 * 1_000_000_000) / self.spec.transfer_bw as u128) as Time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_orders_of_magnitude_faster_for_small_ops() {
        let mut d = HddModel::nearline(1 << 40);
        let t_seq = d.submit(0, IoKind::Read, 0, 4096, Locality::Sequential);
        let start = 1_000_000_000_000;
        let t_rand = d.submit(start, IoKind::Read, 512 << 30, 4096, Locality::Random) - start;
        assert!(
            t_rand > t_seq * 20,
            "random {t_rand} ns vs sequential {t_seq} ns"
        );
    }

    #[test]
    fn seek_grows_with_distance() {
        let d = HddModel::nearline(1 << 40);
        let near = d.seek_time(1 << 20);
        let far = d.seek_time(1 << 39);
        assert!(far > near);
        assert!(far <= d.spec.max_seek + d.spec.min_seek);
    }

    #[test]
    fn actuator_serializes_requests() {
        let mut d = HddModel::nearline(1 << 40);
        let f1 = d.submit(0, IoKind::Write, 0, 1 << 20, Locality::Sequential);
        let f2 = d.submit(0, IoKind::Write, 1 << 20, 1 << 20, Locality::Sequential);
        assert!(f2 > f1, "second op must queue behind the first");
    }

    #[test]
    fn streaming_bandwidth_approaches_spec() {
        let mut d = HddModel::nearline(1 << 40);
        let len: u64 = 64 << 20;
        let t = d.submit(0, IoKind::Read, 0, len, Locality::Sequential);
        let measured_bw = len as f64 / (t as f64 / 1e9);
        let spec_bw = d.spec.transfer_bw as f64;
        assert!((measured_bw - spec_bw).abs() / spec_bw < 0.05);
    }
}
