//! SSD model: latency profile + a page-mapped flash translation layer.
//!
//! The FTL is what makes the paper's lifespan claims reproducible instead of
//! asserted: logical overwrites invalidate previously-programmed pages;
//! when free blocks run out, greedy garbage collection migrates the valid
//! remainder of the victim block and erases it. Random small overwrites
//! leave blocks half-valid and force migration (write amplification);
//! large sequential log writes fill blocks that later invalidate wholesale
//! and erase cheaply. Erase counts per workload are the direct input to the
//! "SSDs endure 2.5×–13× longer" comparison (§5.3.4).

use crate::{DeviceStats, IoKind, Locality};
use std::collections::HashMap;
use tsue_sim::{MultiResource, Time, MICROSECOND, MILLISECOND};

/// Flash page size — the FTL mapping granularity.
pub const PAGE_SIZE: u64 = 4096;
/// Pages per flash erase block.
pub const PAGES_PER_BLOCK: u64 = 64;

/// Latency/geometry parameters for an SSD.
#[derive(Clone, Copy, Debug)]
pub struct SsdSpec {
    /// Sequential read bandwidth, bytes/second.
    pub seq_read_bw: u64,
    /// Sequential write bandwidth, bytes/second.
    pub seq_write_bw: u64,
    /// Fixed cost of a sequential-stream op (submission + firmware), ns.
    pub seq_base: Time,
    /// Fixed cost of a random read, ns.
    pub rand_read_base: Time,
    /// Fixed cost of a random write, ns.
    pub rand_write_base: Time,
    /// Independent internal channels (parallel small ops).
    pub channels: usize,
    /// Block erase time, ns.
    pub erase_time: Time,
    /// Cost to migrate one valid page during GC (copyback), ns.
    pub migrate_page_time: Time,
    /// Physical over-provisioning fraction on top of logical capacity.
    pub overprovision: f64,
}

impl Default for SsdSpec {
    fn default() -> Self {
        // Datacenter SATA-class SSD of the Chameleon era: large gap between
        // sequential and small-random access, 8 internal channels.
        SsdSpec {
            seq_read_bw: 520_000_000,
            seq_write_bw: 420_000_000,
            seq_base: 18 * MICROSECOND,
            rand_read_base: 110 * MICROSECOND,
            rand_write_base: 90 * MICROSECOND,
            channels: 8,
            erase_time: 2 * MILLISECOND,
            migrate_page_time: 40 * MICROSECOND,
            overprovision: 0.12,
        }
    }
}

/// The SSD: spec + channel queues + FTL state.
#[derive(Debug)]
pub struct SsdModel {
    spec: SsdSpec,
    channels: MultiResource,
    ftl: Ftl,
}

impl SsdModel {
    /// Creates an SSD with the default datacenter spec and the given
    /// logical capacity in bytes.
    pub fn datacenter(logical_capacity: u64) -> Self {
        Self::new(SsdSpec::default(), logical_capacity)
    }

    /// Creates an SSD from an explicit spec.
    pub fn new(spec: SsdSpec, logical_capacity: u64) -> Self {
        let logical_pages = logical_capacity.div_ceil(PAGE_SIZE);
        let phys_pages = ((logical_pages as f64) * (1.0 + spec.overprovision)).ceil() as u64;
        let blocks = phys_pages.div_ceil(PAGES_PER_BLOCK).max(4);
        SsdModel {
            channels: MultiResource::new(spec.channels),
            ftl: Ftl::new(blocks),
            spec,
        }
    }

    /// Spec accessor.
    pub fn spec(&self) -> &SsdSpec {
        &self.spec
    }

    /// Total busy time summed over the internal channels, virtual ns.
    pub fn busy_ticks(&self) -> Time {
        self.channels.busy_ticks()
    }

    /// Earliest time any channel is free — `next_free - now` is the
    /// device's queue pressure (0 when a channel is idle).
    pub fn next_free(&self) -> Time {
        self.channels.next_free()
    }

    /// Submits one op; returns completion time and updates wear stats.
    pub fn submit(
        &mut self,
        now: Time,
        kind: IoKind,
        offset: u64,
        len: u64,
        locality: Locality,
        stats: &mut DeviceStats,
    ) -> Time {
        let service = self.service_time(kind, len, locality);
        if kind == IoKind::Write {
            // Program the touched pages through the FTL; GC work is issued
            // as internal jobs on the channel pool so it delays foreground
            // I/O by queueing rather than by inflating this op's service.
            let first = offset / PAGE_SIZE;
            let last = (offset + len.max(1) - 1) / PAGE_SIZE;
            for lpn in first..=last {
                let gc = self.ftl.program(lpn, stats);
                if gc.erases > 0 {
                    let gc_service = gc.erases as Time * self.spec.erase_time
                        + gc.migrated as Time * self.spec.migrate_page_time;
                    self.channels.submit(now, gc_service);
                }
            }
        }
        self.channels.submit(now, service)
    }

    /// Programs the FTL pages of `[offset, offset+len)` into `sink` stats
    /// without going through the channel queues (setup-time prefill).
    pub fn prefill(&mut self, offset: u64, len: u64, sink: &mut DeviceStats) {
        let first = offset / PAGE_SIZE;
        let last = (offset + len.max(1) - 1) / PAGE_SIZE;
        for lpn in first..=last {
            let _ = self.ftl.program(lpn, sink);
        }
    }

    fn service_time(&self, kind: IoKind, len: u64, locality: Locality) -> Time {
        let (base, bw) = match (kind, locality) {
            (IoKind::Read, Locality::Sequential) => (self.spec.seq_base, self.spec.seq_read_bw),
            (IoKind::Write, Locality::Sequential) => (self.spec.seq_base, self.spec.seq_write_bw),
            (IoKind::Read, Locality::Random) => (self.spec.rand_read_base, self.spec.seq_read_bw),
            (IoKind::Write, Locality::Random) => {
                (self.spec.rand_write_base, self.spec.seq_write_bw)
            }
        };
        base + transfer_time(len, bw)
    }

    /// Fraction of physical pages currently holding live data.
    pub fn ftl_occupancy(&self) -> f64 {
        self.ftl.occupancy()
    }
}

/// Time to move `len` bytes at `bw` bytes/sec, in ns.
fn transfer_time(len: u64, bw: u64) -> Time {
    ((len as u128 * 1_000_000_000) / bw as u128) as Time
}

/// GC work accumulated while making room for one program.
#[derive(Debug, Clone, Copy, Default)]
struct GcWork {
    erases: u64,
    migrated: u64,
}

/// Page-mapped FTL with greedy (min-valid) garbage collection.
#[derive(Debug)]
struct Ftl {
    /// logical page -> physical page.
    map: HashMap<u64, u64>,
    /// physical page -> logical page (for migration).
    rmap: HashMap<u64, u64>,
    /// Per-block count of valid pages.
    valid: Vec<u16>,
    /// Erased blocks ready for programming.
    free_blocks: Vec<u64>,
    /// Block currently accepting programs.
    active_block: u64,
    /// Next free page inside the active block.
    active_cursor: u64,
    total_blocks: u64,
}

impl Ftl {
    fn new(blocks: u64) -> Self {
        Ftl {
            map: HashMap::new(),
            rmap: HashMap::new(),
            valid: vec![0; blocks as usize],
            free_blocks: (1..blocks).rev().collect(),
            active_block: 0,
            active_cursor: 0,
            total_blocks: blocks,
        }
    }

    /// Programs one logical page. Returns any GC work performed.
    ///
    /// # Panics
    /// Panics if the logical footprint exceeds physical capacity (the model
    /// equivalent of a full disk) — size the device to the experiment.
    fn program(&mut self, lpn: u64, stats: &mut DeviceStats) -> GcWork {
        // Invalidate the previous location, if any.
        if let Some(old) = self.map.remove(&lpn) {
            self.rmap.remove(&old);
            let blk = (old / PAGES_PER_BLOCK) as usize;
            self.valid[blk] -= 1;
        }
        let gc = self.ensure_space(stats);
        let ppn = self.active_block * PAGES_PER_BLOCK + self.active_cursor;
        self.active_cursor += 1;
        self.map.insert(lpn, ppn);
        self.rmap.insert(ppn, lpn);
        self.valid[(ppn / PAGES_PER_BLOCK) as usize] += 1;
        stats.pages_programmed += 1;
        gc
    }

    /// Makes sure the active block has a free page, running GC passes as
    /// needed.
    fn ensure_space(&mut self, stats: &mut DeviceStats) -> GcWork {
        let mut work = GcWork::default();
        while self.active_cursor >= PAGES_PER_BLOCK {
            if let Some(blk) = self.free_blocks.pop() {
                self.active_block = blk;
                self.active_cursor = 0;
                break;
            }
            // Greedy victim: the block (other than active) with fewest
            // valid pages.
            let victim = (0..self.total_blocks)
                .filter(|&b| b != self.active_block)
                .min_by_key(|&b| self.valid[b as usize])
                .expect("FTL has at least two blocks");
            assert!(
                (self.valid[victim as usize] as u64) < PAGES_PER_BLOCK,
                "FTL capacity exhausted: logical footprint exceeds device size"
            );
            let mut moved = Vec::new();
            for page in 0..PAGES_PER_BLOCK {
                let ppn = victim * PAGES_PER_BLOCK + page;
                if let Some(lpn) = self.rmap.remove(&ppn) {
                    self.map.remove(&lpn);
                    self.valid[victim as usize] -= 1;
                    moved.push(lpn);
                }
            }
            debug_assert_eq!(self.valid[victim as usize], 0);
            stats.erase_ops += 1;
            work.erases += 1;
            self.active_block = victim;
            self.active_cursor = 0;
            // Re-program survivors into the freshly erased block.
            for lpn in moved {
                let ppn = self.active_block * PAGES_PER_BLOCK + self.active_cursor;
                self.active_cursor += 1;
                self.map.insert(lpn, ppn);
                self.rmap.insert(ppn, lpn);
                self.valid[self.active_block as usize] += 1;
                stats.pages_programmed += 1;
                stats.pages_migrated += 1;
                work.migrated += 1;
            }
            // If the victim was nearly full, the loop condition sends us
            // around again for another victim.
        }
        work
    }

    fn occupancy(&self) -> f64 {
        self.map.len() as f64 / (self.total_blocks * PAGES_PER_BLOCK) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program_range(ssd: &mut SsdModel, stats: &mut DeviceStats, offset: u64, len: u64) {
        ssd.submit(0, IoKind::Write, offset, len, Locality::Sequential, stats);
    }

    #[test]
    fn fresh_writes_do_not_erase() {
        let mut stats = DeviceStats::default();
        let mut ssd = SsdModel::datacenter(16 << 20); // 16 MiB
        program_range(&mut ssd, &mut stats, 0, 1 << 20);
        assert_eq!(stats.erase_ops, 0);
        assert_eq!(stats.pages_programmed, 256);
        assert_eq!(stats.pages_migrated, 0);
    }

    #[test]
    fn sequential_rewrite_erases_with_low_amplification() {
        let mut stats = DeviceStats::default();
        let mut ssd = SsdModel::datacenter(4 << 20); // 4 MiB logical

        // Fill the device twice sequentially: second pass invalidates whole
        // blocks, so GC migrates (almost) nothing.
        for pass in 0..4 {
            let _ = pass;
            program_range(&mut ssd, &mut stats, 0, 4 << 20);
        }
        assert!(stats.erase_ops > 0, "rewrites must trigger GC");
        let wa = stats.write_amplification();
        assert!(
            wa < 1.25,
            "sequential rewrite WA should be near 1, got {wa}"
        );
    }

    #[test]
    fn random_overwrites_amplify_more_than_sequential() {
        let cap: u64 = 4 << 20;
        // Sequential full rewrites.
        let mut seq_stats = DeviceStats::default();
        let mut seq = SsdModel::datacenter(cap);
        for _ in 0..6 {
            program_range(&mut seq, &mut seq_stats, 0, cap);
        }
        // Same total volume as scattered 4K overwrites (deterministic LCG).
        let mut rnd_stats = DeviceStats::default();
        let mut rnd = SsdModel::datacenter(cap);
        program_range(&mut rnd, &mut rnd_stats, 0, cap); // initial fill
        let pages = cap / PAGE_SIZE;
        let mut x: u64 = 12345;
        for _ in 0..(pages * 5) {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lpn = x % pages;
            rnd.submit(
                0,
                IoKind::Write,
                lpn * PAGE_SIZE,
                PAGE_SIZE,
                Locality::Random,
                &mut rnd_stats,
            );
        }
        assert!(
            rnd_stats.write_amplification() > seq_stats.write_amplification(),
            "random WA {} should exceed sequential WA {}",
            rnd_stats.write_amplification(),
            seq_stats.write_amplification()
        );
    }

    #[test]
    fn mapping_survives_gc() {
        // After heavy churn, occupancy equals the distinct logical pages.
        let mut stats = DeviceStats::default();
        let cap: u64 = 2 << 20;
        let mut ssd = SsdModel::datacenter(cap);
        let pages = cap / PAGE_SIZE; // 512
        for round in 0..5u64 {
            for p in 0..pages {
                let _ = round;
                ssd.submit(
                    0,
                    IoKind::Write,
                    p * PAGE_SIZE,
                    PAGE_SIZE,
                    Locality::Random,
                    &mut stats,
                );
            }
        }
        let live = ssd.ftl.map.len() as u64;
        assert_eq!(live, pages);
        // rmap is the exact inverse of map.
        for (&lpn, &ppn) in &ssd.ftl.map {
            assert_eq!(ssd.ftl.rmap.get(&ppn), Some(&lpn));
        }
        // valid counters agree with the mapping.
        let total_valid: u64 = ssd.ftl.valid.iter().map(|&v| v as u64).sum();
        assert_eq!(total_valid, live);
    }

    #[test]
    #[should_panic(expected = "FTL capacity exhausted")]
    fn overfull_device_panics() {
        let mut stats = DeviceStats::default();
        // 1 MiB logical => ~1.12 MiB physical; write 3 MiB of distinct pages.
        let mut ssd = SsdModel::datacenter(1 << 20);
        program_range(&mut ssd, &mut stats, 0, 3 << 20);
    }

    #[test]
    fn large_ops_amortize_random_base() {
        let spec = SsdSpec::default();
        let mut stats = DeviceStats::default();
        let mut ssd = SsdModel::new(spec, 64 << 20);
        let t_small = ssd.submit(0, IoKind::Read, 1 << 20, 4096, Locality::Random, &mut stats);
        let big_start = 1_000_000_000;
        let t_big = ssd.submit(
            big_start,
            IoKind::Read,
            8 << 20,
            1 << 20,
            Locality::Random,
            &mut stats,
        ) - big_start;
        let per_byte_small = t_small as f64 / 4096.0;
        let per_byte_big = t_big as f64 / (1 << 20) as f64;
        assert!(per_byte_big < per_byte_small / 5.0);
    }
}
