//! Property tests for the storage device models: FTL conservation, wear
//! monotonicity, and latency-model sanity under random workloads.

use proptest::prelude::*;
use tsue_device::{Device, HddModel, IoKind, SsdModel, PAGE_SIZE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under any mix of writes, the SSD's accounting stays conserved:
    /// write amplification ≥ 1, programs ≥ logical pages written, and
    /// erase count only grows.
    #[test]
    fn ftl_accounting_is_conserved(
        ops in proptest::collection::vec((0u64..2048, 1u64..16), 1..300),
    ) {
        let cap: u64 = 8 << 20; // 2048 pages
        let mut dev = Device::new_ssd(SsdModel::datacenter(cap));
        let mut now = 0;
        let mut last_erases = 0;
        let mut logical_pages = 0u64;
        for (page, len_pages) in ops {
            let off = (page % 1500) * PAGE_SIZE; // stay under capacity
            let len = (len_pages.min(8)) * PAGE_SIZE;
            now = dev.submit(now, IoKind::Write, off, len, 1);
            logical_pages += len / PAGE_SIZE;
            let s = dev.stats();
            prop_assert!(s.erase_ops >= last_erases, "erases must be monotone");
            last_erases = s.erase_ops;
            prop_assert!(s.pages_programmed >= logical_pages,
                "programs {} < logical {}", s.pages_programmed, logical_pages);
            prop_assert!(s.write_amplification() >= 1.0 - 1e-9);
        }
        // Reads never program pages.
        let before = dev.stats().pages_programmed;
        dev.submit(now, IoKind::Read, 0, 64 << 10, 2);
        prop_assert_eq!(dev.stats().pages_programmed, before);
    }

    /// Completion times are monotone per stream and never precede
    /// submission.
    #[test]
    fn completions_never_precede_submission(
        ops in proptest::collection::vec((any::<bool>(), 0u64..5000, 1u64..64), 1..200),
    ) {
        let mut ssd = Device::new_ssd(SsdModel::datacenter(32 << 20));
        let mut hdd = Device::new_hdd(HddModel::nearline(1 << 30));
        let mut now = 0u64;
        for (is_read, page, len_kb) in ops {
            let kind = if is_read { IoKind::Read } else { IoKind::Write };
            let off = (page % 4000) * 4096;
            let len = len_kb * 1024;
            let t1 = ssd.submit(now, kind, off, len, 3);
            let t2 = hdd.submit(now, kind, off, len, 3);
            prop_assert!(t1 > now, "SSD completion must advance time");
            prop_assert!(t2 > now, "HDD completion must advance time");
            now += 10_000; // 10 µs between submissions
        }
    }

    /// Byte accounting matches exactly what was submitted.
    #[test]
    fn byte_accounting_is_exact(
        ops in proptest::collection::vec((any::<bool>(), 0u64..1000, 1u64..32), 1..100),
    ) {
        let mut dev = Device::new_ssd(SsdModel::datacenter(16 << 20));
        let (mut rb, mut wb, mut ro, mut wo) = (0u64, 0u64, 0u64, 0u64);
        for (is_read, page, len_kb) in ops {
            let len = len_kb * 1024;
            let off = (page % 3000) * 4096;
            if is_read {
                dev.submit(0, IoKind::Read, off, len, 1);
                rb += len;
                ro += 1;
            } else {
                dev.submit(0, IoKind::Write, off, len, 1);
                wb += len;
                wo += 1;
            }
        }
        let s = dev.stats();
        prop_assert_eq!(s.read_bytes, rb);
        prop_assert_eq!(s.write_bytes, wb);
        prop_assert_eq!(s.read_ops, ro);
        prop_assert_eq!(s.write_ops, wo);
        prop_assert!(s.overwrite_bytes <= s.write_bytes);
        prop_assert!(s.seq_ops + s.rand_ops == ro + wo);
    }

    /// A purely sequential stream is never slower than the same volume
    /// issued as scattered small ops (both devices).
    #[test]
    fn sequential_beats_random_in_aggregate(seed in 0u64..1000) {
        let total: u64 = 4 << 20;
        let chunk: u64 = 16 << 10;
        let n = total / chunk;

        let mut seq = Device::new_ssd(SsdModel::datacenter(64 << 20));
        let mut t_seq = 0;
        for i in 0..n {
            t_seq = seq.submit(t_seq, IoKind::Write, i * chunk, chunk, 1);
        }

        let mut rnd = Device::new_ssd(SsdModel::datacenter(64 << 20));
        let mut t_rnd = 0;
        let mut x = seed | 1;
        for _ in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let off = (x % (total / chunk)) * chunk * 3 % (48 << 20);
            t_rnd = rnd.submit(t_rnd, IoKind::Write, off, chunk, 1);
        }
        prop_assert!(t_seq <= t_rnd, "sequential {t_seq} > random {t_rnd}");
    }
}
