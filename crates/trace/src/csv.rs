//! Real-trace ingestion: parse block-trace CSV files into [`TraceOp`]s.
//!
//! The synthetic generators stand in for the paper's traces when the
//! originals are unavailable, but if you *have* the MSR-Cambridge or
//! Ali-Cloud CSVs, this module replays them directly. Two common layouts
//! are accepted, auto-detected per line:
//!
//! * **MSR-Cambridge**: `timestamp,hostname,disk,type,offset,size,latency`
//!   (type is `Read`/`Write`),
//! * **Ali-Cloud block**: `device_id,opcode,offset,length,timestamp`
//!   (opcode is `R`/`W`).
//!
//! Offsets are wrapped into the target volume modulo its size, preserving
//! relative locality structure even when the traced device is larger than
//! the replay volume.

use crate::{OpKind, TraceOp};

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line had too few fields or fields of the wrong type.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The file yielded no usable operations.
    Empty,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadLine { line, reason } => {
                write!(f, "trace line {line}: {reason}")
            }
            ParseError::Empty => write!(f, "trace contained no operations"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parses CSV trace content into operations targeting a volume of
/// `volume_size` bytes. Unparseable lines are errors; header lines
/// (starting with a letter in the first numeric field position) are
/// skipped.
///
/// # Errors
/// Returns [`ParseError`] on malformed lines or an empty result.
pub fn parse_csv(content: &str, volume_size: u64) -> Result<Vec<TraceOp>, ParseError> {
    let mut ops = Vec::new();
    for (i, raw) in content.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        match parse_line(&fields) {
            Ok(Some((kind, offset, len))) => {
                let len = len.clamp(1, volume_size);
                let offset = offset % (volume_size - len + 1);
                ops.push(TraceOp { kind, offset, len });
            }
            Ok(None) => {} // header
            Err(reason) => {
                return Err(ParseError::BadLine {
                    line: i + 1,
                    reason,
                })
            }
        }
    }
    if ops.is_empty() {
        return Err(ParseError::Empty);
    }
    Ok(ops)
}

/// Parses one record; `Ok(None)` marks a header line.
fn parse_line(fields: &[&str]) -> Result<Option<(OpKind, u64, u64)>, String> {
    // MSR layout: ts,host,disk,type,offset,size[,latency]
    if fields.len() >= 6 {
        let kind = match fields[3].to_ascii_lowercase().as_str() {
            "read" => Some(OpKind::Read),
            "write" => Some(OpKind::Write),
            _ => None,
        };
        if let Some(kind) = kind {
            let offset: u64 = fields[4]
                .parse()
                .map_err(|_| format!("bad offset '{}'", fields[4]))?;
            let len: u64 = fields[5]
                .parse()
                .map_err(|_| format!("bad size '{}'", fields[5]))?;
            return Ok(Some((kind, offset, len)));
        }
    }
    // Ali layout: device,opcode,offset,length,timestamp
    if fields.len() >= 4 {
        let kind = match fields[1] {
            "R" | "r" => Some(OpKind::Read),
            "W" | "w" => Some(OpKind::Write),
            _ => None,
        };
        if let Some(kind) = kind {
            let offset: u64 = fields[2]
                .parse()
                .map_err(|_| format!("bad offset '{}'", fields[2]))?;
            let len: u64 = fields[3]
                .parse()
                .map_err(|_| format!("bad length '{}'", fields[3]))?;
            return Ok(Some((kind, offset, len)));
        }
    }
    // Header detection: first data-ish field non-numeric.
    if fields.first().is_some_and(|f| f.parse::<f64>().is_err()) {
        return Ok(None);
    }
    Err(format!("unrecognized record with {} fields", fields.len()))
}

/// Reads and parses a trace file.
///
/// # Errors
/// I/O errors and [`ParseError`]s, boxed.
pub fn load_csv(
    path: &std::path::Path,
    volume_size: u64,
) -> Result<Vec<TraceOp>, Box<dyn std::error::Error>> {
    let content = std::fs::read_to_string(path)?;
    Ok(parse_csv(&content, volume_size)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_msr_layout() {
        let content = "\
Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
128166372003061629,src1,0,Write,8192,4096,1331
128166372016382155,src1,0,Read,12288,8192,2620
";
        let ops = parse_csv(content, 1 << 30).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].kind, OpKind::Write);
        assert_eq!(ops[0].offset, 8192);
        assert_eq!(ops[0].len, 4096);
        assert_eq!(ops[1].kind, OpKind::Read);
    }

    #[test]
    fn parses_ali_layout() {
        let content = "3,W,1048576,16384,1577808000\n3,R,0,4096,1577808001\n";
        let ops = parse_csv(content, 1 << 30).unwrap();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].kind, OpKind::Write);
        assert_eq!(ops[0].len, 16384);
        assert_eq!(ops[1].kind, OpKind::Read);
    }

    #[test]
    fn wraps_offsets_into_volume() {
        let content = "3,W,1048576,4096,0\n";
        let ops = parse_csv(content, 65536).unwrap();
        assert!(ops[0].offset + ops[0].len <= 65536);
    }

    #[test]
    fn rejects_garbage_and_empty() {
        assert!(matches!(
            parse_csv("1,2\n", 1 << 20),
            Err(ParseError::BadLine { line: 1, .. })
        ));
        assert_eq!(
            parse_csv("# just a comment\n", 1 << 20),
            Err(ParseError::Empty)
        );
    }

    #[test]
    fn skips_headers_and_comments() {
        let content = "\
# MSR trace excerpt
Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
1,h,0,Write,0,512,9
";
        let ops = parse_csv(content, 1 << 20).unwrap();
        assert_eq!(ops.len(), 1);
    }
}
