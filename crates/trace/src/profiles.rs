//! Calibrated workload presets.
//!
//! Each preset encodes the statistics the paper reports for the
//! corresponding trace; see the crate docs for the sources. MSR per-volume
//! numbers are plausible synthetic approximations of the published volume
//! characteristics (write-dominated enterprise volumes with strong
//! locality), documented as substitutions in `DESIGN.md`.

use crate::WorkloadProfile;

/// Ali-Cloud block trace stand-in (§2.1: 75 % updates; 46 % of updates are
/// exactly 4 KiB, 60 % ≤ 16 KiB).
pub fn ali_cloud() -> WorkloadProfile {
    WorkloadProfile {
        name: "ali-cloud".into(),
        update_fraction: 0.75,
        size_dist: vec![
            (4 << 10, 0.46),
            (8 << 10, 0.08),
            (16 << 10, 0.06),
            (32 << 10, 0.16),
            (64 << 10, 0.14),
            (128 << 10, 0.10),
        ],
        hot_fraction: 0.10,
        hot_access_prob: 0.80,
        skew_depth: 2,
        repeat_prob: 0.25,
        seq_run_prob: 0.10,
        align: 4096,
    }
    .validated()
}

/// Ten-Cloud (Tencent CBS) block trace stand-in (§2.1: 69 % updates; 69 %
/// of updates are 4 KiB, 88 % ≤ 16 KiB; §2.3.3: >80 % of datasets touch
/// <5 % of their data — the strongest locality of the three workloads).
pub fn ten_cloud() -> WorkloadProfile {
    WorkloadProfile {
        name: "ten-cloud".into(),
        update_fraction: 0.69,
        size_dist: vec![
            (4 << 10, 0.69),
            (8 << 10, 0.12),
            (16 << 10, 0.07),
            (32 << 10, 0.06),
            (64 << 10, 0.04),
            (128 << 10, 0.02),
        ],
        hot_fraction: 0.05,
        hot_access_prob: 0.95,
        skew_depth: 3,
        repeat_prob: 0.35,
        seq_run_prob: 0.08,
        align: 4096,
    }
    .validated()
}

/// The MSR-Cambridge volumes used in Fig. 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsrVolume {
    /// Source-control volume 1, disk 0 — write-dominated, strong locality.
    Src10,
    /// Source-control volume 2, disk 2 — extremely update-heavy.
    Src22,
    /// Project directories, disk 2 — mixed sizes.
    Proj2,
    /// Print server, disk 1.
    Prn1,
    /// Hardware-monitor volume, disk 0 — tiny hot writes.
    Hm0,
    /// User home directories, disk 0 — read-heavier mix.
    Usr0,
    /// Media/metadata server, disk 0.
    Mds0,
}

impl MsrVolume {
    /// All Fig. 8 volumes in paper order.
    pub fn all() -> [MsrVolume; 7] {
        [
            MsrVolume::Src10,
            MsrVolume::Src22,
            MsrVolume::Proj2,
            MsrVolume::Prn1,
            MsrVolume::Hm0,
            MsrVolume::Usr0,
            MsrVolume::Mds0,
        ]
    }

    /// Short name as used in the paper's x-axis labels.
    pub fn name(self) -> &'static str {
        match self {
            MsrVolume::Src10 => "src10",
            MsrVolume::Src22 => "src22",
            MsrVolume::Proj2 => "proj2",
            MsrVolume::Prn1 => "prn1",
            MsrVolume::Hm0 => "hm0",
            MsrVolume::Usr0 => "usr0",
            MsrVolume::Mds0 => "mds0",
        }
    }
}

/// MSR-Cambridge stand-in for one volume (§2.1: across volumes ~60 % of
/// writes < 4 KiB, 90 % < 16 KiB, >90 % of writes are updates). Sub-4 KiB
/// requests appear here, unlike the cloud traces.
pub fn msr_volume(vol: MsrVolume) -> WorkloadProfile {
    // (update_fraction, hot_fraction, hot_access_prob, repeat, seq_run)
    let (upd, hot_f, hot_p, rep, seq) = match vol {
        MsrVolume::Src10 => (0.89, 0.06, 0.88, 0.30, 0.10),
        MsrVolume::Src22 => (0.95, 0.03, 0.92, 0.40, 0.06),
        MsrVolume::Proj2 => (0.88, 0.10, 0.80, 0.20, 0.18),
        MsrVolume::Prn1 => (0.89, 0.08, 0.82, 0.22, 0.12),
        MsrVolume::Hm0 => (0.92, 0.04, 0.90, 0.35, 0.05),
        MsrVolume::Usr0 => (0.60, 0.12, 0.75, 0.18, 0.15),
        MsrVolume::Mds0 => (0.88, 0.05, 0.85, 0.28, 0.08),
    };
    WorkloadProfile {
        name: format!("msr:{}", vol.name()),
        update_fraction: upd,
        size_dist: vec![
            (512, 0.18),
            (1 << 10, 0.20),
            (2 << 10, 0.22),
            (4 << 10, 0.20),
            (8 << 10, 0.06),
            (16 << 10, 0.04),
            (32 << 10, 0.04),
            (64 << 10, 0.06),
        ],
        hot_fraction: hot_f,
        hot_access_prob: hot_p,
        skew_depth: 2,
        repeat_prob: rep,
        seq_run_prob: seq,
        align: 512,
    }
    .validated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        let _ = ali_cloud();
        let _ = ten_cloud();
        for v in MsrVolume::all() {
            let _ = msr_volume(v);
        }
    }

    #[test]
    fn ali_matches_paper_size_quantiles() {
        let p = ali_cloud();
        let at_4k: f64 = p
            .size_dist
            .iter()
            .filter(|&&(s, _)| s == 4096)
            .map(|&(_, pr)| pr)
            .sum();
        let le_16k: f64 = p
            .size_dist
            .iter()
            .filter(|&&(s, _)| s <= 16 << 10)
            .map(|&(_, pr)| pr)
            .sum();
        assert!((at_4k - 0.46).abs() < 1e-9);
        assert!((le_16k - 0.60).abs() < 1e-9);
        assert!((p.update_fraction - 0.75).abs() < 1e-9);
    }

    #[test]
    fn ten_matches_paper_size_quantiles() {
        let p = ten_cloud();
        let at_4k: f64 = p
            .size_dist
            .iter()
            .filter(|&&(s, _)| s == 4096)
            .map(|&(_, pr)| pr)
            .sum();
        let le_16k: f64 = p
            .size_dist
            .iter()
            .filter(|&&(s, _)| s <= 16 << 10)
            .map(|&(_, pr)| pr)
            .sum();
        assert!((at_4k - 0.69).abs() < 1e-9);
        assert!((le_16k - 0.88).abs() < 1e-9);
        assert!((p.update_fraction - 0.69).abs() < 1e-9);
    }

    #[test]
    fn msr_is_small_request_dominated() {
        let p = msr_volume(MsrVolume::Hm0);
        let lt_4k: f64 = p
            .size_dist
            .iter()
            .filter(|&&(s, _)| s < 4096)
            .map(|&(_, pr)| pr)
            .sum();
        let lt_16k: f64 = p
            .size_dist
            .iter()
            .filter(|&&(s, _)| s < 16 << 10)
            .map(|&(_, pr)| pr)
            .sum();
        assert!(lt_4k >= 0.55, "MSR should be sub-4K dominated: {lt_4k}");
        assert!(lt_16k >= 0.85);
    }

    #[test]
    fn volume_names_roundtrip() {
        for v in MsrVolume::all() {
            assert!(msr_volume(v).name.contains(v.name()));
        }
    }
}
