//! Synthetic block-trace generators calibrated to the workload statistics
//! the TSUE paper itself reports (§2.1, §2.3.3).
//!
//! The real Ali-Cloud, Ten-Cloud, and MSR-Cambridge traces are not
//! redistributable here, so each is replaced by a seeded generator that
//! reproduces the axes the update schemes actually differentiate on:
//!
//! * **update ratio** — Ali: 75 % of requests are updates; Ten: 69 %;
//!   MSR: >90 % of writes are overwrites of existing data,
//! * **request-size distribution** — Ali: 46 % exactly 4 KiB, 60 % ≤ 16 KiB;
//!   Ten: 69 % at 4 KiB, 88 % ≤ 16 KiB; MSR: 60 % < 4 KiB, 90 % < 16 KiB,
//! * **spatio-temporal locality** — Ten: >80 % of datasets touch < 5 % of
//!   their data; generators layer (a) a hot working set, (b) self-similar
//!   skew inside it, (c) explicit same-address repeats (temporal locality),
//!   and (d) sequential run continuation (spatial adjacency).
//!
//! Generators are deterministic given a seed, so every experiment is
//! replayable bit for bit.

pub mod csv;
pub mod profiles;
pub mod stats;

pub use csv::{load_csv, parse_csv, ParseError};
pub use profiles::{ali_cloud, msr_volume, ten_cloud, MsrVolume};
pub use stats::TraceStats;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Direction of a trace operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Read request.
    Read,
    /// Write request; replayed against a pre-populated volume, every write
    /// is an *update* (overwrite of live data), matching how the paper
    /// replays its traces.
    Write,
}

/// One operation of a block trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Read or write.
    pub kind: OpKind,
    /// Byte offset within the volume.
    pub offset: u64,
    /// Request length in bytes.
    pub len: u64,
}

/// Workload shape parameters. See [`profiles`] for calibrated presets.
#[derive(Clone, Debug)]
pub struct WorkloadProfile {
    /// Display name ("ali-cloud", "msr:src22", ...).
    pub name: String,
    /// Fraction of operations that are writes (updates).
    pub update_fraction: f64,
    /// Request-size point masses `(bytes, probability)`; probabilities must
    /// sum to ~1.
    pub size_dist: Vec<(u64, f64)>,
    /// Fraction of the volume forming the hot working set.
    pub hot_fraction: f64,
    /// Probability an access lands in the hot set.
    pub hot_access_prob: f64,
    /// Recursion depth of the self-similar skew inside the hot set
    /// (higher = hotter sub-spots).
    pub skew_depth: u32,
    /// Probability the next op repeats a recently-touched address exactly
    /// (temporal locality — drives same-offset folding).
    pub repeat_prob: f64,
    /// Probability the next op continues sequentially after the previous
    /// one (spatial adjacency — drives coalescing).
    pub seq_run_prob: f64,
    /// Offset alignment in bytes.
    pub align: u64,
}

impl WorkloadProfile {
    /// Validates the probability mass; returns the profile for chaining.
    ///
    /// # Panics
    /// Panics if the size distribution is empty or badly normalized.
    pub fn validated(self) -> Self {
        assert!(!self.size_dist.is_empty(), "empty size distribution");
        let total: f64 = self.size_dist.iter().map(|&(_, p)| p).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "size distribution sums to {total}, expected 1.0"
        );
        assert!(
            self.align.is_power_of_two(),
            "alignment must be a power of two"
        );
        self
    }

    /// Mean request size in bytes.
    pub fn mean_size(&self) -> f64 {
        self.size_dist.iter().map(|&(s, p)| s as f64 * p).sum()
    }
}

/// Deterministic trace generator: an infinite iterator of [`TraceOp`]s.
pub struct TraceGen {
    profile: WorkloadProfile,
    volume_size: u64,
    rng: SmallRng,
    /// Recently touched (offset, len) pairs for temporal-repeat sampling.
    recent: VecDeque<(u64, u64)>,
    /// End offset of the previous op, for sequential runs.
    last_end: u64,
    /// Recorded ops replayed cyclically instead of synthesis, when set.
    replay: Option<(Vec<TraceOp>, usize)>,
}

/// How many recent addresses the temporal-repeat pool remembers.
const RECENT_POOL: usize = 64;

impl TraceGen {
    /// Creates a generator over a volume of `volume_size` bytes.
    ///
    /// # Panics
    /// Panics if the volume is smaller than 1 MiB (the locality layering
    /// needs room) or the profile is malformed.
    pub fn new(profile: WorkloadProfile, volume_size: u64, seed: u64) -> Self {
        assert!(
            volume_size >= 1 << 20,
            "volume too small for locality model"
        );
        let profile = profile.validated();
        TraceGen {
            profile,
            volume_size,
            rng: SmallRng::seed_from_u64(seed),
            recent: VecDeque::with_capacity(RECENT_POOL),
            last_end: 0,
            replay: None,
        }
    }

    /// Creates a generator that cyclically replays recorded operations
    /// (e.g. from [`crate::csv::load_csv`]) instead of synthesizing them.
    /// Each client can start at a different `phase` into the recording so
    /// concurrent replays do not move in lockstep.
    ///
    /// # Panics
    /// Panics if `ops` is empty or any op exceeds the volume.
    pub fn from_ops(ops: Vec<TraceOp>, volume_size: u64, phase: usize) -> Self {
        assert!(!ops.is_empty(), "empty replay trace");
        assert!(
            ops.iter().all(|o| o.offset + o.len <= volume_size),
            "replay op exceeds volume"
        );
        let start = phase % ops.len();
        let profile = WorkloadProfile {
            name: "replay".into(),
            update_fraction: 0.0,
            size_dist: vec![(4096, 1.0)],
            hot_fraction: 1.0,
            hot_access_prob: 0.0,
            skew_depth: 0,
            repeat_prob: 0.0,
            seq_run_prob: 0.0,
            align: 1,
        };
        TraceGen {
            profile,
            volume_size,
            rng: SmallRng::seed_from_u64(0),
            recent: VecDeque::new(),
            last_end: 0,
            replay: Some((ops, start)),
        }
    }

    /// Profile accessor.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Volume size accessor.
    pub fn volume_size(&self) -> u64 {
        self.volume_size
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> TraceOp {
        if let Some((ops, cursor)) = self.replay.as_mut() {
            let op = ops[*cursor];
            *cursor = (*cursor + 1) % ops.len();
            return op;
        }
        let kind = if self.rng.gen_bool(self.profile.update_fraction) {
            OpKind::Write
        } else {
            OpKind::Read
        };
        let len = self.sample_size();

        // Temporal repeat: hit an address we touched recently.
        if !self.recent.is_empty() && self.rng.gen_bool(self.profile.repeat_prob) {
            let idx = self.rng.gen_range(0..self.recent.len());
            let (offset, rlen) = self.recent[idx];
            self.last_end = offset + rlen;
            return TraceOp {
                kind,
                offset,
                len: rlen,
            };
        }

        // Sequential continuation: extend the previous run.
        let offset = if self.rng.gen_bool(self.profile.seq_run_prob)
            && self.last_end + len <= self.volume_size
        {
            self.last_end
        } else {
            self.sample_offset(len)
        };

        self.last_end = offset + len;
        if self.recent.len() == RECENT_POOL {
            self.recent.pop_front();
        }
        self.recent.push_back((offset, len));
        TraceOp { kind, offset, len }
    }

    /// Draws a request size from the point-mass distribution.
    fn sample_size(&mut self) -> u64 {
        let mut u: f64 = self.rng.gen();
        for &(size, p) in &self.profile.size_dist {
            if u < p {
                return size;
            }
            u -= p;
        }
        self.profile.size_dist.last().unwrap().0
    }

    /// Draws an aligned offset with layered hot-set + self-similar skew.
    fn sample_offset(&mut self, len: u64) -> u64 {
        let align = self.profile.align;
        let usable = self.volume_size.saturating_sub(len).max(align);
        let mut lo = 0u64;
        let mut span = usable;
        if self.rng.gen_bool(self.profile.hot_access_prob) {
            // Descend `skew_depth` levels of the self-similar split: each
            // level narrows to the hot_fraction sub-range with probability
            // hot_access_prob, compounding the skew.
            for _ in 0..self.profile.skew_depth {
                let hot_span = ((span as f64) * self.profile.hot_fraction).max(align as f64) as u64;
                if hot_span >= span {
                    break;
                }
                if self.rng.gen_bool(self.profile.hot_access_prob) {
                    span = hot_span;
                } else {
                    // Fall into the cold remainder of this level.
                    lo += hot_span;
                    span -= hot_span;
                    break;
                }
            }
        }
        let max = (lo + span).min(usable);
        let raw = self.rng.gen_range(lo..=max);
        (raw / align) * align
    }

    /// Collects `n` operations into a vector (for replay and tests).
    pub fn take_ops(&mut self, n: usize) -> Vec<TraceOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "test".into(),
            update_fraction: 0.7,
            size_dist: vec![(4096, 0.6), (8192, 0.4)],
            hot_fraction: 0.05,
            hot_access_prob: 0.9,
            skew_depth: 2,
            repeat_prob: 0.2,
            seq_run_prob: 0.1,
            align: 512,
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = TraceGen::new(small_profile(), 64 << 20, 42);
        let mut b = TraceGen::new(small_profile(), 64 << 20, 42);
        assert_eq!(a.take_ops(1000), b.take_ops(1000));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TraceGen::new(small_profile(), 64 << 20, 1);
        let mut b = TraceGen::new(small_profile(), 64 << 20, 2);
        assert_ne!(a.take_ops(100), b.take_ops(100));
    }

    #[test]
    fn ops_stay_in_bounds_and_aligned() {
        let vol = 32 << 20;
        let mut g = TraceGen::new(small_profile(), vol, 7);
        for op in g.take_ops(10_000) {
            assert!(op.offset + op.len <= vol, "{op:?} exceeds volume");
            assert_eq!(op.offset % 512, 0, "{op:?} misaligned");
            assert!(op.len > 0);
        }
    }

    #[test]
    fn update_fraction_is_respected() {
        let mut g = TraceGen::new(small_profile(), 64 << 20, 3);
        let ops = g.take_ops(20_000);
        let writes = ops.iter().filter(|o| o.kind == OpKind::Write).count();
        let frac = writes as f64 / ops.len() as f64;
        assert!((frac - 0.7).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn temporal_repeats_occur() {
        let mut g = TraceGen::new(small_profile(), 64 << 20, 9);
        let ops = g.take_ops(5_000);
        let mut seen = std::collections::HashMap::new();
        let mut repeats = 0usize;
        for op in &ops {
            *seen.entry((op.offset, op.len)).or_insert(0usize) += 1;
        }
        for (_, c) in seen {
            if c > 1 {
                repeats += c - 1;
            }
        }
        assert!(
            repeats as f64 / ops.len() as f64 > 0.1,
            "expected same-address repeats, got {repeats}"
        );
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn bad_distribution_panics() {
        let mut p = small_profile();
        p.size_dist = vec![(4096, 0.5)];
        let _ = TraceGen::new(p, 32 << 20, 0);
    }
}
