//! Trace statistics: verify that generated workloads actually exhibit the
//! calibration targets (update ratio, size quantiles, footprint, locality).

use crate::{OpKind, TraceOp};
use std::collections::HashMap;

/// Summary statistics over a trace sample.
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// Number of operations.
    pub ops: usize,
    /// Fraction of write operations.
    pub write_fraction: f64,
    /// Total bytes touched (sum of lengths).
    pub total_bytes: u64,
    /// Mean request size.
    pub mean_size: f64,
    /// Fraction of requests with `len <= 4 KiB`.
    pub le_4k: f64,
    /// Fraction of requests with `len <= 16 KiB`.
    pub le_16k: f64,
    /// Distinct 4 KiB pages touched / volume pages — the working-set
    /// footprint ("<5 % of total data" in the Ten-Cloud analysis).
    pub footprint: f64,
    /// Fraction of accesses hitting the hottest 10 % of touched pages —
    /// a locality indicator (higher = hotter).
    pub top_decile_share: f64,
    /// Fraction of ops exactly repeating an earlier (offset, len).
    pub exact_repeat_fraction: f64,
    /// Fraction of ops starting exactly where the previous ended.
    pub sequential_fraction: f64,
}

impl TraceStats {
    /// Computes statistics for `ops` over a volume of `volume_size` bytes.
    ///
    /// # Panics
    /// Panics if `ops` is empty.
    pub fn compute(ops: &[TraceOp], volume_size: u64) -> Self {
        assert!(!ops.is_empty(), "empty trace");
        let n = ops.len();
        let writes = ops.iter().filter(|o| o.kind == OpKind::Write).count();
        let total_bytes: u64 = ops.iter().map(|o| o.len).sum();
        let le_4k = ops.iter().filter(|o| o.len <= 4 << 10).count() as f64 / n as f64;
        let le_16k = ops.iter().filter(|o| o.len <= 16 << 10).count() as f64 / n as f64;

        // Page-granular access histogram.
        let mut page_hits: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            let first = op.offset / 4096;
            let last = (op.offset + op.len.max(1) - 1) / 4096;
            for p in first..=last {
                *page_hits.entry(p).or_insert(0) += 1;
            }
        }
        let distinct_pages = page_hits.len() as u64;
        let volume_pages = volume_size.div_ceil(4096).max(1);
        let footprint = distinct_pages as f64 / volume_pages as f64;

        let mut hits: Vec<u64> = page_hits.values().copied().collect();
        hits.sort_unstable_by(|a, b| b.cmp(a));
        let total_hits: u64 = hits.iter().sum();
        let decile = (hits.len() / 10).max(1);
        let top_hits: u64 = hits[..decile].iter().sum();
        let top_decile_share = top_hits as f64 / total_hits.max(1) as f64;

        let mut seen = std::collections::HashSet::new();
        let mut repeats = 0usize;
        for op in ops {
            if !seen.insert((op.offset, op.len)) {
                repeats += 1;
            }
        }

        let mut seq = 0usize;
        for w in ops.windows(2) {
            if w[1].offset == w[0].offset + w[0].len {
                seq += 1;
            }
        }

        TraceStats {
            ops: n,
            write_fraction: writes as f64 / n as f64,
            total_bytes,
            mean_size: total_bytes as f64 / n as f64,
            le_4k,
            le_16k,
            footprint,
            top_decile_share,
            exact_repeat_fraction: repeats as f64 / n as f64,
            sequential_fraction: seq as f64 / (n - 1).max(1) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ali_cloud, ten_cloud, TraceGen};

    #[test]
    fn ali_generated_trace_matches_calibration() {
        let mut g = TraceGen::new(ali_cloud(), 256 << 20, 11);
        let ops = g.take_ops(30_000);
        let s = TraceStats::compute(&ops, 256 << 20);
        assert!(
            (s.write_fraction - 0.75).abs() < 0.02,
            "{}",
            s.write_fraction
        );
        // Repeats re-draw recorded sizes, so quantiles drift slightly from
        // the raw point masses; allow a modest band.
        assert!((s.le_16k - 0.60).abs() < 0.08, "le_16k {}", s.le_16k);
        assert!(
            s.top_decile_share > 0.4,
            "locality too weak: {}",
            s.top_decile_share
        );
    }

    #[test]
    fn ten_is_hotter_and_smaller_than_ali() {
        let vol = 256 << 20;
        let mut ga = TraceGen::new(ali_cloud(), vol, 5);
        let mut gt = TraceGen::new(ten_cloud(), vol, 5);
        let sa = TraceStats::compute(&ga.take_ops(30_000), vol);
        let st = TraceStats::compute(&gt.take_ops(30_000), vol);
        assert!(st.le_4k > sa.le_4k, "Ten should skew smaller");
        assert!(
            st.footprint < sa.footprint,
            "Ten footprint {} should be below Ali {}",
            st.footprint,
            sa.footprint
        );
        assert!(st.exact_repeat_fraction > sa.exact_repeat_fraction);
    }

    #[test]
    fn footprint_is_small_for_hot_workloads() {
        let vol = 1 << 30;
        let mut g = TraceGen::new(ten_cloud(), vol, 3);
        let ops = g.take_ops(50_000);
        let s = TraceStats::compute(&ops, vol);
        // Ten-Cloud analysis: datasets touch < 5 % of their data; the
        // generator's uniform cold tail adds a little scatter on top.
        assert!(s.footprint < 0.06, "footprint {}", s.footprint);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let _ = TraceStats::compute(&[], 1024);
    }
}
