//! Systematic Reed–Solomon erasure coding with incremental-update algebra.
//!
//! The codec implements the stripe model of the paper: `k` data blocks
//! generate `m` parity blocks via a generator matrix over GF(2^8)
//! (paper Eq. (1)); any `k` of the `k + m` blocks reconstruct the rest.
//!
//! On top of plain encode/reconstruct, the crate exposes the *incremental
//! update* algebra every parity-logging scheme builds on:
//!
//! * [`RsCode::parity_delta`] — Eq. (2): `ΔP_j = ∂_{j,i} · ΔD_i`,
//! * [`merge_deltas`] — Eq. (3)/(4): same-offset deltas fold by XOR, so only
//!   the accumulated difference against the *original* data matters,
//! * [`RsCode::combined_parity_delta`] — Eq. (5): data deltas from several
//!   blocks of the same stripe at the same offset combine into a single
//!   parity delta per parity block.

pub mod stripe;

pub use stripe::{StripeConfig, StripeLayout};

use tsue_gf::{xor_slice, Matrix};

/// Errors reported by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcError {
    /// Fewer than `k` shards survive; reconstruction is impossible.
    TooFewShards { present: usize, needed: usize },
    /// Shard buffers have inconsistent lengths.
    ShardSizeMismatch,
    /// Invalid parameters (e.g. k = 0, k + m > 255).
    InvalidParameters(String),
    /// Shard index out of range.
    BadIndex(usize),
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EcError::TooFewShards { present, needed } => {
                write!(f, "too few shards: {present} present, {needed} needed")
            }
            EcError::ShardSizeMismatch => write!(f, "shard size mismatch"),
            EcError::InvalidParameters(s) => write!(f, "invalid parameters: {s}"),
            EcError::BadIndex(i) => write!(f, "shard index {i} out of range"),
        }
    }
}

impl std::error::Error for EcError {}

/// One logged delta range for replay: `(absolute offset, delta bytes)`.
pub type DeltaRange<'a> = (u64, &'a [u8]);

/// One data block's contribution to a stripe replay: the block's index
/// paired with its logged ranges.
pub type RoleRanges<'a> = (usize, &'a [DeltaRange<'a>]);

/// A systematic Reed–Solomon code RS(k, m).
///
/// The generator matrix is `[ I_k ; C ]` where `C` is a `m × k` Cauchy
/// matrix, so every combination of `k` surviving rows is invertible (the MDS
/// property) and data blocks are stored verbatim.
#[derive(Clone, Debug)]
pub struct RsCode {
    k: usize,
    m: usize,
    /// Full (k + m) × k generator matrix; top k rows are the identity.
    generator: Matrix,
}

impl RsCode {
    /// Creates an RS(k, m) code.
    ///
    /// # Errors
    /// Fails if `k == 0`, `m == 0`, or `k + m > 255`.
    pub fn new(k: usize, m: usize) -> Result<Self, EcError> {
        if k == 0 || m == 0 {
            return Err(EcError::InvalidParameters(
                "k and m must be positive".into(),
            ));
        }
        if k + m > 255 {
            return Err(EcError::InvalidParameters(format!(
                "k + m = {} exceeds field limit 255",
                k + m
            )));
        }
        let parity = Matrix::cauchy(m, k);
        let generator = Matrix::identity(k).stack(&parity);
        Ok(RsCode { k, m, generator })
    }

    /// Number of data blocks per stripe.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of parity blocks per stripe.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total number of blocks per stripe.
    #[inline]
    pub fn n(&self) -> usize {
        self.k + self.m
    }

    /// The encoding coefficient `∂_{j,i}` that multiplies data block `i`
    /// into parity block `j` (paper Eq. (1)).
    #[inline]
    pub fn coefficient(&self, parity_index: usize, data_index: usize) -> u8 {
        debug_assert!(parity_index < self.m && data_index < self.k);
        self.generator.get(self.k + parity_index, data_index)
    }

    /// Encodes `k` data blocks into `m` parity blocks (paper Eq. (1)).
    ///
    /// # Errors
    /// Fails if the input count is not `k` or the buffers differ in length.
    pub fn encode(&self, data: &[&[u8]]) -> Result<Vec<Vec<u8>>, EcError> {
        if data.len() != self.k {
            return Err(EcError::InvalidParameters(format!(
                "expected {} data blocks, got {}",
                self.k,
                data.len()
            )));
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) {
            return Err(EcError::ShardSizeMismatch);
        }
        let mut parity = vec![Vec::new(); self.m];
        self.encode_into(data, &mut parity)?;
        Ok(parity)
    }

    /// Scratch-reusing variant of [`Self::encode`]: writes the `m` parity
    /// blocks into caller-provided buffers (resized in place), so repeated
    /// encodes of same-size stripes perform zero allocations after the
    /// first call.
    ///
    /// # Errors
    /// Fails if the input count is not `k`, the output count is not `m`,
    /// or the data buffers differ in length.
    pub fn encode_into(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) -> Result<(), EcError> {
        if data.len() != self.k {
            return Err(EcError::InvalidParameters(format!(
                "expected {} data blocks, got {}",
                self.k,
                data.len()
            )));
        }
        if parity.len() != self.m {
            return Err(EcError::InvalidParameters(format!(
                "expected {} parity buffers, got {}",
                self.m,
                parity.len()
            )));
        }
        let len = data[0].len();
        if data.iter().any(|d| d.len() != len) {
            return Err(EcError::ShardSizeMismatch);
        }
        for (j, out) in parity.iter_mut().enumerate() {
            out.resize(len, 0);
            for (i, &input) in data.iter().enumerate() {
                let c = self.coefficient(j, i);
                if i == 0 {
                    tsue_gf::mul_slice(c, input, out);
                } else {
                    tsue_gf::mul_add_slice(c, input, out);
                }
            }
        }
        Ok(())
    }

    /// Reconstructs exactly one missing block into a caller-provided
    /// buffer, reading the surviving shards by reference — the zero-copy
    /// recovery decode. `present` pairs each surviving shard's role index
    /// (`0..k` data, `k..k+m` parity) with its bytes; borrowed slices mean
    /// survivors can stay in pool-backed shared buffers end to end, and
    /// `out` is the only buffer written.
    ///
    /// # Errors
    /// Fails if fewer than `k` shards are present, `target` is out of
    /// range or listed as present, or buffer sizes mismatch.
    pub fn reconstruct_one(
        &self,
        present: &[(usize, &[u8])],
        target: usize,
        out: &mut [u8],
    ) -> Result<(), EcError> {
        if target >= self.n() {
            return Err(EcError::BadIndex(target));
        }
        if present.len() < self.k {
            return Err(EcError::TooFewShards {
                present: present.len(),
                needed: self.k,
            });
        }
        let use_shards = &present[..self.k];
        if use_shards
            .iter()
            .any(|&(role, shard)| role >= self.n() || role == target || shard.len() != out.len())
        {
            return Err(EcError::ShardSizeMismatch);
        }
        let use_rows: Vec<usize> = use_shards.iter().map(|&(role, _)| role).collect();
        let sub = self.generator.select_rows(&use_rows);
        let decode = sub
            .inverse()
            .ok_or_else(|| EcError::InvalidParameters("duplicate survivor roles".into()))?;
        // Coefficients mapping the chosen survivors straight to `target`:
        // a decode row for data blocks, generator-row × decode for parity.
        let coeffs: Vec<u8> = if target < self.k {
            decode.row(target).to_vec()
        } else {
            let eff = self.generator.select_rows(&[target]).mul(&decode);
            eff.row(0).to_vec()
        };
        for (i, &(_, shard)) in use_shards.iter().enumerate() {
            if i == 0 {
                tsue_gf::mul_slice(coeffs[i], shard, out);
            } else {
                tsue_gf::mul_add_slice(coeffs[i], shard, out);
            }
        }
        Ok(())
    }

    /// Reconstructs all missing shards in place. `shards` must have length
    /// `k + m`; indices `0..k` are data, `k..k+m` parity. Present shards are
    /// `Some`, missing ones `None`.
    ///
    /// # Errors
    /// Fails if fewer than `k` shards are present or sizes mismatch.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        if shards.len() != self.n() {
            return Err(EcError::InvalidParameters(format!(
                "expected {} shard slots, got {}",
                self.n(),
                shards.len()
            )));
        }
        let present: Vec<usize> = (0..self.n()).filter(|&i| shards[i].is_some()).collect();
        if present.len() < self.k {
            return Err(EcError::TooFewShards {
                present: present.len(),
                needed: self.k,
            });
        }
        let missing: Vec<usize> = (0..self.n()).filter(|&i| shards[i].is_none()).collect();
        if missing.is_empty() {
            return Ok(());
        }
        let len = shards[present[0]].as_ref().unwrap().len();
        if present
            .iter()
            .any(|&i| shards[i].as_ref().unwrap().len() != len)
        {
            return Err(EcError::ShardSizeMismatch);
        }

        // Decode matrix: rows of the generator for the first k present
        // shards; its inverse maps those shards back to the data blocks.
        let use_rows: Vec<usize> = present.iter().copied().take(self.k).collect();
        let sub = self.generator.select_rows(&use_rows);
        let decode = sub
            .inverse()
            .expect("MDS generator: any k rows are invertible");

        let missing_data: Vec<usize> = missing.iter().copied().filter(|&i| i < self.k).collect();
        let missing_parity: Vec<usize> = missing.iter().copied().filter(|&i| i >= self.k).collect();

        // Compute everything from the surviving shards before mutating.
        let (out_data, out_parity) = {
            let inputs: Vec<&[u8]> = use_rows
                .iter()
                .map(|&i| shards[i].as_ref().unwrap().as_slice())
                .collect();
            let out_data = if missing_data.is_empty() {
                Vec::new()
            } else {
                let rows = decode.select_rows(&missing_data);
                let mut out = vec![Vec::new(); missing_data.len()];
                rows.apply(&inputs, &mut out);
                out
            };
            let out_parity = if missing_parity.is_empty() {
                Vec::new()
            } else {
                // Generator rows for the missing parity composed with the
                // decode matrix give coefficients over the present shards.
                let gen_rows = self.generator.select_rows(&missing_parity);
                let eff = gen_rows.mul(&decode);
                let mut out = vec![Vec::new(); missing_parity.len()];
                eff.apply(&inputs, &mut out);
                out
            };
            (out_data, out_parity)
        };
        for (slot, buf) in missing_data.iter().zip(out_data) {
            shards[*slot] = Some(buf);
        }
        for (slot, buf) in missing_parity.iter().zip(out_parity) {
            shards[*slot] = Some(buf);
        }
        Ok(())
    }

    /// Verifies that the parity shards are consistent with the data shards.
    ///
    /// # Errors
    /// Fails on size mismatch or wrong shard count.
    pub fn verify(&self, shards: &[Vec<u8>]) -> Result<bool, EcError> {
        if shards.len() != self.n() {
            return Err(EcError::InvalidParameters(format!(
                "expected {} shards, got {}",
                self.n(),
                shards.len()
            )));
        }
        let data: Vec<&[u8]> = shards[..self.k].iter().map(|v| v.as_slice()).collect();
        let parity = self.encode(&data)?;
        Ok(parity.iter().zip(&shards[self.k..]).all(|(a, b)| a == b))
    }

    /// Eq. (2): computes the parity delta for parity block `parity_index`
    /// given the data delta `ΔD = D_new ⊕ D_old` of data block `data_index`:
    /// `ΔP_j = ∂_{j,i} · ΔD_i`. XORing the result into the old parity yields
    /// the new parity.
    pub fn parity_delta(
        &self,
        parity_index: usize,
        data_index: usize,
        data_delta: &[u8],
    ) -> Vec<u8> {
        let c = self.coefficient(parity_index, data_index);
        let mut out = vec![0u8; data_delta.len()];
        tsue_gf::mul_slice(c, data_delta, &mut out);
        out
    }

    /// In-place variant of [`Self::parity_delta`]: `acc ^= ∂_{j,i} · ΔD`.
    ///
    /// # Panics
    /// Panics if buffer lengths differ.
    pub fn parity_delta_into(
        &self,
        parity_index: usize,
        data_index: usize,
        data_delta: &[u8],
        acc: &mut [u8],
    ) {
        let c = self.coefficient(parity_index, data_index);
        tsue_gf::mul_add_slice(c, data_delta, acc);
    }

    /// Eq. (5): combines same-offset data deltas from several data blocks of
    /// one stripe into a single parity delta for parity `parity_index`.
    ///
    /// `deltas` pairs each contributing data-block index with its delta
    /// bytes; all deltas must have equal length.
    ///
    /// # Panics
    /// Panics if deltas have inconsistent lengths.
    pub fn combined_parity_delta(&self, parity_index: usize, deltas: &[(usize, &[u8])]) -> Vec<u8> {
        assert!(!deltas.is_empty(), "need at least one delta");
        let mut acc = vec![0u8; deltas[0].1.len()];
        self.combined_parity_delta_into(parity_index, deltas, &mut acc);
        acc
    }

    /// Scratch-reusing variant of [`Self::combined_parity_delta`]:
    /// XOR-accumulates `∂_{j,i} · Δ_i` for every `(i, Δ_i)` pair into
    /// `acc` (one fused multiply-accumulate pass per contributing block,
    /// no intermediate buffers). `acc` is *accumulated into*, not
    /// overwritten — zero it first for a fresh combined delta.
    ///
    /// # Panics
    /// Panics if any delta's length differs from `acc`'s.
    pub fn combined_parity_delta_into(
        &self,
        parity_index: usize,
        deltas: &[(usize, &[u8])],
        acc: &mut [u8],
    ) {
        for &(data_index, delta) in deltas {
            assert_eq!(delta.len(), acc.len(), "delta length mismatch");
            self.parity_delta_into(parity_index, data_index, delta, acc);
        }
    }

    /// Overwriting variant of [`Self::combined_parity_delta_into`]: writes
    /// the combined delta into `out` (the first block multiplies straight
    /// into the buffer — no zero-fill, no read-modify on the first pass),
    /// so a recycled scratch buffer needs no clearing between uses.
    ///
    /// # Panics
    /// Panics if `deltas` is empty or any delta's length differs from
    /// `out`'s.
    pub fn fill_combined_parity_delta(
        &self,
        parity_index: usize,
        deltas: &[(usize, &[u8])],
        out: &mut [u8],
    ) {
        assert!(!deltas.is_empty(), "need at least one delta");
        let (first_index, first) = deltas[0];
        assert_eq!(first.len(), out.len(), "delta length mismatch");
        tsue_gf::mul_slice(self.coefficient(parity_index, first_index), first, out);
        self.combined_parity_delta_into(parity_index, &deltas[1..], out);
    }

    /// Stripe-batched replay (the recycle-path kernel): merges **all** of a
    /// stripe's logged data-delta ranges into the parity delta for
    /// `parity_index` covering `[base, base + acc.len())`, performing a
    /// single GF multiply per contributing data block instead of one per
    /// logged range.
    ///
    /// `roles` pairs each data-block index with its `(offset, delta)`
    /// ranges (absolute offsets; every range must fall inside the span).
    /// Per role, the ranges are first folded into `scratch` with plain XOR
    /// (Eq. 3 — cheap), then one `∂_{j,i} ·` multiply-accumulate folds the
    /// whole block's contribution into `acc` (Eq. 5). `acc` is accumulated
    /// into; zero it first for a fresh delta. `scratch` is resized and
    /// reused across calls.
    ///
    /// # Panics
    /// Panics if a range falls outside the span.
    pub fn stripe_replay_into(
        &self,
        parity_index: usize,
        base: u64,
        roles: &[RoleRanges<'_>],
        scratch: &mut Vec<u8>,
        acc: &mut [u8],
    ) {
        let span = acc.len();
        for &(data_index, ranges) in roles {
            if ranges.is_empty() {
                continue;
            }
            // Fast path: a single range covering the whole span skips the
            // scratch fold entirely.
            if ranges.len() == 1 && ranges[0].0 == base && ranges[0].1.len() == span {
                self.parity_delta_into(parity_index, data_index, ranges[0].1, acc);
                continue;
            }
            scratch.resize(span, 0);
            scratch.fill(0);
            for &(off, delta) in ranges {
                let rel = (off - base) as usize;
                assert!(rel + delta.len() <= span, "range outside replay span");
                xor_slice(delta, &mut scratch[rel..rel + delta.len()]);
            }
            self.parity_delta_into(parity_index, data_index, scratch, acc);
        }
    }

    /// Applies a parity delta to a parity buffer: `parity ^= delta`
    /// (the final step of every log-recycle path).
    ///
    /// # Panics
    /// Panics if buffer lengths differ.
    pub fn apply_parity_delta(parity: &mut [u8], delta: &[u8]) {
        xor_slice(delta, parity);
    }
}

/// Eq. (3)/(4): folds a newer delta into an accumulated delta at the same
/// offset. Because deltas are differences against the original data,
/// accumulation is plain XOR and the *latest write wins* emerges from
/// `new ⊕ old ⊕ old = new`.
///
/// # Panics
/// Panics if the buffers have different lengths.
pub fn merge_deltas(acc: &mut [u8], newer: &[u8]) {
    xor_slice(newer, acc);
}

/// Computes a data delta `new ⊕ old` into a fresh buffer.
///
/// # Panics
/// Panics if the buffers have different lengths.
pub fn data_delta(old: &[u8], new: &[u8]) -> Vec<u8> {
    assert_eq!(old.len(), new.len(), "data_delta length mismatch");
    let mut d = vec![0u8; new.len()];
    data_delta_into(old, new, &mut d);
    d
}

/// Scratch-reusing variant of [`data_delta`]: writes `new ⊕ old` into
/// caller-provided scratch in one pass (no intermediate copy of `new`).
///
/// # Panics
/// Panics if the buffers have different lengths.
pub fn data_delta_into(old: &[u8], new: &[u8], out: &mut [u8]) {
    tsue_gf::xor_into(old, new, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(k: usize, len: usize, seed: u8) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| (seed as usize + i * 31 + j * 7) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn new_rejects_bad_parameters() {
        assert!(RsCode::new(0, 2).is_err());
        assert!(RsCode::new(4, 0).is_err());
        assert!(RsCode::new(200, 56).is_err());
        assert!(RsCode::new(6, 4).is_ok());
    }

    #[test]
    fn encode_then_verify() {
        let rs = RsCode::new(6, 3).unwrap();
        let data = blocks(6, 64, 3);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        assert_eq!(parity.len(), 3);
        let mut shards = data.clone();
        shards.extend(parity);
        assert!(rs.verify(&shards).unwrap());
        // Corrupt one byte: verify fails.
        shards[2][5] ^= 0xff;
        assert!(!rs.verify(&shards).unwrap());
    }

    #[test]
    fn reconstruct_all_loss_patterns_up_to_m() {
        let rs = RsCode::new(4, 2).unwrap();
        let data = blocks(4, 32, 9);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        let mut full: Vec<Vec<u8>> = data.clone();
        full.extend(parity);

        // All single and double losses.
        for a in 0..6 {
            for b in a..6 {
                let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
                shards[a] = None;
                shards[b] = None;
                rs.reconstruct(&mut shards).unwrap();
                for (i, s) in shards.iter().enumerate() {
                    assert_eq!(s.as_ref().unwrap(), &full[i], "loss ({a},{b}) slot {i}");
                }
            }
        }
    }

    #[test]
    fn reconstruct_one_matches_full_reconstruct() {
        let rs = RsCode::new(4, 2).unwrap();
        let data = blocks(4, 32, 13);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        let mut full: Vec<Vec<u8>> = data.clone();
        full.extend(parity);

        // Rebuild every role from every window of k survivors.
        for target in 0..6 {
            let survivors: Vec<(usize, &[u8])> = (0..6)
                .filter(|&r| r != target)
                .map(|r| (r, full[r].as_slice()))
                .collect();
            for skip in 0..=1 {
                let chosen: Vec<(usize, &[u8])> =
                    survivors.iter().copied().skip(skip).take(4).collect();
                let mut out = vec![0u8; 32];
                rs.reconstruct_one(&chosen, target, &mut out).unwrap();
                assert_eq!(out, full[target], "target {target} skip {skip}");
            }
        }
    }

    #[test]
    fn reconstruct_one_rejects_bad_inputs() {
        let rs = RsCode::new(4, 2).unwrap();
        let data = blocks(4, 16, 2);
        let survivors: Vec<(usize, &[u8])> = data
            .iter()
            .enumerate()
            .map(|(r, v)| (r, v.as_slice()))
            .collect();
        let mut out = vec![0u8; 16];
        assert!(matches!(
            rs.reconstruct_one(&survivors[..3], 5, &mut out),
            Err(EcError::TooFewShards { .. })
        ));
        assert!(matches!(
            rs.reconstruct_one(&survivors, 9, &mut out),
            Err(EcError::BadIndex(9))
        ));
        // Target listed among the survivors is a caller bug.
        assert!(rs.reconstruct_one(&survivors, 0, &mut out).is_err());
    }

    #[test]
    fn reconstruct_fails_beyond_m() {
        let rs = RsCode::new(4, 2).unwrap();
        let data = blocks(4, 16, 1);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        let mut shards: Vec<Option<Vec<u8>>> = data.into_iter().chain(parity).map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        shards[4] = None;
        assert!(matches!(
            rs.reconstruct(&mut shards),
            Err(EcError::TooFewShards {
                present: 3,
                needed: 4
            })
        ));
    }

    #[test]
    fn incremental_update_matches_full_reencode() {
        let rs = RsCode::new(6, 4).unwrap();
        let mut data = blocks(6, 128, 7);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = rs.encode(&refs).unwrap();

        // Update bytes 10..20 of data block 2.
        let old = data[2][10..20].to_vec();
        let new: Vec<u8> = (0..10u8)
            .map(|x| x.wrapping_mul(37).wrapping_add(5))
            .collect();
        let delta = data_delta(&old, &new);
        data[2][10..20].copy_from_slice(&new);

        for (j, p) in parity.iter_mut().enumerate() {
            let pd = rs.parity_delta(j, 2, &delta);
            RsCode::apply_parity_delta(&mut p[10..20], &pd);
        }

        let refs2: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let expect = rs.encode(&refs2).unwrap();
        assert_eq!(parity, expect);
    }

    #[test]
    fn repeated_updates_fold_to_latest() {
        // Eq. (4): N updates at the same offset collapse into one delta
        // against the original data.
        let rs = RsCode::new(3, 2).unwrap();
        let original = vec![0u8; 8];
        let v1 = vec![1u8; 8];
        let v2 = vec![2u8; 8];
        let v3 = vec![9u8; 8];

        // Per-update deltas chained: d1 = v1^orig, d2 = v2^v1, d3 = v3^v2.
        let d1 = data_delta(&original, &v1);
        let d2 = data_delta(&v1, &v2);
        let d3 = data_delta(&v2, &v3);
        let mut acc = d1;
        merge_deltas(&mut acc, &d2);
        merge_deltas(&mut acc, &d3);
        assert_eq!(acc, data_delta(&original, &v3));
        let _ = rs; // rs unused beyond construction sanity
    }

    #[test]
    fn combined_delta_equals_sum_of_individual_deltas() {
        // Eq. (5): combining deltas from blocks {0, 2, 3} at one offset.
        let rs = RsCode::new(4, 3).unwrap();
        let d0 = vec![0x11u8; 16];
        let d2 = vec![0x25u8; 16];
        let d3 = vec![0xa7u8; 16];
        for j in 0..3 {
            let combined = rs.combined_parity_delta(j, &[(0, &d0), (2, &d2), (3, &d3)]);
            let mut expect = rs.parity_delta(j, 0, &d0);
            merge_deltas(&mut expect, &rs.parity_delta(j, 2, &d2));
            merge_deltas(&mut expect, &rs.parity_delta(j, 3, &d3));
            assert_eq!(combined, expect, "parity {j}");
        }
    }

    #[test]
    fn encode_into_reuses_buffers_and_matches_encode() {
        let rs = RsCode::new(5, 3).unwrap();
        let data = blocks(5, 96, 11);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let expect = rs.encode(&refs).unwrap();
        // Pre-dirtied, wrong-size buffers must come out right.
        let mut parity = vec![vec![0xAAu8; 7]; 3];
        rs.encode_into(&refs, &mut parity).unwrap();
        assert_eq!(parity, expect);
        // Second call reuses the (now correctly sized) buffers.
        let caps: Vec<usize> = parity.iter().map(Vec::capacity).collect();
        rs.encode_into(&refs, &mut parity).unwrap();
        assert_eq!(parity, expect);
        let caps2: Vec<usize> = parity.iter().map(Vec::capacity).collect();
        assert_eq!(caps, caps2, "no reallocation on reuse");
        // Wrong output count is rejected.
        let mut short = vec![Vec::new(); 2];
        assert!(rs.encode_into(&refs, &mut short).is_err());
    }

    #[test]
    fn combined_parity_delta_into_accumulates() {
        let rs = RsCode::new(4, 3).unwrap();
        let d0 = vec![0x11u8; 16];
        let d2 = vec![0x25u8; 16];
        for j in 0..3 {
            let expect = rs.combined_parity_delta(j, &[(0, &d0), (2, &d2)]);
            let mut acc = vec![0u8; 16];
            rs.combined_parity_delta_into(j, &[(0, &d0), (2, &d2)], &mut acc);
            assert_eq!(acc, expect, "parity {j}");
            // Accumulation semantics: a second pass cancels (XOR algebra).
            rs.combined_parity_delta_into(j, &[(0, &d0), (2, &d2)], &mut acc);
            assert!(acc.iter().all(|&b| b == 0), "parity {j} must cancel");
        }
    }

    #[test]
    fn fill_combined_parity_delta_overwrites_dirty_scratch() {
        let rs = RsCode::new(4, 2).unwrap();
        let d1 = vec![0x42u8; 32];
        let d3 = vec![0x9Eu8; 32];
        for j in 0..2 {
            let expect = rs.combined_parity_delta(j, &[(1, &d1), (3, &d3)]);
            let mut out = vec![0xEEu8; 32]; // dirty recycled scratch
            rs.fill_combined_parity_delta(j, &[(1, &d1), (3, &d3)], &mut out);
            assert_eq!(out, expect, "parity {j}");
        }
    }

    #[test]
    fn stripe_replay_matches_per_range_deltas() {
        let rs = RsCode::new(4, 2).unwrap();
        // Role 1 logs two disjoint ranges, role 3 one full-span range.
        let span = 64u64;
        let base = 128u64;
        let r1a = vec![0x5Au8; 16];
        let r1b = vec![0xC3u8; 8];
        let r3 = vec![0x77u8; span as usize];
        let role1: Vec<(u64, &[u8])> = vec![(base + 4, &r1a), (base + 40, &r1b)];
        let role3: Vec<(u64, &[u8])> = vec![(base, &r3)];
        let mut scratch = Vec::new();
        for j in 0..2 {
            let mut acc = vec![0u8; span as usize];
            rs.stripe_replay_into(j, base, &[(1, &role1), (3, &role3)], &mut scratch, &mut acc);
            // Reference: per-range parity deltas XORed at their offsets.
            let mut expect = vec![0u8; span as usize];
            for (role, ranges) in [(1usize, &role1), (3, &role3)] {
                for &(off, d) in ranges.iter() {
                    let pd = rs.parity_delta(j, role, d);
                    let rel = (off - base) as usize;
                    merge_deltas(&mut expect[rel..rel + d.len()], &pd);
                }
            }
            assert_eq!(acc, expect, "parity {j}");
        }
    }

    #[test]
    fn data_delta_into_matches_allocating_form() {
        let old: Vec<u8> = (0..50u8).collect();
        let new: Vec<u8> = (100..150u8).collect();
        let mut out = vec![0u8; 50];
        data_delta_into(&old, &new, &mut out);
        assert_eq!(out, data_delta(&old, &new));
    }

    #[test]
    fn verify_rejects_wrong_shard_count() {
        let rs = RsCode::new(3, 2).unwrap();
        assert!(rs.verify(&vec![vec![0u8; 4]; 4]).is_err());
    }

    #[test]
    fn encode_rejects_ragged_input() {
        let rs = RsCode::new(2, 1).unwrap();
        let a = vec![0u8; 8];
        let b = vec![0u8; 9];
        assert_eq!(
            rs.encode(&[&a, &b]).unwrap_err(),
            EcError::ShardSizeMismatch
        );
    }

    #[test]
    fn generator_is_mds_for_small_codes() {
        for (k, m) in [(2, 2), (3, 2), (4, 2), (3, 3)] {
            let rs = RsCode::new(k, m).unwrap();
            assert!(
                rs.generator.all_submatrices_invertible(k),
                "RS({k},{m}) generator is not MDS"
            );
        }
    }
}
