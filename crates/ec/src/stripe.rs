//! Stripe geometry: how a logical byte range maps onto (stripe, block,
//! offset) coordinates in an RS(k, m) layout with fixed block size.

/// Static stripe geometry shared by clients, OSDs, and the MDS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StripeConfig {
    /// Data blocks per stripe.
    pub k: usize,
    /// Parity blocks per stripe.
    pub m: usize,
    /// Block size in bytes.
    pub block_size: u64,
}

impl StripeConfig {
    /// Creates a geometry description.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(k: usize, m: usize, block_size: u64) -> Self {
        assert!(k > 0 && m > 0 && block_size > 0, "invalid stripe config");
        StripeConfig { k, m, block_size }
    }

    /// Bytes of user data covered by one stripe.
    #[inline]
    pub fn stripe_data_bytes(&self) -> u64 {
        self.k as u64 * self.block_size
    }

    /// Total blocks per stripe (data + parity).
    #[inline]
    pub fn blocks_per_stripe(&self) -> usize {
        self.k + self.m
    }

    /// Maps a logical file offset to its stripe coordinates.
    #[inline]
    pub fn locate(&self, offset: u64) -> BlockAddr {
        let stripe = offset / self.stripe_data_bytes();
        let within = offset % self.stripe_data_bytes();
        let block = (within / self.block_size) as usize;
        let block_offset = within % self.block_size;
        BlockAddr {
            stripe,
            block,
            offset: block_offset,
        }
    }

    /// Splits a logical `(offset, len)` range into per-block extents, each
    /// entirely inside one data block. This is how a client shards an update
    /// request before dispatch.
    pub fn split_range(&self, offset: u64, len: u64) -> Vec<Extent> {
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset + len;
        while cur < end {
            let addr = self.locate(cur);
            let room = self.block_size - addr.offset;
            let take = room.min(end - cur);
            out.push(Extent {
                addr,
                len: take,
                logical_offset: cur,
            });
            cur += take;
        }
        out
    }
}

/// Coordinates of a byte inside the stripe layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BlockAddr {
    /// Stripe index within the file.
    pub stripe: u64,
    /// Data-block index within the stripe (`0..k`).
    pub block: usize,
    /// Byte offset within the block.
    pub offset: u64,
}

/// A contiguous extent of a request inside a single data block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    /// Where the extent starts.
    pub addr: BlockAddr,
    /// Extent length in bytes.
    pub len: u64,
    /// Original logical offset (for reassembly on read).
    pub logical_offset: u64,
}

/// Round-robin placement with a per-stripe rotation, mirroring the paper's
/// ECFS which spreads each stripe's `k + m` blocks over distinct OSDs.
#[derive(Clone, Copy, Debug)]
pub struct StripeLayout {
    /// Number of OSD nodes in the cluster.
    pub nodes: usize,
}

impl StripeLayout {
    /// Creates a layout over `nodes` OSDs.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "cluster needs at least one node");
        StripeLayout { nodes }
    }

    /// The OSD hosting `role` (0..k are data blocks, k..k+m parity) of
    /// `stripe`. Rotation by stripe index balances parity load (otherwise
    /// the same nodes would absorb every parity write).
    #[inline]
    pub fn node_for(&self, stripe: u64, role: usize, blocks_per_stripe: usize) -> usize {
        debug_assert!(role < blocks_per_stripe);
        ((stripe as usize % self.nodes) + role) % self.nodes
    }

    /// Inverse-ish helper: all roles of `stripe` hosted on `node`.
    pub fn roles_on_node(&self, stripe: u64, node: usize, blocks_per_stripe: usize) -> Vec<usize> {
        (0..blocks_per_stripe)
            .filter(|&r| self.node_for(stripe, r, blocks_per_stripe) == node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_walks_the_stripe() {
        let cfg = StripeConfig::new(4, 2, 100);
        assert_eq!(
            cfg.locate(0),
            BlockAddr {
                stripe: 0,
                block: 0,
                offset: 0
            }
        );
        assert_eq!(
            cfg.locate(99),
            BlockAddr {
                stripe: 0,
                block: 0,
                offset: 99
            }
        );
        assert_eq!(
            cfg.locate(100),
            BlockAddr {
                stripe: 0,
                block: 1,
                offset: 0
            }
        );
        assert_eq!(
            cfg.locate(399),
            BlockAddr {
                stripe: 0,
                block: 3,
                offset: 99
            }
        );
        assert_eq!(
            cfg.locate(400),
            BlockAddr {
                stripe: 1,
                block: 0,
                offset: 0
            }
        );
    }

    #[test]
    fn split_range_covers_exactly() {
        let cfg = StripeConfig::new(3, 2, 64);
        let extents = cfg.split_range(50, 200);
        // Coverage is contiguous, in order, and sums to the request length.
        let total: u64 = extents.iter().map(|e| e.len).sum();
        assert_eq!(total, 200);
        let mut cursor = 50;
        for e in &extents {
            assert_eq!(e.logical_offset, cursor);
            assert_eq!(cfg.locate(cursor), e.addr);
            assert!(e.addr.offset + e.len <= 64, "extent crosses block edge");
            cursor += e.len;
        }
        assert_eq!(cursor, 250);
    }

    #[test]
    fn split_range_single_block() {
        let cfg = StripeConfig::new(6, 3, 4096);
        let extents = cfg.split_range(4096 + 10, 100);
        assert_eq!(extents.len(), 1);
        assert_eq!(extents[0].addr.block, 1);
        assert_eq!(extents[0].addr.offset, 10);
    }

    #[test]
    fn layout_spreads_blocks_across_distinct_nodes() {
        let layout = StripeLayout::new(16);
        let bps = 10; // RS(6,4)
        for stripe in 0..32u64 {
            let mut seen = std::collections::HashSet::new();
            for role in 0..bps {
                let n = layout.node_for(stripe, role, bps);
                assert!(n < 16);
                assert!(seen.insert(n), "stripe {stripe} role {role} collides");
            }
        }
    }

    #[test]
    fn layout_rotates_across_stripes() {
        let layout = StripeLayout::new(8);
        let n0 = layout.node_for(0, 0, 6);
        let n1 = layout.node_for(1, 0, 6);
        assert_ne!(n0, n1, "stripe rotation must move block 0");
    }

    #[test]
    fn roles_on_node_matches_forward_map() {
        let layout = StripeLayout::new(5);
        let bps = 5;
        for stripe in 0..10u64 {
            for node in 0..5 {
                for role in layout.roles_on_node(stripe, node, bps) {
                    assert_eq!(layout.node_for(stripe, role, bps), node);
                }
            }
        }
    }
}
