//! Codec-level cross-tier equivalence: a full Reed–Solomon encode and a
//! parity-delta round produce byte-identical outputs on every kernel
//! tier the host supports. This lifts the slice-level invariant from
//! `tsue_gf` up one layer — the place the simulator actually consumes
//! the kernels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsue_ec::{data_delta, RsCode};
use tsue_gf::{set_kernel_tier, KernelTier};

#[test]
fn encode_and_parity_delta_identical_on_every_tier() {
    let rs = RsCode::new(4, 2).unwrap();
    let mut rng = StdRng::seed_from_u64(0x7e57_0e11);
    // Odd length so vector tails are exercised through the codec too.
    let len = 4097;
    let data: Vec<Vec<u8>> = (0..4)
        .map(|_| (0..len).map(|_| rng.gen()).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    let new_block: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
    let delta = data_delta(&data[1], &new_block);

    type Blocks = Vec<Vec<u8>>;
    let mut baseline: Option<(Blocks, Blocks)> = None;
    for tier in KernelTier::available() {
        set_kernel_tier(tier).unwrap();
        let parity = rs.encode(&refs).unwrap();
        let parity_deltas: Vec<Vec<u8>> = (0..2)
            .map(|p| {
                let mut out = vec![0u8; len];
                rs.parity_delta_into(p, 1, &delta, &mut out);
                out
            })
            .collect();
        match &baseline {
            None => baseline = Some((parity, parity_deltas)),
            Some((p0, d0)) => {
                assert_eq!(&parity, p0, "encode differs on tier {tier:?}");
                assert_eq!(&parity_deltas, d0, "parity delta differs on tier {tier:?}");
            }
        }
    }
    set_kernel_tier(KernelTier::best()).unwrap();
}
