//! Property tests: the codec invariants every update scheme relies on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsue_ec::{data_delta, merge_deltas, RsCode, StripeConfig};

fn make_blocks(rng: &mut StdRng, k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|_| (0..len).map(|_| rng.gen()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any ≤ m erasure pattern is recoverable and recovers the exact bytes.
    #[test]
    fn reconstruct_any_erasure(
        k in 2usize..8,
        m in 1usize..5,
        len in 1usize..200,
        seed: u64,
        losses_seed: u64,
    ) {
        let rs = RsCode::new(k, m).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = make_blocks(&mut rng, k, len);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let parity = rs.encode(&refs).unwrap();
        let full: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();

        let mut loss_rng = StdRng::seed_from_u64(losses_seed);
        let n_lost = loss_rng.gen_range(1..=m);
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        let mut lost = std::collections::HashSet::new();
        while lost.len() < n_lost {
            lost.insert(loss_rng.gen_range(0..k + m));
        }
        for &i in &lost {
            shards[i] = None;
        }
        rs.reconstruct(&mut shards).unwrap();
        for (i, s) in shards.iter().enumerate() {
            prop_assert_eq!(s.as_ref().unwrap(), &full[i]);
        }
    }

    /// A random sequence of partial in-block updates, applied through the
    /// incremental parity-delta path, leaves parity identical to a full
    /// re-encode. This is the algebraic heart of every scheme in the paper.
    #[test]
    fn incremental_updates_equal_full_reencode(
        k in 2usize..7,
        m in 1usize..5,
        seed: u64,
        n_updates in 1usize..24,
    ) {
        let len = 96usize;
        let rs = RsCode::new(k, m).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = make_blocks(&mut rng, k, len);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = rs.encode(&refs).unwrap();

        for _ in 0..n_updates {
            let b = rng.gen_range(0..k);
            let off = rng.gen_range(0..len);
            let ulen = rng.gen_range(1..=len - off);
            let new: Vec<u8> = (0..ulen).map(|_| rng.gen()).collect();
            let delta = data_delta(&data[b][off..off + ulen], &new);
            data[b][off..off + ulen].copy_from_slice(&new);
            for (j, p) in parity.iter_mut().enumerate() {
                let pd = rs.parity_delta(j, b, &delta);
                tsue_ec::RsCode::apply_parity_delta(&mut p[off..off + ulen], &pd);
            }
        }

        let refs2: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let expect = rs.encode(&refs2).unwrap();
        prop_assert_eq!(parity, expect);
    }

    /// Folding chained per-update deltas (Eq. 3) equals the single delta
    /// against the original (Eq. 4), in any interleaving.
    #[test]
    fn delta_folding_is_order_insensitive(
        seed: u64,
        n in 1usize..10,
    ) {
        let len = 32usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let original: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let mut versions = vec![original.clone()];
        for _ in 0..n {
            versions.push((0..len).map(|_| rng.gen()).collect());
        }
        let mut acc = vec![0u8; len];
        for w in versions.windows(2) {
            let d = data_delta(&w[0], &w[1]);
            merge_deltas(&mut acc, &d);
        }
        prop_assert_eq!(acc, data_delta(&original, versions.last().unwrap()));
    }

    /// Eq. (5) grouping: one combined parity delta from many blocks equals
    /// applying each block's parity delta separately.
    #[test]
    fn combined_delta_matches_separate_application(
        k in 2usize..7,
        m in 1usize..4,
        seed: u64,
    ) {
        let len = 48usize;
        let rs = RsCode::new(k, m).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let deltas: Vec<Vec<u8>> = (0..k).map(|_| (0..len).map(|_| rng.gen()).collect()).collect();
        let pairs: Vec<(usize, &[u8])> = deltas.iter().enumerate().map(|(i, d)| (i, d.as_slice())).collect();
        for j in 0..m {
            let combined = rs.combined_parity_delta(j, &pairs);
            let mut sep = vec![0u8; len];
            for (i, d) in &pairs {
                let pd = rs.parity_delta(j, *i, d);
                merge_deltas(&mut sep, &pd);
            }
            prop_assert_eq!(combined, sep);
        }
    }

    /// split_range always tiles the request exactly with in-block extents.
    #[test]
    fn split_range_tiles_request(
        k in 1usize..16,
        m in 1usize..5,
        bs in 1u64..10_000,
        offset in 0u64..1_000_000,
        len in 1u64..100_000,
    ) {
        let cfg = StripeConfig::new(k, m, bs);
        let extents = cfg.split_range(offset, len);
        let mut cursor = offset;
        for e in &extents {
            prop_assert_eq!(e.logical_offset, cursor);
            prop_assert_eq!(cfg.locate(cursor), e.addr);
            prop_assert!(e.addr.offset + e.len <= bs);
            prop_assert!(e.len > 0);
            cursor += e.len;
        }
        prop_assert_eq!(cursor, offset + len);
    }
}
