//! FO — Full Overwrite (Aguilera et al., DSN '05; paper §2.2).
//!
//! Every update is applied in place, end to end, before the client sees an
//! ack: read-modify-write on the data block, a parity delta per parity
//! block, and a read-modify-write on every parity block. No logs, no
//! deferred work — the longest update path of all schemes, entirely made of
//! small random I/O, but recovery-ready at every instant.

use crate::AckTable;
use tsue_ecfs::scheme::{rmw_data_delta, DeltaKind, SchemeMsg, UpdateReq};
use tsue_ecfs::{BlockId, Cluster, ClusterCore, UpdateScheme, ACK_BYTES};
use tsue_sim::Sim;

/// The FO scheme state (per OSD).
#[derive(Default)]
pub struct Fo {
    acks: AckTable,
}

impl Fo {
    /// Creates a fresh instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl UpdateScheme for Fo {
    fn name(&self) -> &'static str {
        "FO"
    }

    fn on_update(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    ) {
        // In-place data RMW producing the data delta (Eq. 2 prologue).
        let (t_rmw, delta) = rmw_data_delta(core, sim.now(), osd, req.block, req.off, &req.data);
        let m = core.cfg.stripe.m;
        let gstripe = core.global_stripe(req.block.file, req.block.stripe);
        let tag = self.acks.register(req.op_id, m as u32);
        // Parity deltas computed on the data OSD's CPU, then forwarded.
        let t_send = t_rmw + core.gf_time(req.data.len * m as u64);
        for j in 0..m {
            let peer = core.owner_of(gstripe, core.cfg.stripe.k + j);
            let pd = delta.gf_scaled(core.rs.coefficient(j, req.block.role));
            let (block, off, len) = (req.block, req.off, req.data.len);
            sim.schedule_at(t_send, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                let msg = SchemeMsg::DeltaForward {
                    from: osd,
                    block,
                    off,
                    data: pd,
                    kind: DeltaKind::ParityDelta,
                    parity_index: j,
                    tag,
                };
                w.core.send_to_scheme(sim, osd, peer, len, msg);
            });
        }
    }

    fn on_message(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        msg: SchemeMsg,
    ) {
        match msg {
            SchemeMsg::DeltaForward {
                from,
                block,
                off,
                data,
                parity_index,
                tag,
                ..
            } => {
                // In-place parity RMW, then ack the data OSD.
                let pblock = BlockId {
                    role: core.cfg.stripe.k + parity_index,
                    ..block
                };
                let compute = core.xor_time(data.len);
                let t = core.osds[osd].xor_block_range(
                    sim.now(),
                    pblock,
                    off,
                    data.len,
                    data.bytes.as_deref(),
                    compute,
                );
                sim.schedule_at(t, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    w.core
                        .send_to_scheme(sim, osd, from, ACK_BYTES, SchemeMsg::Ack { tag });
                });
            }
            SchemeMsg::Ack { tag } => {
                if let Some(op_id) = self.acks.ack(tag) {
                    core.extent_done(sim, osd, op_id);
                }
            }
            // INVARIANT: the arms above cover every message kind an FO peer
            // sends; anything else is a routing bug.
            _ => unreachable!("FO exchanges only DeltaForward/Ack"),
        }
    }

    fn flush(&mut self, _core: &mut ClusterCore, _sim: &mut Sim<Cluster>, _osd: usize) {
        // Fully synchronous: nothing is ever deferred.
    }

    fn backlog(&self) -> u64 {
        0
    }
}
