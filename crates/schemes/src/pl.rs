//! PL — Parity Logging (Stodolsky et al., ISCA '93; paper §2.2).
//!
//! Data blocks are still updated in place (the costly read-modify-write
//! stays on the synchronous path), but parity deltas are *appended* to a
//! per-OSD parity log instead of applied in place. Appends are sequential
//! and cheap, so PL is the strongest baseline for update throughput. The
//! price: the log is recycled lazily (on a space threshold), every logged
//! delta is applied individually with random reads at recycle time, and a
//! failure before recycling stalls recovery behind a recycle storm — the
//! consistency issue §2.3.2 highlights.

use crate::{AckTable, LogMirrors, LogRegion};
use tsue_ecfs::scheme::{rmw_data_delta, Chunk, DeltaKind, SchemeMsg, UpdateReq};
use tsue_ecfs::{BlockId, Cluster, ClusterCore, UpdateScheme, ACK_BYTES};
use tsue_sim::Sim;

/// Per-entry header bytes persisted with each logged delta.
const ENTRY_HEADER: u64 = 32;
/// Timer tag: one in-flight recycle application finished.
const TAG_RECYCLE_DONE: u64 = 1;

/// One logged parity delta awaiting recycle.
struct PlEntry {
    pblock: BlockId,
    off: u64,
    data: Chunk,
    dev_off: u64,
}

/// The PL scheme state (per OSD).
pub struct Pl {
    acks: AckTable,
    log: LogRegion,
    entries: Vec<PlEntry>,
    log_bytes: u64,
    /// Recycle trigger: log bytes before a drain starts.
    pub threshold: u64,
    inflight: u64,
    /// Ring-successor mirror regions for `cfg.log_replicas > 1`.
    mirrors: LogMirrors,
}

impl Default for Pl {
    fn default() -> Self {
        Self::new()
    }
}

impl Pl {
    /// Creates a PL instance with the paper-faithful lazy threshold
    /// (256 MiB per OSD — "extensive parity log space allows recycling to
    /// be indefinitely delayed").
    pub fn new() -> Self {
        Pl {
            acks: AckTable::default(),
            log: LogRegion::new(512 << 20, 0),
            entries: Vec::new(),
            log_bytes: 0,
            threshold: 256 << 20,
            inflight: 0,
            mirrors: LogMirrors::new(40),
        }
    }

    /// Drains every logged entry: random log read, parity RMW, in append
    /// order (XOR telescopes, so order only matters per location — append
    /// order satisfies it).
    fn start_recycle(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        let now = sim.now();
        for e in self.entries.drain(..) {
            let t_read = self
                .log
                .read(core, osd, now, e.dev_off, e.data.len + ENTRY_HEADER);
            let compute = core.xor_time(e.data.len);
            let t_done = core.osds[osd].xor_block_range(
                t_read,
                e.pblock,
                e.off,
                e.data.len,
                e.data.bytes.as_deref(),
                compute,
            );
            self.inflight += 1;
            core.scheme_timer(sim, osd, t_done - now, TAG_RECYCLE_DONE);
        }
        self.log_bytes = 0;
    }
}

impl UpdateScheme for Pl {
    fn name(&self) -> &'static str {
        "PL"
    }

    fn on_update(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    ) {
        // Same in-place data RMW as FO.
        let (t_rmw, delta) = rmw_data_delta(core, sim.now(), osd, req.block, req.off, &req.data);
        let m = core.cfg.stripe.m;
        let gstripe = core.global_stripe(req.block.file, req.block.stripe);
        let tag = self.acks.register(req.op_id, m as u32);
        let t_send = t_rmw + core.gf_time(req.data.len * m as u64);
        for j in 0..m {
            let peer = core.owner_of(gstripe, core.cfg.stripe.k + j);
            let pd = delta.gf_scaled(core.rs.coefficient(j, req.block.role));
            let (block, off, len) = (req.block, req.off, req.data.len);
            sim.schedule_at(t_send, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                let msg = SchemeMsg::DeltaForward {
                    from: osd,
                    block,
                    off,
                    data: pd,
                    kind: DeltaKind::ParityDelta,
                    parity_index: j,
                    tag,
                };
                w.core.send_to_scheme(sim, osd, peer, len, msg);
            });
        }
    }

    fn on_message(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        msg: SchemeMsg,
    ) {
        match msg {
            SchemeMsg::DeltaForward {
                from,
                block,
                off,
                data,
                parity_index,
                tag,
                ..
            } => {
                // Sequential append to the parity log; ack immediately
                // after the append persists.
                let len = data.len;
                let (t_append, dev_off) = self.log.append(core, osd, sim.now(), len + ENTRY_HEADER);
                self.entries.push(PlEntry {
                    pblock: BlockId {
                        role: core.cfg.stripe.k + parity_index,
                        ..block
                    },
                    off,
                    data,
                    dev_off,
                });
                self.log_bytes += len + ENTRY_HEADER;
                // The ack waits for every mirror copy (no-op at the
                // default `log_replicas = 1`).
                let t_ack =
                    self.mirrors
                        .replicate(core, osd, sim.now(), t_append, len + ENTRY_HEADER);
                sim.schedule_at(t_ack, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    w.core
                        .send_to_scheme(sim, osd, from, ACK_BYTES, SchemeMsg::Ack { tag });
                });
                if self.log_bytes > self.threshold {
                    self.start_recycle(core, sim, osd);
                }
            }
            SchemeMsg::Ack { tag } => {
                if let Some(op_id) = self.acks.ack(tag) {
                    core.extent_done(sim, osd, op_id);
                }
            }
            // INVARIANT: the arms above cover every message kind a PL peer
            // sends; anything else is a routing bug.
            _ => unreachable!("PL exchanges only DeltaForward/Ack"),
        }
    }

    fn on_timer(
        &mut self,
        _core: &mut ClusterCore,
        _sim: &mut Sim<Cluster>,
        _osd: usize,
        tag: u64,
    ) {
        debug_assert_eq!(tag, TAG_RECYCLE_DONE);
        self.inflight -= 1;
    }

    fn flush(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        if !self.entries.is_empty() {
            self.start_recycle(core, sim, osd);
        }
    }

    fn backlog(&self) -> u64 {
        self.entries.len() as u64 + self.inflight + self.acks.outstanding() as u64
    }

    fn memory_usage(&self) -> u64 {
        // Log content is on disk; memory holds the entry index (and bytes
        // in materialized runs, which model the index + buffer cache).
        self.entries
            .iter()
            .map(|e| ENTRY_HEADER + e.data.bytes.as_ref().map_or(48, |b| b.len() as u64))
            .sum()
    }
}
