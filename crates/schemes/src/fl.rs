//! FL — Full Logging (Azure/GFS style; paper §2.2).
//!
//! Every update is appended to a log — no in-place writes at all on the
//! synchronous path, so update latency is excellent. The paper's critique,
//! which this implementation reproduces:
//!
//! * the log consumes substantial space and must merge on *read* (reads
//!   not covered by the log pay device reads plus merge),
//! * a **single** log structure makes appending and recycling mutually
//!   exclusive: while a recycle storm runs, arriving updates queue.
//!
//! Parity owners log the forwarded data for durability; the data-side
//! recycle computes deltas (read-modify-write per logged range) and ships
//! parity deltas, after which parity owners drop their log copies.

use crate::{AckTable, LogRegion};
use std::collections::{BTreeMap, VecDeque};
use tsue_ecfs::rangemap::RangeMap;
use tsue_ecfs::scheme::{DeltaKind, ReadServe, SchemeMsg, UpdateReq};
use tsue_ecfs::{BlockId, Cluster, ClusterCore, UpdateScheme, ACK_BYTES};
use tsue_sim::Sim;

/// Per-entry header bytes.
const ENTRY_HEADER: u64 = 32;
/// Control tag: a parity owner may discard its log copies for a block.
const CTRL_DISCARD: u64 = 4;
/// Timer tag: one recycle chain completed.
const TAG_RECYCLE_DONE: u64 = 5;

/// An update parked while the single log is recycling.
struct Waiting {
    req: UpdateReq,
}

/// The FL scheme state (per OSD).
pub struct Fl {
    acks: AckTable,
    /// Data-side single log: per-block newest-wins content.
    dlog: BTreeMap<BlockId, RangeMap>,
    log: LogRegion,
    log_bytes: u64,
    /// Recycle trigger.
    pub threshold: u64,
    /// Mutual exclusion: appends wait while recycling.
    recycling: bool,
    waiting: VecDeque<Waiting>,
    /// Parity-side mirrored data (for durability until discard).
    plog: BTreeMap<BlockId, RangeMap>,
    plog_bytes: u64,
    inflight: u64,
}

impl Default for Fl {
    fn default() -> Self {
        Self::new()
    }
}

impl Fl {
    /// Creates an FL instance (64 MiB threshold: FL logs whole data, so it
    /// fills much faster than parity-delta logs).
    pub fn new() -> Self {
        Fl {
            acks: AckTable::default(),
            dlog: BTreeMap::new(),
            log: LogRegion::new(256 << 20, 8),
            log_bytes: 0,
            threshold: 64 << 20,
            recycling: false,
            waiting: VecDeque::new(),
            plog: BTreeMap::new(),
            plog_bytes: 0,
            inflight: 0,
        }
    }

    fn append_update(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    ) {
        let m = core.cfg.stripe.m;
        let gstripe = core.global_stripe(req.block.file, req.block.stripe);
        let len = req.data.len;
        // Local sequential append + index insert.
        let (t_append, _) = self.log.append(core, osd, sim.now(), len + ENTRY_HEADER);
        self.log_bytes += len + ENTRY_HEADER;
        self.dlog
            .entry(req.block)
            .or_default()
            .insert(req.off, req.data.clone());
        // Forward the data to every parity owner for durability.
        let tag = self.acks.register(req.op_id, m as u32);
        for j in 0..m {
            let peer = core.owner_of(gstripe, core.cfg.stripe.k + j);
            let data = req.data.clone();
            let (block, off) = (req.block, req.off);
            sim.schedule_at(t_append, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                let msg = SchemeMsg::DataForward {
                    from: osd,
                    block,
                    off,
                    data,
                    tag,
                    seq: 0,
                };
                w.core.send_to_scheme(sim, osd, peer, len, msg);
            });
        }
    }

    /// The mutually-exclusive recycle: merge every logged range into its
    /// data block (read-modify-write), ship parity deltas, and tell parity
    /// owners to discard their copies.
    fn start_recycle(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        if self.recycling {
            return;
        }
        self.recycling = true;
        let now = sim.now();
        let m = core.cfg.stripe.m;
        let blocks: Vec<BlockId> = self.dlog.keys().copied().collect();
        for block in blocks {
            let gstripe = core.global_stripe(block.file, block.stripe);
            // INVARIANT: `block` came from `dlog.keys()` just above, and
            // entries are only removed by this loop.
            let mut map = self.dlog.remove(&block).expect("key exists");
            for (off, newest) in map.drain() {
                let len = newest.len;
                // RMW the data block: read old, delta, write merged.
                let (t_read, old) = core.osds[osd].read_block_range(now, block, off, len);
                let delta = match (&newest.bytes, old) {
                    (Some(new), Some(old)) => {
                        let mut d = tsue_buf::BytesMut::take(new.len());
                        tsue_ec::data_delta_into(&old, new, d.as_mut());
                        tsue_ecfs::Chunk::real(d.freeze())
                    }
                    _ => tsue_ecfs::Chunk::ghost(len),
                };
                let t_compute = t_read + core.xor_time(len);
                let t_write = core.osds[osd].write_block_range(
                    t_compute,
                    block,
                    off,
                    len,
                    newest.bytes.as_deref(),
                );
                // Parity deltas to every parity owner.
                let t_send = t_write + core.gf_time(len * m as u64);
                for j in 0..m {
                    let peer = core.owner_of(gstripe, core.cfg.stripe.k + j);
                    let pd = delta.gf_scaled(core.rs.coefficient(j, block.role));
                    self.inflight += 1;
                    sim.schedule_at(t_send, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                        let msg = SchemeMsg::DeltaForward {
                            from: osd,
                            block,
                            off,
                            data: pd,
                            kind: DeltaKind::ParityDelta,
                            parity_index: j,
                            tag: TAG_RECYCLE_DONE,
                        };
                        w.core.send_to_scheme(sim, osd, peer, len, msg);
                    });
                }
            }
        }
        self.log_bytes = 0;
        if self.inflight == 0 {
            self.finish_recycle(core, sim, osd);
        }
    }

    fn finish_recycle(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        self.recycling = false;
        while let Some(w) = self.waiting.pop_front() {
            self.append_update(core, sim, osd, w.req);
            if self.recycling {
                break;
            }
        }
    }
}

impl UpdateScheme for Fl {
    fn name(&self) -> &'static str {
        "FL"
    }

    fn on_update(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    ) {
        if self.recycling {
            // The single log is busy: the paper's mutual-exclusion stall.
            self.waiting.push_back(Waiting { req });
            return;
        }
        self.append_update(core, sim, osd, req);
        if self.log_bytes > self.threshold {
            self.start_recycle(core, sim, osd);
        }
    }

    fn on_message(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        msg: SchemeMsg,
    ) {
        match msg {
            SchemeMsg::DataForward {
                from,
                block,
                off,
                data,
                tag,
                ..
            } => {
                // Parity-side durability append.
                let len = data.len;
                let (t_append, _) = self.log.append(core, osd, sim.now(), len + ENTRY_HEADER);
                self.plog_bytes += len + ENTRY_HEADER;
                self.plog.entry(block).or_default().insert(off, data);
                sim.schedule_at(t_append, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    w.core
                        .send_to_scheme(sim, osd, from, ACK_BYTES, SchemeMsg::Ack { tag });
                });
            }
            SchemeMsg::DeltaForward {
                from,
                block,
                off,
                data,
                parity_index,
                ..
            } => {
                // Recycle-time parity application.
                let pblock = BlockId {
                    role: core.cfg.stripe.k + parity_index,
                    ..block
                };
                let compute = core.xor_time(data.len);
                let t = core.osds[osd].xor_block_range(
                    sim.now(),
                    pblock,
                    off,
                    data.len,
                    data.bytes.as_deref(),
                    compute,
                );
                // Applied: drop the durability copy and notify the data
                // side that one application finished.
                self.plog.remove(&block);
                sim.schedule_at(t, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    let ctrl = SchemeMsg::Control {
                        from: osd,
                        tag: CTRL_DISCARD,
                        a: 0,
                        b: 0,
                    };
                    w.core.send_to_scheme(sim, osd, from, ACK_BYTES, ctrl);
                });
            }
            SchemeMsg::Control { tag, .. } => {
                debug_assert_eq!(tag, CTRL_DISCARD);
                self.inflight -= 1;
                if self.inflight == 0 && self.recycling {
                    self.finish_recycle(core, sim, osd);
                }
            }
            SchemeMsg::Ack { tag } => {
                if let Some(op_id) = self.acks.ack(tag) {
                    core.extent_done(sim, osd, op_id);
                }
            }
        }
    }

    fn read_overlay(
        &mut self,
        _core: &mut ClusterCore,
        _osd: usize,
        block: BlockId,
        off: u64,
        len: u64,
        buf: Option<&mut [u8]>,
    ) -> ReadServe {
        // FL reads must consult the log; full coverage avoids the device.
        match self.dlog.get(&block) {
            Some(map) if map.overlay(off, len, buf) => ReadServe::CacheHit,
            _ => ReadServe::Miss,
        }
    }

    fn flush(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        if !self.dlog.is_empty() || !self.waiting.is_empty() {
            self.start_recycle(core, sim, osd);
        }
    }

    fn backlog(&self) -> u64 {
        let logged: u64 = self.dlog.values().map(|m| m.len() as u64).sum();
        logged + self.waiting.len() as u64 + self.inflight + self.acks.outstanding() as u64
    }

    fn memory_usage(&self) -> u64 {
        let d: u64 = self.dlog.values().map(|m| m.covered_bytes()).sum();
        let p: u64 = self.plog.values().map(|m| m.covered_bytes()).sum();
        d + p
    }
}
