//! PARIX — speculative partial writes (Li et al., ATC '17; paper §2.2).
//!
//! PARIX skips the data-side read-modify-write: new data is written in
//! place and *forwarded as data* (not as a delta) to the parity logs. The
//! parity side can only compute `coeff · (D_latest ⊕ D_original)` if it
//! holds the original data, so on the **first** update of a location the
//! data OSD must additionally ship the old content — the 2× network
//! round trip Fig. 1 charges PARIX with. Locations updated repeatedly
//! (temporal locality) pay a single forward per write, which is the
//! scheme's sweet spot.
//!
//! Parity-side state per data block is a pair of interval maps:
//! `original` (first-wins — Eq. (4)'s `D_0`) and `latest` (newest-wins).
//! Recycle folds `latest ⊕ original` per covered range into the parity
//! block, then promotes `latest` to be the new `original`.

use crate::{parity_index_of, AckTable, LogRegion};
use std::collections::BTreeMap;
use tsue_ecfs::rangemap::RangeMap;
use tsue_ecfs::scheme::{Chunk, SchemeMsg, UpdateReq};
use tsue_ecfs::{BlockId, Cluster, ClusterCore, UpdateScheme, ACK_BYTES};
use tsue_sim::Sim;

/// Tag bit marking a `DataForward` that carries *original* (old) data.
const OLD_BIT: u64 = 1 << 62;
/// Control tag: parity asks the data OSD for original data.
const CTRL_NEED_OLD: u64 = 1;
/// Timer tag: one recycle application finished.
const TAG_RECYCLE_DONE: u64 = 2;
/// Per-entry header bytes in the parity log.
const ENTRY_HEADER: u64 = 32;

/// Parity-side per-data-block log state.
#[derive(Default)]
struct BlockLog {
    /// First-wins capture of pre-update content (`D_0`).
    original: RangeMap,
    /// Newest-wins capture of the latest content (`D_n`).
    latest: RangeMap,
}

/// Data-side cache of old content awaiting parity `NeedOld` requests.
struct PendingOld {
    old: Chunk,
    off: u64,
    block: BlockId,
    remaining: u32,
}

/// The PARIX scheme state (per OSD).
pub struct Parix {
    acks: AckTable,
    /// Data-side: byte ranges whose original content the parity logs hold.
    old_sent: BTreeMap<BlockId, RangeMap>,
    /// Bytes of speculation coverage accumulated since the last epoch
    /// flip; bounded by [`Self::speculation_budget`].
    old_sent_bytes: u64,
    /// Coverage budget modeling the bounded parity-log space: when
    /// exceeded, the data side conservatively re-enters first-touch mode
    /// (the recurring 2× round-trip penalty after log reclamation).
    pub speculation_budget: u64,
    /// Data-side: cached originals for in-flight first updates.
    pend_old: BTreeMap<u64, PendingOld>,
    /// Parity-side log region (holds both old and new entries).
    log: LogRegion,
    /// Parity-side per-block state.
    blocks: BTreeMap<BlockId, BlockLog>,
    log_bytes: u64,
    /// Recycle trigger.
    pub threshold: u64,
    inflight: u64,
}

impl Default for Parix {
    fn default() -> Self {
        Self::new()
    }
}

impl Parix {
    /// Creates a PARIX instance with a lazy (large) recycle threshold.
    pub fn new() -> Self {
        Parix {
            acks: AckTable::default(),
            old_sent: BTreeMap::new(),
            old_sent_bytes: 0,
            speculation_budget: 4 << 20,
            pend_old: BTreeMap::new(),
            log: LogRegion::new(512 << 20, 4),
            blocks: BTreeMap::new(),
            log_bytes: 0,
            threshold: 256 << 20,
            inflight: 0,
        }
    }

    /// Parity-side recycle: per block, per covered range of `latest`,
    /// apply `coeff · (latest ⊕ original)` to the parity block.
    fn start_recycle(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        let now = sim.now();
        let keys: Vec<BlockId> = self.blocks.keys().copied().collect();
        for dblock in keys {
            let gstripe = core.global_stripe(dblock.file, dblock.stripe);
            let Some(j) = parity_index_of(core, osd, gstripe) else {
                continue; // stale entry after a placement change
            };
            let coeff = core.rs.coefficient(j, dblock.role);
            let pblock = BlockId {
                role: core.cfg.stripe.k + j,
                ..dblock
            };
            // INVARIANT: `dblock` came from `blocks.keys()` just above, and
            // this loop removes nothing.
            let log_state = self.blocks.get_mut(&dblock).expect("key exists");
            let latest = log_state.latest.drain();
            for (off, newest) in latest {
                // Log reads: the latest entry and the original entry
                // (two scattered reads — PARIX's recycle cost).
                // Approximate entry placement: reads wrap inside the log
                // region, so the cost model sees two scattered reads.
                let t1 = self.log.read(core, osd, now, off, newest.len);
                let t2 = self
                    .log
                    .read(core, osd, t1, off.wrapping_mul(2654435761), newest.len);
                // delta = latest ⊕ original over this range, built in one
                // pooled scratch buffer and GF-scaled in place (the buffer
                // is uniquely owned, so no second buffer materializes).
                let delta = match &newest.bytes {
                    Some(latest) => {
                        let mut buf = tsue_buf::BytesMut::zeroed(latest.len());
                        let covered =
                            log_state
                                .original
                                .overlay(off, newest.len, Some(buf.as_mut()));
                        debug_assert!(covered, "original must cover latest");
                        tsue_gf::xor_slice(latest, buf.as_mut());
                        Chunk::real(buf.freeze())
                    }
                    None => Chunk::ghost(newest.len),
                };
                let pd = delta.into_gf_scaled(coeff);
                let compute = core.gf_time(pd.len);
                let t_done = core.osds[osd].xor_block_range(
                    t2,
                    pblock,
                    off,
                    pd.len,
                    pd.bytes.as_deref(),
                    compute,
                );
                self.inflight += 1;
                core.scheme_timer(sim, osd, t_done.saturating_sub(now), TAG_RECYCLE_DONE);
                // The merged content becomes the new original.
                log_state.original.insert(off, newest);
            }
        }
        self.log_bytes = 0;
    }
}

impl UpdateScheme for Parix {
    fn name(&self) -> &'static str {
        "PARIX"
    }

    fn on_update(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    ) {
        let now = sim.now();
        let m = core.cfg.stripe.m;
        let gstripe = core.global_stripe(req.block.file, req.block.stripe);
        let coverage = self.old_sent.entry(req.block).or_default();
        let first = !coverage.overlay(req.off, req.data.len, None);

        let (t_write, old_chunk) = if first {
            // Must capture the original before overwriting it.
            let (t_read, old) =
                core.osds[osd].read_block_range(now, req.block, req.off, req.data.len);
            let t_w = core.osds[osd].write_block_range(
                t_read,
                req.block,
                req.off,
                req.data.len,
                req.data.bytes.as_deref(),
            );
            let old_chunk = match old {
                Some(b) => Chunk::real(b),
                None => Chunk::ghost(req.data.len),
            };
            coverage.insert(req.off, Chunk::ghost(req.data.len));
            self.old_sent_bytes += req.data.len;
            (t_w, Some(old_chunk))
        } else {
            // Speculative fast path: blind in-place write.
            let t_w = core.osds[osd].write_block_range(
                now,
                req.block,
                req.off,
                req.data.len,
                req.data.bytes.as_deref(),
            );
            (t_w, None)
        };

        // Epoch flip: bounded parity-log space means speculation coverage
        // eventually lapses; the next touch of any location pays the
        // first-update protocol again. (Parity-side `original` maps keep
        // their content, so re-sent originals are ignored by first-wins
        // insertion — correctness is unaffected.)
        if self.old_sent_bytes > self.speculation_budget {
            self.old_sent.clear();
            self.old_sent_bytes = 0;
        }
        // First updates ship the original data ahead of the new data (the
        // paper's "read and forwarded separately" penalty): double payload,
        // double parity-log appends, double acks.
        let need = if old_chunk.is_some() { 2 * m } else { m };
        let tag = self.acks.register(req.op_id, need as u32);
        if let Some(old) = old_chunk {
            // Keep a copy for the (now rare) NeedOld fallback path.
            self.pend_old.insert(
                tag,
                PendingOld {
                    old: old.clone(),
                    off: req.off,
                    block: req.block,
                    remaining: m as u32,
                },
            );
            for j in 0..m {
                let peer = core.owner_of(gstripe, core.cfg.stripe.k + j);
                let data = old.clone();
                let (block, off, len) = (req.block, req.off, old.len);
                // Submitted before the new-data forward: per-pair FIFO
                // guarantees the parity sees the original first.
                sim.schedule_at(t_write, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    let msg = SchemeMsg::DataForward {
                        from: osd,
                        block,
                        off,
                        data,
                        tag: tag | OLD_BIT,
                        seq: 0,
                    };
                    w.core.send_to_scheme(sim, osd, peer, len, msg);
                });
            }
        }
        // Forward the new data to every parity owner.
        for j in 0..m {
            let peer = core.owner_of(gstripe, core.cfg.stripe.k + j);
            let data = req.data.clone();
            let (block, off, len) = (req.block, req.off, req.data.len);
            sim.schedule_at(t_write, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                let msg = SchemeMsg::DataForward {
                    from: osd,
                    block,
                    off,
                    data,
                    tag,
                    seq: 0,
                };
                w.core.send_to_scheme(sim, osd, peer, len, msg);
            });
        }
    }

    fn on_message(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        msg: SchemeMsg,
    ) {
        match msg {
            SchemeMsg::DataForward {
                from,
                block,
                off,
                data,
                tag,
                ..
            } if tag & OLD_BIT != 0 => {
                // Original data arriving on a NeedOld round trip.
                let real_tag = tag & !OLD_BIT;
                let len = data.len;
                let (t_append, _) = self.log.append(core, osd, sim.now(), len + ENTRY_HEADER);
                self.log_bytes += len + ENTRY_HEADER;
                let state = self.blocks.entry(block).or_default();
                state.original.insert_absent(off, data);
                sim.schedule_at(t_append, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    w.core.send_to_scheme(
                        sim,
                        osd,
                        from,
                        ACK_BYTES,
                        SchemeMsg::Ack { tag: real_tag },
                    );
                });
            }
            SchemeMsg::DataForward {
                from,
                block,
                off,
                data,
                tag,
                ..
            } => {
                // Speculative new-data arrival: append, then either ack or
                // ask for the original first.
                let len = data.len;
                let (t_append, _) = self.log.append(core, osd, sim.now(), len + ENTRY_HEADER);
                self.log_bytes += len + ENTRY_HEADER;
                let state = self.blocks.entry(block).or_default();
                let have_old = state.original.overlay(off, len, None);
                state.latest.insert(off, data);
                if have_old {
                    sim.schedule_at(t_append, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                        w.core
                            .send_to_scheme(sim, osd, from, ACK_BYTES, SchemeMsg::Ack { tag });
                    });
                } else {
                    // The 2× network penalty: request the original.
                    sim.schedule_at(t_append, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                        let ctrl = SchemeMsg::Control {
                            from: osd,
                            tag,
                            a: CTRL_NEED_OLD,
                            b: 0,
                        };
                        w.core.send_to_scheme(sim, osd, from, ACK_BYTES, ctrl);
                    });
                }
                if self.log_bytes > self.threshold {
                    self.start_recycle(core, sim, osd);
                }
            }
            SchemeMsg::Control { from, tag, a, .. } => {
                debug_assert_eq!(a, CTRL_NEED_OLD);
                // Data side: ship the cached original to the requester.
                let Some(po) = self.pend_old.get_mut(&tag) else {
                    return;
                };
                po.remaining -= 1;
                let done = po.remaining == 0;
                let reply = SchemeMsg::DataForward {
                    from: osd,
                    block: po.block,
                    off: po.off,
                    data: po.old.clone(),
                    tag: tag | OLD_BIT,
                    seq: 0,
                };
                let len = po.old.len;
                if done {
                    self.pend_old.remove(&tag);
                }
                core.send_to_scheme(sim, osd, from, len, reply);
            }
            SchemeMsg::Ack { tag } => {
                if let Some(op_id) = self.acks.ack(tag) {
                    core.extent_done(sim, osd, op_id);
                }
            }
            // INVARIANT: the arms above cover every message kind a PARIX peer
            // sends; anything else is a routing bug.
            _ => unreachable!("PARIX exchanges DataForward/Control/Ack"),
        }
    }

    fn on_timer(
        &mut self,
        _core: &mut ClusterCore,
        _sim: &mut Sim<Cluster>,
        _osd: usize,
        tag: u64,
    ) {
        debug_assert_eq!(tag, TAG_RECYCLE_DONE);
        self.inflight -= 1;
    }

    fn flush(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        let has_latest = self.blocks.values().any(|b| !b.latest.is_empty());
        if has_latest {
            self.start_recycle(core, sim, osd);
        }
    }

    fn backlog(&self) -> u64 {
        let unmerged: u64 = self.blocks.values().map(|b| b.latest.len() as u64).sum();
        unmerged + self.inflight + self.acks.outstanding() as u64
    }

    fn memory_usage(&self) -> u64 {
        let maps: u64 = self
            .blocks
            .values()
            .map(|b| b.original.covered_bytes() + b.latest.covered_bytes())
            .sum();
        maps + self.pend_old.len() as u64 * 64
    }
}
