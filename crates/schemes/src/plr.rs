//! PLR — Parity Logging with Reserved Space (Chan et al., FAST '14;
//! paper §2.2).
//!
//! Each parity block gets a dedicated log region *adjacent* to it. Recycle
//! is cheap (the deltas sit next to the block they merge into), but the
//! appends themselves become scattered small writes — with many parity
//! blocks per device, consecutive appends land in different reserved
//! regions, i.e. random I/O with full write-penalty accounting, and the
//! paper's observed disk-space fragmentation. When a block's reserved
//! region fills, recycling happens *inline*, stalling the update that
//! triggered it.

use crate::{AckTable, LogMirrors};
use std::collections::BTreeMap;
use tsue_device::IoKind;
use tsue_ecfs::osd::STREAM_SCHEME_BASE;
use tsue_ecfs::scheme::{rmw_data_delta, Chunk, DeltaKind, SchemeMsg, UpdateReq};
use tsue_ecfs::{BlockId, Cluster, ClusterCore, UpdateScheme, ACK_BYTES};
use tsue_sim::{Sim, Time};

/// Per-entry header persisted with each logged delta.
const ENTRY_HEADER: u64 = 32;
/// Timer tag: an inline recycle application finished.
const TAG_RECYCLE_DONE: u64 = 1;
/// Reserved region size as a fraction of the block size (1/4, following
/// the FAST '14 default of reserving modest space per parity block).
const RESERVE_DIV: u64 = 4;

/// The reserved log region of one parity block.
struct Reserved {
    dev_off: u64,
    cursor: u64,
    entries: Vec<(u64, Chunk)>,
}

/// The PLR scheme state (per OSD).
pub struct Plr {
    acks: AckTable,
    reserved: BTreeMap<BlockId, Reserved>,
    inflight: u64,
    /// Ring-successor mirror regions for `cfg.log_replicas > 1`.
    mirrors: LogMirrors,
}

impl Default for Plr {
    fn default() -> Self {
        Self::new()
    }
}

impl Plr {
    /// Creates a PLR instance.
    pub fn new() -> Self {
        Plr {
            acks: AckTable::default(),
            reserved: BTreeMap::new(),
            inflight: 0,
            mirrors: LogMirrors::new(44),
        }
    }

    /// Merges a full reserved region into its parity block: one (cheap,
    /// adjacent) sequential read of the region, then a parity RMW covering
    /// the union of logged ranges.
    fn recycle_region(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        pblock: BlockId,
        start: Time,
    ) -> Time {
        // INVARIANT: recycle_region is only called for blocks whose
        // reserved region was created on their first append.
        let r = self.reserved.get_mut(&pblock).expect("region exists");
        let span = r.cursor;
        // Adjacent sequential read of the whole region.
        let t_read = core.osds[osd].device.submit(
            start,
            IoKind::Read,
            r.dev_off,
            span.max(ENTRY_HEADER),
            STREAM_SCHEME_BASE + 3,
        );
        // Apply entries in order (content) while charging one RMW per
        // entry range on the parity block.
        let entries = std::mem::take(&mut r.entries);
        r.cursor = 0;
        let mut t = t_read;
        let now = sim.now();
        for (off, data) in entries {
            let compute = core.xor_time(data.len);
            t = core.osds[osd].xor_block_range(
                t,
                pblock,
                off,
                data.len,
                data.bytes.as_deref(),
                compute,
            );
            self.inflight += 1;
            core.scheme_timer(sim, osd, t.saturating_sub(now), TAG_RECYCLE_DONE);
        }
        t
    }
}

impl UpdateScheme for Plr {
    fn name(&self) -> &'static str {
        "PLR"
    }

    fn on_update(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    ) {
        // In-place data RMW, identical to PL.
        let (t_rmw, delta) = rmw_data_delta(core, sim.now(), osd, req.block, req.off, &req.data);
        let m = core.cfg.stripe.m;
        let gstripe = core.global_stripe(req.block.file, req.block.stripe);
        let tag = self.acks.register(req.op_id, m as u32);
        let t_send = t_rmw + core.gf_time(req.data.len * m as u64);
        for j in 0..m {
            let peer = core.owner_of(gstripe, core.cfg.stripe.k + j);
            let pd = delta.gf_scaled(core.rs.coefficient(j, req.block.role));
            let (block, off, len) = (req.block, req.off, req.data.len);
            sim.schedule_at(t_send, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                let msg = SchemeMsg::DeltaForward {
                    from: osd,
                    block,
                    off,
                    data: pd,
                    kind: DeltaKind::ParityDelta,
                    parity_index: j,
                    tag,
                };
                w.core.send_to_scheme(sim, osd, peer, len, msg);
            });
        }
    }

    fn on_message(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        msg: SchemeMsg,
    ) {
        match msg {
            SchemeMsg::DeltaForward {
                from,
                block,
                off,
                data,
                parity_index,
                tag,
                ..
            } => {
                let pblock = BlockId {
                    role: core.cfg.stripe.k + parity_index,
                    ..block
                };
                let reserve_size = core.cfg.stripe.block_size / RESERVE_DIV;
                if let std::collections::btree_map::Entry::Vacant(e) = self.reserved.entry(pblock) {
                    // Lease + format the reserved region; formatting marks
                    // it written so appends count as the write penalty the
                    // paper attributes to PLR.
                    let dev_off = core.osds[osd].alloc_region(reserve_size);
                    core.osds[osd].device.prefill(dev_off, reserve_size);
                    e.insert(Reserved {
                        dev_off,
                        cursor: 0,
                        entries: Vec::new(),
                    });
                }
                let len = data.len;
                let need = len + ENTRY_HEADER;
                let now = sim.now();

                // Inline recycle when the region cannot take the entry.
                let full = {
                    let r = &self.reserved[&pblock];
                    r.cursor + need > reserve_size
                };
                let t_start = if full {
                    self.recycle_region(core, sim, osd, pblock, now)
                } else {
                    now
                };

                // The append itself: a scattered small write into this
                // block's region — random, and penalized as an overwrite.
                // INVARIANT: the vacant-entry branch above created the region
                // for `pblock` if it was missing.
                let r = self.reserved.get_mut(&pblock).expect("region exists");
                let t_append = core.osds[osd].device.submit(
                    t_start,
                    IoKind::Write,
                    r.dev_off + r.cursor,
                    need,
                    STREAM_SCHEME_BASE + 2,
                );
                r.cursor += need;
                r.entries.push((off, data));
                // The ack waits for every mirror copy (no-op at the
                // default `log_replicas = 1`).
                let t_ack = self.mirrors.replicate(core, osd, now, t_append, need);
                sim.schedule_at(t_ack, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    w.core
                        .send_to_scheme(sim, osd, from, ACK_BYTES, SchemeMsg::Ack { tag });
                });
            }
            SchemeMsg::Ack { tag } => {
                if let Some(op_id) = self.acks.ack(tag) {
                    core.extent_done(sim, osd, op_id);
                }
            }
            // INVARIANT: the arms above cover every message kind a PLR peer
            // sends; anything else is a routing bug.
            _ => unreachable!("PLR exchanges only DeltaForward/Ack"),
        }
    }

    fn on_timer(
        &mut self,
        _core: &mut ClusterCore,
        _sim: &mut Sim<Cluster>,
        _osd: usize,
        tag: u64,
    ) {
        debug_assert_eq!(tag, TAG_RECYCLE_DONE);
        self.inflight -= 1;
    }

    fn flush(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        let now = sim.now();
        let blocks: Vec<BlockId> = self
            .reserved
            .iter()
            .filter(|(_, r)| !r.entries.is_empty())
            .map(|(&b, _)| b)
            .collect();
        for b in blocks {
            self.recycle_region(core, sim, osd, b, now);
        }
    }

    fn backlog(&self) -> u64 {
        self.reserved
            .values()
            .map(|r| r.entries.len() as u64)
            .sum::<u64>()
            + self.inflight
            + self.acks.outstanding() as u64
    }

    fn memory_usage(&self) -> u64 {
        // Reserved-space entries index; content lives on disk.
        self.reserved
            .values()
            .flat_map(|r| r.entries.iter())
            .map(|(_, c)| ENTRY_HEADER + c.bytes.as_ref().map_or(48, |b| b.len() as u64))
            .sum()
    }
}
