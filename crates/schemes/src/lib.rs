//! Baseline erasure-code update schemes from the paper's §2.2:
//!
//! | Scheme | Data block | Parity path | Recycle |
//! |--------|-----------|-------------|---------|
//! | [`Fo`]    | in-place RMW | in-place RMW per parity | none (fully synchronous) |
//! | [`Fl`]    | logged       | data logged at parity   | threshold, mutually exclusive |
//! | [`Pl`]    | in-place RMW | parity delta appended to parity log | threshold (lazy) |
//! | [`Plr`]   | in-place RMW | delta into *reserved space* next to the parity block (random writes) | inline when the reserved region fills |
//! | [`Parix`] | in-place write (speculative) | new data appended to parity log; old data fetched on first touch (2× RTT) | threshold |
//! | [`Cord`]  | in-place RMW | data delta to a *collector* that folds Eq. (5) before touching parity | when its fixed buffer fills (serialization bottleneck) |
//!
//! All schemes implement [`tsue_ecfs::UpdateScheme`] against identical
//! device/network models, so the differences the paper's Fig. 5/7/8 and
//! Table 1 report come purely from the update path structure.

pub mod cord;
pub mod fl;
pub mod fo;
pub mod parix;
pub mod pl;
pub mod plr;

pub use cord::Cord;
pub use fl::Fl;
pub use fo::Fo;
pub use parix::Parix;
pub use pl::Pl;
pub use plr::Plr;
pub use tsue_ecfs::logregion::LogRegion;
pub use tsue_ecfs::scheme::AckTable;

use std::collections::HashMap;
use tsue_device::StreamId;
use tsue_ecfs::registry::reject_knobs;
use tsue_ecfs::{ClusterCore, MakeScheme, SchemeError, SchemeParams, SchemeRegistry};
use tsue_sim::Time;

/// Per-peer mirror regions for parity-log replication
/// ([`tsue_ecfs::ClusterConfig::log_replicas`]).
///
/// A parity-log append is the *only* durable copy of its delta until
/// recycle; schemes that buffer deltas in a log (PL, PLR) therefore lose
/// acked updates if the logging OSD dies first. With `log_replicas > 1`
/// each append is mirrored to the next `log_replicas - 1` ring
/// successors — a wire transfer plus a sequential append into a lazily
/// allocated mirror region on the peer's device — and the ack waits for
/// the slowest copy. Timing-only: payloads are not duplicated (the
/// content plane keeps one logical copy); the mirror exists to charge
/// the durability cost the paper's single-copy baselines omit. With the
/// default `log_replicas = 1` this is a no-op.
pub struct LogMirrors {
    regions: HashMap<usize, LogRegion>,
    stream_base: StreamId,
}

impl LogMirrors {
    /// Creates an empty mirror set appending on `stream_base` (see
    /// [`LogRegion::new`]).
    pub fn new(stream_base: StreamId) -> Self {
        LogMirrors {
            regions: HashMap::new(),
            stream_base,
        }
    }

    /// Charges the transfer and mirror append of one `len`-byte log
    /// record to each ring successor; returns the instant the slowest
    /// copy persists (`t_local` when replication is off) — the ack gate.
    pub fn replicate(
        &mut self,
        core: &mut ClusterCore,
        osd: usize,
        now: Time,
        t_local: Time,
        len: u64,
    ) -> Time {
        let extra = core
            .cfg
            .log_replicas
            .saturating_sub(1)
            .min(core.cfg.osds.saturating_sub(1));
        let mut t_done = t_local;
        for r in 1..=extra {
            let peer = (osd + r) % core.cfg.osds;
            let t_arrive = core
                .net
                .transfer(now, core.osds[osd].node, core.osds[peer].node, len);
            let region = self
                .regions
                .entry(peer)
                .or_insert_with(|| LogRegion::new(512 << 20, self.stream_base));
            let (t, _) = region.append(core, peer, t_arrive, len);
            t_done = t_done.max(t);
        }
        t_done
    }
}

// Scheme state must be shippable across bench/test worker threads
// ([`tsue_ecfs::UpdateScheme`] requires `Send`); `Sync` is asserted too
// so none of them grows `Rc`/`RefCell` interior state that would block
// sharing a finished cluster between threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Fo>();
    assert_send_sync::<Fl>();
    assert_send_sync::<Pl>();
    assert_send_sync::<Plr>();
    assert_send_sync::<Parix>();
    assert_send_sync::<Cord>();
};

/// Scheme selector used by the experiment harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Full overwrite.
    Fo,
    /// Full logging.
    Fl,
    /// Parity logging.
    Pl,
    /// Parity logging with reserved space.
    Plr,
    /// Speculative partial writes.
    Parix,
    /// Collector-based delta combining.
    Cord,
}

impl SchemeKind {
    /// All baselines the paper evaluates on SSDs (Fig. 5), in paper order.
    pub fn ssd_baselines() -> [SchemeKind; 5] {
        [
            SchemeKind::Fo,
            SchemeKind::Pl,
            SchemeKind::Plr,
            SchemeKind::Parix,
            SchemeKind::Cord,
        ]
    }

    /// Display name as used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Fo => "FO",
            SchemeKind::Fl => "FL",
            SchemeKind::Pl => "PL",
            SchemeKind::Plr => "PLR",
            SchemeKind::Parix => "PARIX",
            SchemeKind::Cord => "CoRD",
        }
    }

    /// Instantiates the scheme for one OSD.
    pub fn build(self) -> Box<dyn tsue_ecfs::UpdateScheme> {
        match self {
            SchemeKind::Fo => Box::new(Fo::new()),
            SchemeKind::Fl => Box::new(Fl::new()),
            SchemeKind::Pl => Box::new(Pl::new()),
            SchemeKind::Plr => Box::new(Plr::new()),
            SchemeKind::Parix => Box::new(Parix::new()),
            SchemeKind::Cord => Box::new(Cord::new()),
        }
    }
}

/// Registers every baseline with a [`SchemeRegistry`] under the names
/// `fo`, `fl`, `pl`, `plr`, `parix`, `cord`. The baselines take no
/// scenario knobs; passing any is rejected.
pub fn register_baselines(reg: &mut SchemeRegistry) {
    fn bare(params: &SchemeParams, kind: SchemeKind) -> Result<MakeScheme, SchemeError> {
        reject_knobs(&params.knobs)?;
        Ok(Box::new(move |_| kind.build()))
    }
    reg.register(
        "fo",
        "FO",
        "full overwrite: synchronous in-place RMW of data and every parity",
        |p| bare(p, SchemeKind::Fo),
    );
    reg.register(
        "fl",
        "FL",
        "full logging: data and parity updates appended to logs, threshold recycle",
        |p| bare(p, SchemeKind::Fl),
    );
    reg.register(
        "pl",
        "PL",
        "parity logging: in-place data, parity deltas appended to a parity log",
        |p| bare(p, SchemeKind::Pl),
    );
    reg.register(
        "plr",
        "PLR",
        "parity logging with reserved space next to each parity block",
        |p| bare(p, SchemeKind::Plr),
    );
    reg.register(
        "parix",
        "PARIX",
        "speculative partial writes: old data fetched on first touch",
        |p| bare(p, SchemeKind::Parix),
    );
    reg.register(
        "cord",
        "CoRD",
        "collector-based delta combining before parity writes",
        |p| bare(p, SchemeKind::Cord),
    );
}

/// Which parity index (0..m) of `gstripe` lives on `osd`, if any.
pub fn parity_index_of(core: &ClusterCore, osd: usize, gstripe: u64) -> Option<usize> {
    let k = core.cfg.stripe.k;
    (0..core.cfg.stripe.m).find(|&j| core.owner_of(gstripe, k + j) == osd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_table_completes_after_need_acks() {
        let mut t = AckTable::default();
        let tag = t.register(77, 3);
        assert_eq!(t.ack(tag), None);
        assert_eq!(t.ack(tag), None);
        assert_eq!(t.ack(tag), Some(77));
        assert_eq!(t.ack(tag), None, "completed exchanges disappear");
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn ack_table_tags_are_unique() {
        let mut t = AckTable::default();
        let a = t.register(1, 1);
        let b = t.register(2, 1);
        assert_ne!(a, b);
        assert_eq!(t.ack(b), Some(2));
        assert_eq!(t.ack(a), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one ack")]
    fn zero_need_panics() {
        AckTable::default().register(0, 0);
    }

    #[test]
    fn scheme_kind_names() {
        assert_eq!(SchemeKind::Fo.name(), "FO");
        assert_eq!(SchemeKind::Cord.name(), "CoRD");
        assert_eq!(SchemeKind::ssd_baselines().len(), 5);
    }
}
