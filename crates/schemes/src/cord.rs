//! CoRD — Combining RAID and Delta (Zhou et al., SC '24; paper §2.2).
//!
//! CoRD's insight is Eq. (5): data deltas from *different data blocks* of
//! the same stripe at the same offset can be folded into a single parity
//! delta per parity block before anything crosses the network to the
//! parity side. A per-stripe *collector* (co-located with the first parity
//! block) XOR-folds raw deltas per data block into interval maps and
//! combines them per parity at drain time
//! ([`tsue_ec::RsCode::combined_parity_delta_into`]), slashing update
//! traffic — and, since scaling is linear, buffering each delta **once**
//! instead of `m` scaled copies.
//!
//! The paper's critique, faithfully modeled: the collector's buffer log is
//! a fixed-size, single structure with no read/write concurrency — when it
//! fills, incoming deltas queue behind the drain (the "critical
//! bottleneck"), and the data-side still pays the full read-modify-write
//! to produce its delta.

use crate::{AckTable, LogRegion};
use std::collections::{BTreeMap, VecDeque};
use tsue_ecfs::rangemap::RangeMap;
use tsue_ecfs::scheme::{rmw_data_delta, Chunk, DeltaKind, SchemeMsg, UpdateReq};
use tsue_ecfs::{BlockId, Cluster, ClusterCore, UpdateScheme, ACK_BYTES};
use tsue_sim::Sim;

/// Control tag: one parity-application of a drained entry completed.
const CTRL_APPLIED: u64 = 3;
/// Per-entry header bytes in the collector's buffer log.
const ENTRY_HEADER: u64 = 32;

/// Same-span delta contributions grouped for Eq. 5 combining:
/// `(offset, length)` → `[(role, delta bytes)]`.
type SpanGroups<'a> = std::collections::BTreeMap<(u64, u64), Vec<(usize, &'a [u8])>>;

/// A delta waiting because the collector is draining.
struct Queued {
    from: usize,
    block: BlockId,
    off: u64,
    data: Chunk,
    tag: u64,
}

/// The CoRD scheme state (per OSD).
pub struct Cord {
    acks: AckTable,
    /// Collector state: per global stripe, one XOR-folding interval map
    /// per *data block role* holding the raw (unscaled) deltas; parity
    /// scaling happens once, at drain time (Eq. 5).
    agg: BTreeMap<u64, std::collections::BTreeMap<usize, RangeMap>>,
    /// Buffer occupancy in (pre-aggregation) bytes.
    buffered: u64,
    /// The fixed buffer capacity — deliberately small (the bottleneck).
    pub capacity: u64,
    /// Collector persistence log.
    buf_log: LogRegion,
    /// True while a drain is in progress (appends must wait).
    draining: bool,
    /// Deltas parked behind the drain.
    queue: VecDeque<Queued>,
    /// Parity applications still in flight during a drain.
    drain_inflight: u64,
}

impl Default for Cord {
    fn default() -> Self {
        Self::new()
    }
}

impl Cord {
    /// Creates a CoRD instance with the fixed 4 MiB collector buffer.
    pub fn new() -> Self {
        Cord {
            acks: AckTable::default(),
            agg: BTreeMap::new(),
            buffered: 0,
            capacity: 4 << 20,
            buf_log: LogRegion::new(8 << 20, 6),
            draining: false,
            queue: VecDeque::new(),
            drain_inflight: 0,
        }
    }

    /// Folds one data delta into the per-parity aggregation maps and acks
    /// the data OSD once the buffer append persists.
    fn buffer_delta(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        q: Queued,
    ) {
        let m = core.cfg.stripe.m;
        let gstripe = core.global_stripe(q.block.file, q.block.stripe);
        // Fold the raw delta once; the payload moves in by refcount.
        let len = q.data.len;
        self.agg
            .entry(gstripe)
            .or_default()
            .entry(q.block.role)
            .or_default()
            .insert_xor(q.off, q.data);
        self.buffered += len + ENTRY_HEADER;
        // Persist the raw delta in the buffer log, charge the Eq. (5)
        // folding compute, then ack.
        let compute = core.gf_time(len * m as u64);
        let (t_persist, _) =
            self.buf_log
                .append(core, osd, sim.now() + compute, len + ENTRY_HEADER);
        let (from, tag) = (q.from, q.tag);
        sim.schedule_at(t_persist, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            w.core
                .send_to_scheme(sim, osd, from, ACK_BYTES, SchemeMsg::Ack { tag });
        });
        if self.buffered >= self.capacity {
            self.start_drain(core, sim, osd);
        }
    }

    /// Combines the buffered per-role deltas into one parity delta stream
    /// per parity (Eq. 5, one fused multiply-accumulate pass per
    /// contributing block), ships them to the parity owners, and blocks
    /// further appends until all applications ack back.
    fn start_drain(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        if self.draining {
            return;
        }
        self.draining = true;
        let k = core.cfg.stripe.k;
        let m = core.cfg.stripe.m;
        // Drain in stripe order: the aggregation map is ordered by global
        // stripe, so the send sequence (and thus NIC-lane timing) is the
        // same on every run.
        for (gstripe, roles) in std::mem::take(&mut self.agg) {
            // Reconstruct a BlockId for the parity block: stripe
            // coordinates are derivable from any block of the stripe;
            // file/stripe-local index come with the entry.
            let (file, stripe) = core.mds.locate_stripe(gstripe);
            let carrier = BlockId {
                file,
                stripe,
                role: 0,
            };
            for j in 0..m {
                let peer = core.owner_of(gstripe, k + j);
                let mut combined = RangeMap::new();
                let mut spans: SpanGroups<'_> = SpanGroups::new();
                for (role, map) in &roles {
                    for (off, c) in map.iter() {
                        match &c.bytes {
                            Some(b) => spans
                                .entry((off, c.len))
                                .or_default()
                                .push((*role, b.as_slice())),
                            None => combined.insert_xor(off, Chunk::ghost(c.len)),
                        }
                    }
                }
                for ((off, len), contribs) in spans {
                    let mut acc = tsue_buf::BytesMut::take(len as usize);
                    core.rs
                        .fill_combined_parity_delta(j, &contribs, acc.as_mut());
                    combined.insert_xor(off, Chunk::real(acc.freeze()));
                }
                for (off, chunk) in combined.drain() {
                    self.drain_inflight += 1;
                    let len = chunk.len;
                    let msg = SchemeMsg::DeltaForward {
                        from: osd,
                        block: carrier,
                        off,
                        data: chunk,
                        kind: DeltaKind::ParityDelta,
                        parity_index: j,
                        tag: 0,
                    };
                    core.send_to_scheme(sim, osd, peer, len, msg);
                }
            }
        }
        self.buffered = 0;
        if self.drain_inflight == 0 {
            self.finish_drain(core, sim, osd);
        }
    }

    /// Drain complete: unblock the queue.
    fn finish_drain(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        self.draining = false;
        while let Some(q) = self.queue.pop_front() {
            self.buffer_delta(core, sim, osd, q);
            if self.draining {
                break; // buffering refilled the buffer and re-triggered
            }
        }
    }
}

impl UpdateScheme for Cord {
    fn name(&self) -> &'static str {
        "CoRD"
    }

    fn on_update(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    ) {
        // Data-side read-modify-write (CoRD does not remove it).
        let (t_rmw, delta) = rmw_data_delta(core, sim.now(), osd, req.block, req.off, &req.data);
        let gstripe = core.global_stripe(req.block.file, req.block.stripe);
        // One message to the collector instead of M to the parity owners.
        let collector = core.owner_of(gstripe, core.cfg.stripe.k);
        let tag = self.acks.register(req.op_id, 1);
        let (block, off, len) = (req.block, req.off, req.data.len);
        sim.schedule_at(t_rmw, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            let msg = SchemeMsg::DeltaForward {
                from: osd,
                block,
                off,
                data: delta,
                kind: DeltaKind::DataDelta,
                parity_index: 0,
                tag,
            };
            w.core.send_to_scheme(sim, osd, collector, len, msg);
        });
    }

    fn on_message(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        msg: SchemeMsg,
    ) {
        match msg {
            SchemeMsg::DeltaForward {
                from,
                block,
                off,
                data,
                kind: DeltaKind::DataDelta,
                tag,
                ..
            } => {
                // Collector side.
                let q = Queued {
                    from,
                    block,
                    off,
                    data,
                    tag,
                };
                if self.draining {
                    self.queue.push_back(q); // the bottleneck
                } else {
                    self.buffer_delta(core, sim, osd, q);
                }
            }
            SchemeMsg::DeltaForward {
                from,
                block,
                off,
                data,
                kind: DeltaKind::ParityDelta,
                parity_index,
                ..
            } => {
                // Parity owner applies the aggregated delta directly.
                let pblock = BlockId {
                    role: core.cfg.stripe.k + parity_index,
                    ..block
                };
                let compute = core.xor_time(data.len);
                let t = core.osds[osd].xor_block_range(
                    sim.now(),
                    pblock,
                    off,
                    data.len,
                    data.bytes.as_deref(),
                    compute,
                );
                sim.schedule_at(t, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    let ctrl = SchemeMsg::Control {
                        from: osd,
                        tag: CTRL_APPLIED,
                        a: 0,
                        b: 0,
                    };
                    w.core.send_to_scheme(sim, osd, from, ACK_BYTES, ctrl);
                });
            }
            SchemeMsg::Control { tag, .. } => {
                debug_assert_eq!(tag, CTRL_APPLIED);
                self.drain_inflight -= 1;
                if self.drain_inflight == 0 {
                    self.finish_drain(core, sim, osd);
                }
            }
            SchemeMsg::Ack { tag } => {
                if let Some(op_id) = self.acks.ack(tag) {
                    core.extent_done(sim, osd, op_id);
                }
            }
            // INVARIANT: the arms above cover every message kind a CoRD peer
            // sends; anything else is a routing bug.
            _ => unreachable!("CoRD exchanges DeltaForward/Control/Ack"),
        }
    }

    fn flush(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        let has_agg = self
            .agg
            .values()
            .any(|roles| roles.values().any(|m| !m.is_empty()));
        if (has_agg || !self.queue.is_empty()) && !self.draining {
            self.start_drain(core, sim, osd);
        }
    }

    fn backlog(&self) -> u64 {
        let agg_entries: u64 = self
            .agg
            .values()
            .flat_map(|roles| roles.values())
            .map(|m| m.len() as u64)
            .sum();
        agg_entries + self.queue.len() as u64 + self.drain_inflight + self.acks.outstanding() as u64
    }

    fn memory_usage(&self) -> u64 {
        // Raw deltas are buffered once per role (not m scaled copies).
        let agg: u64 = self
            .agg
            .values()
            .flat_map(|roles| roles.values())
            .map(|m| m.covered_bytes())
            .sum();
        agg + self.queue.iter().map(|q| q.data.len).sum::<u64>()
    }
}
