//! Behavioral tests: each baseline must exhibit the specific pathology or
//! strength the paper attributes to it, not just converge.

use tsue_ecfs::{run_workload, Cluster, ClusterBuilder, ClusterConfig};
use tsue_schemes::{Cord, Parix, Pl, SchemeKind};
use tsue_sim::{Sim, MILLISECOND, SECOND};
use tsue_trace::WorkloadProfile;

fn cluster(seed: u64, clients: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::ssd_testbed(4, 2, clients);
    cfg.osds = 8;
    cfg.stripe = tsue_ec::StripeConfig::new(4, 2, 256 << 10);
    cfg.file_size_per_client = 4 << 20;
    cfg.seed = seed;
    cfg
}

fn hot_profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "hot".into(),
        update_fraction: 0.9,
        size_dist: vec![(4096, 0.8), (16384, 0.2)],
        hot_fraction: 0.05,
        hot_access_prob: 0.9,
        skew_depth: 3,
        repeat_prob: 0.5,
        seq_run_prob: 0.05,
        align: 4096,
    }
}

fn cold_profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "cold".into(),
        update_fraction: 0.9,
        size_dist: vec![(4096, 0.8), (16384, 0.2)],
        hot_fraction: 0.9,
        hot_access_prob: 0.1,
        skew_depth: 0,
        repeat_prob: 0.0,
        seq_run_prob: 0.0,
        align: 4096,
    }
}

fn run(cfg: ClusterConfig, profile: &WorkloadProfile, scheme: SchemeKind, ms: u64) -> Cluster {
    let mut world = ClusterBuilder::from_config(cfg)
        .workload(profile)
        .scheme_fn(move |_| scheme.build())
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, ms * MILLISECOND);
    world
}

/// PL defers recycling: during a run its parity logs accumulate a backlog
/// proportional to the updates it absorbed, while FO (fully synchronous)
/// holds none.
#[test]
fn pl_accumulates_backlog_fo_does_not() {
    let pl = run(cluster(1, 8), &hot_profile(), SchemeKind::Pl, 500);
    let fo = run(cluster(1, 8), &hot_profile(), SchemeKind::Fo, 500);
    assert_eq!(fo.total_scheme_backlog(), 0, "FO is synchronous");
    assert!(
        pl.total_scheme_backlog() > 100,
        "PL must be sitting on unrecycled parity deltas, got {}",
        pl.total_scheme_backlog()
    );
}

/// PL's recycle threshold bounds its backlog: a tiny threshold forces
/// continual recycling.
#[test]
fn pl_threshold_bounds_backlog() {
    let mut world = ClusterBuilder::from_config(cluster(2, 8))
        .workload(&hot_profile())
        .scheme_fn(|_| {
            let mut pl = Pl::new();
            pl.threshold = 256 << 10; // recycle every 256 KiB
            Box::new(pl)
        })
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, SECOND / 2);
    let lazy = run(cluster(2, 8), &hot_profile(), SchemeKind::Pl, 500);
    assert!(
        world.total_scheme_backlog() < lazy.total_scheme_backlog() / 2,
        "tight threshold {} should hold far less than lazy {}",
        world.total_scheme_backlog(),
        lazy.total_scheme_backlog()
    );
}

/// PLR turns parity-delta appends into write-penalty (overwrite) traffic —
/// the highest overwrite count of all schemes on the same workload.
#[test]
fn plr_pays_the_write_penalty() {
    let plr = run(cluster(3, 8), &hot_profile(), SchemeKind::Plr, 500);
    let pl = run(cluster(3, 8), &hot_profile(), SchemeKind::Pl, 500);
    let plr_ow =
        plr.device_stats().overwrite_ops as f64 / plr.core.metrics.updates_completed.max(1) as f64;
    let pl_ow =
        pl.device_stats().overwrite_ops as f64 / pl.core.metrics.updates_completed.max(1) as f64;
    assert!(
        plr_ow > pl_ow * 1.5,
        "PLR per-update overwrites ({plr_ow:.2}) must far exceed PL's ({pl_ow:.2})"
    );
}

/// PARIX thrives on temporal locality: cold (no-repeat) workloads pay the
/// first-touch protocol — more network traffic per completed update and
/// lower throughput than hot workloads.
#[test]
fn parix_depends_on_temporal_locality() {
    let hot = run(cluster(4, 8), &hot_profile(), SchemeKind::Parix, 500);
    let cold = run(cluster(4, 8), &cold_profile(), SchemeKind::Parix, 500);
    let hot_net_per_op =
        hot.core.net.total_payload() as f64 / hot.core.metrics.updates_completed.max(1) as f64;
    let cold_net_per_op =
        cold.core.net.total_payload() as f64 / cold.core.metrics.updates_completed.max(1) as f64;
    assert!(
        cold_net_per_op > hot_net_per_op * 1.2,
        "cold per-op traffic ({cold_net_per_op:.0} B) should exceed hot ({hot_net_per_op:.0} B)"
    );
}

/// PARIX's speculation budget forces the first-touch protocol to recur:
/// a tiny budget behaves like a cold workload even under heavy locality.
#[test]
fn parix_speculation_budget_recurs() {
    let mk = |budget: u64| {
        let mut world = ClusterBuilder::from_config(cluster(5, 8))
            .workload(&hot_profile())
            .scheme_fn(move |_| {
                let mut p = Parix::new();
                p.speculation_budget = budget;
                Box::new(p)
            })
            .build();
        let mut sim: Sim<Cluster> = Sim::new();
        run_workload(&mut world, &mut sim, SECOND / 2);
        world.core.net.total_payload() as f64 / world.core.metrics.updates_completed.max(1) as f64
    };
    let tiny = mk(64 << 10);
    let large = mk(1 << 30);
    assert!(
        tiny > large,
        "tiny budget per-op traffic ({tiny:.0}) must exceed large ({large:.0})"
    );
}

/// CoRD's fixed collector buffer is a throughput bottleneck: shrinking it
/// hurts; growing it helps.
#[test]
fn cord_buffer_size_gates_throughput() {
    let mk = |capacity: u64| {
        let mut world = ClusterBuilder::from_config(cluster(6, 16))
            .workload(&hot_profile())
            .scheme_fn(move |_| {
                let mut c = Cord::new();
                c.capacity = capacity;
                Box::new(c)
            })
            .build();
        let mut sim: Sim<Cluster> = Sim::new();
        run_workload(&mut world, &mut sim, SECOND / 2);
        world.core.metrics.ops_completed
    };
    let small = mk(64 << 10);
    let large = mk(16 << 20);
    assert!(
        large > small,
        "larger collector buffer ({large}) must outperform tiny one ({small})"
    );
}

/// CoRD sends one delta to the collector instead of m to the parity
/// owners: its network traffic sits well below PL's on the same workload.
#[test]
fn cord_cuts_network_traffic() {
    let cord = run(cluster(7, 8), &hot_profile(), SchemeKind::Cord, 500);
    let pl = run(cluster(7, 8), &hot_profile(), SchemeKind::Pl, 500);
    let cord_net =
        cord.core.net.total_payload() as f64 / cord.core.metrics.updates_completed.max(1) as f64;
    let pl_net =
        pl.core.net.total_payload() as f64 / pl.core.metrics.updates_completed.max(1) as f64;
    assert!(
        cord_net < pl_net * 0.8,
        "CoRD per-op traffic ({cord_net:.0} B) must undercut PL ({pl_net:.0} B)"
    );
}

/// FL acks after appends only — its update latency beats FO's RMW path —
/// but it pays with log state that reads must consult.
#[test]
fn fl_trades_latency_for_log_state() {
    let fl = run(cluster(8, 8), &hot_profile(), SchemeKind::Fl, 500);
    let fo = run(cluster(8, 8), &hot_profile(), SchemeKind::Fo, 500);
    assert!(
        fl.core.metrics.mean_latency() < fo.core.metrics.mean_latency(),
        "FL append path ({:.0} ns) must beat FO RMW path ({:.0} ns)",
        fl.core.metrics.mean_latency(),
        fo.core.metrics.mean_latency()
    );
    assert!(
        fl.core.metrics.read_cache_hits > 0,
        "FL must serve some reads from its log"
    );
    assert!(fl.total_scheme_backlog() > 0, "FL defers merge work");
}
