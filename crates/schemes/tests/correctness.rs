//! The cross-scheme correctness spine: every baseline must converge to the
//! exact same cluster state once its logs drain — data blocks matching the
//! arrival-ordered replay, parity matching a fresh encode — for any
//! workload. Schemes differ in cost, never in state.

use tsue_ecfs::{
    check_consistency, run_workload, Cluster, ClusterBuilder, ClusterConfig, DeviceKind,
};
use tsue_schemes::SchemeKind;
use tsue_sim::{Sim, SECOND};
use tsue_trace::WorkloadProfile;

fn small_config(k: usize, m: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::ssd_testbed(k, m, 4);
    cfg.osds = (k + m + 2).max(8);
    cfg.stripe = tsue_ec::StripeConfig::new(k, m, 64 << 10);
    cfg.file_size_per_client = 1 << 20;
    cfg.materialize = true;
    cfg.record_arrivals = true;
    cfg.seed = seed;
    cfg
}

fn test_profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "correctness".into(),
        update_fraction: 0.8,
        size_dist: vec![(512, 0.3), (4096, 0.4), (16384, 0.2), (40960, 0.1)],
        hot_fraction: 0.2,
        hot_access_prob: 0.7,
        skew_depth: 2,
        repeat_prob: 0.3,
        seq_run_prob: 0.15,
        align: 512,
    }
}

/// Runs `ops_per_client` ops under `kind`, drains, and checks consistency.
fn run_and_check(kind: SchemeKind, k: usize, m: usize, seed: u64, ops: u64) {
    let mut world = ClusterBuilder::from_config(small_config(k, m, seed))
        .workload(&test_profile())
        .ops_per_client(ops)
        .scheme_fn(move |_| kind.build())
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    assert!(world.core.pending.is_empty(), "ops still in flight");
    world.flush_all(&mut sim);
    assert_eq!(world.total_scheme_backlog(), 0, "{}: backlog", kind.name());
    let (blocks, stripes) =
        check_consistency(&world).unwrap_or_else(|e| panic!("{} inconsistent: {e}", kind.name()));
    assert!(blocks > 0, "no blocks were updated");
    assert!(stripes > 0);
}

#[test]
fn fo_converges_rs42() {
    run_and_check(SchemeKind::Fo, 4, 2, 11, 60);
}

#[test]
fn fl_converges_rs42() {
    run_and_check(SchemeKind::Fl, 4, 2, 12, 60);
}

#[test]
fn pl_converges_rs42() {
    run_and_check(SchemeKind::Pl, 4, 2, 13, 60);
}

#[test]
fn plr_converges_rs42() {
    run_and_check(SchemeKind::Plr, 4, 2, 14, 60);
}

#[test]
fn parix_converges_rs42() {
    run_and_check(SchemeKind::Parix, 4, 2, 15, 60);
}

#[test]
fn cord_converges_rs42() {
    run_and_check(SchemeKind::Cord, 4, 2, 16, 60);
}

#[test]
fn all_schemes_converge_rs63() {
    for (i, kind) in SchemeKind::ssd_baselines().into_iter().enumerate() {
        run_and_check(kind, 6, 3, 100 + i as u64, 40);
    }
}

#[test]
fn all_schemes_converge_rs22() {
    // Minimal stripe width exercises the m=2 corner.
    for (i, kind) in SchemeKind::ssd_baselines().into_iter().enumerate() {
        run_and_check(kind, 2, 2, 200 + i as u64, 40);
    }
}

#[test]
fn schemes_differ_in_cost_not_state() {
    // Same workload/seed under two schemes: identical end state, different
    // device-op counts.
    let mk = |kind: SchemeKind| {
        let mut world = ClusterBuilder::from_config(small_config(4, 2, 77))
            .workload(&test_profile())
            .ops_per_client(50)
            .scheme_fn(move |_| kind.build())
            .build();
        let mut sim: Sim<Cluster> = Sim::new();
        run_workload(&mut world, &mut sim, 3600 * SECOND);
        world.flush_all(&mut sim);
        world
    };
    let a = mk(SchemeKind::Fo);
    let b = mk(SchemeKind::Pl);
    // Completion-driven issue order makes op ids (and therefore payload
    // bytes) scheme-dependent, so raw contents differ between runs; the
    // invariant is that each run is self-consistent.
    check_consistency(&a).unwrap();
    check_consistency(&b).unwrap();
    let sa = a.device_stats();
    let sb = b.device_stats();
    assert_ne!(
        (sa.read_ops, sa.write_ops),
        (sb.read_ops, sb.write_ops),
        "FO and PL should differ in I/O profile"
    );
}

#[test]
fn hdd_cluster_converges() {
    let mut world = ClusterBuilder::from_config(small_config(4, 2, 55))
        .device(DeviceKind::Hdd)
        .workload(&test_profile())
        .ops_per_client(30)
        .scheme_fn(|_| SchemeKind::Pl.build())
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    world.flush_all(&mut sim);
    check_consistency(&world).unwrap();
}
