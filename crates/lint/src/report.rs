//! Violation records and report rendering (text + JSON).

/// How a violation affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint (CI gate goes red).
    Error,
    /// Reported but does not fail the lint.
    Warning,
}

impl Severity {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule id (e.g. `unsafe-safety`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Exit-status class.
    pub severity: Severity,
    /// What is wrong and what would fix it.
    pub message: String,
}

/// One spent exemption (an inline pragma or a `lint.toml` entry).
#[derive(Debug, Clone)]
pub struct Exemption {
    /// `pragma` or `allowlist`.
    pub kind: &'static str,
    /// Rule id the exemption silences.
    pub rule: String,
    /// Location: `path:line` for pragmas, `path` for allowlist entries.
    pub site: String,
    /// The written justification.
    pub reason: String,
    /// How many violations it actually silenced in this run.
    pub used: usize,
}

/// A full lint run over the workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, sorted by (path, line, rule).
    pub violations: Vec<Violation>,
    /// Exemptions spent (every one counts toward the budget).
    pub exemptions: Vec<Exemption>,
    /// Budget from `lint.toml`.
    pub max_exemptions: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the run passes: no error-severity violations and the
    /// exemption budget holds.
    pub fn clean(&self) -> bool {
        self.error_count() == 0 && self.exemptions.len() <= self.max_exemptions
    }

    /// Number of error-severity violations.
    pub fn error_count(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity == Severity::Error)
            .count()
    }

    /// Canonical ordering so output (and the JSON artifact) is stable.
    pub fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        self.exemptions
            .sort_by(|a, b| (&a.site, &a.rule).cmp(&(&b.site, &b.rule)));
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{}: {}[{}] {}\n",
                v.path,
                v.line,
                if v.severity == Severity::Error {
                    ""
                } else {
                    "warning "
                },
                v.rule,
                v.message
            ));
        }
        if !self.violations.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "tsue_lint: {} file(s) scanned, {} violation(s) ({} error), \
             {} exemption(s) spent of {} budgeted\n",
            self.files_scanned,
            self.violations.len(),
            self.error_count(),
            self.exemptions.len(),
            self.max_exemptions
        ));
        if self.exemptions.len() > self.max_exemptions {
            out.push_str(&format!(
                "tsue_lint: exemption budget exceeded ({} > {}) — trim lint.toml/pragmas before adding more\n",
                self.exemptions.len(),
                self.max_exemptions
            ));
        }
        for e in &self.exemptions {
            out.push_str(&format!(
                "  exemption [{}] {} at {} — {} (silenced {})\n",
                e.kind, e.rule, e.site, e.reason, e.used
            ));
        }
        out.push_str(if self.clean() {
            "tsue_lint: PASS\n"
        } else {
            "tsue_lint: FAIL\n"
        });
        out
    }

    /// Machine-readable report (the CI artifact).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"clean\": {},\n", self.clean()));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"error_count\": {},\n", self.error_count()));
        out.push_str(&format!(
            "  \"exemptions_used\": {},\n  \"max_exemptions\": {},\n",
            self.exemptions.len(),
            self.max_exemptions
        ));
        out.push_str("  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"severity\": {}, \"message\": {}}}",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(v.severity.name()),
                json_str(&v.message)
            ));
        }
        out.push_str("\n  ],\n  \"exemptions\": [");
        for (i, e) in self.exemptions.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"kind\": {}, \"rule\": {}, \"site\": {}, \"reason\": {}, \"used\": {}}}",
                json_str(e.kind),
                json_str(&e.rule),
                json_str(&e.site),
                json_str(&e.reason),
                e.used
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn clean_accounts_for_budget() {
        let mut r = Report {
            max_exemptions: 1,
            ..Default::default()
        };
        assert!(r.clean());
        r.exemptions.push(Exemption {
            kind: "pragma",
            rule: "x".into(),
            site: "a.rs:1".into(),
            reason: "r".into(),
            used: 1,
        });
        assert!(r.clean());
        r.exemptions.push(Exemption {
            kind: "allowlist",
            rule: "y".into(),
            site: "b.rs".into(),
            reason: "r".into(),
            used: 1,
        });
        assert!(!r.clean(), "budget overflow must fail the run");
    }
}
