//! The six invariant rules.
//!
//! Every rule is a pure function from a lexed file to violations; all
//! pragma/allowlist filtering happens afterwards in
//! [`crate::lint_source`].
//! See `ARCHITECTURE.md` § "Static analysis & invariants" for the
//! rationale behind each rule and the etiquette for silencing one.

use crate::config::Config;
use crate::lexer::{in_spans, Lexed};
use crate::report::{Severity, Violation};

/// Stable ids of every rule, in reporting order.
pub const RULES: &[&str] = &[
    "determinism-iter",
    "determinism-time",
    "unsafe-safety",
    "panic-discipline",
    "cast-discipline",
    "lock-discipline",
];

/// Per-file context handed to every rule.
pub struct Ctx<'a> {
    /// Workspace-relative path (forward slashes).
    pub path: &'a str,
    /// Lexed file.
    pub lx: &'a Lexed,
    /// `#[cfg(test)]` / `#[test]` line spans.
    pub test_spans: &'a [(u32, u32)],
    /// Whether the file belongs to a data-plane crate's `src/`.
    pub data_plane: bool,
    /// Whether the whole file is test/bench/example harness code.
    pub harness: bool,
    /// Workspace configuration.
    pub cfg: &'a Config,
}

impl Ctx<'_> {
    /// Whether data-plane-scoped rules apply at `line`.
    fn plane(&self, line: u32) -> bool {
        self.data_plane && !self.harness && !in_spans(self.test_spans, line)
    }

    fn push(&self, out: &mut Vec<Violation>, rule: &'static str, line: u32, message: String) {
        out.push(Violation {
            rule,
            path: self.path.to_string(),
            line,
            severity: Severity::Error,
            message,
        });
    }
}

/// Runs every rule over one file.
pub fn run_all(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    let tracked_hash = tracked_names(ctx.lx, &["HashMap", "HashSet"]);
    let tracked_shard = tracked_names(ctx.lx, &["ShardedMap"]);
    determinism_iter(ctx, &tracked_hash, out);
    determinism_time(ctx, out);
    unsafe_safety(ctx, out);
    panic_discipline(ctx, out);
    cast_discipline(ctx, out);
    lock_discipline(ctx, &tracked_shard, out);
}

/// Whether a justification comment containing `marker` covers `line`:
/// on the line itself, or in the contiguous comment/attribute block
/// immediately above (doc comments and `#[...]` attributes may sit
/// between the marker and the code, blank lines end the search).
pub fn justified(lx: &Lexed, line: u32, markers: &[&str]) -> bool {
    let hit = |l: u32| {
        lx.comments_on(l)
            .any(|c| markers.iter().any(|m| c.text.contains(m)))
    };
    if hit(line) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if hit(l) {
            return true;
        }
        let has_comment = lx.comments_on(l).next().is_some();
        if lx.has_code(l) {
            // Attribute lines (`#[...]`) may sit between the comment
            // block and the flagged code; anything else ends the walk.
            if first_tok_on(lx, l) != Some("#") {
                return false;
            }
        } else if !has_comment {
            return false; // blank line
        }
    }
    false
}

fn first_tok_on(lx: &Lexed, line: u32) -> Option<&str> {
    lx.toks
        .iter()
        .find(|t| t.line == line)
        .map(|t| t.text.as_str())
}

/// Names bound to one of `types` in this file: struct fields and
/// annotated bindings (`name: HashMap<...>`) plus inferred locals
/// (`let name = HashMap::new()` / `HashMap::<..>::from(..)`).
fn tracked_names(lx: &Lexed, types: &[&str]) -> Vec<String> {
    let t = &lx.toks;
    let mut names = Vec::new();
    for (i, tok) in t.iter().enumerate() {
        if !tok.word || !types.contains(&tok.text.as_str()) {
            continue;
        }
        // Walk back over a `path::to::Type` prefix.
        let mut p = i;
        while p >= 3 && t[p - 1].text == ":" && t[p - 2].text == ":" && t[p - 3].word {
            p -= 3;
        }
        // ... and over reference/mutability sigils (`name: &HashMap`,
        // `name: &mut HashMap`).
        while p >= 1 && (t[p - 1].text == "&" || t[p - 1].text == "mut") {
            p -= 1;
        }
        if p == 0 {
            continue;
        }
        let prev = &t[p - 1];
        // `name : Type` — but not `path :: Type` (handled above) and not
        // a type position like `Vec < Type` or `-> Type`.
        if prev.text == ":" && p >= 2 && t[p - 2].text != ":" && t[p - 2].word {
            let name = &t[p - 2].text;
            // Exclude loop labels / lifetimes.
            if !name.starts_with('\'') {
                names.push(name.clone());
            }
            continue;
        }
        // `let [mut] name = Type :: ...`
        if prev.text == "=" && p >= 2 && t[p - 2].word {
            let name_idx = p - 2;
            let is_let = (name_idx >= 1 && t[name_idx - 1].text == "let")
                || (name_idx >= 2
                    && t[name_idx - 1].text == "mut"
                    && t[name_idx - 2].text == "let");
            if is_let {
                names.push(t[name_idx].text.clone());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Methods whose iteration order on a hash container is arbitrary.
const HASH_ITER: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Rule `determinism-iter`: no unordered iteration over
/// `HashMap`/`HashSet`-typed bindings in data-plane code. Hash order
/// varies across runs/hosts and has already produced a real
/// nondeterminism bug (the DeltaLog recycle HashMap-order fix); use
/// `BTreeMap`/`BTreeSet`, or sort a collected listing, instead.
fn determinism_iter(ctx: &Ctx<'_>, tracked: &[String], out: &mut Vec<Violation>) {
    if tracked.is_empty() {
        return;
    }
    let t = &ctx.lx.toks;
    let is_tracked = |s: &str| tracked.iter().any(|n| n == s);
    for i in 0..t.len() {
        // `name . method (`
        if i + 3 < t.len()
            && t[i].word
            && is_tracked(&t[i].text)
            && t[i + 1].text == "."
            && HASH_ITER.contains(&t[i + 2].text.as_str())
            && t[i + 3].text == "("
        {
            let line = t[i + 2].line;
            if ctx.plane(line) {
                ctx.push(
                    out,
                    "determinism-iter",
                    line,
                    format!(
                        "unordered iteration: `.{}()` on hash-backed `{}` — hash order is \
                         nondeterministic across runs; use a BTreeMap/BTreeSet or sort the listing",
                        t[i + 2].text,
                        t[i].text
                    ),
                );
            }
        }
        // `for pat in [&][mut][self .] name {`
        if t[i].text == "for" && t[i].word {
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < t.len() {
                match t[j].text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "in" if depth == 0 && t[j].word => break,
                    "{" => break, // not a for-loop header we understand
                    _ => {}
                }
                j += 1;
            }
            if j >= t.len() || t[j].text != "in" {
                continue;
            }
            let mut k = j + 1;
            while k < t.len() && (t[k].text == "&" || t[k].text == "mut") {
                k += 1;
            }
            if k + 1 < t.len() && t[k].text == "self" && t[k + 1].text == "." {
                k += 2;
            }
            if k + 1 < t.len()
                && t[k].word
                && is_tracked(&t[k].text)
                && t[k + 1].text == "{"
                && ctx.plane(t[k].line)
            {
                ctx.push(
                    out,
                    "determinism-iter",
                    t[k].line,
                    format!(
                        "unordered iteration: `for .. in {}` over a hash-backed container — \
                         use a BTreeMap/BTreeSet or sort the listing",
                        t[k].text
                    ),
                );
            }
        }
    }
}

/// Rule `determinism-time`: no wall-clock (`Instant::now`,
/// `SystemTime`) or unstructured `thread::spawn` in data-plane code —
/// simulated time comes from the DES clock, and concurrency goes
/// through the tick-barrier `WorkerPool` (`std::thread::scope`).
fn determinism_time(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    let t = &ctx.lx.toks;
    for i in 0..t.len() {
        if !t[i].word {
            continue;
        }
        let line = t[i].line;
        if !ctx.plane(line) {
            continue;
        }
        let path4 = |a: &str, b: &str| {
            i + 3 < t.len()
                && t[i].text == a
                && t[i + 1].text == ":"
                && t[i + 2].text == ":"
                && t[i + 3].text == b
        };
        if path4("Instant", "now") {
            ctx.push(
                out,
                "determinism-time",
                line,
                "wall-clock read: `Instant::now` in data-plane code — simulated time must come \
                 from the DES clock (`Sim::now`)"
                    .into(),
            );
        } else if t[i].text == "SystemTime" {
            ctx.push(
                out,
                "determinism-time",
                line,
                "wall-clock read: `SystemTime` in data-plane code — simulated time must come \
                 from the DES clock (`Sim::now`)"
                    .into(),
            );
        } else if path4("thread", "spawn") || path4("thread", "Builder") {
            ctx.push(
                out,
                "determinism-time",
                line,
                format!(
                    "unstructured concurrency: `thread::{}` in data-plane code — use the \
                     tick-barrier `WorkerPool` (`tsue_sim::exec`) so joins stay inside one DES event",
                    t[i + 3].text
                ),
            );
        }
    }
}

/// Rule `unsafe-safety`: every `unsafe` site (block, fn, impl, trait)
/// carries a `// SAFETY:` comment justifying why the body is sound.
/// A `/// # Safety` doc section states the *caller's* contract and is
/// deliberately not accepted as the *body's* justification.
fn unsafe_safety(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    let t = &ctx.lx.toks;
    for i in 0..t.len() {
        if !(t[i].word && t[i].text == "unsafe") {
            continue;
        }
        let line = t[i].line;
        if justified(ctx.lx, line, &["SAFETY:"]) {
            continue;
        }
        let kind = t
            .get(i + 1)
            .map(|n| match n.text.as_str() {
                "fn" => "unsafe fn",
                "impl" => "unsafe impl",
                "trait" => "unsafe trait",
                _ => "unsafe block",
            })
            .unwrap_or("unsafe block");
        ctx.push(
            out,
            "unsafe-safety",
            line,
            format!(
                "{kind} without a `// SAFETY:` justification — state why every unsafe \
                 operation in the body is sound (bounds, aliasing, required CPU features)"
            ),
        );
    }
}

/// Rule `panic-discipline`: `unwrap`/`expect`/`panic!`-family calls in
/// data-plane code need an `// INVARIANT:` comment naming the invariant
/// that makes the panic unreachable (or an explicit exemption).
fn panic_discipline(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    let t = &ctx.lx.toks;
    const METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for i in 0..t.len() {
        let (line, what) = if i + 2 < t.len()
            && t[i].text == "."
            && METHODS.contains(&t[i + 1].text.as_str())
            && t[i + 2].text == "("
        {
            (t[i + 1].line, format!(".{}()", t[i + 1].text))
        } else if i + 2 < t.len()
            && t[i].word
            && MACROS.contains(&t[i].text.as_str())
            && t[i + 1].text == "!"
            && t[i + 2].text == "("
        {
            (t[i].line, format!("{}!", t[i].text))
        } else {
            continue;
        };
        if !ctx.plane(line) || justified(ctx.lx, line, &["INVARIANT:"]) {
            continue;
        }
        ctx.push(
            out,
            "panic-discipline",
            line,
            format!(
                "`{what}` in data-plane code without an `// INVARIANT:` comment — name the \
                 invariant that makes this unreachable, or return an error"
            ),
        );
    }
}

/// Identifier fragments that mark a value as a byte count / offset /
/// length — the quantities whose silent truncation the cast rule hunts.
const SIZE_NAMES: &[&str] = &[
    "len", "size", "byte", "off", "pos", "count", "end", "start", "span", "cap", "stripe", "page",
    "seq", "idx",
];

fn is_size_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    SIZE_NAMES.iter().any(|p| lower.contains(p))
}

/// Rule `cast-discipline`: `as` casts of byte/offset-named expressions
/// to a type that can truncate them need a `// cast:` (or
/// `// INVARIANT:`) annotation stating why the value fits — or a
/// conversion to `try_into`/`u64::from`. With `assume_64bit` (set in
/// `lint.toml`, documented in ARCHITECTURE.md) `usize`/`u64`/`i64`
/// targets are treated as lossless; narrower targets are always audited.
fn cast_discipline(ctx: &Ctx<'_>, out: &mut Vec<Violation>) {
    let t = &ctx.lx.toks;
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    const WIDE: &[&str] = &["u64", "usize", "i64", "isize"];
    for i in 1..t.len() {
        if !(t[i].word && t[i].text == "as") {
            continue;
        }
        let Some(target) = t.get(i + 1) else { continue };
        let audited = NARROW.contains(&target.text.as_str())
            || (!ctx.cfg.assume_64bit && WIDE.contains(&target.text.as_str()));
        if !audited {
            continue;
        }
        let line = target.line;
        if !ctx.plane(line) {
            continue;
        }
        // Collect candidate source-expression names.
        let mut names: Vec<&str> = Vec::new();
        let prev = &t[i - 1];
        if prev.word {
            names.push(&prev.text);
        } else if prev.text == ")" || prev.text == "]" {
            let open = if prev.text == ")" { "(" } else { "[" };
            let close = &prev.text;
            let mut depth = 0i32;
            let mut j = i - 1;
            loop {
                if t[j].text == *close {
                    depth += 1;
                } else if t[j].text == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if t[j].word {
                    names.push(&t[j].text);
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            // The callee/indexed name right before the opening paren.
            if j >= 1 && t[j - 1].word {
                names.push(&t[j - 1].text);
            }
        }
        if !names.iter().any(|n| is_size_name(n)) {
            continue;
        }
        if justified(ctx.lx, line, &["cast:", "INVARIANT:"]) {
            continue;
        }
        ctx.push(
            out,
            "cast-discipline",
            line,
            format!(
                "byte/offset expression cast with `as {}` — truncation would be silent; use \
                 `try_into` or annotate with `// cast: <why the value fits>`",
                target.text
            ),
        );
    }
}

/// `ShardedMap` methods that take a segment lock on the shared plane.
/// `with`/`read`/`contains`/`len`/`is_empty` only count when the
/// receiver is a tracked `ShardedMap` binding (the names are generic);
/// the `*_shared`/`*_sorted` names are unique to `ShardedMap`.
const LOCK_UNIQUE: &[&str] = &[
    "with_mut",
    "insert_shared",
    "remove_shared",
    "keys_sorted",
    "entries_sorted",
];
const LOCK_GENERIC: &[&str] = &["with", "read", "contains", "len", "is_empty"];

/// Rule `lock-discipline`: no `ShardedMap` segment acquisition nested
/// inside another acquisition's argument/closure span. The segment
/// locks are not re-entrant: `a.with_mut(k, |_| a.read(k2))` deadlocks
/// whenever `k` and `k2` land on the same segment, and even cross-map
/// nesting orders locks implicitly. Hoist the inner read out of the
/// closure, or use the sequential (`&mut self`) plane.
fn lock_discipline(ctx: &Ctx<'_>, tracked: &[String], out: &mut Vec<Violation>) {
    let t = &ctx.lx.toks;
    let is_tracked = |s: &str| tracked.iter().any(|n| n == s);
    let mut depth = 0i32;
    // Paren depths at which a lock-taking call's argument span opened.
    let mut held: Vec<i32> = Vec::new();
    for i in 0..t.len() {
        match t[i].text.as_str() {
            "(" => {
                depth += 1;
                continue;
            }
            ")" => {
                depth -= 1;
                while held.last().is_some_and(|&d| d > depth) {
                    held.pop();
                }
                continue;
            }
            _ => {}
        }
        // `receiver . method (`
        if !(i + 2 < t.len() && t[i].text == "." && t[i + 1].word && t[i + 2].text == "(") {
            continue;
        }
        let m = t[i + 1].text.as_str();
        let receiver_tracked = i >= 1 && t[i - 1].word && is_tracked(&t[i - 1].text);
        let is_lock = LOCK_UNIQUE.contains(&m) || (LOCK_GENERIC.contains(&m) && receiver_tracked);
        if !is_lock {
            continue;
        }
        let line = t[i + 1].line;
        if !ctx.plane(line) {
            continue;
        }
        if !held.is_empty() {
            ctx.push(
                out,
                "lock-discipline",
                line,
                format!(
                    "nested ShardedMap segment acquisition: `.{m}(..)` inside another \
                     segment-locking call's span — the segment locks are not re-entrant; \
                     hoist the inner access out of the closure"
                ),
            );
        }
        // The call's argument span opens at depth+1.
        held.push(depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, test_spans};

    fn run(src: &str, data_plane: bool) -> Vec<Violation> {
        let cfg = Config {
            data_plane: vec!["crates/x".into()],
            ..Default::default()
        };
        let lx = lex(src);
        let spans = test_spans(&lx);
        let ctx = Ctx {
            path: if data_plane {
                "crates/x/src/lib.rs"
            } else {
                "crates/other/src/lib.rs"
            },
            lx: &lx,
            test_spans: &spans,
            data_plane,
            harness: false,
            cfg: &cfg,
        };
        let mut out = Vec::new();
        run_all(&ctx, &mut out);
        out
    }

    #[test]
    fn tracked_names_find_fields_and_lets() {
        let lx = lex("struct S { entries: std::collections::HashMap<u64, u8> }\n\
             fn f() { let mut seen = HashSet::new(); let v: Vec<HashMap<u8,u8>> = vec![]; }\n\
             fn g(byref: &HashMap<u64, u8>, bymut: &mut HashSet<u8>) {}\n");
        let names = tracked_names(&lx, &["HashMap", "HashSet"]);
        assert_eq!(names, vec!["bymut", "byref", "entries", "seen"]);
    }

    #[test]
    fn hash_iteration_is_flagged_with_exact_line() {
        let src = "struct S { m: HashMap<u64, u8> }\nimpl S {\n  fn f(&self) -> u64 {\n    self.m.values().sum()\n  }\n}\n";
        let v = run(src, true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "determinism-iter");
        assert_eq!(v[0].line, 4);
        assert!(run(src, false).is_empty(), "non-data-plane is out of scope");
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let good = "fn f() {\n  // SAFETY: guarded above.\n  unsafe { core::hint::unreachable_unchecked() }\n}\n";
        assert_eq!(run(bad, false).len(), 1, "unsafe rule applies everywhere");
        assert!(run(good, false).is_empty());
    }

    #[test]
    fn panic_rule_honors_invariant_and_test_code() {
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let good = "fn f(x: Option<u8>) -> u8 {\n  // INVARIANT: caller checked is_some.\n  x.unwrap()\n}\n";
        let test = "#[cfg(test)]\nmod tests {\n  fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert_eq!(run(bad, true).len(), 1);
        assert!(run(good, true).is_empty());
        assert!(run(test, true).is_empty());
    }

    #[test]
    fn cast_rule_flags_narrowing_size_names() {
        let bad = "fn f(nbytes: u64) -> u32 { nbytes as u32 }\n";
        let ok_annot = "fn f(nbytes: u64) -> u32 {\n  // cast: header field, frames are < 4 GiB by construction.\n  nbytes as u32\n}\n";
        let ok_wide = "fn f(v: &[u8]) -> u64 { v.len() as u64 }\n";
        assert_eq!(run(bad, true).len(), 1);
        assert!(run(ok_annot, true).is_empty());
        assert!(
            run(ok_wide, true).is_empty(),
            "usize->u64 lossless under assume_64bit"
        );
    }

    #[test]
    fn lock_rule_flags_nesting_only() {
        let flat = "struct S { m: ShardedMap<u64,u8> }\nimpl S { fn f(&self) { self.m.with_mut(&1, |_| ()); self.m.read(&2); } }\n";
        let nested = "struct S { m: ShardedMap<u64,u8> }\nimpl S { fn f(&self) { self.m.with_mut(&1, |_| { self.m.read(&2); }); } }\n";
        assert!(run(flat, true).is_empty());
        let v = run(nested, true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "lock-discipline");
    }

    #[test]
    fn time_rule() {
        let v = run("fn f() { let t = std::time::Instant::now(); }\n", true);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "determinism-time");
        let v = run("fn f() { std::thread::spawn(|| ()); }\n", true);
        assert_eq!(v.len(), 1);
        assert!(run("fn f() { std::thread::scope(|_| ()); }\n", true).is_empty());
    }
}
