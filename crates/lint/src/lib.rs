//! `tsue_lint` — the workspace invariant checker.
//!
//! A self-contained static-analysis pass over the workspace's Rust
//! sources: a comment/string-aware lexer ([`lexer`]) feeding a rule
//! engine ([`rules`]) that enforces the repo's load-bearing invariants
//! *as tooling*, not just as tests:
//!
//! * **`determinism-iter`** — no unordered `HashMap`/`HashSet`
//!   iteration in data-plane crates (hash order already caused one real
//!   bug: the DeltaLog recycle nondeterminism fixed in PR 2).
//! * **`determinism-time`** — no `Instant::now`/`SystemTime`/raw
//!   `thread::spawn` in data-plane crates; time is the DES clock and
//!   concurrency is the tick-barrier `WorkerPool`.
//! * **`unsafe-safety`** — every `unsafe` site carries a `// SAFETY:`
//!   justification.
//! * **`panic-discipline`** — `unwrap`/`expect`/`panic!` in data-plane
//!   crates carry an `// INVARIANT:` comment or an exemption.
//! * **`cast-discipline`** — `as` casts that can truncate byte/offset
//!   quantities carry a `// cast:` annotation or become `try_into`.
//! * **`lock-discipline`** — no nested `ShardedMap` segment
//!   acquisition (the segment locks are not re-entrant).
//!
//! Violations are silenced three ways, in order of preference: fix the
//! code; justify inline (`// SAFETY:` / `// INVARIANT:` / `// cast:` —
//! these *satisfy* the rule and are unbudgeted); or exempt it with an
//! inline pragma `// tsue_lint::allow(rule, reason)` or a crate-scoped
//! `[[allow]]` entry in `lint.toml`. Exemptions are budgeted
//! (`max_exemptions`, default 15) and a stale pragma or allowlist entry
//! is itself a violation, so the exemption surface can only shrink.
//!
//! Run it as `cargo run -p tsue_lint` or `tsuectl lint [--json]`; CI
//! gates on it.

#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::{AllowEntry, Config, ConfigError};
pub use report::{Exemption, Report, Severity, Violation};

use std::path::{Path, PathBuf};

/// An inline `// tsue_lint::allow(rule, reason)` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule id the pragma silences.
    pub rule: String,
    /// Written justification.
    pub reason: String,
    /// 1-based line the pragma comment sits on.
    pub line: u32,
    /// 1-based line the pragma applies to (its own line when it trails
    /// code, otherwise the next line that carries code).
    pub applies_to: u32,
}

/// Extracts pragmas from a lexed file. Malformed pragmas (missing rule,
/// comma, or reason) are reported as `pragma` violations.
pub fn extract_pragmas(path: &str, lx: &lexer::Lexed, out: &mut Vec<Violation>) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for c in &lx.comments {
        // Pragmas live in plain `//` comments; doc comments merely
        // *describe* the pragma syntax and never enact it.
        if c.doc {
            continue;
        }
        let Some(at) = c.text.find("tsue_lint::allow(") else {
            continue;
        };
        let rest = &c.text[at + "tsue_lint::allow(".len()..];
        let body = rest.find(')').map(|e| &rest[..e]);
        let parsed = body.and_then(|b| b.split_once(','));
        let Some((rule, reason)) = parsed else {
            out.push(Violation {
                rule: "pragma",
                path: path.to_string(),
                line: c.line,
                severity: Severity::Error,
                message: "malformed pragma — expected `// tsue_lint::allow(rule, reason)` \
                          with a non-empty reason"
                    .into(),
            });
            continue;
        };
        let rule = rule.trim().to_string();
        let reason = reason.trim().trim_matches('"').trim().to_string();
        if reason.is_empty() || !rules::RULES.contains(&rule.as_str()) {
            out.push(Violation {
                rule: "pragma",
                path: path.to_string(),
                line: c.line,
                severity: Severity::Error,
                message: if reason.is_empty() {
                    "pragma without a reason — every exemption carries a written justification"
                        .into()
                } else {
                    format!(
                        "pragma names unknown rule `{rule}` (known: {})",
                        rules::RULES.join(", ")
                    )
                },
            });
            continue;
        }
        // A trailing pragma covers its own line; a standalone comment
        // line covers the next line that carries code.
        let applies_to = if lx.has_code(c.line) {
            c.line
        } else {
            let mut l = c.end_line + 1;
            while l <= lx.n_lines && !lx.has_code(l) {
                l += 1;
            }
            l
        };
        pragmas.push(Pragma {
            rule,
            reason,
            line: c.line,
            applies_to,
        });
    }
    pragmas
}

/// Outcome of linting one file: surviving violations plus the pragmas
/// that were spent (for exemption accounting).
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations that survived pragma filtering.
    pub violations: Vec<Violation>,
    /// Pragmas in the file, with per-pragma use counts.
    pub spent_pragmas: Vec<(Pragma, usize)>,
}

/// Lints one source file (no allowlist application — that happens at
/// workspace level, where paths are known relative to the root).
pub fn lint_source(rel_path: &str, src: &str, cfg: &Config) -> FileOutcome {
    let lx = lexer::lex(src);
    let spans = lexer::test_spans(&lx);
    let norm = rel_path.replace('\\', "/");
    let data_plane =
        cfg.data_plane.iter().any(|p| norm.starts_with(p.as_str())) && norm.contains("/src/");
    let harness = norm
        .split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples");
    let ctx = rules::Ctx {
        path: &norm,
        lx: &lx,
        test_spans: &spans,
        data_plane,
        harness,
        cfg,
    };
    let mut raw = Vec::new();
    rules::run_all(&ctx, &mut raw);
    let mut pragma_violations = Vec::new();
    let pragmas = extract_pragmas(&norm, &lx, &mut pragma_violations);

    let mut used = vec![0usize; pragmas.len()];
    let mut survivors: Vec<Violation> = Vec::new();
    for v in raw {
        let silenced = pragmas
            .iter()
            .enumerate()
            .find(|(_, p)| p.rule == v.rule && (p.applies_to == v.line || p.line == v.line));
        match silenced {
            Some((i, _)) => used[i] += 1,
            None => survivors.push(v),
        }
    }
    // A pragma that silences nothing is itself a violation: stale
    // exemptions may not accumulate.
    for (p, &n) in pragmas.iter().zip(&used) {
        if n == 0 {
            survivors.push(Violation {
                rule: "pragma",
                path: norm.clone(),
                line: p.line,
                severity: Severity::Error,
                message: format!(
                    "stale pragma — `tsue_lint::allow({}, ..)` silences nothing on line {}; \
                     delete it",
                    p.rule, p.applies_to
                ),
            });
        }
    }
    survivors.extend(pragma_violations);
    FileOutcome {
        violations: survivors,
        spent_pragmas: pragmas
            .into_iter()
            .zip(used)
            .filter(|&(_, n)| n > 0)
            .collect(),
    }
}

/// Walks the workspace for lintable `.rs` files (sorted, workspace-
/// relative, forward slashes). Skips `target/`, `.git`, the vendored
/// dependency shims (`vendor/` except first-party `vendor/tsue_buf`),
/// and the lint's own violation fixtures (`tests/fixtures/`).
pub fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(rd) = std::fs::read_dir(&dir) else {
            continue;
        };
        let mut entries: Vec<PathBuf> = rd.filter_map(|e| e.ok().map(|e| e.path())).collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                if name.starts_with('.') || name == "target" || name == "fixtures" {
                    continue;
                }
                if rel == "vendor" {
                    // First-party vendored crates stay in scope; the
                    // offline stand-ins for external crates do not.
                    stack.push(p.join("tsue_buf"));
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// Runs the full workspace lint rooted at `root` (the directory holding
/// `lint.toml`).
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join("lint.toml");
    let cfg_text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = config::parse(&cfg_text).map_err(|e| e.to_string())?;
    run_workspace_with(root, &cfg)
}

/// [`run_workspace`] with an explicit configuration (tests use this to
/// exercise allowlist behavior without touching the checked-in file).
pub fn run_workspace_with(root: &Path, cfg: &Config) -> Result<Report, String> {
    let mut report = Report {
        max_exemptions: cfg.max_exemptions,
        ..Default::default()
    };
    let mut allow_used = vec![0usize; cfg.allow.len()];
    for path in workspace_files(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let outcome = lint_source(&rel, &src, cfg);
        report.files_scanned += 1;
        for v in outcome.violations {
            let allowed = cfg
                .allow
                .iter()
                .position(|a| a.rule == v.rule && v.path.starts_with(a.path.as_str()));
            match allowed {
                Some(i) => allow_used[i] += 1,
                None => report.violations.push(v),
            }
        }
        for (p, n) in outcome.spent_pragmas {
            report.exemptions.push(Exemption {
                kind: "pragma",
                rule: p.rule,
                site: format!("{rel}:{}", p.line),
                reason: p.reason,
                used: n,
            });
        }
    }
    for (a, &n) in cfg.allow.iter().zip(&allow_used) {
        if n == 0 {
            report.violations.push(Violation {
                rule: "pragma",
                path: "lint.toml".into(),
                line: 0,
                severity: Severity::Error,
                message: format!(
                    "stale allowlist entry — rule `{}` at `{}` silences nothing; delete it",
                    a.rule, a.path
                ),
            });
        } else {
            report.exemptions.push(Exemption {
                kind: "allowlist",
                rule: a.rule.clone(),
                site: a.path.clone(),
                reason: a.reason.clone(),
                used: n,
            });
        }
    }
    report.sort();
    Ok(report)
}

/// Finds the workspace root by walking up from `start` until a
/// directory containing `lint.toml` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_cfg() -> Config {
        Config {
            data_plane: vec!["crates/x".into()],
            ..Default::default()
        }
    }

    #[test]
    fn pragma_silences_and_counts() {
        let src = "struct S { m: HashMap<u64,u8> }\nimpl S {\n  fn f(&self) -> u64 {\n    // tsue_lint::allow(determinism-iter, sum is commutative)\n    self.m.values().sum()\n  }\n}\n";
        let out = lint_source("crates/x/src/lib.rs", src, &plane_cfg());
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.spent_pragmas.len(), 1);
        assert_eq!(out.spent_pragmas[0].1, 1);
        assert_eq!(out.spent_pragmas[0].0.reason, "sum is commutative");
    }

    #[test]
    fn stale_pragma_is_a_violation() {
        let src = "// tsue_lint::allow(determinism-iter, nothing here)\nfn f() {}\n";
        let out = lint_source("crates/x/src/lib.rs", src, &plane_cfg());
        assert_eq!(out.violations.len(), 1);
        assert!(out.violations[0].message.contains("stale pragma"));
    }

    #[test]
    fn malformed_and_unknown_pragmas_are_violations() {
        let out = lint_source(
            "crates/x/src/lib.rs",
            "// tsue_lint::allow(determinism-iter)\nfn f() {}\n",
            &plane_cfg(),
        );
        assert_eq!(out.violations.len(), 1);
        let out = lint_source(
            "crates/x/src/lib.rs",
            "// tsue_lint::allow(no-such-rule, reason)\nfn f() {}\n",
            &plane_cfg(),
        );
        assert!(out.violations[0].message.contains("unknown rule"));
    }

    #[test]
    fn harness_paths_skip_plane_rules() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let out = lint_source("crates/x/tests/suite.rs", src, &plane_cfg());
        assert!(out.violations.is_empty());
        let out = lint_source("crates/x/src/lib.rs", src, &plane_cfg());
        assert_eq!(out.violations.len(), 1);
    }
}
