//! `tsue_lint` CLI — run the workspace invariant checker.
//!
//! ```text
//! tsue_lint [--json] [--json-out FILE] [--root DIR]
//! ```
//!
//! Exit status 0 iff the workspace is clean (no error-severity
//! violations and the exemption budget holds).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut json_out: Option<String> = None;
    let mut root_arg: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--json-out" => {
                i += 1;
                json_out = Some(match args.get(i) {
                    Some(p) => p.clone(),
                    None => return usage("--json-out needs a file path"),
                });
            }
            "--root" => {
                i += 1;
                root_arg = Some(match args.get(i) {
                    Some(p) => p.clone(),
                    None => return usage("--root needs a directory"),
                });
            }
            "--help" | "-h" => {
                println!(
                    "tsue_lint — workspace invariant checker\n\n\
                     usage: tsue_lint [--json] [--json-out FILE] [--root DIR]\n\n\
                     --json          print the report as JSON instead of text\n\
                     --json-out FILE additionally write the JSON report to FILE\n\
                     --root DIR      workspace root (default: walk up to lint.toml)\n\n\
                     rules: {}\n",
                    tsue_lint::rules::RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag '{other}'")),
        }
        i += 1;
    }

    let root = match root_arg {
        Some(r) => std::path::PathBuf::from(r),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
            match tsue_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("tsue_lint: no lint.toml found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let report = match tsue_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tsue_lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("tsue_lint: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    print!(
        "{}",
        if json {
            report.render_json()
        } else {
            report.render_text()
        }
    );
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tsue_lint: {msg}\nusage: tsue_lint [--json] [--json-out FILE] [--root DIR]");
    ExitCode::FAILURE
}
