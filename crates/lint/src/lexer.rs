//! A comment/string-aware Rust lexer — just enough tokenization for the
//! rule engine, with zero dependencies.
//!
//! The rules never need full parsing: they match short token sequences
//! (`Instant :: now`, `. unwrap (`), walk backwards over type paths, and
//! balance parentheses. What they *do* need — and what plain text
//! matching gets wrong — is knowing that `"unsafe"` inside a string
//! literal is data, that `// HashMap iteration here would be bad` is
//! prose, and which comment sits next to which line of code. The lexer
//! provides exactly that: a token stream with line numbers, a parallel
//! comment stream, and a per-line code/comment classification.

/// One lexed token: a word (identifier/keyword/number/lifetime) or a
/// single punctuation character, with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text. Words are maximal ident/number runs; punctuation is
    /// one character per token (`::` arrives as two `:` tokens).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// Whether this is a word (ident / keyword / number / lifetime).
    pub word: bool,
}

/// One comment with its source position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body, delimiters stripped (`//`, `///`, `/* */`, ...).
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Last 1-based line the comment covers (block comments span lines).
    pub end_line: u32,
    /// Whether this is a doc comment (`///`, `//!`, `/** */`, `/*! */`).
    pub doc: bool,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments and literals stripped).
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// `lines_with_code[l]` is true when 1-based line `l` carries at
    /// least one code token (index 0 unused).
    pub lines_with_code: Vec<bool>,
    /// Total number of source lines.
    pub n_lines: u32,
}

impl Lexed {
    /// All comments that start on `line`.
    pub fn comments_on(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.line <= line && line <= c.end_line)
    }

    /// Whether 1-based `line` carries code.
    pub fn has_code(&self, line: u32) -> bool {
        self.lines_with_code
            .get(line as usize)
            .copied()
            .unwrap_or(false)
    }
}

fn is_word_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_word_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens + comments. Never fails: unterminated
/// literals or comments simply consume the rest of the file (the real
/// compiler rejects those files long before the lint matters).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut line: u32 = 1;
    let mut i = 0usize;
    let n = b.len();
    let mut lines_with_code = vec![false; src.lines().count() + 2];

    macro_rules! bump_lines {
        ($ch:expr) => {
            if $ch == '\n' {
                line += 1;
            }
        };
    }

    while i < n {
        let c = b[i];
        // Line comment (incl. doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start_line = line;
            let mut j = i + 2;
            // `///` and `//!` are docs; `////...` dividers are plain.
            let doc = j < n && (b[j] == '!' || (b[j] == '/' && !(j + 1 < n && b[j + 1] == '/')));
            if j < n && (b[j] == '/' || b[j] == '!') {
                j += 1;
            }
            let text_start = j;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: b[text_start..j].iter().collect(),
                line: start_line,
                end_line: start_line,
                doc,
            });
            i = j;
            continue;
        }
        // Block comment (Rust block comments nest).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let mut j = i + 2;
            let doc = j < n && (b[j] == '*' || b[j] == '!') && !(j + 1 < n && b[j + 1] == '/');
            let text_start = j;
            let mut depth = 1;
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    bump_lines!(b[j]);
                    j += 1;
                }
            }
            let text_end = j.saturating_sub(2).max(text_start);
            out.comments.push(Comment {
                text: b[text_start..text_end].iter().collect(),
                line: start_line,
                end_line: line,
                doc,
            });
            i = j;
            continue;
        }
        // Raw strings: r"...", r#"..."#, br"...", br#"..."#.
        if (c == 'r' || c == 'b')
            && i + 1 < n
            && (b[i + 1] == '"' || b[i + 1] == '#' || (c == 'b' && b[i + 1] == 'r'))
        {
            let mut j = i + 1;
            if c == 'b' && j < n && b[j] == 'r' {
                j += 1;
            }
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' && (c == 'r' || (c == 'b' && b[i + 1] != '"')) {
                // A raw (possibly byte) string.
                j += 1;
                'raw: while j < n {
                    if b[j] == '"' {
                        let mut k = j + 1;
                        let mut seen = 0;
                        while k < n && b[k] == '#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break 'raw;
                        }
                    }
                    bump_lines!(b[j]);
                    j += 1;
                }
                lines_with_code[line as usize] = true;
                i = j;
                continue;
            }
            // Not a raw string (`r` / `b` identifier, or `b"..."` handled
            // below): fall through to word/string handling.
        }
        // Plain / byte string.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let mut j = if c == 'b' { i + 2 } else { i + 1 };
            while j < n {
                match b[j] {
                    '\\' => j += 2,
                    '"' => {
                        j += 1;
                        break;
                    }
                    ch => {
                        bump_lines!(ch);
                        j += 1;
                    }
                }
            }
            lines_with_code[line as usize] = true;
            i = j;
            continue;
        }
        // Char literal vs lifetime. `'a'` is a char, `'a` (no closing
        // quote after one item) is a lifetime label.
        if c == '\'' {
            // Escaped char literal: '\n', '\x7f', '\u{..}'.
            if i + 1 < n && b[i + 1] == '\\' {
                let mut j = i + 2;
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                lines_with_code[line as usize] = true;
                i = j + 1;
                continue;
            }
            // 'x' — single char then closing quote.
            if i + 2 < n && b[i + 2] == '\'' {
                lines_with_code[line as usize] = true;
                i += 3;
                continue;
            }
            // Lifetime: consume the ident run as one word token.
            let mut j = i + 1;
            while j < n && is_word_cont(b[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                text: b[i..j].iter().collect(),
                line,
                word: true,
            });
            lines_with_code[line as usize] = true;
            i = j;
            continue;
        }
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if is_word_start(c) || c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && is_word_cont(b[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                text: b[i..j].iter().collect(),
                line,
                word: true,
            });
            lines_with_code[line as usize] = true;
            i = j;
            continue;
        }
        // Single punctuation character.
        out.toks.push(Tok {
            text: c.to_string(),
            line,
            word: false,
        });
        lines_with_code[line as usize] = true;
        i += 1;
    }

    out.n_lines = line;
    out.lines_with_code = lines_with_code;
    out
}

/// Line spans (1-based, inclusive) of `#[cfg(test)]` / `#[test]` items:
/// the attribute line through the matching close brace of the item that
/// follows. Rules scoped to production code skip these spans.
pub fn test_spans(lx: &Lexed) -> Vec<(u32, u32)> {
    let t = &lx.toks;
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 3 < t.len() {
        // `# [ cfg ( ... test ... ) ]`  or  `# [ test ]`
        let is_attr = t[i].text == "#" && t[i + 1].text == "[";
        if !is_attr {
            i += 1;
            continue;
        }
        let mut is_test_attr = false;
        let mut j = i + 2;
        if t[j].text == "test" && t.get(j + 1).map(|x| x.text.as_str()) == Some("]") {
            is_test_attr = true;
            j += 2;
        } else if t[j].text == "cfg" {
            // Scan the attribute's bracket span for a bare `test` token.
            let mut depth = 0;
            let mut saw_test = false;
            while j < t.len() {
                match t[j].text.as_str() {
                    "[" | "(" => depth += 1,
                    "]" | ")" => {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    }
                    "test" => saw_test = true,
                    _ => {}
                }
                j += 1;
            }
            is_test_attr = saw_test;
            j += 1; // past the closing `]`
        }
        if !is_test_attr {
            i += 1;
            continue;
        }
        // Find the item's opening brace, then its matching close.
        let mut k = j;
        while k < t.len() && t[k].text != "{" && t[k].text != ";" {
            k += 1;
        }
        if k >= t.len() || t[k].text == ";" {
            i = k.min(t.len());
            continue;
        }
        let start_line = t[i].line;
        let mut depth = 0i32;
        while k < t.len() {
            match t[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let end_line = t.get(k).map(|x| x.line).unwrap_or(lx.n_lines);
        spans.push((start_line, end_line));
        i = k + 1;
    }
    spans
}

/// Whether 1-based `line` falls inside any of `spans`.
pub fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(a, b)| a <= line && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_not_code() {
        let lx =
            lex("let x = \"unsafe // not a comment\"; // trailing\n/* block\nspans */ fn f() {}\n");
        assert!(lx.toks.iter().all(|t| t.text != "unsafe"));
        assert_eq!(lx.comments.len(), 2);
        assert_eq!(lx.comments[0].text.trim(), "trailing");
        assert!(lx.comments[1].text.contains("block"));
        assert_eq!(lx.comments[1].end_line, 3);
        // `fn` lands on line 3 after the multi-line block comment.
        let f = lx.toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn lifetimes_and_chars() {
        let lx = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(lx.toks.iter().filter(|t| t.text == "'a").count(), 2);
        // char literal contents never become tokens
        assert!(lx.toks.iter().all(|t| t.text != "x'" && t.text != "n"));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let lx = lex("let s = r#\"a \" b\"#; let t = 1;");
        assert!(lx.toks.iter().any(|t| t.text == "t"));
        assert!(lx.toks.iter().all(|t| t.text != "a" && t.text != "b"));
    }

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {}\n}\nfn after() {}\n";
        let lx = lex(src);
        let spans = test_spans(&lx);
        assert!(in_spans(&spans, 3));
        assert!(in_spans(&spans, 5));
        assert!(!in_spans(&spans, 1));
        assert!(!in_spans(&spans, 7));
    }
}
