//! `lint.toml` — checked-in workspace lint configuration.
//!
//! The parser covers the subset of TOML the config actually uses (the
//! lint is dependency-free by design): top-level `key = value`,
//! `[section]` / `[section.sub]` tables, `[[allow]]` array-of-tables,
//! and string / integer / boolean / string-array values. Anything else
//! is a hard error — a config the parser half-understands is worse than
//! one it rejects.

use std::collections::BTreeMap;

/// One crate-scoped exemption from `lint.toml`'s `[[allow]]` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry silences (e.g. `determinism-time`).
    pub rule: String,
    /// Workspace-relative path prefix the entry applies to.
    pub path: String,
    /// Written justification — required, the whole point of the file.
    pub reason: String,
}

/// Parsed lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Hard cap on total exemptions (pragmas + allowlist entries).
    pub max_exemptions: usize,
    /// Workspace-relative prefixes of the data-plane crates: the crates
    /// whose determinism/panic/cast/lock discipline the lint enforces.
    pub data_plane: Vec<String>,
    /// When true, `usize`/`u64`/`i64` cast targets are treated as
    /// lossless (the workspace documents a 64-bit-host assumption) and
    /// only narrower targets are audited.
    pub assume_64bit: bool,
    /// Crate-scoped exemptions.
    pub allow: Vec<AllowEntry>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_exemptions: 15,
            data_plane: Vec::new(),
            assume_64bit: true,
            allow: Vec::new(),
        }
    }
}

/// A parse failure, with the offending 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line in `lint.toml`.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.msg)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    StrList(Vec<String>),
}

fn parse_value(raw: &str, line: u32) -> Result<Value, ConfigError> {
    let raw = raw.trim();
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = raw.strip_prefix('"') {
        let body = body.strip_suffix('"').ok_or_else(|| ConfigError {
            line,
            msg: format!("unterminated string: {raw}"),
        })?;
        if body.contains('"') {
            return Err(ConfigError {
                line,
                msg: "escapes/embedded quotes are not supported".into(),
            });
        }
        return Ok(Value::Str(body.to_string()));
    }
    if let Some(body) = raw.strip_prefix('[') {
        let body = body.strip_suffix(']').ok_or_else(|| ConfigError {
            line,
            msg: "arrays must open and close on one line".into(),
        })?;
        let mut items = Vec::new();
        for part in body.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, line)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(ConfigError {
                        line,
                        msg: "only string arrays are supported".into(),
                    })
                }
            }
        }
        return Ok(Value::StrList(items));
    }
    raw.parse::<i64>().map(Value::Int).map_err(|_| ConfigError {
        line,
        msg: format!("cannot parse value: {raw}"),
    })
}

/// Parses `lint.toml` text into a [`Config`].
pub fn parse(src: &str) -> Result<Config, ConfigError> {
    let mut cfg = Config::default();
    // (section path, key) -> (value, line); allow entries accumulate.
    let mut section = String::new();
    let mut current_allow: Option<BTreeMap<String, (Value, u32)>> = None;

    let flush_allow = |pending: &mut Option<BTreeMap<String, (Value, u32)>>,
                       out: &mut Vec<AllowEntry>|
     -> Result<(), ConfigError> {
        if let Some(map) = pending.take() {
            let line = map.values().map(|&(_, l)| l).min().unwrap_or(0);
            let get = |k: &str| -> Result<String, ConfigError> {
                match map.get(k) {
                    Some((Value::Str(s), _)) if !s.trim().is_empty() => Ok(s.clone()),
                    Some((_, l)) => Err(ConfigError {
                        line: *l,
                        msg: format!("[[allow]] `{k}` must be a non-empty string"),
                    }),
                    None => Err(ConfigError {
                        line,
                        msg: format!(
                            "[[allow]] entry is missing `{k}` (rule/path/reason are all required)"
                        ),
                    }),
                }
            };
            out.push(AllowEntry {
                rule: get("rule")?,
                path: get("path")?,
                reason: get("reason")?,
            });
        }
        Ok(())
    };

    for (idx, raw_line) in src.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = match raw_line.find('#') {
            // A `#` inside a quoted value stays; only strip when it is
            // outside quotes (count quotes before it).
            Some(pos) if raw_line[..pos].matches('"').count() % 2 == 0 => &raw_line[..pos],
            _ => raw_line,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest.strip_suffix("]]").ok_or_else(|| ConfigError {
                line: lineno,
                msg: "malformed [[table]] header".into(),
            })?;
            if name != "allow" {
                return Err(ConfigError {
                    line: lineno,
                    msg: format!("unknown array-of-tables [[{name}]] (only [[allow]] exists)"),
                });
            }
            flush_allow(&mut current_allow, &mut cfg.allow)?;
            current_allow = Some(BTreeMap::new());
            section = "allow".into();
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest.strip_suffix(']').ok_or_else(|| ConfigError {
                line: lineno,
                msg: "malformed [section] header".into(),
            })?;
            flush_allow(&mut current_allow, &mut cfg.allow)?;
            section = name.trim().to_string();
            continue;
        }
        let (key, val) = line.split_once('=').ok_or_else(|| ConfigError {
            line: lineno,
            msg: format!("expected `key = value`, got: {line}"),
        })?;
        let key = key.trim();
        let val = parse_value(val, lineno)?;
        if let Some(map) = current_allow.as_mut() {
            map.insert(key.to_string(), (val, lineno));
            continue;
        }
        match (section.as_str(), key) {
            ("", "schema") => {
                if val != Value::Int(1) {
                    return Err(ConfigError {
                        line: lineno,
                        msg: "unsupported lint.toml schema (expected 1)".into(),
                    });
                }
            }
            ("", "max_exemptions") => match val {
                Value::Int(n) if n >= 0 => cfg.max_exemptions = n as usize,
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        msg: "max_exemptions must be a non-negative integer".into(),
                    })
                }
            },
            ("scope", "data_plane") => match val {
                Value::StrList(v) => cfg.data_plane = v,
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        msg: "scope.data_plane must be an array of strings".into(),
                    })
                }
            },
            ("rules.cast", "assume_64bit") => match val {
                Value::Bool(b) => cfg.assume_64bit = b,
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        msg: "rules.cast.assume_64bit must be a boolean".into(),
                    })
                }
            },
            (sec, k) => {
                return Err(ConfigError {
                    line: lineno,
                    msg: format!("unknown configuration key `{k}` in section `[{sec}]`"),
                });
            }
        }
    }
    flush_allow(&mut current_allow, &mut cfg.allow)?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
schema = 1
max_exemptions = 9   # budget

[scope]
data_plane = ["crates/ecfs", "crates/core"]

[rules.cast]
assume_64bit = true

[[allow]]
rule = "determinism-time"
path = "crates/core/src/live.rs"
reason = "wall-clock by design"
"#;

    #[test]
    fn parses_sample() {
        let cfg = parse(SAMPLE).unwrap();
        assert_eq!(cfg.max_exemptions, 9);
        assert_eq!(cfg.data_plane, vec!["crates/ecfs", "crates/core"]);
        assert!(cfg.assume_64bit);
        assert_eq!(cfg.allow.len(), 1);
        assert_eq!(cfg.allow[0].rule, "determinism-time");
        assert_eq!(cfg.allow[0].reason, "wall-clock by design");
    }

    #[test]
    fn rejects_reasonless_allow() {
        let bad = "[[allow]]\nrule = \"x\"\npath = \"y\"\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn rejects_unknown_keys() {
        assert!(parse("typo_key = 3\n").is_err());
        assert!(parse("[rules.cast]\nassume_64bit = \"yes\"\n").is_err());
    }
}
