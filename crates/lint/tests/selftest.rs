//! Fixture-based self-tests for the lint rules, plus the meta-test that
//! keeps the live workspace lint-clean.
//!
//! Each fixture under `tests/fixtures/` declares its expected
//! violations inline: a trailing `//~ rule-id` comment marks a line the
//! rule must flag, and every unmarked line must stay clean. The runner
//! compares the (line, rule) sets exactly, so a rule that drifts by one
//! line — or starts over/under-reporting — fails here before it ever
//! confuses a CI run. The fixtures are lexed, never compiled; the
//! workspace walker skips `fixtures/` directories so the live lint does
//! not see them.

use std::path::{Path, PathBuf};
use tsue_lint::{lexer, lint_source, run_workspace_with, AllowEntry, Config};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    tsue_lint::find_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("lint.toml above crates/lint")
}

/// Collects the `//~ rule-id` markers from a fixture source.
fn expected_markers(src: &str) -> Vec<(u32, String)> {
    let lx = lexer::lex(src);
    let mut out: Vec<(u32, String)> = lx
        .comments
        .iter()
        .filter_map(|c| {
            c.text
                .strip_prefix('~')
                .map(|rest| (c.line, rest.trim().to_string()))
        })
        .collect();
    out.sort();
    out
}

/// Lints one fixture as if it were data-plane source and checks the
/// violation set is line-exact against the inline markers.
fn check_fixture(name: &str, rule: &str) {
    let src = std::fs::read_to_string(fixture_dir().join(name))
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"));
    let expected = expected_markers(&src);
    assert!(!expected.is_empty(), "fixture {name} declares no markers");
    assert!(
        expected.iter().all(|(_, r)| r == rule),
        "fixture {name} mixes rules"
    );
    let cfg = Config {
        data_plane: vec!["crates/fixture".into()],
        ..Default::default()
    };
    let out = lint_source(&format!("crates/fixture/src/{name}"), &src, &cfg);
    let mut got: Vec<(u32, String)> = out
        .violations
        .iter()
        .map(|v| (v.line, v.rule.to_string()))
        .collect();
    got.sort();
    assert_eq!(
        got, expected,
        "fixture {name}: violations must be line-exact"
    );
}

#[test]
fn fixture_determinism_iter() {
    check_fixture("determinism_iter.rs", "determinism-iter");
}

#[test]
fn fixture_determinism_time() {
    check_fixture("determinism_time.rs", "determinism-time");
}

#[test]
fn fixture_unsafe_safety() {
    check_fixture("unsafe_safety.rs", "unsafe-safety");
}

#[test]
fn fixture_panic_discipline() {
    check_fixture("panic_discipline.rs", "panic-discipline");
}

#[test]
fn fixture_cast_discipline() {
    check_fixture("cast_discipline.rs", "cast-discipline");
}

#[test]
fn fixture_lock_discipline() {
    check_fixture("lock_discipline.rs", "lock-discipline");
}

/// A fresh scratch workspace under the cargo-provided tmpdir; each test
/// uses its own subdirectory so concurrent tests never collide.
fn scratch_workspace(tag: &str, lib_rs: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(tag);
    let src = root.join("crates/x/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(src.join("lib.rs"), lib_rs).unwrap();
    root
}

fn plane_cfg() -> Config {
    Config {
        data_plane: vec!["crates/x".into()],
        ..Default::default()
    }
}

#[test]
fn allowlist_round_trip() {
    let root = scratch_workspace("allowlist_rt", "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n");
    // Bare violation fails the run.
    let r = run_workspace_with(&root, &plane_cfg()).unwrap();
    assert!(!r.clean());
    assert_eq!(r.error_count(), 1);
    assert_eq!(r.violations[0].rule, "panic-discipline");
    // A matching allowlist entry silences it and is accounted as one
    // spent exemption.
    let mut cfg = plane_cfg();
    cfg.allow.push(AllowEntry {
        rule: "panic-discipline".into(),
        path: "crates/x".into(),
        reason: "fixture: exercises the allowlist path".into(),
    });
    let r = run_workspace_with(&root, &cfg).unwrap();
    assert!(r.clean(), "{}", r.render_text());
    assert_eq!(r.exemptions.len(), 1);
    assert_eq!(r.exemptions[0].kind, "allowlist");
    assert_eq!(r.exemptions[0].used, 1);
    // An entry that silences nothing is itself a violation: the
    // exemption surface may only shrink.
    cfg.allow[0].rule = "determinism-iter".into();
    let r = run_workspace_with(&root, &cfg).unwrap();
    assert!(!r.clean());
    assert!(r
        .violations
        .iter()
        .any(|v| v.message.contains("stale allowlist entry")));
}

#[test]
fn pragma_round_trip_and_budget() {
    let root = scratch_workspace(
        "pragma_rt",
        "fn f(x: Option<u8>) -> u8 {\n    \
         // tsue_lint::allow(panic-discipline, fixture: exercises the pragma path)\n    \
         x.unwrap()\n}\n",
    );
    let r = run_workspace_with(&root, &plane_cfg()).unwrap();
    assert!(r.clean(), "{}", r.render_text());
    assert_eq!(r.exemptions.len(), 1);
    assert_eq!(r.exemptions[0].kind, "pragma");
    assert_eq!(r.exemptions[0].used, 1);
    assert!(r.exemptions[0].reason.contains("pragma path"));
    // The same pragma blows a zero budget: exemptions are never free.
    let cfg = Config {
        max_exemptions: 0,
        ..plane_cfg()
    };
    let r = run_workspace_with(&root, &cfg).unwrap();
    assert!(!r.clean(), "budget overflow must fail the run");
    assert_eq!(r.error_count(), 0, "budget overflow is not a violation");
}

/// The meta-test: the checked-in workspace itself must be lint-clean
/// under the checked-in `lint.toml`, within the exemption budget, and
/// every exemption must carry a written reason.
#[test]
fn live_workspace_is_lint_clean() {
    let root = workspace_root();
    let report = tsue_lint::run_workspace(&root).expect("workspace lint runs");
    assert!(
        report.clean(),
        "live workspace must stay lint-clean:\n{}",
        report.render_text()
    );
    assert!(
        report.files_scanned >= 80,
        "walker found only {} files — scope regression?",
        report.files_scanned
    );
    assert!(report.exemptions.len() <= report.max_exemptions);
    for e in &report.exemptions {
        assert!(
            e.reason.split_whitespace().count() >= 3,
            "exemption at {} needs a real written reason, got {:?}",
            e.site,
            e.reason
        );
        assert!(e.used > 0, "stale exemptions must have been rejected");
    }
}

/// Mutation resistance, SAFETY side: deleting any one `// SAFETY:`
/// comment from the gf kernels must produce an `unsafe-safety`
/// violation.
#[test]
fn mutation_stripped_safety_comment_fails() {
    let path = workspace_root().join("crates/gf/src/kernel.rs");
    let src = std::fs::read_to_string(&path).expect("gf kernel source");
    let cfg = Config::default();
    let baseline = lint_source("crates/gf/src/kernel.rs", &src, &cfg);
    assert!(
        baseline.violations.is_empty(),
        "kernel.rs must be clean before mutating:\n{:?}",
        baseline.violations
    );
    let safety_lines: Vec<usize> = src
        .lines()
        .enumerate()
        .filter(|(_, l)| l.trim_start().starts_with("// SAFETY:"))
        .map(|(i, _)| i)
        .collect();
    assert!(
        safety_lines.len() >= 10,
        "expected many SAFETY comments in the SIMD kernels, found {}",
        safety_lines.len()
    );
    for &drop in &safety_lines {
        let mutated: String = src
            .lines()
            .enumerate()
            .filter(|&(i, _)| i != drop)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let out = lint_source("crates/gf/src/kernel.rs", &mutated, &cfg);
        assert!(
            out.violations.iter().any(|v| v.rule == "unsafe-safety"),
            "deleting the SAFETY comment on line {} went undetected",
            drop + 1
        );
    }
}

/// Mutation resistance, determinism side: introducing one unordered
/// HashMap iteration into a data-plane crate must produce a
/// `determinism-iter` violation.
#[test]
fn mutation_injected_hash_iteration_fails() {
    let root = workspace_root();
    let cfg_text = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
    let cfg = tsue_lint::config::parse(&cfg_text).expect("lint.toml parses");
    assert!(
        cfg.data_plane.iter().any(|p| p == "crates/ecfs"),
        "crates/ecfs must be in the data-plane scope"
    );
    let path = root.join("crates/ecfs/src/lib.rs");
    let src = std::fs::read_to_string(&path).expect("ecfs lib source");
    let baseline = lint_source("crates/ecfs/src/lib.rs", &src, &cfg);
    assert!(
        baseline.violations.is_empty(),
        "ecfs lib.rs must be clean before mutating:\n{:?}",
        baseline.violations
    );
    let mutated = format!(
        "{src}\nfn injected_nondeterminism(injected_map: &std::collections::HashMap<u64, u64>) \
         -> u64 {{\n    injected_map.values().sum()\n}}\n"
    );
    let out = lint_source("crates/ecfs/src/lib.rs", &mutated, &cfg);
    assert_eq!(
        out.violations.len(),
        1,
        "expected exactly the injected violation:\n{:?}",
        out.violations
    );
    assert_eq!(out.violations[0].rule, "determinism-iter");
}

/// The walker must keep skipping these fixtures — if they ever leak
/// into the live scan, the meta-test above would go red for the wrong
/// reason.
#[test]
fn walker_skips_violation_fixtures() {
    let files = tsue_lint::workspace_files(&workspace_root());
    assert!(
        !files.is_empty()
            && files
                .iter()
                .all(|p| !p.to_string_lossy().contains("fixtures")),
        "fixtures must stay out of the live scan"
    );
}
