// Fixture: panic-discipline. Lines tagged `//~ panic-discipline` must
// be flagged at exactly that line; everything else must stay clean.
// This file is lexed by the self-test, never compiled.

fn bare_unwrap(x: Option<u8>) -> u8 {
    x.unwrap() //~ panic-discipline
}

fn bare_expect(x: Option<u8>) -> u8 {
    x.expect("present") //~ panic-discipline
}

fn bare_macro(kind: u8) -> u8 {
    match kind {
        0 => 1,
        _ => unreachable!("validated upstream"), //~ panic-discipline
    }
}

fn justified(x: Option<u8>) -> u8 {
    // INVARIANT: the dispatcher only routes Some values here.
    x.expect("present")
}

fn fallible(x: Option<u8>) -> Option<u8> {
    // unwrap_or-style combinators never panic and are out of scope.
    Some(x.unwrap_or(0))
}

#[cfg(test)]
mod tests {
    #[test]
    fn harness_panics_are_fine() {
        assert_eq!(Some(1u8).unwrap(), 1);
    }
}
