// Fixture: determinism-iter. Lines tagged `//~ determinism-iter` must
// be flagged at exactly that line; everything else must stay clean.
// This file is lexed by the self-test, never compiled.
use std::collections::{BTreeMap, HashMap};

struct State {
    by_seq: HashMap<u64, u32>,
    ordered: BTreeMap<u64, u32>,
}

impl State {
    fn checksum(&self) -> u64 {
        let mut acc = 0u64;
        for (k, v) in &self.by_seq { //~ determinism-iter
            acc ^= k.wrapping_mul(u64::from(*v));
        }
        acc
    }

    fn drain_all(&mut self) -> Vec<(u64, u32)> {
        self.by_seq.drain().collect() //~ determinism-iter
    }

    fn keys_unordered(&self) -> Vec<u64> {
        self.by_seq.keys().copied().collect() //~ determinism-iter
    }

    fn ordered_walks_are_fine(&self) -> u64 {
        let mut acc = 0u64;
        for v in self.ordered.values() {
            acc += u64::from(*v);
        }
        acc
    }

    fn point_lookups_are_fine(&self, k: u64) -> Option<u32> {
        self.by_seq.get(&k).copied()
    }
}

fn untracked_locals_are_fine(rows: &BTreeMap<u64, u32>) -> u64 {
    // Same method names on an ordered container: out of scope.
    rows.values().map(|v| u64::from(*v)).sum()
}
