// Fixture: determinism-time. Lines tagged `//~ determinism-time` must
// be flagged at exactly that line; everything else must stay clean.
// This file is lexed by the self-test, never compiled.
use std::time::Instant;

fn stamp() -> Instant {
    Instant::now() //~ determinism-time
}

fn epoch_secs() -> u64 {
    let _t = std::time::SystemTime::now(); //~ determinism-time
    0
}

fn fan_out() {
    std::thread::spawn(|| {}); //~ determinism-time
}

fn named_worker() {
    let _ = std::thread::Builder::new(); //~ determinism-time
}

fn scoped_tick_barrier_is_fine() {
    std::thread::scope(|_| {});
}

fn prose_is_fine() {
    // Instant::now inside a comment is prose, not a wall-clock read.
    let _ = "Instant::now in a string literal is data, not code";
}
