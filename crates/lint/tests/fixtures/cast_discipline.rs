// Fixture: cast-discipline. Lines tagged `//~ cast-discipline` must be
// flagged at exactly that line; everything else must stay clean.
// This file is lexed by the self-test, never compiled.

fn bare_narrowing(payload_len: u64) -> u32 {
    payload_len as u32 //~ cast-discipline
}

fn call_result(v: &[u8]) -> u16 {
    v.len() as u16 //~ cast-discipline
}

fn annotated(frame_len: u64) -> u32 {
    // cast: frames are bounded by the unit size, far below u32::MAX.
    frame_len as u32
}

fn invariant_marker_also_satisfies(end_off: u64) -> u32 {
    // INVARIANT: offsets are block-relative and blocks are < 4 GiB.
    end_off as u32
}

fn widening_is_fine(buf: &[u8]) -> u64 {
    buf.len() as u64
}

fn non_size_names_are_fine(flags: u64) -> u8 {
    flags as u8
}

fn checked_conversion(total_bytes: u64) -> u32 {
    u32::try_from(total_bytes).unwrap_or(u32::MAX)
}
