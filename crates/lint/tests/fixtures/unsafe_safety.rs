// Fixture: unsafe-safety. Lines tagged `//~ unsafe-safety` must be
// flagged at exactly that line; everything else must stay clean.
// This file is lexed by the self-test, never compiled.

fn bare_block(p: *const u8) -> u8 {
    unsafe { *p } //~ unsafe-safety
}

unsafe fn bare_fn(p: *const u8) -> u8 { //~ unsafe-safety
    *p
}

fn justified_block(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}

/// Doc sections state the caller's contract; the body still needs its
/// own justification, which sits between the doc and the signature.
///
/// # Safety
/// `p` must be valid for reads.
// SAFETY: dereference is sound per the documented caller contract; the
// attribute below does not detach this comment from the signature.
#[inline]
unsafe fn justified_fn(p: *const u8) -> u8 {
    *p
}

fn trailing_marker(v: &[u8], i: usize) -> u8 {
    debug_assert!(i < v.len());
    unsafe { *v.get_unchecked(i) } // SAFETY: bounds checked above.
}
