// Fixture: lock-discipline. Lines tagged `//~ lock-discipline` must be
// flagged at exactly that line; everything else must stay clean.
// This file is lexed by the self-test, never compiled.

struct Plane {
    store: ShardedMap<u64, Vec<u8>>,
    index: ShardedMap<u64, u64>,
}

impl Plane {
    fn nested_same_map(&self) -> bool {
        self.store.with_mut(&1, |_| self.store.read(&2).is_some()) //~ lock-discipline
    }

    fn nested_cross_map(&self) {
        self.store.with_mut(&1, |v| {
            v.push(0);
            self.index.insert_shared(9, 9); //~ lock-discipline
        });
    }

    fn sequenced_is_fine(&self) -> bool {
        let hit = self.store.read(&2).is_some();
        self.store.with_mut(&1, |v| v.push(0));
        self.index.insert_shared(9, 9);
        hit
    }

    fn generic_names_untracked_receiver_are_fine(&self, log: &Logger) {
        log.with(|line| self.len_hint(line));
    }

    fn len_hint(&self, _line: u64) -> usize {
        0
    }
}
