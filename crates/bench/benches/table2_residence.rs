//! Bench target regenerating Table 2 (per-layer residence times) at quick
//! scale.

use tsue_bench::{render_table2, table2, Scale};

fn main() {
    println!("== Table 2 (quick): residence times ==");
    let rows = table2(Scale::Quick);
    println!("{}", render_table2(&rows));
}
