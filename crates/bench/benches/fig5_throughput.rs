//! Bench target regenerating Fig. 5 (SSD update throughput) at quick
//! scale: Ali & Ten × two representative RS codes × the full scheme
//! lineup. Run the `experiments` binary for the complete sweep.

use tsue_bench::{fig5_subplot, render_throughput, results_of, Scale, TraceKind};

fn main() {
    println!("== Fig. 5 (quick): Ali-Cloud RS(6,2) ==");
    let rows = results_of(&fig5_subplot(TraceKind::Ali, 6, 2, Scale::Quick));
    println!("{}", render_throughput(&rows));
    println!("== Fig. 5 (quick): Ten-Cloud RS(6,4) ==");
    let rows = results_of(&fig5_subplot(TraceKind::Ten, 6, 4, Scale::Quick));
    println!("{}", render_throughput(&rows));
}
