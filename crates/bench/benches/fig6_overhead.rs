//! Bench target regenerating Fig. 6a (recycle overhead over time) and
//! Fig. 6b (IOPS & memory vs log-unit quota) at quick scale.

use tsue_bench::{fig6a, fig6b, render_fig6a, render_fig6b, Scale};

fn main() {
    println!("== Fig. 6a (quick): TSUE IOPS timeline ==");
    let r = fig6a(Scale::Quick);
    println!("{}", render_fig6a(&r));
    println!("== Fig. 6b (quick): quota sweep ==");
    let rows = fig6b(Scale::Quick);
    println!("{}", render_fig6b(&rows));
}
