//! Criterion microbenchmarks for the hot algebraic kernels: RS encode,
//! incremental parity deltas, delta folding, and the two-level index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tsue_ec::{data_delta, RsCode};
use tsue_ecfs::rangemap::Discipline;
use tsue_ecfs::Chunk;

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_encode");
    for (k, m) in [(6, 2), (6, 4), (12, 4)] {
        let rs = RsCode::new(k, m).unwrap();
        let len = 64 << 10;
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| (i * 31 + j) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        g.throughput(Throughput::Bytes((k * len) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("rs({k},{m})x64KiB")),
            &refs,
            |b, refs| b.iter(|| rs.encode(refs).unwrap()),
        );
    }
    g.finish();
}

fn bench_parity_delta(c: &mut Criterion) {
    let rs = RsCode::new(6, 4).unwrap();
    let old = vec![7u8; 4096];
    let new = vec![9u8; 4096];
    c.bench_function("incremental_parity_delta_4k_m4", |b| {
        b.iter(|| {
            let d = data_delta(&old, &new);
            (0..4)
                .map(|j| rs.parity_delta(j, 2, &d))
                .collect::<Vec<_>>()
        })
    });
}

fn bench_two_level_index(c: &mut Criterion) {
    c.bench_function("logunit_append_hot_4k", |b| {
        b.iter_with_setup(
            || tsue_core::LogUnit::<u64>::new(0),
            |mut unit| {
                // 256 appends over 16 hot slots: heavy folding.
                for i in 0..256u64 {
                    unit.append(
                        i % 4,
                        (i % 16) * 4096,
                        Chunk::ghost(4096),
                        Discipline::Overwrite,
                        true,
                        0,
                    );
                }
                unit
            },
        )
    });
}

criterion_group!(
    benches,
    bench_encode,
    bench_parity_delta,
    bench_two_level_index
);
criterion_main!(benches);
