//! Criterion microbenchmarks for the hot algebraic kernels: RS encode,
//! incremental parity deltas, delta folding, the two-level index, and
//! the GF slice kernels per dispatch tier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tsue_ec::{data_delta, RsCode};
use tsue_ecfs::rangemap::Discipline;
use tsue_ecfs::Chunk;
use tsue_gf::KernelTier;

fn bench_gf_kernel_tiers(c: &mut Criterion) {
    // The same fused multiply-accumulate on every tier the host can run,
    // restoring the default tier afterwards (tiers are byte-identical,
    // so switching mid-process is safe).
    let entry = tsue_gf::kernel_tier();
    for len in [512usize, 4096, 64 << 10] {
        let group_name = format!("gf_mul_add_{len}");
        let mut g = c.benchmark_group(&group_name);
        let src: Vec<u8> = (0..len).map(|i| (i * 17 + 5) as u8).collect();
        let mut dst = vec![0u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        for tier in KernelTier::available() {
            tsue_gf::set_kernel_tier(tier).unwrap();
            g.bench_with_input(BenchmarkId::from_parameter(tier.name()), &src, |b, src| {
                b.iter(|| {
                    tsue_gf::mul_add_slice(29, src, &mut dst);
                    criterion::black_box(&dst);
                })
            });
        }
        g.finish();
    }
    tsue_gf::set_kernel_tier(entry).unwrap();
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("rs_encode");
    for (k, m) in [(6, 2), (6, 4), (12, 4)] {
        let rs = RsCode::new(k, m).unwrap();
        let len = 64 << 10;
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| (0..len).map(|j| (i * 31 + j) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        g.throughput(Throughput::Bytes((k * len) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("rs({k},{m})x64KiB")),
            &refs,
            |b, refs| b.iter(|| rs.encode(refs).unwrap()),
        );
    }
    g.finish();
}

fn bench_parity_delta(c: &mut Criterion) {
    let rs = RsCode::new(6, 4).unwrap();
    let old = vec![7u8; 4096];
    let new = vec![9u8; 4096];
    c.bench_function("incremental_parity_delta_4k_m4", |b| {
        b.iter(|| {
            let d = data_delta(&old, &new);
            (0..4)
                .map(|j| rs.parity_delta(j, 2, &d))
                .collect::<Vec<_>>()
        })
    });
    // The scratch-reusing twin — the zero-copy small-write delta path.
    let mut scratch = vec![0u8; 4096];
    let mut parity = vec![vec![0u8; 4096]; 4];
    c.bench_function("incremental_parity_delta_4k_m4_into", |b| {
        b.iter(|| {
            tsue_ec::data_delta_into(&old, &new, &mut scratch);
            for (j, p) in parity.iter_mut().enumerate() {
                rs.parity_delta_into(j, 2, &scratch, p);
            }
        })
    });
}

fn bench_stripe_replay(c: &mut Criterion) {
    let rs = RsCode::new(6, 4).unwrap();
    let deltas: Vec<Vec<u8>> = (0..6)
        .map(|i| (0..4096).map(|j| (i * 13 + j * 7 + 1) as u8).collect())
        .collect();
    let pairs: Vec<(usize, &[u8])> = deltas
        .iter()
        .enumerate()
        .map(|(i, d)| (i, d.as_slice()))
        .collect();
    c.bench_function("combined_parity_delta_4k_k6_m4", |b| {
        b.iter(|| {
            (0..4)
                .map(|j| rs.combined_parity_delta(j, &pairs))
                .collect::<Vec<_>>()
        })
    });
    let mut accs = vec![vec![0u8; 4096]; 4];
    c.bench_function("combined_parity_delta_4k_k6_m4_into", |b| {
        b.iter(|| {
            for (j, acc) in accs.iter_mut().enumerate() {
                acc.fill(0);
                rs.combined_parity_delta_into(j, &pairs, acc);
            }
        })
    });
    // Stripe-batched replay over scattered ranges: one GF multiply per
    // contributing block, regardless of how many ranges it logged.
    let ranges: Vec<Vec<(u64, &[u8])>> = deltas
        .iter()
        .map(|d| {
            vec![
                (0u64, &d[..1024]),
                (1024, &d[1024..2048]),
                (3072, &d[3072..]),
            ]
        })
        .collect();
    let roles: Vec<tsue_ec::RoleRanges> = ranges
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r.as_slice()))
        .collect();
    let mut scratch = Vec::new();
    let mut acc = vec![0u8; 4096];
    c.bench_function("stripe_replay_4k_3ranges_k6", |b| {
        b.iter(|| {
            for j in 0..4 {
                acc.fill(0);
                rs.stripe_replay_into(j, 0, &roles, &mut scratch, &mut acc);
            }
        })
    });
}

fn bench_bytes_plane(c: &mut Criterion) {
    // The data-plane currency: chunk clone + slice must stay O(1).
    let payload = Chunk::real(tsue_buf::Bytes::from(vec![0x5Au8; 1 << 20]));
    c.bench_function("chunk_clone_slice_1mib", |b| {
        b.iter(|| {
            let c2 = payload.clone();
            criterion::black_box(c2.slice(4096, 64 << 10))
        })
    });
}

fn bench_two_level_index(c: &mut Criterion) {
    c.bench_function("logunit_append_hot_4k", |b| {
        b.iter_with_setup(
            || tsue_core::LogUnit::<u64>::new(0),
            |mut unit| {
                // 256 appends over 16 hot slots: heavy folding.
                for i in 0..256u64 {
                    unit.append(
                        i % 4,
                        (i % 16) * 4096,
                        Chunk::ghost(4096),
                        Discipline::Overwrite,
                        true,
                        0,
                    );
                }
                unit
            },
        )
    });
}

criterion_group!(
    benches,
    bench_gf_kernel_tiers,
    bench_encode,
    bench_parity_delta,
    bench_stripe_replay,
    bench_bytes_plane,
    bench_two_level_index
);
criterion_main!(benches);
