//! Bench target regenerating Table 1 (storage workload, network traffic,
//! SSD lifespan) at quick scale.

use tsue_bench::{lifespan, render_table1, results_of, table1, Scale};

fn main() {
    println!("== Table 1 (quick): workload & traffic ==");
    let rows = results_of(&table1(Scale::Quick));
    let life = lifespan(&rows);
    println!("{}", render_table1(&rows, &life));
}
