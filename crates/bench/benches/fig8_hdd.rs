//! Bench target regenerating Fig. 8a (HDD update throughput) and Fig. 8b
//! (recovery bandwidth) at quick scale.

use tsue_bench::{fig8a, fig8b, render_fig8b, render_throughput, results_of, Scale};

fn main() {
    println!("== Fig. 8a (quick): HDD throughput ==");
    let rows = results_of(&fig8a(Scale::Quick));
    println!("{}", render_throughput(&rows));
    println!("== Fig. 8b (quick): recovery bandwidth ==");
    let rows = fig8b(Scale::Quick);
    println!("{}", render_fig8b(&rows));
}
