//! Bench target regenerating Fig. 7 (contribution breakdown,
//! Baseline + O1..O5) at quick scale.

use tsue_bench::{fig7, render_fig7, Scale};

fn main() {
    println!("== Fig. 7 (quick): breakdown ==");
    let rows = fig7(Scale::Quick);
    println!("{}", render_fig7(&rows));
}
