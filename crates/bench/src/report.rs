//! Table rendering and JSON persistence for experiment results.

use crate::{Fig6bRow, Fig7Row, Fig8bRow, LifespanRow, RunResult, Table2Result};
use std::fmt::Write as _;
use std::path::Path;

/// Renders Fig. 5-style rows as a text table grouped by (trace, code,
/// clients), with TSUE's advantage over each baseline appended.
pub fn render_throughput(rows: &[RunResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>9} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "SCHEME",
        "RS(k,m)",
        "CLIENTS",
        "TRACE",
        "IOPS",
        "LAT(us)",
        "P50(us)",
        "P99(us)",
        "P999(us)"
    );
    let mut group: Option<(String, usize, usize, usize)> = None;
    let mut tsue_iops = 0.0;
    for r in rows {
        let key = (r.trace.clone(), r.k, r.m, r.clients);
        if group.as_ref() != Some(&key) {
            if group.is_some() {
                let _ = writeln!(out);
            }
            group = Some(key);
            tsue_iops = rows
                .iter()
                .filter(|x| {
                    x.trace == r.trace
                        && x.k == r.k
                        && x.m == r.m
                        && x.clients == r.clients
                        && x.scheme == "TSUE"
                })
                .map(|x| x.iops)
                .next()
                .unwrap_or(0.0);
        }
        let ratio = if r.scheme != "TSUE" && r.iops > 0.0 {
            format!("  (TSUE {:.1}x)", tsue_iops / r.iops)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>9} {:>12.0} {:>12.1} {:>10.1} {:>10.1} {:>10.1}{}",
            r.scheme,
            format!("({},{})", r.k, r.m),
            r.clients,
            r.trace,
            r.iops,
            r.mean_latency_us,
            r.latency.p50_us,
            r.latency.p99_us,
            r.latency.p999_us,
            ratio
        );
    }
    out
}

/// Renders the Fig. 6a time series.
pub fn render_fig6a(r: &RunResult) -> String {
    let mut out = String::from("sec  completions (TSUE, Ten-Cloud RS(6,4))\n");
    for (i, c) in r.per_second.iter().enumerate() {
        let _ = writeln!(out, "{:>3}  {}", i, c);
    }
    let _ = writeln!(out, "mean IOPS: {:.0}", r.iops);
    out
}

/// Renders the Fig. 6b sweep.
pub fn render_fig6b(rows: &[Fig6bRow]) -> String {
    let mut out = String::from("MAX_UNITS      IOPS   PEAK_MEM(MiB)  OF_QUOTA\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{:>9} {:>9.0} {:>14.1} {:>9.2}",
            r.max_units, r.iops, r.mem_mib, r.mem_fraction_of_quota
        );
    }
    out
}

/// Renders the Fig. 7 breakdown with gains relative to Baseline.
pub fn render_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::from("TRACE      RS(k,m)  LEVEL      IOPS    vs BASELINE\n");
    let mut base = 0.0;
    for r in rows {
        if r.level == "Baseline" {
            base = r.iops;
        }
        let _ = writeln!(
            out,
            "{:<10} ({},{})   {:<9} {:>9.0} {:>10.2}x",
            r.trace,
            r.k,
            r.m,
            r.level,
            r.iops,
            if base > 0.0 { r.iops / base } else { 0.0 }
        );
    }
    out
}

/// Renders Table 1 (storage workload + network traffic + lifespan).
pub fn render_table1(rows: &[RunResult], lifespan: &[LifespanRow]) -> String {
    let mut out = String::from(
        "METHOD   RW_OPS      RW_GiB  OVERWRITE_OPS  OW_GiB  NET_GiB  ERASES   WA   FLUSH(s)\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>8.2} {:>14} {:>7.2} {:>8.2} {:>7} {:>5.2} {:>9.2}",
            r.scheme,
            r.dev.rw_ops,
            r.dev.rw_gib,
            r.dev.overwrite_ops,
            r.dev.overwrite_gib,
            r.net_payload_gib,
            r.dev.erases,
            r.dev.wa,
            r.flush_s
        );
    }
    let _ = writeln!(out, "\nLIFESPAN (TSUE lifetime multiple):");
    for l in lifespan {
        let _ = writeln!(
            out,
            "  {:<8} overwrites={:>9} erases={:>7}  TSUE lasts {:.1}x longer",
            l.scheme, l.overwrites, l.erases, l.tsue_lifetime_multiple
        );
    }
    out
}

/// Renders Table 2 (residence times).
pub fn render_table2(results: &[Table2Result]) -> String {
    let mut out = String::new();
    for t in results {
        let _ = writeln!(out, "TRACE {} (RS(12,4)):", t.trace);
        let _ = writeln!(
            out,
            "  {:<12} {:>12} {:>14} {:>12}",
            "LAYER", "APPEND(us)", "BUFFER(us)", "RECYCLE(us)"
        );
        for (layer, a, b, r) in &t.rows {
            let _ = writeln!(out, "  {:<12} {:>12.0} {:>14.0} {:>12.0}", layer, a, b, r);
        }
        let _ = writeln!(out, "  TOTAL TIME: {:.0} us\n", t.total_us);
    }
    out
}

/// Renders Fig. 8b recovery rows.
pub fn render_fig8b(rows: &[Fig8bRow]) -> String {
    let mut out = String::from("TRACE    SCHEME   RECOVERY(MB/s)  FLUSH_SHARE\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:<8} {:>14.1} {:>12.2}",
            r.trace, r.scheme, r.recovery_mb_s, r.flush_share
        );
    }
    out
}

/// Persists any serializable result set as JSON under `results/`.
///
/// # Errors
/// Propagates I/O errors.
pub fn save_json<T: serde::Serialize>(dir: &Path, name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).map_err(std::io::Error::other)?;
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(scheme: &str, iops: f64) -> RunResult {
        RunResult {
            scheme: scheme.into(),
            trace: "Ten-Cloud".into(),
            k: 6,
            m: 4,
            clients: 16,
            iops,
            mean_latency_us: 100.0,
            latency: tsue_obs::LatencySummary {
                count: 2,
                mean_us: 100.0,
                p50_us: 90.0,
                p90_us: 150.0,
                p99_us: 200.0,
                p999_us: 210.0,
                max_us: 220.0,
            },
            per_second: vec![10, 20],
            dev: crate::DevSummary::default(),
            net_payload_gib: 0.5,
            net_wire_gib: 0.6,
            mem_peak: 1 << 20,
            flush_s: 0.1,
            cache_hits: 3,
            degraded_reads: 0,
            degraded_writes: 0,
            failed_reads: 0,
            journaled_writes: 0,
            journaled_bytes: 0,
            replayed_bytes: 0,
            resync_bytes: 0,
            reclaimed_blocks: 0,
            rehomed_residual: 0,
            net_intra_gib: 0.6,
            net_cross_gib: 0.0,
            blocks_scrubbed: 0,
            corruptions_detected: 0,
            corruptions_repaired: 0,
            corruptions_unrecoverable: 0,
            torn_detected: 0,
            torn_replayed: 0,
            torn_discarded: 0,
            replica_replayed_bytes: 0,
            recovery: None,
            obs: tsue_obs::ObsReport::default(),
        }
    }

    #[test]
    fn throughput_table_contains_ratio() {
        let rows = vec![row("FO", 1000.0), row("TSUE", 5000.0)];
        let s = render_throughput(&rows);
        assert!(s.contains("TSUE 5.0x"), "{s}");
        assert!(s.contains("FO"));
    }

    #[test]
    fn fig6a_lists_buckets() {
        let s = render_fig6a(&row("TSUE", 123.0));
        assert!(s.contains("  0  10"));
        assert!(s.contains("mean IOPS: 123"));
    }
}
