//! One function per table/figure of the paper's evaluation (§5).
//!
//! Every sweep is expressed as a list of [`ScenarioSpec`]s — the same
//! declarative descriptions `tsuectl run` consumes from JSON. The
//! sweeps that return raw results (`fig5`, `table1`, `fig8a`) yield
//! [`ScenarioOutcome`]s pairing each result with its reproducing spec;
//! the others reduce to figure-specific rows.

use crate::{
    default_registry, run_scenario, run_scenarios, MsrSel, RunResult, Scale, ScenarioOutcome,
    ScenarioSpec, SchemeSpec, TraceKind,
};
use serde::{Deserialize, Serialize, Value};
use tsue_core::TsueConfig;
use tsue_ecfs::{run_recovery, run_workload, Cluster};
use tsue_sim::{Sim, MILLISECOND};

/// The six RS shapes of Fig. 5, in paper order.
pub const FIG5_CODES: [(usize, usize); 6] = [(6, 2), (12, 2), (6, 3), (12, 3), (6, 4), (12, 4)];

/// A sweep point: the auto-named spec for one (trace, code, clients,
/// scheme) cell with the scale's window applied.
fn sweep_spec(
    trace: TraceKind,
    k: usize,
    m: usize,
    clients: usize,
    scheme: SchemeSpec,
    scale: Scale,
) -> ScenarioSpec {
    let name = ScenarioSpec::auto_name(&scheme, trace, k, m, clients);
    let mut s = ScenarioSpec::ssd(name, trace, k, m, clients, scheme);
    s.duration_ms = Some(scale.duration_ms());
    s
}

/// Fig. 5 — update throughput on the SSD cluster: Ali/Ten × six RS codes ×
/// client counts × {FO, PL, PLR, PARIX, CoRD, TSUE}.
pub fn fig5(scale: Scale) -> Vec<ScenarioOutcome> {
    let mut specs = Vec::new();
    for trace in [TraceKind::Ali, TraceKind::Ten] {
        for (k, m) in FIG5_CODES {
            for clients in scale.client_counts() {
                for scheme in SchemeSpec::fig5_lineup() {
                    specs.push(sweep_spec(trace, k, m, clients, scheme, scale));
                }
            }
        }
    }
    run_scenarios(specs).expect("fig5 specs are valid")
}

/// A focused Fig. 5 subplot (one trace, one code) for the Criterion bench.
pub fn fig5_subplot(trace: TraceKind, k: usize, m: usize, scale: Scale) -> Vec<ScenarioOutcome> {
    let mut specs = Vec::new();
    for clients in scale.client_counts() {
        for scheme in SchemeSpec::fig5_lineup() {
            specs.push(sweep_spec(trace, k, m, clients, scheme, scale));
        }
    }
    run_scenarios(specs).expect("fig5 specs are valid")
}

/// Fig. 6a — TSUE IOPS sampled over a one-minute window (Quick: scaled
/// down), showing that back-end recycling does not dent foreground
/// throughput.
pub fn fig6a(scale: Scale) -> RunResult {
    let mut s = ScenarioSpec::ssd("fig6a", TraceKind::Ten, 6, 4, 16, SchemeSpec::tsue());
    s.duration_ms = Some(match scale {
        Scale::Quick => 3_000,
        Scale::Full => 60_000,
    });
    s.file_mb = Some(16);
    run_scenario(&s).expect("fig6a spec is valid")
}

/// One row of the Fig. 6b sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig6bRow {
    /// Log-unit quota per pool.
    pub max_units: usize,
    /// Aggregate IOPS.
    pub iops: f64,
    /// Peak per-OSD log memory, MiB.
    pub mem_mib: f64,
    /// Peak memory as a fraction of the quota ceiling.
    pub mem_fraction_of_quota: f64,
}

/// Fig. 6b — update performance and memory versus the log-unit quota
/// (2..20 units per pool), expressed as a single TSUE knob per point.
pub fn fig6b(scale: Scale) -> Vec<Fig6bRow> {
    let units = match scale {
        Scale::Quick => vec![2, 4, 8],
        Scale::Full => vec![2, 4, 6, 8, 12, 16, 20],
    };
    let specs: Vec<ScenarioSpec> = units
        .iter()
        .map(|&mu| {
            let scheme = SchemeSpec::with_knobs(
                "tsue",
                Value::Object(vec![("max_units".into(), Value::UInt(mu as u64))]),
            );
            let mut s =
                ScenarioSpec::ssd(format!("fig6b-units{mu}"), TraceKind::Ten, 6, 4, 16, scheme);
            s.duration_ms = Some(scale.duration_ms());
            s
        })
        .collect();
    let results = run_scenarios(specs).expect("fig6b specs are valid");
    units
        .into_iter()
        .zip(results)
        .map(|(mu, o)| {
            let quota =
                (mu as u64 * (16 << 20) * TsueConfig::ssd_default().pools as u64 * 3) as f64;
            Fig6bRow {
                max_units: mu,
                iops: o.result.iops,
                mem_mib: o.result.mem_peak as f64 / (1 << 20) as f64,
                mem_fraction_of_quota: o.result.mem_peak as f64 / quota,
            }
        })
        .collect()
}

/// One bar of the Fig. 7 breakdown.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Trace name.
    pub trace: String,
    /// RS shape.
    pub k: usize,
    /// Parity count.
    pub m: usize,
    /// Ablation level name (Baseline, O1..O5).
    pub level: String,
    /// Aggregate IOPS.
    pub iops: f64,
}

/// Names of the Fig. 7 ablation levels.
pub const FIG7_LEVELS: [&str; 6] = ["Baseline", "O1", "O2", "O3", "O4", "O5"];

/// Fig. 7 — contribution breakdown: cumulative O1..O5 over the baseline
/// two-layer memory-log design, for Ali & Ten × RS(6,2/3/4). Each bar is
/// the one-knob `breakdown_level` scenario.
pub fn fig7(scale: Scale) -> Vec<Fig7Row> {
    let codes: &[(usize, usize)] = match scale {
        Scale::Quick => &[(6, 4)],
        Scale::Full => &[(6, 2), (6, 3), (6, 4)],
    };
    let traces: &[TraceKind] = match scale {
        Scale::Quick => &[TraceKind::Ten],
        Scale::Full => &[TraceKind::Ali, TraceKind::Ten],
    };
    let mut specs = Vec::new();
    let mut meta = Vec::new();
    for &trace in traces {
        for &(k, m) in codes {
            for (lvl, name) in FIG7_LEVELS.iter().enumerate() {
                let scheme = SchemeSpec::with_knobs(
                    "tsue",
                    Value::Object(vec![("breakdown_level".into(), Value::UInt(lvl as u64))]),
                );
                let mut s = ScenarioSpec::ssd(
                    format!("fig7-{}-rs{k}-{m}-{}", trace.token(), name.to_lowercase()),
                    trace,
                    k,
                    m,
                    16,
                    scheme,
                );
                s.duration_ms = Some(scale.duration_ms());
                meta.push((trace.name(), k, m, name.to_string()));
                specs.push(s);
            }
        }
    }
    let results = run_scenarios(specs).expect("fig7 specs are valid");
    meta.into_iter()
        .zip(results)
        .map(|((trace, k, m, level), o)| Fig7Row {
            trace,
            k,
            m,
            level,
            iops: o.result.iops,
        })
        .collect()
}

/// Table 1 — storage workload and network traffic under Ten-Cloud RS(6,4):
/// every scheme replays the same window, then drains its logs so recycle
/// I/O is included, exactly like the paper's accounting. The erase counts
/// feed the lifespan comparison (§5.3.4).
pub fn table1(scale: Scale) -> Vec<ScenarioOutcome> {
    let mut lineup = SchemeSpec::fig5_lineup();
    lineup.insert(1, SchemeSpec::named("fl")); // FO, FL, PL, ...
    let ops = match scale {
        Scale::Quick => 800,
        Scale::Full => 8_000,
    };
    let specs: Vec<ScenarioSpec> = lineup
        .into_iter()
        .map(|scheme| {
            let mut s = sweep_spec(TraceKind::Ten, 6, 4, 16, scheme, scale);
            s.name = format!("table1-{}", s.scheme.name);
            s.ops_per_client = Some(ops);
            s.flush_after = Some(true);
            s
        })
        .collect();
    run_scenarios(specs).expect("table1 specs are valid")
}

/// Table 2 result: residency rows for one trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2Result {
    /// Trace name.
    pub trace: String,
    /// Rows: (layer, append µs, buffer µs, recycle µs).
    pub rows: Vec<(String, f64, f64, f64)>,
    /// Total mean residence, µs.
    pub total_us: f64,
}

/// Table 2 — mean residence time per log layer under RS(12,4).
pub fn table2(scale: Scale) -> Vec<Table2Result> {
    let registry = default_registry();
    [TraceKind::Ali, TraceKind::Ten]
        .into_iter()
        .map(|trace| {
            let mut s = ScenarioSpec::ssd(
                format!("table2-{}", trace.token()),
                trace,
                12,
                4,
                16,
                SchemeSpec::tsue(),
            );
            s.duration_ms = Some(match scale {
                Scale::Quick => 2_000,
                Scale::Full => 10_000,
            });
            // Build the cluster here (not via run_scenario) so the scheme
            // instances remain inspectable for residency harvesting.
            let mut world = s.build_cluster(&registry).expect("table2 spec is valid");
            let mut sim: Sim<Cluster> = Sim::new();
            run_workload(&mut world, &mut sim, s.duration_ms() * MILLISECOND);
            world.flush_all(&mut sim);
            let stats = tsue_core::tsue::harvest_residency(&world);
            let rows = stats
                .rows()
                .iter()
                .map(|(n, a, b, r)| (n.to_string(), *a, *b, *r))
                .collect();
            Table2Result {
                trace: trace.name(),
                rows,
                total_us: stats.total_ns() / 1000.0,
            }
        })
        .collect()
}

/// The HDD lineup of Fig. 8 (no FL/CoRD, matching the paper).
fn fig8_lineup() -> Vec<SchemeSpec> {
    ["fo", "pl", "plr", "parix", "tsue"]
        .into_iter()
        .map(SchemeSpec::named)
        .collect()
}

/// Fig. 8a — HDD-cluster update throughput over the MSR volumes for
/// {FO, PL, PLR, PARIX, TSUE} under RS(6,4).
pub fn fig8a(scale: Scale) -> Vec<ScenarioOutcome> {
    let volumes: Vec<MsrSel> = match scale {
        Scale::Quick => vec![MsrSel::Src22, MsrSel::Usr0],
        Scale::Full => MsrSel::all().to_vec(),
    };
    let mut specs = Vec::new();
    for &vol in &volumes {
        for scheme in fig8_lineup() {
            let trace = TraceKind::Msr(vol);
            let name = ScenarioSpec::auto_name(&scheme, trace, 6, 4, 16);
            let mut s = ScenarioSpec::hdd(name, trace, 6, 4, 16, scheme);
            s.duration_ms = Some(scale.duration_ms());
            s.file_mb = Some(8);
            specs.push(s);
        }
    }
    run_scenarios(specs).expect("fig8a specs are valid")
}

/// One Fig. 8b recovery measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig8bRow {
    /// Trace name.
    pub trace: String,
    /// Scheme name.
    pub scheme: String,
    /// Recovery bandwidth, MB/s.
    pub recovery_mb_s: f64,
    /// Share of the recovery window spent draining logs.
    pub flush_share: f64,
}

/// Fig. 8b — recovery bandwidth after an update run on the HDD cluster:
/// kill one node, recover all its blocks; schemes with lazy logs pay the
/// drain inside the measured window.
pub fn fig8b(scale: Scale) -> Vec<Fig8bRow> {
    let registry = default_registry();
    let volumes: Vec<MsrSel> = match scale {
        Scale::Quick => vec![MsrSel::Src22],
        Scale::Full => MsrSel::all().to_vec(),
    };
    let mut out = Vec::new();
    for &vol in &volumes {
        for scheme in fig8_lineup() {
            let trace = TraceKind::Msr(vol);
            let mut s = ScenarioSpec::hdd(
                format!("fig8b-{}-{}", trace.token(), scheme.name),
                trace,
                6,
                4,
                8,
                scheme,
            );
            // Long enough for lazily-recycled logs to accumulate a real
            // backlog (the paper runs updates for 3 minutes first).
            s.duration_ms = Some(match scale {
                Scale::Quick => 3_000,
                Scale::Full => 20_000,
            });
            s.file_mb = Some(8);
            let scheme_display = s.scheme_display(&registry);
            let mut world = s.build_cluster(&registry).expect("fig8b spec is valid");
            let mut sim: Sim<Cluster> = Sim::new();
            run_workload(&mut world, &mut sim, s.duration_ms() * MILLISECOND);
            let report = run_recovery(&mut world, &mut sim, 0);
            eprintln!(
                "[fig8b] {} / {}: {:.2} MB/s (flush share {:.2})",
                s.trace.name(),
                scheme_display,
                report.bandwidth() / 1e6,
                report.flush_time as f64 / report.total_time.max(1) as f64
            );
            out.push(Fig8bRow {
                trace: s.trace.name(),
                scheme: scheme_display,
                recovery_mb_s: report.bandwidth() / 1e6,
                flush_share: if report.total_time == 0 {
                    0.0
                } else {
                    report.flush_time as f64 / report.total_time as f64
                },
            });
        }
    }
    out
}

/// Lifespan summary derived from Table 1 runs (§5.3.4).
///
/// The paper bases its "2.5×–13× longer" claim on the drop in
/// flash-hostile small in-place overwrites (the write penalty), which is
/// what triggers page invalidation, GC migration, and erases once the
/// device cycles. We report the overwrite-count ratio as the lifetime
/// multiple and carry raw erase counts alongside (they dominate on long
/// runs that cycle device capacity).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LifespanRow {
    /// Scheme name.
    pub scheme: String,
    /// In-place overwrite operations during the Table 1 run.
    pub overwrites: u64,
    /// Erase operations during the Table 1 run.
    pub erases: u64,
    /// Lifetime multiple TSUE achieves over this scheme.
    pub tsue_lifetime_multiple: f64,
}

/// Computes the lifespan comparison from Table 1 results.
pub fn lifespan(table1_rows: &[RunResult]) -> Vec<LifespanRow> {
    let tsue = table1_rows
        .iter()
        .find(|r| r.scheme == "TSUE")
        .map(|r| (r.dev.overwrite_ops.max(1), r.dev.erases))
        .unwrap_or((1, 0));
    table1_rows
        .iter()
        .map(|r| LifespanRow {
            scheme: r.scheme.clone(),
            overwrites: r.dev.overwrite_ops,
            erases: r.dev.erases,
            tsue_lifetime_multiple: r.dev.overwrite_ops as f64 / tsue.0 as f64,
        })
        .collect()
}

/// Extension (paper §7 future work): delta compression in the log layers.
/// Returns (without, with) results; compare `net_payload_gib`.
pub fn ext_compression(scale: Scale) -> (RunResult, RunResult) {
    let mk = |compress: bool| {
        let scheme = SchemeSpec::with_knobs(
            "tsue",
            Value::Object(vec![("compress_deltas".into(), Value::Bool(compress))]),
        );
        let mut s = ScenarioSpec::ssd(
            format!("ext-compression-{}", if compress { "on" } else { "off" }),
            TraceKind::Ten,
            6,
            4,
            16,
            scheme,
        );
        s.duration_ms = Some(scale.duration_ms());
        s
    };
    let mut r = run_scenarios(vec![mk(false), mk(true)]).expect("ext specs are valid");
    let with = r.pop().expect("two runs").result;
    let without = r.pop().expect("two runs").result;
    (without, with)
}

/// Ablation (paper §5.3.5): log-unit size vs residence time — halving the
/// unit from 16 MiB to 8 MiB should roughly halve buffer dwell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct UnitSizeRow {
    /// Unit size in MiB.
    pub unit_mib: u64,
    /// Mean DataLog buffer dwell, ms.
    pub data_buffer_ms: f64,
    /// Aggregate IOPS.
    pub iops: f64,
}

/// Runs the unit-size residence ablation.
pub fn ext_unit_size(scale: Scale) -> Vec<UnitSizeRow> {
    let registry = default_registry();
    let sizes: &[u64] = match scale {
        Scale::Quick => &[4, 16],
        Scale::Full => &[4, 8, 16, 32],
    };
    sizes
        .iter()
        .map(|&mib| {
            let scheme = SchemeSpec::with_knobs(
                "tsue",
                Value::Object(vec![("unit_size".into(), Value::UInt(mib << 20))]),
            );
            let mut s = ScenarioSpec::ssd(
                format!("ext-unit-size-{mib}m"),
                TraceKind::Ten,
                6,
                4,
                16,
                scheme,
            );
            s.duration_ms = Some(match scale {
                Scale::Quick => 2_000,
                Scale::Full => 8_000,
            });
            let mut world = s.build_cluster(&registry).expect("unit-size spec is valid");
            let mut sim: Sim<Cluster> = Sim::new();
            run_workload(&mut world, &mut sim, s.duration_ms() * MILLISECOND);
            let end = world.core.stop_at.unwrap().max(sim.now());
            let iops = world.core.metrics.iops(end);
            world.flush_all(&mut sim);
            let stats = tsue_core::tsue::harvest_residency(&world);
            UnitSizeRow {
                unit_mib: mib,
                data_buffer_ms: stats.data.buffer.mean_ns() / 1e6,
                iops,
            }
        })
        .collect()
}

/// Sanity run used by integration tests: a tiny two-scheme comparison.
pub fn smoke() -> (RunResult, RunResult) {
    let mk = |scheme: SchemeSpec| {
        let mut s = ScenarioSpec::ssd(
            format!("smoke-{}", scheme.name),
            TraceKind::Ten,
            4,
            2,
            4,
            scheme,
        );
        s.duration_ms = Some(300);
        s.file_mb = Some(4);
        s
    };
    let fo = run_scenario(&mk(SchemeSpec::named("fo"))).expect("smoke fo");
    let tsue = run_scenario(&mk(SchemeSpec::tsue())).expect("smoke tsue");
    (fo, tsue)
}

/// Virtual-vs-wall sanity: the DES must report virtual seconds regardless
/// of host speed.
pub fn virtual_seconds(result: &RunResult) -> f64 {
    result.per_second.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_produce_throughput() {
        let (fo, tsue) = smoke();
        assert!(fo.iops > 0.0, "FO must complete ops");
        assert!(tsue.iops > 0.0, "TSUE must complete ops");
        assert!(fo.mean_latency_us > 0.0);
        assert_eq!(fo.k, 4);
    }

    #[test]
    fn tsue_beats_fo_on_hot_workload() {
        // The headline claim at small scale: TSUE > FO on Ten-Cloud.
        let (fo, tsue) = smoke();
        assert!(
            tsue.iops > fo.iops,
            "TSUE ({:.0}) should outperform FO ({:.0})",
            tsue.iops,
            fo.iops
        );
    }

    #[test]
    fn lifespan_normalizes_to_tsue() {
        let mk = |scheme: &str, erases: u64| RunResult {
            scheme: scheme.into(),
            trace: "t".into(),
            k: 6,
            m: 4,
            clients: 1,
            iops: 0.0,
            mean_latency_us: 0.0,
            latency: tsue_obs::LatencySummary::default(),
            per_second: vec![],
            dev: crate::DevSummary {
                overwrite_ops: erases,
                ..Default::default()
            },
            net_payload_gib: 0.0,
            net_wire_gib: 0.0,
            mem_peak: 0,
            flush_s: 0.0,
            cache_hits: 0,
            degraded_reads: 0,
            degraded_writes: 0,
            failed_reads: 0,
            journaled_writes: 0,
            journaled_bytes: 0,
            replayed_bytes: 0,
            resync_bytes: 0,
            reclaimed_blocks: 0,
            rehomed_residual: 0,
            net_intra_gib: 0.0,
            net_cross_gib: 0.0,
            blocks_scrubbed: 0,
            corruptions_detected: 0,
            corruptions_repaired: 0,
            corruptions_unrecoverable: 0,
            torn_detected: 0,
            torn_replayed: 0,
            torn_discarded: 0,
            replica_replayed_bytes: 0,
            recovery: None,
            obs: tsue_obs::ObsReport::default(),
        };
        let rows = lifespan(&[mk("FO", 1300), mk("TSUE", 100)]);
        assert_eq!(rows[0].tsue_lifetime_multiple, 13.0);
        assert_eq!(rows[1].tsue_lifetime_multiple, 1.0);
    }
}
