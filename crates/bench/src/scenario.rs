//! The declarative scenario API.
//!
//! A [`ScenarioSpec`] is the serializable description of one experiment
//! run: testbed/device, fabric, RS shape, client count, trace, scheme
//! (by [`SchemeRegistry`] name, with per-scheme knobs), window, and
//! seed. Specs round-trip through JSON, so "add a scenario" is a data
//! change — drop a file under `scenarios/` and `tsuectl run` it —
//! instead of a code change, and every [`RunResult`] ships with the
//! spec that reproduces it ([`ScenarioOutcome`]).
//!
//! ```
//! use tsue_bench::{default_registry, ScenarioSpec};
//!
//! let spec: ScenarioSpec = serde_json::from_str(
//!     r#"{
//!         "name": "doc-smoke",
//!         "device": "ssd",
//!         "k": 4, "m": 2, "clients": 4,
//!         "trace": "ten",
//!         "scheme": {"name": "tsue", "knobs": {"max_units": 2}},
//!         "duration_ms": 100,
//!         "file_mb": 4
//!     }"#,
//! )
//! .unwrap();
//! spec.validate(&default_registry()).unwrap();
//! ```

use crate::{mem_probe_start, RunResult, TraceKind};
use serde::{Deserialize, Serialize, Value};
use tsue_core::register_tsue;
use tsue_ecfs::{run_workload, Cluster, ClusterBuilder, DeviceKind, PlacementKind, SchemeRegistry};
use tsue_fault::{run_plan_to_completion, EngineConfig, FaultEvent, FaultPlan};
use tsue_net::{NetSpec, Topology};
use tsue_schemes::register_baselines;
use tsue_sim::{Sim, MILLISECOND, SECOND};

/// A registry populated with every scheme this workspace ships: the six
/// baselines from `tsue_schemes` plus TSUE from `tsue_core`.
pub fn default_registry() -> SchemeRegistry {
    let mut reg = SchemeRegistry::new();
    register_baselines(&mut reg);
    register_tsue(&mut reg);
    reg
}

/// Scheme selection within a scenario: a registry name plus the
/// free-form knob object handed to that scheme's factory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SchemeSpec {
    /// Registry lookup name (`"fo"`, `"pl"`, `"tsue"`, …).
    pub name: String,
    /// Per-scheme knobs; `None`/absent means defaults.
    pub knobs: Option<Value>,
}

impl SchemeSpec {
    /// A scheme with default knobs.
    pub fn named(name: &str) -> Self {
        SchemeSpec {
            name: name.to_string(),
            knobs: None,
        }
    }

    /// A scheme with an explicit knob object.
    pub fn with_knobs(name: &str, knobs: Value) -> Self {
        SchemeSpec {
            name: name.to_string(),
            knobs: Some(knobs),
        }
    }

    /// TSUE with device-class defaults.
    pub fn tsue() -> Self {
        Self::named("tsue")
    }

    /// TSUE pinned to an explicit full configuration (sweep/ablation
    /// runs): every [`tsue_core::TsueConfig`] field becomes a knob.
    pub fn tsue_with(cfg: &tsue_core::TsueConfig) -> Self {
        Self::with_knobs("tsue", serde::Serialize::to_value(cfg))
    }

    /// The knob object to hand a factory (`Null` when unset).
    pub fn knobs_value(&self) -> Value {
        self.knobs.clone().unwrap_or(Value::Null)
    }

    /// All SSD contenders in the paper's Fig. 5 order (TSUE last).
    pub fn fig5_lineup() -> Vec<SchemeSpec> {
        ["fo", "pl", "plr", "parix", "cord", "tsue"]
            .into_iter()
            .map(Self::named)
            .collect()
    }
}

/// One experiment run, declaratively.
///
/// Optional fields default to the paper's testbed shape; see the
/// accessor of the same name for each default. Unknown JSON fields are
/// rejected, so a typo'd key fails the load instead of silently running
/// the default.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Scenario identifier (also names emitted result files).
    pub name: String,
    /// Device class backing every OSD.
    pub device: DeviceKind,
    /// RS data blocks.
    pub k: usize,
    /// RS parity blocks.
    pub m: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Workload trace (`"ali"`, `"ten"`, `"src10"` … `"mds0"`).
    pub trace: TraceKind,
    /// Update scheme under test.
    pub scheme: SchemeSpec,
    /// OSD node count; default 16 (the paper's clusters).
    pub osds: Option<usize>,
    /// Block size in KiB; default 1024 (1 MiB blocks).
    pub block_kib: Option<u64>,
    /// Fabric override; default 25 Gb/s Ethernet on SSD, 40 Gb/s
    /// InfiniBand on HDD.
    pub net: Option<NetSpec>,
    /// Fabric shape: a profile name (`"rack4"`) or a full
    /// `{racks, oversubscription, uplink_latency}` object; default flat.
    pub topology: Option<Topology>,
    /// Block placement policy (`"flat"` | `"rack-aware"`); default flat.
    pub placement: Option<PlacementKind>,
    /// Scripted faults (timed node/rack kills, slowdowns, heals) driving
    /// online recovery during the run; default none.
    pub faults: Option<Vec<FaultEvent>>,
    /// Measured window in virtual ms; default 2000.
    pub duration_ms: Option<u64>,
    /// Fixed-work mode: each client issues exactly this many ops and
    /// the run ends when all complete; overrides `duration_ms`.
    pub ops_per_client: Option<u64>,
    /// File size per client in MiB; default 12.
    pub file_mb: Option<u64>,
    /// Workload seed; default 42.
    pub seed: Option<u64>,
    /// Drain logs afterwards and include recycle I/O in the totals;
    /// default false.
    pub flush_after: Option<bool>,
    /// Maintain real block/log bytes (correctness runs) instead of
    /// timing-only accounting; default false.
    pub materialize: Option<bool>,
    /// Journal failure-window writes and replay them after rebuild/heal
    /// (degraded-write durability); default true.
    pub journal: Option<bool>,
    /// Maintain per-page block checksums and verify them on reads and
    /// scrub sweeps (only effective with `materialize`); default true.
    pub checksums: Option<bool>,
    /// Background scrub rate in MiB/s per OSD; `0` (the default)
    /// disables the scrubber. A non-zero rate also runs one full
    /// authoritative sweep after the workload and fault plan complete.
    pub scrub_mb_s: Option<u64>,
    /// Parity-log replica count for log-buffered baselines (PL/PLR);
    /// default 1 (no replication). TSUE's data-log replication is the
    /// scheme knob `data_replicas` instead.
    pub log_replicas: Option<usize>,
    /// Per-node/per-rack metric sampling cadence in virtual ms; default
    /// 250, `0` disables the time series. The probe only reads counters,
    /// so the cadence cannot perturb simulated outcomes.
    pub obs_cadence_ms: Option<u64>,
}

impl ScenarioSpec {
    /// An SSD scenario of the given shape with all options defaulted.
    pub fn ssd(
        name: impl Into<String>,
        trace: TraceKind,
        k: usize,
        m: usize,
        clients: usize,
        scheme: SchemeSpec,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            device: DeviceKind::Ssd,
            k,
            m,
            clients,
            trace,
            scheme,
            osds: None,
            block_kib: None,
            net: None,
            topology: None,
            placement: None,
            faults: None,
            duration_ms: None,
            ops_per_client: None,
            file_mb: None,
            seed: None,
            flush_after: None,
            materialize: None,
            journal: None,
            checksums: None,
            scrub_mb_s: None,
            log_replicas: None,
            obs_cadence_ms: None,
        }
    }

    /// An HDD scenario of the given shape with all options defaulted.
    pub fn hdd(
        name: impl Into<String>,
        trace: TraceKind,
        k: usize,
        m: usize,
        clients: usize,
        scheme: SchemeSpec,
    ) -> Self {
        ScenarioSpec {
            device: DeviceKind::Hdd,
            ..Self::ssd(name, trace, k, m, clients, scheme)
        }
    }

    /// A conventional name for a sweep point:
    /// `{scheme}-{trace}-rs{k}-{m}-c{clients}`.
    pub fn auto_name(
        scheme: &SchemeSpec,
        trace: TraceKind,
        k: usize,
        m: usize,
        clients: usize,
    ) -> String {
        format!("{}-{}-rs{k}-{m}-c{clients}", scheme.name, trace.token())
    }

    /// OSD count with its default applied.
    pub fn osds(&self) -> usize {
        self.osds.unwrap_or(16)
    }

    /// Block size in bytes with its default applied.
    pub fn block_bytes(&self) -> u64 {
        self.block_kib.unwrap_or(1024) << 10
    }

    /// Fabric with the device-class default applied.
    pub fn net_spec(&self) -> NetSpec {
        self.net.unwrap_or(match self.device {
            DeviceKind::Ssd => NetSpec::ethernet_25g(),
            DeviceKind::Hdd => NetSpec::infiniband_40g(),
        })
    }

    /// Fabric shape with its default (flat) applied.
    pub fn topology(&self) -> Topology {
        self.topology.unwrap_or_default()
    }

    /// Placement policy with its default (flat) applied.
    pub fn placement_kind(&self) -> PlacementKind {
        self.placement.unwrap_or_default()
    }

    /// The scripted fault plan, when the scenario has one.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        match &self.faults {
            Some(events) if !events.is_empty() => Some(FaultPlan::new(events.clone())),
            _ => None,
        }
    }

    /// Measured window in virtual ms with its default applied.
    pub fn duration_ms(&self) -> u64 {
        self.duration_ms.unwrap_or(2_000)
    }

    /// Per-client file size in MiB with its default applied.
    pub fn file_mb(&self) -> u64 {
        self.file_mb.unwrap_or(12)
    }

    /// Workload seed with its default applied.
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(42)
    }

    /// Whether the run drains logs afterwards.
    pub fn flush_after(&self) -> bool {
        self.flush_after.unwrap_or(false)
    }

    /// Whether the run materializes block/log content.
    pub fn materialize(&self) -> bool {
        self.materialize.unwrap_or(false)
    }

    /// Whether failure-window writes are journaled (default on).
    pub fn journal(&self) -> bool {
        self.journal.unwrap_or(true)
    }

    /// Whether per-page block checksums are maintained (default on).
    pub fn checksums(&self) -> bool {
        self.checksums.unwrap_or(true)
    }

    /// Background scrub rate in MiB/s per OSD (default 0 = off).
    pub fn scrub_mb_s(&self) -> u64 {
        self.scrub_mb_s.unwrap_or(0)
    }

    /// Parity-log replica count with its default (1) applied.
    pub fn log_replicas(&self) -> usize {
        self.log_replicas.unwrap_or(1)
    }

    /// Metric-sampling cadence in virtual ms with its default (250)
    /// applied; `0` disables the per-node/per-rack time series.
    pub fn obs_cadence_ms(&self) -> u64 {
        self.obs_cadence_ms.unwrap_or(250)
    }

    /// The scheme's display name (paper capitalization) when registered,
    /// else the raw spec name.
    pub fn scheme_display(&self, registry: &SchemeRegistry) -> String {
        registry
            .get(&self.scheme.name)
            .map(|e| e.display.to_string())
            .unwrap_or_else(|| self.scheme.name.clone())
    }

    /// Checks the spec against a registry without building anything:
    /// geometry constraints plus scheme-name/knob resolution.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem.
    pub fn validate(&self, registry: &SchemeRegistry) -> Result<(), String> {
        if self.k == 0 || self.m == 0 {
            return Err(format!(
                "scenario '{}': k and m must be non-zero",
                self.name
            ));
        }
        if self.osds() < self.k + self.m {
            return Err(format!(
                "scenario '{}': {} OSDs cannot host RS({},{}) stripes (need ≥ {})",
                self.name,
                self.osds(),
                self.k,
                self.m,
                self.k + self.m
            ));
        }
        if self.clients == 0 {
            return Err(format!(
                "scenario '{}': clients must be non-zero",
                self.name
            ));
        }
        if self.block_bytes() == 0 || self.file_mb() == 0 {
            return Err(format!(
                "scenario '{}': block_kib and file_mb must be non-zero",
                self.name
            ));
        }
        let topo = self.topology();
        if topo.racks > self.osds() {
            return Err(format!(
                "scenario '{}': {} racks cannot be populated by {} OSDs",
                self.name,
                topo.racks,
                self.osds()
            ));
        }
        if self.placement_kind() == PlacementKind::RackAware
            && !self.osds().is_multiple_of(topo.racks)
        {
            return Err(format!(
                "scenario '{}': rack-aware placement needs equal racks \
                 ({} OSDs across {} racks does not divide evenly)",
                self.name,
                self.osds(),
                topo.racks
            ));
        }
        if self.log_replicas() == 0 {
            return Err(format!(
                "scenario '{}': log_replicas must be ≥ 1 (1 = no replication)",
                self.name
            ));
        }
        if self.scrub_mb_s() > 0 && !(self.materialize() && self.checksums()) {
            return Err(format!(
                "scenario '{}': scrubbing (scrub_mb_s > 0) needs \
                 materialize and checksums enabled",
                self.name
            ));
        }
        if let Some(plan) = self.fault_plan() {
            plan.validate(self.osds(), topo.racks)
                .map_err(|e| format!("scenario '{}': {e}", self.name))?;
        }
        let params = tsue_ecfs::SchemeParams {
            device: self.device,
            knobs: self.scheme.knobs_value(),
        };
        registry
            .instantiate(&self.scheme.name, &params)
            .map(|_| ())
            .map_err(|e| format!("scenario '{}': {e}", self.name))
    }

    /// Assembles the cluster builder this spec describes: geometry,
    /// device, fabric, seed, scheme (via `registry`), and the trace
    /// workload, ready for extra tweaks or [`ClusterBuilder::build`].
    ///
    /// # Errors
    /// Same failures as [`ScenarioSpec::validate`].
    pub fn builder(&self, registry: &SchemeRegistry) -> Result<ClusterBuilder, String> {
        self.validate(registry)?;
        let mut b = match self.device {
            DeviceKind::Ssd => ClusterBuilder::ssd(self.k, self.m, self.clients),
            DeviceKind::Hdd => ClusterBuilder::hdd(self.k, self.m, self.clients),
        };
        b = b
            .osds(self.osds())
            .block_size(self.block_bytes())
            .net(self.net_spec())
            .topology(self.topology())
            .placement(self.placement_kind())
            .file_size_per_client(self.file_mb() << 20)
            .seed(self.seed())
            .materialize(self.materialize())
            .journal(self.journal())
            .checksums(self.checksums())
            .scrub_mb_s(self.scrub_mb_s())
            .log_replicas(self.log_replicas())
            .workload(&self.trace.profile());
        if let Some(n) = self.ops_per_client {
            b = b.ops_per_client(n);
        }
        b.scheme(registry, &self.scheme.name, self.scheme.knobs_value())
            .map_err(|e| format!("scenario '{}': {e}", self.name))
    }

    /// Builds the fully-provisioned cluster.
    ///
    /// # Errors
    /// Same failures as [`ScenarioSpec::validate`].
    pub fn build_cluster(&self, registry: &SchemeRegistry) -> Result<Cluster, String> {
        Ok(self.builder(registry)?.build())
    }
}

/// A result paired with the spec that produced it — the unit persisted
/// next to every figure so any data point is reproducible.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The run's declarative description.
    pub spec: ScenarioSpec,
    /// The harvested metrics.
    pub result: RunResult,
}

/// Executes one scenario deterministically and harvests its metrics.
///
/// # Errors
/// Fails on an invalid spec (unknown scheme, bad knobs, geometry).
pub fn run_scenario(spec: &ScenarioSpec) -> Result<RunResult, String> {
    run_scenario_with(spec, &default_registry())
}

/// [`run_scenario`] against an explicit (possibly extended) registry.
///
/// # Errors
/// Fails on an invalid spec (unknown scheme, bad knobs, geometry).
pub fn run_scenario_with(
    spec: &ScenarioSpec,
    registry: &SchemeRegistry,
) -> Result<RunResult, String> {
    run_scenario_threads(spec, registry, 1)
}

/// [`run_scenario_with`] on `threads` pool workers. The thread count is
/// an *execution* parameter, not part of the spec: results are
/// bit-identical at any value (tick-barrier determinism — see
/// [`tsue_sim::exec`]), which is exactly why it never appears in
/// [`ScenarioSpec`] or the persisted goldens.
///
/// # Errors
/// Fails on an invalid spec (unknown scheme, bad knobs, geometry).
pub fn run_scenario_threads(
    spec: &ScenarioSpec,
    registry: &SchemeRegistry,
    threads: usize,
) -> Result<RunResult, String> {
    run_scenario_traced(spec, registry, threads, false).map(|(result, _)| result)
}

/// Reads per-node/per-rack counters into the obs time series. Strictly
/// read-only — sampling can never perturb simulated outcomes, so the
/// cadence (like the thread count) stays an execution-safe knob even
/// though it lives in the spec for reproducibility of the series shape.
fn obs_probe(w: &mut Cluster, sim: &mut Sim<Cluster>) {
    let now = sim.now();
    let cadence = w.core.metrics.obs.series.cadence_ms;
    let nodes = (0..w.core.osds.len())
        .map(|i| {
            let t = w.core.net.node_traffic(i);
            let dev = &w.core.osds[i].device;
            tsue_obs::NodeSample {
                tx_bytes: t.tx_bytes,
                rx_bytes: t.rx_bytes,
                dev_ops: dev.stats().total_ops(),
                dev_busy_ns: dev.busy_ticks(),
                queue_ns: dev.queue_ns(now),
            }
        })
        .collect();
    let elapsed_s = now as f64 / SECOND as f64;
    let racks = (0..w.core.net.racks())
        .map(|r| {
            let t = w.core.net.rack_traffic(r);
            // Mean egress utilization since run start; 0 on flat
            // fabrics, which model no uplink.
            let up_util = match w.core.net.uplink_bandwidth(r) {
                Some(bw) if bw > 0 && elapsed_s > 0.0 => {
                    (t.up_bytes as f64 / (bw as f64 * elapsed_s)).min(1.0)
                }
                _ => 0.0,
            };
            tsue_obs::RackSample {
                up_bytes: t.up_bytes,
                down_bytes: t.down_bytes,
                up_util,
            }
        })
        .collect();
    w.core.metrics.obs.series.samples.push(tsue_obs::ObsSample {
        t_ms: now / MILLISECOND,
        nodes,
        racks,
    });
    if w.core.accepting(now) {
        sim.schedule(cadence * MILLISECOND, obs_probe);
    }
}

/// [`run_scenario_threads`] with op-lifecycle tracing optionally
/// enabled. Tracing is an execution knob like the thread count: it
/// never appears in the spec, only records event times the simulation
/// already produced, and therefore cannot perturb outcomes. When
/// `trace` is set, the second element is the Chrome `trace_event` JSON
/// covering the whole run (workload, recovery, flush, and scrub).
///
/// # Errors
/// Fails on an invalid spec (unknown scheme, bad knobs, geometry).
pub fn run_scenario_traced(
    spec: &ScenarioSpec,
    registry: &SchemeRegistry,
    threads: usize,
    trace: bool,
) -> Result<(RunResult, Option<String>), String> {
    let mut world = spec.builder(registry)?.threads(threads).build();
    if trace {
        world
            .core
            .metrics
            .obs
            .enable_trace(tsue_obs::DEFAULT_TRACE_CAPACITY);
    }
    world.core.metrics.obs.series.cadence_ms = spec.obs_cadence_ms();
    let mut sim: Sim<Cluster> = Sim::new();
    // Window the zero-copy counters to the run itself (setup excluded).
    let buf_start = tsue_buf::stats();
    mem_probe_start(&mut sim);
    if spec.obs_cadence_ms() > 0 {
        sim.schedule(spec.obs_cadence_ms() * MILLISECOND, obs_probe);
    }
    // Scripted faults are installed before the first client op so kill
    // times line up with the workload clock.
    let fault_tracker = match spec.fault_plan() {
        Some(plan) => Some(
            tsue_fault::install(&world, &mut sim, &plan, EngineConfig::default())
                .map_err(|e| format!("scenario '{}': {e}", spec.name))?,
        ),
        None => None,
    };
    // The background scrubber interleaves verification sweeps with
    // client traffic (self-gated: needs scrub_mb_s > 0, materialize,
    // and checksums).
    tsue_ecfs::start_scrub(&mut world, &mut sim);
    let duration = match spec.ops_per_client {
        // Effectively unbounded window; clients stop on their budget.
        Some(_) => 3_600_000 * MILLISECOND,
        None => spec.duration_ms() * MILLISECOND,
    };
    run_workload(&mut world, &mut sim, duration);
    let window_end = if spec.ops_per_client.is_some() {
        sim.now()
    } else {
        world.core.stop_at.expect("window set").max(sim.now())
    };
    let iops = world.core.metrics.iops(window_end);
    let mean_latency_us = world.core.metrics.mean_latency() / 1000.0;
    let per_second = world.core.metrics.per_second.clone();
    let cache_hits = world.core.metrics.read_cache_hits;

    // Recovery phases may outlive client traffic; run them to completion
    // (recovery bandwidth is part of the scenario's outcome).
    if let Some(tracker) = &fault_tracker {
        run_plan_to_completion(&mut world, &mut sim, tracker);
    }

    let mut flush_s = 0.0;
    if spec.flush_after() {
        let t0 = sim.now();
        world.flush_all(&mut sim);
        flush_s = (sim.now() - t0) as f64 / SECOND as f64;
    }
    // A scrubbing scenario ends with one authoritative full sweep:
    // drain delta-poisoned parity, verify every block against its
    // digests, and repair what the periodic ticks missed.
    if spec.scrub_mb_s() > 0 {
        tsue_ecfs::run_full_scrub(&mut world, &mut sim);
    }

    world
        .core
        .metrics
        .absorb_buf_stats(tsue_buf::stats().since(&buf_start));
    let (mem_now, _) = world.scheme_memory();
    let mem_peak = world.core.metrics.mem_peak.max(mem_now);
    const GIB: f64 = (1u64 << 30) as f64;
    let tier = *world.core.net.tier_traffic();
    // Extracted after every phase (recovery, flush, scrub) so the trace
    // and histograms cover the whole run, not just the client window.
    let trace_json = world.core.metrics.obs.trace_json();
    let obs = world.core.metrics.obs.report();
    let latency = obs.client_summary();
    let recovery = fault_tracker.map(|t| {
        let t = t.borrow();
        let mut report = t.report.clone();
        // Backfill each phase's post-rebuild latency view: the window
        // from that phase's finalize instant to the end of the run.
        let end = world.core.metrics.obs.client_op_hist();
        for (phase, at_end) in report.phases.iter_mut().zip(&t.phase_end_lat) {
            phase.lat_after = Some(end.since(at_end).summary());
        }
        report
    });
    let result = RunResult {
        scheme: spec.scheme_display(registry),
        trace: spec.trace.name(),
        k: spec.k,
        m: spec.m,
        clients: spec.clients,
        iops,
        mean_latency_us,
        latency,
        per_second,
        dev: world.device_stats().into(),
        net_payload_gib: world.core.net.total_payload() as f64 / GIB,
        net_wire_gib: world.core.net.total_wire() as f64 / GIB,
        mem_peak,
        flush_s,
        cache_hits,
        degraded_reads: world.core.metrics.degraded_reads,
        degraded_writes: world.core.metrics.degraded_writes,
        failed_reads: world.core.metrics.failed_reads,
        journaled_writes: world.core.journal.entries_appended,
        journaled_bytes: world.core.journal.bytes_appended,
        replayed_bytes: world.core.journal.bytes_replayed,
        resync_bytes: world.core.resync.bytes_copied_back + world.core.resync.parity_repair_bytes,
        reclaimed_blocks: world.core.resync.blocks_reclaimed,
        rehomed_residual: world.core.mds.rehomed_count() as u64,
        net_intra_gib: tier.intra_wire as f64 / GIB,
        net_cross_gib: tier.cross_wire as f64 / GIB,
        blocks_scrubbed: world.core.metrics.blocks_scrubbed,
        corruptions_detected: world.core.metrics.corruptions_detected,
        corruptions_repaired: world.core.metrics.corruptions_repaired,
        corruptions_unrecoverable: world.core.metrics.corruptions_unrecoverable,
        torn_detected: world.core.metrics.torn_detected,
        torn_replayed: world.core.metrics.torn_replayed,
        torn_discarded: world.core.metrics.torn_discarded,
        replica_replayed_bytes: world.core.replicas.bytes_replayed,
        recovery,
        obs,
    };
    Ok((result, trace_json))
}

/// Runs a batch of scenarios across OS threads (each run stays
/// deterministic), pairing every result with its spec.
///
/// # Errors
/// Validates every spec up front and fails before running anything.
pub fn run_scenarios(specs: Vec<ScenarioSpec>) -> Result<Vec<ScenarioOutcome>, String> {
    let registry = default_registry();
    for spec in &specs {
        spec.validate(&registry)?;
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(specs.len().max(1));
    let run = |spec: ScenarioSpec| -> ScenarioOutcome {
        let result = run_scenario_with(&spec, &registry).expect("spec pre-validated");
        ScenarioOutcome { spec, result }
    };
    if workers <= 1 || specs.len() == 1 {
        return Ok(specs.into_iter().map(run).collect());
    }
    let jobs = std::sync::Mutex::new(
        specs
            .into_iter()
            .enumerate()
            .collect::<std::collections::VecDeque<_>>(),
    );
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = jobs.lock().unwrap().pop_front();
                let Some((idx, spec)) = job else { break };
                let outcome = run(spec);
                results.lock().unwrap().push((idx, outcome));
            });
        }
    });
    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|(i, _)| *i);
    Ok(out.into_iter().map(|(_, r)| r).collect())
}

/// Renders the `list` subcommand body shared by `tsuectl` and
/// `experiments`: the scheme registry followed by the bundled scenario
/// files.
pub fn render_listing(registry: &SchemeRegistry) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("registered schemes:\n");
    for e in registry.entries() {
        let _ = writeln!(out, "  {:<8} {:<8} {}", e.name, e.display, e.summary);
    }
    out.push_str("\nbundled scenarios:\n");
    for (path, json) in bundled_scenarios() {
        match serde_json::from_str::<ScenarioSpec>(json) {
            Ok(s) => {
                let _ = writeln!(
                    out,
                    "  {:<32} {} on {} ({}), RS({},{}), {} clients",
                    path,
                    s.scheme.name,
                    s.trace.token(),
                    s.device.token(),
                    s.k,
                    s.m,
                    s.clients
                );
            }
            Err(e) => {
                let _ = writeln!(out, "  {path:<32} INVALID: {e}");
            }
        }
    }
    out
}

/// Strips the specs off a batch of outcomes (rendering helpers take
/// bare [`RunResult`] rows).
pub fn results_of(outcomes: &[ScenarioOutcome]) -> Vec<RunResult> {
    outcomes.iter().map(|o| o.result.clone()).collect()
}

/// The scenario files compiled into the binary, as `(path, JSON)` pairs
/// — the `list` subcommands print these and CI smoke-runs them.
pub fn bundled_scenarios() -> &'static [(&'static str, &'static str)] {
    &[
        (
            "scenarios/smoke.json",
            include_str!("../../../scenarios/smoke.json"),
        ),
        (
            "scenarios/tsue_ablation_o3.json",
            include_str!("../../../scenarios/tsue_ablation_o3.json"),
        ),
        (
            "scenarios/hdd_msr_parix.json",
            include_str!("../../../scenarios/hdd_msr_parix.json"),
        ),
        (
            "scenarios/rack_failure_online.json",
            include_str!("../../../scenarios/rack_failure_online.json"),
        ),
        (
            "scenarios/heal_rejoin.json",
            include_str!("../../../scenarios/heal_rejoin.json"),
        ),
        (
            "scenarios/scrub_bitrot.json",
            include_str!("../../../scenarios/scrub_bitrot.json"),
        ),
    ]
}
