//! Experiment harness: one function per table/figure of the paper.
//!
//! Every experiment is expressed as a set of [`ScenarioSpec`]s — the
//! serializable run descriptions of the declarative scenario API
//! ([`scenario`]) — executed by [`run_scenario`] (deterministic per
//! seed) and fanned out over OS threads by [`run_scenarios`]. The
//! `experiments` binary regenerates all figures/tables and writes
//! machine-readable results plus the specs that reproduce them; the
//! Criterion benches wrap the same functions at `Scale::Quick`.
//!
//! [`RunConfig`]/[`run_one`]/[`run_many`]/[`build_cluster`] remain as
//! thin wrappers over the scenario API for older call sites; new code
//! should construct [`ScenarioSpec`]s (or JSON scenario files) directly.

pub mod experiments;
pub mod perf;
pub mod report;
pub mod scenario;

pub use experiments::*;
pub use perf::*;
pub use report::*;
pub use scenario::*;

use serde::{Deserialize, Serialize};
use tsue_core::TsueConfig;
use tsue_device::DeviceStats;
use tsue_ecfs::{Cluster, DeviceKind};
use tsue_sim::{Sim, Time, MILLISECOND};
use tsue_trace::{ali_cloud, msr_volume, ten_cloud, MsrVolume, WorkloadProfile};

/// Which trace drives the workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    /// Ali-Cloud stand-in.
    Ali,
    /// Ten-Cloud stand-in.
    Ten,
    /// One MSR-Cambridge volume.
    Msr(MsrSel),
}

/// Serializable mirror of [`MsrVolume`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MsrSel {
    Src10,
    Src22,
    Proj2,
    Prn1,
    Hm0,
    Usr0,
    Mds0,
}

impl MsrSel {
    /// All Fig. 8 volumes in paper order.
    pub fn all() -> [MsrSel; 7] {
        [
            MsrSel::Src10,
            MsrSel::Src22,
            MsrSel::Proj2,
            MsrSel::Prn1,
            MsrSel::Hm0,
            MsrSel::Usr0,
            MsrSel::Mds0,
        ]
    }
}

impl From<MsrSel> for MsrVolume {
    fn from(v: MsrSel) -> Self {
        match v {
            MsrSel::Src10 => MsrVolume::Src10,
            MsrSel::Src22 => MsrVolume::Src22,
            MsrSel::Proj2 => MsrVolume::Proj2,
            MsrSel::Prn1 => MsrVolume::Prn1,
            MsrSel::Hm0 => MsrVolume::Hm0,
            MsrSel::Usr0 => MsrVolume::Usr0,
            MsrSel::Mds0 => MsrVolume::Mds0,
        }
    }
}

impl TraceKind {
    /// The calibrated workload profile.
    pub fn profile(&self) -> WorkloadProfile {
        match self {
            TraceKind::Ali => ali_cloud(),
            TraceKind::Ten => ten_cloud(),
            TraceKind::Msr(v) => msr_volume((*v).into()),
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            TraceKind::Ali => "Ali-Cloud".into(),
            TraceKind::Ten => "Ten-Cloud".into(),
            TraceKind::Msr(v) => {
                let vol: MsrVolume = (*v).into();
                vol.name().to_string()
            }
        }
    }

    /// Lower-case token shared by scenario files and the `--trace` flag.
    pub fn token(&self) -> &'static str {
        match self {
            TraceKind::Ali => "ali",
            TraceKind::Ten => "ten",
            TraceKind::Msr(MsrSel::Src10) => "src10",
            TraceKind::Msr(MsrSel::Src22) => "src22",
            TraceKind::Msr(MsrSel::Proj2) => "proj2",
            TraceKind::Msr(MsrSel::Prn1) => "prn1",
            TraceKind::Msr(MsrSel::Hm0) => "hm0",
            TraceKind::Msr(MsrSel::Usr0) => "usr0",
            TraceKind::Msr(MsrSel::Mds0) => "mds0",
        }
    }

    /// Every trace, in token order (`list` output, error messages).
    pub fn all() -> Vec<TraceKind> {
        let mut v = vec![TraceKind::Ali, TraceKind::Ten];
        v.extend(MsrSel::all().into_iter().map(TraceKind::Msr));
        v
    }

    /// Parses the scenario/CLI token (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        let lower = s.to_ascii_lowercase();
        Self::all().into_iter().find(|t| t.token() == lower)
    }
}

// Hand-written (rather than derived) so scenario JSON reads
// `"trace": "src10"` with the same tokens the `--trace` flag uses.
impl Serialize for TraceKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.token().to_string())
    }
}

impl Deserialize for TraceKind {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => Self::parse(s).ok_or_else(|| {
                serde::DeError::msg(format!(
                    "unknown trace '{s}' (expected one of: {})",
                    Self::all()
                        .iter()
                        .map(|t| t.token())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            }),
            other => Err(serde::DeError::mismatch("TraceKind", "string", other)),
        }
    }
}

/// Scheme selection for a run.
///
/// Transition-era wrapper: scheme construction goes through the
/// [`tsue_ecfs::SchemeRegistry`]; this enum survives only as sugar for
/// code still assembling [`RunConfig`]s. New code should use
/// [`SchemeSpec`] directly.
#[derive(Clone, Debug)]
pub enum SchemeSel {
    /// One of the baselines.
    Baseline(tsue_schemes::SchemeKind),
    /// TSUE with defaults for the device class.
    Tsue,
    /// TSUE with an explicit configuration (ablation/sweep runs).
    TsueWith(TsueConfig),
}

impl SchemeSel {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            SchemeSel::Baseline(k) => k.name().to_string(),
            SchemeSel::Tsue | SchemeSel::TsueWith(_) => "TSUE".to_string(),
        }
    }

    /// The declarative form: registry name plus knobs.
    pub fn to_scheme_spec(&self) -> SchemeSpec {
        match self {
            SchemeSel::Baseline(k) => SchemeSpec::named(&k.name().to_ascii_lowercase()),
            SchemeSel::Tsue => SchemeSpec::tsue(),
            SchemeSel::TsueWith(cfg) => SchemeSpec::tsue_with(cfg),
        }
    }
}

/// One experiment run.
///
/// Transition-era wrapper over [`ScenarioSpec`] (see
/// [`RunConfig::to_spec`]); slated for removal once the remaining
/// callers author specs directly.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Workload.
    pub trace: TraceKind,
    /// RS data blocks.
    pub k: usize,
    /// RS parity blocks.
    pub m: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Scheme under test.
    pub scheme: SchemeSel,
    /// Measured window in virtual milliseconds.
    pub duration_ms: u64,
    /// Device class.
    pub device: DeviceKind,
    /// File size per client, MiB.
    pub file_mb: u64,
    /// Workload seed.
    pub seed: u64,
    /// Drain logs afterwards and include recycle I/O in the totals
    /// (Table 1 runs); throughput runs leave it off.
    pub flush_after: bool,
    /// Fixed work mode: each client issues exactly this many ops and the
    /// run ends when all complete (Table 1 comparability). `None` = run
    /// for `duration_ms` of virtual time.
    pub ops_per_client: Option<u64>,
}

impl RunConfig {
    /// A default SSD run of the given shape.
    pub fn ssd(trace: TraceKind, k: usize, m: usize, clients: usize, scheme: SchemeSel) -> Self {
        RunConfig {
            trace,
            k,
            m,
            clients,
            scheme,
            duration_ms: 2_000,
            device: DeviceKind::Ssd,
            file_mb: 12,
            seed: 42,
            flush_after: false,
            ops_per_client: None,
        }
    }

    /// A default HDD run.
    pub fn hdd(trace: TraceKind, k: usize, m: usize, clients: usize, scheme: SchemeSel) -> Self {
        RunConfig {
            device: DeviceKind::Hdd,
            ..Self::ssd(trace, k, m, clients, scheme)
        }
    }

    /// The declarative form of this run: every field pinned explicitly
    /// so the spec reproduces the run bit for bit.
    pub fn to_spec(&self) -> ScenarioSpec {
        let scheme = self.scheme.to_scheme_spec();
        ScenarioSpec {
            name: ScenarioSpec::auto_name(&scheme, self.trace, self.k, self.m, self.clients),
            device: self.device,
            k: self.k,
            m: self.m,
            clients: self.clients,
            trace: self.trace,
            scheme,
            osds: None,
            block_kib: None,
            net: None,
            topology: None,
            placement: None,
            faults: None,
            duration_ms: Some(self.duration_ms),
            ops_per_client: self.ops_per_client,
            file_mb: Some(self.file_mb),
            seed: Some(self.seed),
            flush_after: Some(self.flush_after),
            materialize: None,
            journal: None,
            checksums: None,
            scrub_mb_s: None,
            log_replicas: None,
            obs_cadence_ms: None,
        }
    }
}

/// Metrics harvested from one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Scheme name.
    pub scheme: String,
    /// Trace name.
    pub trace: String,
    /// RS shape.
    pub k: usize,
    /// RS parity count.
    pub m: usize,
    /// Client count.
    pub clients: usize,
    /// Aggregate completed ops per second over the window.
    pub iops: f64,
    /// Mean op latency, µs.
    pub mean_latency_us: f64,
    /// Client-op latency distribution (all op classes merged):
    /// p50/p90/p99/p999/max in µs from the log-bucketed histograms.
    pub latency: tsue_obs::LatencySummary,
    /// Completions per virtual second (Fig. 6a series).
    pub per_second: Vec<u64>,
    /// Aggregate device statistics (all OSDs).
    pub dev: DevSummary,
    /// Network payload moved, GiB.
    pub net_payload_gib: f64,
    /// Network wire traffic, GiB.
    pub net_wire_gib: f64,
    /// Peak per-OSD scheme memory observed, bytes.
    pub mem_peak: u64,
    /// Virtual seconds the post-run flush took (0 when not flushed).
    pub flush_s: f64,
    /// Read-cache hits.
    pub cache_hits: u64,
    /// Reads served via stripe reconstruction while an owner was dead.
    pub degraded_reads: u64,
    /// Updates that failed over because their owner was dead (the
    /// payload is dropped in this model, not replayed after rebuild).
    pub degraded_writes: u64,
    /// Reads that failed outright: fewer than `k` survivors remained
    /// (the data-loss signal under rack-oblivious placement).
    pub failed_reads: u64,
    /// Degraded-write extents journaled at the MDS (deduplicated).
    pub journaled_writes: u64,
    /// Bytes those journaled extents carried.
    pub journaled_bytes: u64,
    /// Journaled bytes replayed into rebuilt or healed blocks; equals
    /// `journaled_bytes` once every failure window fully recovered.
    pub replayed_bytes: u64,
    /// Bytes written by heal-time re-sync (rehomed copy-back + dirty
    /// parity re-encodes).
    pub resync_bytes: u64,
    /// Rehome-table entries reclaimed by heal-time re-sync.
    pub reclaimed_blocks: u64,
    /// Rehome-table entries still live at the end of the run (0 once
    /// every healed node has been fully re-synced).
    pub rehomed_residual: u64,
    /// Wire traffic that stayed inside a rack, GiB (equals `net_wire_gib`
    /// on a flat fabric).
    pub net_intra_gib: f64,
    /// Wire traffic that crossed racks, GiB.
    pub net_cross_gib: f64,
    /// Blocks swept by the scrubber (periodic ticks + final sweep).
    pub blocks_scrubbed: u64,
    /// Corrupt pages detected (read-path verification or scrub).
    pub corruptions_detected: u64,
    /// Corrupt pages repaired from stripe survivors.
    pub corruptions_repaired: u64,
    /// Corrupt pages beyond repair (fewer than `k` clean survivors).
    pub corruptions_unrecoverable: u64,
    /// Torn log-tail appends detected by power-loss restart scans.
    pub torn_detected: u64,
    /// Torn appends replayed byte-exactly from a replica copy.
    pub torn_replayed: u64,
    /// Torn appends discarded (log overlay reverted to pre-write bytes,
    /// or stale parity marked for re-encode).
    pub torn_discarded: u64,
    /// Replicated data-log bytes replayed onto rebuilt blocks (acked
    /// appends the dead home never merged).
    pub replica_replayed_bytes: u64,
    /// Fault-engine outcome when the scenario scripted faults.
    pub recovery: Option<tsue_fault::FaultReport>,
    /// Observability section: per-op-class and per-stage latency
    /// histograms plus the per-node/per-rack utilization time series.
    pub obs: tsue_obs::ObsReport,
}

/// Serializable device-stats summary.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DevSummary {
    /// Read+write operation count.
    pub rw_ops: u64,
    /// Read+write volume, GiB.
    pub rw_gib: f64,
    /// Overwrite (write-penalty) operations.
    pub overwrite_ops: u64,
    /// Overwrite volume, GiB.
    pub overwrite_gib: f64,
    /// Flash blocks erased.
    pub erases: u64,
    /// Flash write amplification.
    pub wa: f64,
    /// Sequential-op fraction.
    pub seq_fraction: f64,
}

impl From<DeviceStats> for DevSummary {
    fn from(s: DeviceStats) -> Self {
        const GIB: f64 = (1u64 << 30) as f64;
        DevSummary {
            rw_ops: s.total_ops(),
            rw_gib: s.total_bytes() as f64 / GIB,
            overwrite_ops: s.overwrite_ops,
            overwrite_gib: s.overwrite_bytes as f64 / GIB,
            erases: s.erase_ops,
            wa: s.write_amplification(),
            seq_fraction: if s.seq_ops + s.rand_ops == 0 {
                0.0
            } else {
                s.seq_ops as f64 / (s.seq_ops + s.rand_ops) as f64
            },
        }
    }
}

/// Builds the cluster for a run (thin wrapper over
/// [`ScenarioSpec::build_cluster`] with the default registry).
pub fn build_cluster(cfg: &RunConfig) -> Cluster {
    cfg.to_spec()
        .build_cluster(&default_registry())
        .expect("RunConfig always maps to a valid scenario")
}

/// Memory-probe cadence during a run.
const MEM_PROBE_EVERY: Time = 250 * MILLISECOND;

fn mem_probe(w: &mut Cluster, sim: &mut Sim<Cluster>) {
    let (peak, _) = w.scheme_memory();
    w.core.metrics.mem_peak = w.core.metrics.mem_peak.max(peak);
    if w.core.accepting(sim.now()) {
        sim.schedule(MEM_PROBE_EVERY, mem_probe);
    }
}

/// Starts the periodic scheme-memory probe feeding `metrics.mem_peak`.
pub(crate) fn mem_probe_start(sim: &mut Sim<Cluster>) {
    sim.schedule(MEM_PROBE_EVERY, mem_probe);
}

/// Executes one run deterministically and harvests its metrics (thin
/// wrapper over [`run_scenario`]).
pub fn run_one(cfg: &RunConfig) -> RunResult {
    run_scenario(&cfg.to_spec()).expect("RunConfig always maps to a valid scenario")
}

/// Runs a batch across OS threads (thin wrapper over
/// [`run_scenarios`]; each run stays deterministic).
pub fn run_many(cfgs: Vec<RunConfig>) -> Vec<RunResult> {
    run_scenarios(cfgs.iter().map(RunConfig::to_spec).collect())
        .expect("RunConfig always maps to a valid scenario")
        .into_iter()
        .map(|o| o.result)
        .collect()
}

/// Experiment scale: `Quick` for benches/tests, `Full` for the paper-shaped
/// reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Short windows, few clients — smoke-scale shape checks.
    Quick,
    /// Paper-shaped sweeps.
    Full,
}

impl Scale {
    /// Measured window per run, ms.
    pub fn duration_ms(&self) -> u64 {
        match self {
            Scale::Quick => 600,
            Scale::Full => 2_500,
        }
    }

    /// Client counts for throughput sweeps.
    pub fn client_counts(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![16],
            Scale::Full => vec![4, 16, 64],
        }
    }
}
