//! Experiment harness: one function per table/figure of the paper.
//!
//! Every experiment is expressed as a set of [`RunConfig`]s executed by
//! [`run_one`] (deterministic per seed) and fanned out over OS threads by
//! [`run_many`]. The `experiments` binary regenerates all figures/tables
//! and writes machine-readable results; the Criterion benches wrap the
//! same functions at `Scale::Quick`.

pub mod experiments;
pub mod report;

pub use experiments::*;
pub use report::*;

use serde::{Deserialize, Serialize};
use tsue_core::{Tsue, TsueConfig};
use tsue_device::DeviceStats;
use tsue_ecfs::{run_workload, Cluster, ClusterConfig, DeviceKind, UpdateScheme};
use tsue_schemes::SchemeKind;
use tsue_sim::{Sim, Time, MILLISECOND, SECOND};
use tsue_trace::{ali_cloud, msr_volume, ten_cloud, MsrVolume, WorkloadProfile};

/// Which trace drives the workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Ali-Cloud stand-in.
    Ali,
    /// Ten-Cloud stand-in.
    Ten,
    /// One MSR-Cambridge volume.
    Msr(MsrSel),
}

/// Serializable mirror of [`MsrVolume`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MsrSel {
    Src10,
    Src22,
    Proj2,
    Prn1,
    Hm0,
    Usr0,
    Mds0,
}

impl MsrSel {
    /// All Fig. 8 volumes in paper order.
    pub fn all() -> [MsrSel; 7] {
        [
            MsrSel::Src10,
            MsrSel::Src22,
            MsrSel::Proj2,
            MsrSel::Prn1,
            MsrSel::Hm0,
            MsrSel::Usr0,
            MsrSel::Mds0,
        ]
    }
}

impl From<MsrSel> for MsrVolume {
    fn from(v: MsrSel) -> Self {
        match v {
            MsrSel::Src10 => MsrVolume::Src10,
            MsrSel::Src22 => MsrVolume::Src22,
            MsrSel::Proj2 => MsrVolume::Proj2,
            MsrSel::Prn1 => MsrVolume::Prn1,
            MsrSel::Hm0 => MsrVolume::Hm0,
            MsrSel::Usr0 => MsrVolume::Usr0,
            MsrSel::Mds0 => MsrVolume::Mds0,
        }
    }
}

impl TraceKind {
    /// The calibrated workload profile.
    pub fn profile(&self) -> WorkloadProfile {
        match self {
            TraceKind::Ali => ali_cloud(),
            TraceKind::Ten => ten_cloud(),
            TraceKind::Msr(v) => msr_volume((*v).into()),
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            TraceKind::Ali => "Ali-Cloud".into(),
            TraceKind::Ten => "Ten-Cloud".into(),
            TraceKind::Msr(v) => {
                let vol: MsrVolume = (*v).into();
                vol.name().to_string()
            }
        }
    }
}

/// Scheme selection for a run.
#[derive(Clone, Debug)]
pub enum SchemeSel {
    /// One of the baselines.
    Baseline(SchemeKind),
    /// TSUE with defaults for the device class.
    Tsue,
    /// TSUE with an explicit configuration (ablation/sweep runs).
    TsueWith(TsueConfig),
}

impl SchemeSel {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            SchemeSel::Baseline(k) => k.name().to_string(),
            SchemeSel::Tsue | SchemeSel::TsueWith(_) => "TSUE".to_string(),
        }
    }

    /// Instantiates the scheme for one OSD.
    pub fn build(&self, device: DeviceKind) -> Box<dyn UpdateScheme> {
        match self {
            SchemeSel::Baseline(k) => k.build(),
            SchemeSel::Tsue => Box::new(match device {
                DeviceKind::Ssd => Tsue::ssd(),
                DeviceKind::Hdd => Tsue::hdd(),
            }),
            SchemeSel::TsueWith(cfg) => Box::new(Tsue::new(cfg.clone())),
        }
    }

    /// All SSD contenders in the paper's Fig. 5 order (TSUE last).
    pub fn fig5_lineup() -> Vec<SchemeSel> {
        let mut v: Vec<SchemeSel> = SchemeKind::ssd_baselines()
            .into_iter()
            .map(SchemeSel::Baseline)
            .collect();
        v.push(SchemeSel::Tsue);
        v
    }
}

/// One experiment run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Workload.
    pub trace: TraceKind,
    /// RS data blocks.
    pub k: usize,
    /// RS parity blocks.
    pub m: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Scheme under test.
    pub scheme: SchemeSel,
    /// Measured window in virtual milliseconds.
    pub duration_ms: u64,
    /// Device class.
    pub device: DeviceKind,
    /// File size per client, MiB.
    pub file_mb: u64,
    /// Workload seed.
    pub seed: u64,
    /// Drain logs afterwards and include recycle I/O in the totals
    /// (Table 1 runs); throughput runs leave it off.
    pub flush_after: bool,
    /// Fixed work mode: each client issues exactly this many ops and the
    /// run ends when all complete (Table 1 comparability). `None` = run
    /// for `duration_ms` of virtual time.
    pub ops_per_client: Option<u64>,
}

impl RunConfig {
    /// A default SSD run of the given shape.
    pub fn ssd(trace: TraceKind, k: usize, m: usize, clients: usize, scheme: SchemeSel) -> Self {
        RunConfig {
            trace,
            k,
            m,
            clients,
            scheme,
            duration_ms: 2_000,
            device: DeviceKind::Ssd,
            file_mb: 12,
            seed: 42,
            flush_after: false,
            ops_per_client: None,
        }
    }

    /// A default HDD run.
    pub fn hdd(trace: TraceKind, k: usize, m: usize, clients: usize, scheme: SchemeSel) -> Self {
        RunConfig {
            device: DeviceKind::Hdd,
            ..Self::ssd(trace, k, m, clients, scheme)
        }
    }
}

/// Metrics harvested from one run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// Scheme name.
    pub scheme: String,
    /// Trace name.
    pub trace: String,
    /// RS shape.
    pub k: usize,
    /// RS parity count.
    pub m: usize,
    /// Client count.
    pub clients: usize,
    /// Aggregate completed ops per second over the window.
    pub iops: f64,
    /// Mean op latency, µs.
    pub mean_latency_us: f64,
    /// Completions per virtual second (Fig. 6a series).
    pub per_second: Vec<u64>,
    /// Aggregate device statistics (all OSDs).
    pub dev: DevSummary,
    /// Network payload moved, GiB.
    pub net_payload_gib: f64,
    /// Network wire traffic, GiB.
    pub net_wire_gib: f64,
    /// Peak per-OSD scheme memory observed, bytes.
    pub mem_peak: u64,
    /// Virtual seconds the post-run flush took (0 when not flushed).
    pub flush_s: f64,
    /// Read-cache hits.
    pub cache_hits: u64,
}

/// Serializable device-stats summary.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct DevSummary {
    /// Read+write operation count.
    pub rw_ops: u64,
    /// Read+write volume, GiB.
    pub rw_gib: f64,
    /// Overwrite (write-penalty) operations.
    pub overwrite_ops: u64,
    /// Overwrite volume, GiB.
    pub overwrite_gib: f64,
    /// Flash blocks erased.
    pub erases: u64,
    /// Flash write amplification.
    pub wa: f64,
    /// Sequential-op fraction.
    pub seq_fraction: f64,
}

impl From<DeviceStats> for DevSummary {
    fn from(s: DeviceStats) -> Self {
        const GIB: f64 = (1u64 << 30) as f64;
        DevSummary {
            rw_ops: s.total_ops(),
            rw_gib: s.total_bytes() as f64 / GIB,
            overwrite_ops: s.overwrite_ops,
            overwrite_gib: s.overwrite_bytes as f64 / GIB,
            erases: s.erase_ops,
            wa: s.write_amplification(),
            seq_fraction: if s.seq_ops + s.rand_ops == 0 {
                0.0
            } else {
                s.seq_ops as f64 / (s.seq_ops + s.rand_ops) as f64
            },
        }
    }
}

/// Builds the cluster for a run.
pub fn build_cluster(cfg: &RunConfig) -> Cluster {
    let mut ccfg = match cfg.device {
        DeviceKind::Ssd => ClusterConfig::ssd_testbed(cfg.k, cfg.m, cfg.clients),
        DeviceKind::Hdd => ClusterConfig::hdd_testbed(cfg.k, cfg.m, cfg.clients),
    };
    ccfg.file_size_per_client = cfg.file_mb << 20;
    ccfg.seed = cfg.seed;
    let device = cfg.device;
    let scheme = cfg.scheme.clone();
    let mut world = Cluster::new(ccfg, move |_| scheme.build(device));
    world.set_workload(&cfg.trace.profile());
    world
}

/// Memory-probe cadence during a run.
const MEM_PROBE_EVERY: Time = 250 * MILLISECOND;

fn mem_probe(w: &mut Cluster, sim: &mut Sim<Cluster>) {
    let (peak, _) = w.scheme_memory();
    w.core.metrics.mem_peak = w.core.metrics.mem_peak.max(peak);
    if w.core.accepting(sim.now()) {
        sim.schedule(MEM_PROBE_EVERY, mem_probe);
    }
}

/// Executes one run deterministically and harvests its metrics.
pub fn run_one(cfg: &RunConfig) -> RunResult {
    let mut world = build_cluster(cfg);
    let mut sim: Sim<Cluster> = Sim::new();
    sim.schedule(MEM_PROBE_EVERY, mem_probe);
    let duration = match cfg.ops_per_client {
        Some(n) => {
            for c in &mut world.core.clients {
                c.max_ops = Some(n);
            }
            // Effectively unbounded window; clients stop on their budget.
            3_600_000 * MILLISECOND
        }
        None => cfg.duration_ms * MILLISECOND,
    };
    run_workload(&mut world, &mut sim, duration);
    let window_end = if cfg.ops_per_client.is_some() {
        sim.now()
    } else {
        world.core.stop_at.expect("window set").max(sim.now())
    };
    let iops = world.core.metrics.iops(window_end);
    let mean_latency_us = world.core.metrics.mean_latency() / 1000.0;
    let per_second = world.core.metrics.per_second.clone();
    let cache_hits = world.core.metrics.read_cache_hits;

    let mut flush_s = 0.0;
    if cfg.flush_after {
        let t0 = sim.now();
        world.flush_all(&mut sim);
        flush_s = (sim.now() - t0) as f64 / SECOND as f64;
    }

    let (mem_now, _) = world.scheme_memory();
    let mem_peak = world.core.metrics.mem_peak.max(mem_now);
    const GIB: f64 = (1u64 << 30) as f64;
    RunResult {
        scheme: cfg.scheme.name(),
        trace: cfg.trace.name(),
        k: cfg.k,
        m: cfg.m,
        clients: cfg.clients,
        iops,
        mean_latency_us,
        per_second,
        dev: world.device_stats().into(),
        net_payload_gib: world.core.net.total_payload() as f64 / GIB,
        net_wire_gib: world.core.net.total_wire() as f64 / GIB,
        mem_peak,
        flush_s,
        cache_hits,
    }
}

/// Runs a batch across OS threads (each run stays deterministic).
pub fn run_many(cfgs: Vec<RunConfig>) -> Vec<RunResult> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .min(cfgs.len().max(1));
    if workers <= 1 || cfgs.len() == 1 {
        return cfgs.iter().map(run_one).collect();
    }
    let jobs = std::sync::Mutex::new(
        cfgs.into_iter()
            .enumerate()
            .collect::<std::collections::VecDeque<_>>(),
    );
    let results = std::sync::Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let job = jobs.lock().unwrap().pop_front();
                let Some((idx, cfg)) = job else { break };
                let r = run_one(&cfg);
                results.lock().unwrap().push((idx, r));
            });
        }
    });
    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Experiment scale: `Quick` for benches/tests, `Full` for the paper-shaped
/// reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Short windows, few clients — smoke-scale shape checks.
    Quick,
    /// Paper-shaped sweeps.
    Full,
}

impl Scale {
    /// Measured window per run, ms.
    pub fn duration_ms(&self) -> u64 {
        match self {
            Scale::Quick => 600,
            Scale::Full => 2_500,
        }
    }

    /// Client counts for throughput sweeps.
    pub fn client_counts(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![16],
            Scale::Full => vec![4, 16, 64],
        }
    }
}
