//! `tsuectl` — run one configurable cluster simulation from the command
//! line and print its summary. The single-run counterpart to the
//! `experiments` sweep binary.
//!
//! ```text
//! tsuectl [--scheme fo|fl|pl|plr|parix|cord|tsue] [--k 6] [--m 4]
//!         [--clients 16] [--trace ali|ten|src10|src22|proj2|prn1|hm0|usr0|mds0]
//!         [--trace-csv FILE] [--device ssd|hdd] [--duration-ms 2000]
//!         [--file-mb 12] [--seed 42] [--flush]
//! ```

use tsue_bench::{run_one, MsrSel, RunConfig, SchemeSel, TraceKind};
use tsue_ecfs::{run_workload, Cluster, DeviceKind};
use tsue_schemes::SchemeKind;
use tsue_sim::{Sim, MILLISECOND};

fn parse_args() -> Result<(RunConfig, Option<String>), String> {
    let mut cfg = RunConfig::ssd(TraceKind::Ten, 6, 4, 16, SchemeSel::Tsue);
    let mut csv: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scheme" => {
                cfg.scheme = match next(&mut i)?.to_ascii_lowercase().as_str() {
                    "fo" => SchemeSel::Baseline(SchemeKind::Fo),
                    "fl" => SchemeSel::Baseline(SchemeKind::Fl),
                    "pl" => SchemeSel::Baseline(SchemeKind::Pl),
                    "plr" => SchemeSel::Baseline(SchemeKind::Plr),
                    "parix" => SchemeSel::Baseline(SchemeKind::Parix),
                    "cord" => SchemeSel::Baseline(SchemeKind::Cord),
                    "tsue" => SchemeSel::Tsue,
                    s => return Err(format!("unknown scheme '{s}'")),
                }
            }
            "--k" => cfg.k = next(&mut i)?.parse().map_err(|e| format!("--k: {e}"))?,
            "--m" => cfg.m = next(&mut i)?.parse().map_err(|e| format!("--m: {e}"))?,
            "--clients" => {
                cfg.clients = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--duration-ms" => {
                cfg.duration_ms = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--duration-ms: {e}"))?
            }
            "--file-mb" => {
                cfg.file_mb = next(&mut i)?
                    .parse()
                    .map_err(|e| format!("--file-mb: {e}"))?
            }
            "--seed" => cfg.seed = next(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--device" => {
                cfg.device = match next(&mut i)?.to_ascii_lowercase().as_str() {
                    "ssd" => DeviceKind::Ssd,
                    "hdd" => DeviceKind::Hdd,
                    s => return Err(format!("unknown device '{s}'")),
                }
            }
            "--trace" => {
                cfg.trace = match next(&mut i)?.to_ascii_lowercase().as_str() {
                    "ali" => TraceKind::Ali,
                    "ten" => TraceKind::Ten,
                    "src10" => TraceKind::Msr(MsrSel::Src10),
                    "src22" => TraceKind::Msr(MsrSel::Src22),
                    "proj2" => TraceKind::Msr(MsrSel::Proj2),
                    "prn1" => TraceKind::Msr(MsrSel::Prn1),
                    "hm0" => TraceKind::Msr(MsrSel::Hm0),
                    "usr0" => TraceKind::Msr(MsrSel::Usr0),
                    "mds0" => TraceKind::Msr(MsrSel::Mds0),
                    s => return Err(format!("unknown trace '{s}'")),
                }
            }
            "--trace-csv" => csv = Some(next(&mut i)?),
            "--flush" => cfg.flush_after = true,
            "--help" | "-h" => {
                println!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    Ok((cfg, csv))
}

const HELP: &str = "tsuectl — run one TSUE cluster simulation\n\
  --scheme fo|fl|pl|plr|parix|cord|tsue   update scheme (default tsue)\n\
  --k N --m N                             RS shape (default 6,4)\n\
  --clients N                             closed-loop clients (default 16)\n\
  --trace ali|ten|src10|...|mds0          workload preset (default ten)\n\
  --trace-csv FILE                        replay a real CSV trace instead\n\
  --device ssd|hdd                        device class (default ssd)\n\
  --duration-ms N                         measured window (default 2000)\n\
  --file-mb N                             per-client file size (default 12)\n\
  --seed N                                workload seed (default 42)\n\
  --flush                                 drain logs and include recycle I/O";

fn main() {
    let (cfg, csv) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            std::process::exit(2);
        }
    };

    let result = if let Some(path) = csv {
        // Replay path: build the cluster, install the recorded trace.
        let ops = tsue_trace::load_csv(std::path::Path::new(&path), cfg.file_mb << 20)
            .unwrap_or_else(|e| {
                eprintln!("error: cannot load trace '{path}': {e}");
                std::process::exit(2);
            });
        let mut world = tsue_bench::build_cluster(&cfg);
        world.set_replay(&ops);
        let mut sim: Sim<Cluster> = Sim::new();
        let end = run_workload(&mut world, &mut sim, cfg.duration_ms * MILLISECOND);
        if cfg.flush_after {
            world.flush_all(&mut sim);
        }
        println!(
            "replayed {} recorded ops cyclically across {} clients",
            ops.len(),
            cfg.clients
        );
        let m = &world.core.metrics;
        println!(
            "ops={} iops={:.0} mean_latency_us={:.1}",
            m.ops_completed,
            m.iops(end),
            m.mean_latency() / 1000.0
        );
        let d = world.device_stats();
        println!(
            "device: rw_ops={} overwrites={} erases={} wa={:.2}",
            d.total_ops(),
            d.overwrite_ops,
            d.erase_ops,
            d.write_amplification()
        );
        return;
    } else {
        run_one(&cfg)
    };

    println!(
        "{} on {} RS({},{}) clients={} window={}ms",
        result.scheme, result.trace, result.k, result.m, result.clients, cfg.duration_ms
    );
    println!(
        "iops={:.0} mean_latency_us={:.1} cache_hits={}",
        result.iops, result.mean_latency_us, result.cache_hits
    );
    println!(
        "device: rw_ops={} ({:.2} GiB) overwrites={} ({:.2} GiB) erases={} wa={:.2} seq={:.0}%",
        result.dev.rw_ops,
        result.dev.rw_gib,
        result.dev.overwrite_ops,
        result.dev.overwrite_gib,
        result.dev.erases,
        result.dev.wa,
        result.dev.seq_fraction * 100.0
    );
    println!(
        "network: payload={:.3} GiB wire={:.3} GiB | peak scheme memory={:.1} MiB | flush={:.2}s",
        result.net_payload_gib,
        result.net_wire_gib,
        result.mem_peak as f64 / (1 << 20) as f64,
        result.flush_s
    );
}
