//! `tsuectl` — run cluster simulations from the command line.
//!
//! ```text
//! tsuectl run <scenario.json> [--out DIR] [--trace-out FILE]
//!                                             execute a scenario file
//! tsuectl bench [--quick] [--out FILE]        perf-regression report (BENCH_NN.json)
//! tsuectl trace-check <trace.json> [--result FILE]
//!                                             validate an emitted Chrome trace
//! tsuectl lint [--json] [--json-out FILE]     workspace invariant checker (tsue_lint)
//! tsuectl list                                registered schemes + bundled scenarios
//! tsuectl [flags...]                          ad-hoc single run (see --help)
//! ```
//!
//! Every execution path goes through the declarative scenario API: the
//! ad-hoc flags are parsed into a [`ScenarioSpec`] (printable via
//! `--print-spec`), and each scenario run's `{spec, result}` pair is
//! persisted under `--out` (default `results/`) so any result is
//! reproducible from its spec. The one exception is `--trace-csv`
//! replay: a recorded trace is an external input the spec alone cannot
//! reproduce, so that path prints its metrics without persisting.

use tsue_bench::{
    default_registry, render_listing, run_scenario_traced, RunResult, ScenarioOutcome,
    ScenarioSpec, SchemeSpec, TraceKind,
};
use tsue_ecfs::{run_workload, Cluster, DeviceKind, PlacementKind};
use tsue_net::{NetSpec, Topology};
use tsue_sim::{Sim, MILLISECOND};

const HELP: &str = "tsuectl — run TSUE cluster simulations\n\n\
subcommands:\n\
  run <scenario.json> [--out DIR] [--threads N] [--trace-out FILE]\n\
                                          execute a scenario file; --trace-out dumps the\n\
                                          op-lifecycle spans as Chrome trace_event JSON\n\
                                          (open in Perfetto / chrome://tracing)\n\
  bench [--quick] [--out FILE] [--threads N]\n\
                                          zero-copy perf-regression report\n\
                                          (micro kernels + cluster runs + integrity/scrub/obs rows;\n\
                                          --threads N adds a wall-clock scaling ladder;\n\
                                          default output BENCH_08.json)\n\
  trace-check <trace.json> [--result FILE]\n\
                                          validate a --trace-out dump: parses the JSON and\n\
                                          requires ≥1 complete span; with --result, requires\n\
                                          a span per op class the run actually completed\n\
  lint [--json] [--json-out FILE]         run the workspace invariant checker\n\
                                          (tsue_lint); exits nonzero on violations or\n\
                                          an exceeded exemption budget\n\
  list                                    print registered schemes and bundled scenarios\n\n\
ad-hoc flags (assembled into a scenario spec):\n\
  --scheme NAME                           update scheme by registry name (default tsue)\n\
  --knobs JSON                            per-scheme knob object, e.g. '{\"max_units\": 2}'\n\
  --k N --m N                             RS shape (default 6,4)\n\
  --clients N                             closed-loop clients (default 16)\n\
  --trace ali|ten|src10|...|mds0          workload preset (default ten)\n\
  --trace-csv FILE                        replay a real CSV trace instead\n\
  --device ssd|hdd                        device class (default ssd)\n\
  --net ethernet-25g|infiniband-40g       fabric override (default: by device)\n\
  --topology flat|rack4|rack4-hot|rack8   fabric shape (default flat switch)\n\
  --placement flat|rack-aware             block placement policy (default flat)\n\
  --duration-ms N                         measured window (default 2000)\n\
  --file-mb N                             per-client file size (default 12)\n\
  --seed N                                workload seed (default 42)\n\
  --flush                                 drain logs and include recycle I/O\n\
  --threads N                             worker-pool width (execution knob; results are\n\
                                          bit-identical at any value, default 1)\n\
  --out DIR                               where to persist {spec, result} (default results)\n\
  --print-spec                            print the scenario JSON and exit";

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{HELP}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => {
            if args.len() > 1 {
                fail(&format!("'list' takes no arguments, got '{}'", args[1]));
            }
            list();
        }
        Some("run") => run_file(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("trace-check") => trace_check(&args[1..]),
        Some("--help") | Some("-h") => println!("{HELP}"),
        _ => adhoc(&args),
    }
}

/// `tsuectl lint` — the workspace invariant checker, exposed beside the
/// run/bench entry points so one binary covers the whole workflow. Walks
/// up from the current directory to the `lint.toml` root and exits
/// nonzero unless the workspace is clean.
fn lint(rest: &[String]) {
    let mut json = false;
    let mut json_out: Option<String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--json" => json = true,
            "--json-out" => {
                i += 1;
                json_out = Some(
                    rest.get(i)
                        .cloned()
                        .unwrap_or_else(|| fail("missing value after --json-out")),
                );
            }
            other => fail(&format!("unknown lint flag '{other}'")),
        }
        i += 1;
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let root = tsue_lint::find_root(&cwd)
        .unwrap_or_else(|| fail(&format!("no lint.toml found above {}", cwd.display())));
    let report = match tsue_lint::run_workspace(&root) {
        Ok(r) => r,
        Err(e) => fail(&format!("lint failed: {e}")),
    };
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, report.render_json()) {
            fail(&format!("cannot write {path}: {e}"));
        }
    }
    print!(
        "{}",
        if json {
            report.render_json()
        } else {
            report.render_text()
        }
    );
    if !report.clean() {
        std::process::exit(1);
    }
}

/// `tsuectl bench` — the perf-regression harness: kernel baselines vs
/// zero-copy entry points plus materialized cluster runs, persisted as a
/// `BENCH_NN.json` stake for the trajectory.
fn bench(rest: &[String]) {
    let mut quick = false;
    let mut out = String::from("BENCH_08.json");
    let mut threads = 1usize;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = rest
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| fail("missing value after --out"));
            }
            "--threads" => {
                i += 1;
                threads = rest
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("missing or invalid value after --threads"));
            }
            other => fail(&format!("unknown flag '{other}' after 'bench'")),
        }
        i += 1;
    }
    // The stake id is the output filename's stem, so `--out BENCH_07.json`
    // (the next PR's stake) self-identifies without a source edit.
    let bench_id = std::path::Path::new(&out)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("BENCH")
        .to_string();
    let report = tsue_bench::bench_report(&bench_id, quick, threads);
    print!("{}", tsue_bench::render_bench(&report));
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    match std::fs::write(&out, json + "\n") {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => fail(&format!("cannot write '{out}': {e}")),
    }
}

/// `tsuectl list` — the registry and the bundled scenario files.
fn list() {
    print!("{}", render_listing(&default_registry()));
    println!("\ntraces: ali ten src10 src22 proj2 prn1 hm0 usr0 mds0");
    println!("fabrics: {}", NetSpec::names().join(" "));
    println!("topologies: {}", Topology::names().join(" "));
    println!("placements: {}", PlacementKind::names().join(" "));
}

/// `tsuectl run <scenario.json>` — execute one scenario file.
fn run_file(rest: &[String]) {
    let mut path: Option<String> = None;
    let mut out = String::from("results");
    let mut threads = 1usize;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" => {
                i += 1;
                out = rest
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| fail("missing value after --out"));
            }
            "--threads" => {
                i += 1;
                threads = rest
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("missing or invalid value after --threads"));
            }
            "--trace-out" => {
                i += 1;
                trace_out = Some(
                    rest.get(i)
                        .cloned()
                        .unwrap_or_else(|| fail("missing value after --trace-out")),
                );
            }
            flag if flag.starts_with('-') => fail(&format!("unknown flag '{flag}' after 'run'")),
            p if path.is_none() => path = Some(p.to_string()),
            extra => fail(&format!("unexpected argument '{extra}'")),
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| {
        fail("usage: tsuectl run <scenario.json> [--out DIR] [--threads N] [--trace-out FILE]")
    });
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read '{path}': {e}")));
    let spec: ScenarioSpec = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(&format!("cannot parse '{path}': {e}")));
    execute(spec, &out, threads, trace_out.as_deref());
}

/// Runs a validated spec, prints the summary, persists `{spec, result}`.
/// `threads` and `trace_out` are execution knobs only — the persisted
/// `{spec, result}` is byte-identical at any value of either.
fn execute(spec: ScenarioSpec, out: &str, threads: usize, trace_out: Option<&str>) {
    let (result, trace) =
        run_scenario_traced(&spec, &default_registry(), threads, trace_out.is_some())
            .unwrap_or_else(|e| fail(&e));
    print_result(&spec, &result);
    if let Some(path) = trace_out {
        let json = trace.expect("tracing was enabled");
        match std::fs::write(path, json) {
            Ok(()) => println!("\nwrote {path} (Chrome trace_event JSON)"),
            Err(e) => fail(&format!("cannot write trace '{path}': {e}")),
        }
    }
    let outcome = ScenarioOutcome {
        spec: spec.clone(),
        result,
    };
    let dir = std::path::Path::new(out);
    match tsue_bench::save_json(dir, &spec.name, &outcome) {
        Ok(()) => println!("\nwrote {}/{}.json (spec + result)", out, spec.name),
        Err(e) => eprintln!("\nwarning: could not persist outcome under '{out}': {e}"),
    }
}

/// `tsuectl trace-check` — validates a `--trace-out` dump: the file must
/// parse as Chrome `trace_event` JSON with at least one complete (`"X"`)
/// span; with `--result <outcome.json>`, every op class the run completed
/// must have at least one span in the trace. CI runs this against the
/// rack-failure scenario's trace artifact.
fn trace_check(rest: &[String]) {
    let mut path: Option<String> = None;
    let mut result_path: Option<String> = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--result" => {
                i += 1;
                result_path = Some(
                    rest.get(i)
                        .cloned()
                        .unwrap_or_else(|| fail("missing value after --result")),
                );
            }
            flag if flag.starts_with('-') => {
                fail(&format!("unknown flag '{flag}' after 'trace-check'"))
            }
            p if path.is_none() => path = Some(p.to_string()),
            extra => fail(&format!("unexpected argument '{extra}'")),
        }
        i += 1;
    }
    let path =
        path.unwrap_or_else(|| fail("usage: tsuectl trace-check <trace.json> [--result FILE]"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read '{path}': {e}")));
    let v = serde_json::value_from_str(&text)
        .unwrap_or_else(|e| fail(&format!("'{path}' is not valid JSON: {e}")));
    let Some(serde::Value::Array(events)) = v.get("traceEvents") else {
        fail(&format!("'{path}' has no traceEvents array"));
    };
    let mut complete = 0usize;
    let mut op_spans: Vec<String> = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(|p| match p {
            serde::Value::Str(s) => Some(s.as_str()),
            _ => None,
        });
        if ph != Some("X") {
            fail(&format!(
                "'{path}' contains a non-complete event (ph != \"X\")"
            ));
        }
        for key in ["name", "cat", "ts", "dur", "pid", "tid"] {
            if e.get(key).is_none() {
                fail(&format!("'{path}' has an event missing '{key}'"));
            }
        }
        complete += 1;
        if let (Some(serde::Value::Str(cat)), Some(serde::Value::Str(name))) =
            (e.get("cat"), e.get("name"))
        {
            if cat == "op" && !op_spans.contains(name) {
                op_spans.push(name.clone());
            }
        }
    }
    if complete == 0 {
        fail(&format!("'{path}' contains no spans"));
    }
    if let Some(rp) = result_path {
        let text = std::fs::read_to_string(&rp)
            .unwrap_or_else(|e| fail(&format!("cannot read '{rp}': {e}")));
        let outcome: ScenarioOutcome = serde_json::from_str(&text)
            .unwrap_or_else(|e| fail(&format!("cannot parse '{rp}': {e}")));
        for class in &outcome.result.obs.classes {
            if class.count > 0 && !op_spans.iter().any(|s| s == &class.name) {
                fail(&format!(
                    "run completed {} '{}' ops but the trace has no '{}' span \
                     (ring may have evicted them — raise the capacity or shorten the run)",
                    class.count, class.name, class.name
                ));
            }
        }
        println!(
            "trace-check ok: {} complete spans, op classes covered: {}",
            complete,
            op_spans.join(", ")
        );
    } else {
        println!("trace-check ok: {complete} complete spans");
    }
}

/// Ad-hoc flag path: flags → [`ScenarioSpec`] → same execution as `run`.
fn adhoc(args: &[String]) {
    let mut spec = ScenarioSpec::ssd("cli", TraceKind::Ten, 6, 4, 16, SchemeSpec::tsue());
    let mut csv: Option<String> = None;
    let mut out = String::from("results");
    let mut print_spec = false;
    let mut threads = 1usize;
    let mut i = 0;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i)
            .cloned()
            .unwrap_or_else(|| fail(&format!("missing value after {}", args[*i - 1])))
    };
    let parse_num = |flag: &str, v: String| -> u64 {
        v.parse().unwrap_or_else(|e| fail(&format!("{flag}: {e}")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--scheme" => spec.scheme.name = next(&mut i).to_ascii_lowercase(),
            "--knobs" => {
                let text = next(&mut i);
                let knobs = serde_json::value_from_str(&text)
                    .unwrap_or_else(|e| fail(&format!("--knobs: {e}")));
                spec.scheme.knobs = Some(knobs);
            }
            "--k" => spec.k = parse_num("--k", next(&mut i)) as usize,
            "--m" => spec.m = parse_num("--m", next(&mut i)) as usize,
            "--clients" => spec.clients = parse_num("--clients", next(&mut i)) as usize,
            "--duration-ms" => spec.duration_ms = Some(parse_num("--duration-ms", next(&mut i))),
            "--file-mb" => spec.file_mb = Some(parse_num("--file-mb", next(&mut i))),
            "--seed" => spec.seed = Some(parse_num("--seed", next(&mut i))),
            "--device" => {
                let v = next(&mut i);
                spec.device =
                    DeviceKind::parse(&v).unwrap_or_else(|| fail(&format!("unknown device '{v}'")));
            }
            "--net" => {
                let v = next(&mut i);
                spec.net = Some(NetSpec::by_name(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown fabric '{v}' (valid: {})",
                        NetSpec::names().join(", ")
                    ))
                }));
            }
            "--topology" => {
                let v = next(&mut i);
                spec.topology = Some(Topology::by_name(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown topology '{v}' (valid: {})",
                        Topology::names().join(", ")
                    ))
                }));
            }
            "--placement" => {
                let v = next(&mut i);
                spec.placement = Some(PlacementKind::parse(&v).unwrap_or_else(|| {
                    fail(&format!(
                        "unknown placement '{v}' (valid: {})",
                        PlacementKind::names().join(", ")
                    ))
                }));
            }
            "--trace" => {
                let v = next(&mut i);
                spec.trace =
                    TraceKind::parse(&v).unwrap_or_else(|| fail(&format!("unknown trace '{v}'")));
            }
            "--trace-csv" => csv = Some(next(&mut i)),
            "--flush" => spec.flush_after = Some(true),
            "--threads" => threads = parse_num("--threads", next(&mut i)) as usize,
            "--out" => out = next(&mut i),
            "--print-spec" => print_spec = true,
            other => fail(&format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    spec.name = format!(
        "cli-{}",
        ScenarioSpec::auto_name(&spec.scheme, spec.trace, spec.k, spec.m, spec.clients)
    );

    if print_spec {
        let registry = default_registry();
        spec.validate(&registry).unwrap_or_else(|e| fail(&e));
        println!(
            "{}",
            serde_json::to_string_pretty(&spec).expect("spec serializes")
        );
        return;
    }

    if let Some(path) = csv {
        replay_csv(&spec, &path);
        return;
    }
    execute(spec, &out, threads, None);
}

/// Replay path: build the scenario's cluster, then install the recorded
/// trace instead of the synthetic profile.
fn replay_csv(spec: &ScenarioSpec, path: &str) {
    let ops = tsue_trace::load_csv(std::path::Path::new(path), spec.file_mb() << 20)
        .unwrap_or_else(|e| fail(&format!("cannot load trace '{path}': {e}")));
    let registry = default_registry();
    let mut world = spec.build_cluster(&registry).unwrap_or_else(|e| fail(&e));
    world.set_replay(&ops);
    let mut sim: Sim<Cluster> = Sim::new();
    let end = run_workload(&mut world, &mut sim, spec.duration_ms() * MILLISECOND);
    if spec.flush_after() {
        world.flush_all(&mut sim);
    }
    println!(
        "replayed {} recorded ops cyclically across {} clients \
         (replay results are not persisted: the CSV is an external input)",
        ops.len(),
        spec.clients
    );
    let m = &world.core.metrics;
    println!(
        "ops={} iops={:.0} mean_latency_us={:.1}",
        m.ops_completed,
        m.iops(end),
        m.mean_latency() / 1000.0
    );
    let d = world.device_stats();
    println!(
        "device: rw_ops={} overwrites={} erases={} wa={:.2}",
        d.total_ops(),
        d.overwrite_ops,
        d.erase_ops,
        d.write_amplification()
    );
}

/// Prints the standard single-run summary block.
fn print_result(spec: &ScenarioSpec, result: &RunResult) {
    println!(
        "[{}] {} on {} RS({},{}) clients={} window={}ms",
        spec.name,
        result.scheme,
        result.trace,
        result.k,
        result.m,
        result.clients,
        spec.duration_ms()
    );
    println!(
        "iops={:.0} mean_latency_us={:.1} cache_hits={}",
        result.iops, result.mean_latency_us, result.cache_hits
    );
    println!(
        "latency us: p50={:.1} p90={:.1} p99={:.1} p999={:.1} max={:.1}",
        result.latency.p50_us,
        result.latency.p90_us,
        result.latency.p99_us,
        result.latency.p999_us,
        result.latency.max_us
    );
    println!(
        "device: rw_ops={} ({:.2} GiB) overwrites={} ({:.2} GiB) erases={} wa={:.2} seq={:.0}%",
        result.dev.rw_ops,
        result.dev.rw_gib,
        result.dev.overwrite_ops,
        result.dev.overwrite_gib,
        result.dev.erases,
        result.dev.wa,
        result.dev.seq_fraction * 100.0
    );
    println!(
        "network: payload={:.3} GiB wire={:.3} GiB (intra-rack {:.3} / cross-rack {:.3}) | \
         peak scheme memory={:.1} MiB | flush={:.2}s",
        result.net_payload_gib,
        result.net_wire_gib,
        result.net_intra_gib,
        result.net_cross_gib,
        result.mem_peak as f64 / (1 << 20) as f64,
        result.flush_s
    );
    if result.degraded_reads + result.degraded_writes + result.failed_reads > 0 {
        println!(
            "degraded: reads={} writes={} | failed reads (data loss)={}",
            result.degraded_reads, result.degraded_writes, result.failed_reads
        );
    }
    if result.journaled_writes + result.resync_bytes + result.rehomed_residual > 0 {
        println!(
            "durability: journaled {} extents ({:.2} MB), replayed {:.2} MB | \
             re-sync {:.2} MB, reclaimed {} rehomes ({} residual)",
            result.journaled_writes,
            result.journaled_bytes as f64 / 1e6,
            result.replayed_bytes as f64 / 1e6,
            result.resync_bytes as f64 / 1e6,
            result.reclaimed_blocks,
            result.rehomed_residual
        );
    }
    if result.blocks_scrubbed
        + result.corruptions_detected
        + result.torn_detected
        + result.replica_replayed_bytes
        > 0
    {
        println!(
            "integrity: scrubbed {} blocks | corruptions detected={} repaired={} \
             unrecoverable={} | torn appends detected={} replayed={} discarded={} | \
             replica replay {:.2} MB",
            result.blocks_scrubbed,
            result.corruptions_detected,
            result.corruptions_repaired,
            result.corruptions_unrecoverable,
            result.torn_detected,
            result.torn_replayed,
            result.torn_discarded,
            result.replica_replayed_bytes as f64 / 1e6
        );
    }
    if let Some(rec) = &result.recovery {
        for p in &rec.phases {
            println!(
                "recovery @{}ms kill {:?}: backlog {} | drain {:.0}ms + rebuild {:.0}ms | \
                 {}/{} blocks rebuilt ({} unrecoverable) | {:.1} MB/s | \
                 phase traffic intra {:.1} MB / cross {:.1} MB",
                p.at_ms,
                p.killed,
                p.backlog_at_failure,
                p.drain_ms,
                p.rebuild_ms,
                p.blocks_rebuilt,
                p.blocks_lost,
                p.blocks_unrecoverable,
                p.recovery_mb_s,
                p.intra_rack_mb,
                p.cross_rack_mb
            );
            let after = p
                .lat_after
                .as_ref()
                .map(|l| format!("{:.1}", l.p99_us))
                .unwrap_or_else(|| "-".into());
            println!(
                "  client p99 us: before={:.1} during={:.1} after={after}",
                p.lat_before.p99_us, p.lat_during.p99_us
            );
        }
        for r in &rec.resyncs {
            println!(
                "re-sync @{}ms heal {}: drain {:.0}ms + re-sync {:.0}ms | \
                 replayed {} blocks ({:.2} MB) | copied back {} ({:.2} MB) | \
                 reclaimed {} rehomes ({} residual) | parity repaired {}",
                r.at_ms,
                r.node,
                r.drain_ms,
                r.resync_ms,
                r.blocks_replayed,
                r.replayed_bytes as f64 / 1e6,
                r.blocks_copied_back,
                r.bytes_copied_back as f64 / 1e6,
                r.blocks_reclaimed,
                r.rehomed_residual,
                r.parity_repaired
            );
        }
        println!(
            "rebuild traffic: intra-rack {:.1} MB, cross-rack {:.1} MB",
            rec.rebuild_intra_bytes as f64 / 1e6,
            rec.rebuild_cross_bytes as f64 / 1e6
        );
    }
}
