//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [all|fig5|fig6a|fig6b|fig7|table1|table2|fig8a|fig8b] [--quick]
//! ```
//!
//! Results are printed as text tables and persisted as JSON under
//! `results/`. `--quick` runs shape-check scale (seconds); the default
//! full scale reproduces the paper's sweeps (minutes).

use std::path::PathBuf;
use tsue_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let outdir = PathBuf::from("results");

    let wall = std::time::Instant::now();
    match what.as_str() {
        "fig5" => fig5_cmd(scale, &outdir),
        "fig6a" => fig6a_cmd(scale, &outdir),
        "fig6b" => fig6b_cmd(scale, &outdir),
        "fig7" => fig7_cmd(scale, &outdir),
        "table1" => table1_cmd(scale, &outdir),
        "table2" => table2_cmd(scale, &outdir),
        "fig8a" => fig8a_cmd(scale, &outdir),
        "fig8b" => fig8b_cmd(scale, &outdir),
        "extras" => extras_cmd(scale, &outdir),
        "all" => {
            fig5_cmd(scale, &outdir);
            fig6a_cmd(scale, &outdir);
            fig6b_cmd(scale, &outdir);
            fig7_cmd(scale, &outdir);
            table1_cmd(scale, &outdir);
            table2_cmd(scale, &outdir);
            fig8a_cmd(scale, &outdir);
            fig8b_cmd(scale, &outdir);
            extras_cmd(scale, &outdir);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!(
                "usage: experiments [all|fig5|fig6a|fig6b|fig7|table1|table2|fig8a|fig8b] [--quick]"
            );
            std::process::exit(2);
        }
    }
    eprintln!(
        "\n[experiments] total wall time: {:.1}s",
        wall.elapsed().as_secs_f64()
    );
}

fn extras_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Extensions — §7 delta compression & §5.3.5 unit-size ablation");
    let (without, with) = ext_compression(scale);
    println!(
        "delta compression: net {:.3} GiB -> {:.3} GiB ({:.0}% saved), IOPS {:.0} -> {:.0}",
        without.net_payload_gib,
        with.net_payload_gib,
        100.0 * (1.0 - with.net_payload_gib / without.net_payload_gib.max(1e-9)),
        without.iops,
        with.iops
    );
    save_json(outdir, "ext_compression", &vec![without, with]).expect("write results");
    let rows = ext_unit_size(scale);
    println!("\nUNIT(MiB)  DATA_BUFFER(ms)      IOPS");
    for r in &rows {
        println!(
            "{:>8} {:>16.1} {:>9.0}",
            r.unit_mib, r.data_buffer_ms, r.iops
        );
    }
    save_json(outdir, "ext_unit_size", &rows).expect("write results");
}

fn banner(s: &str) {
    println!("\n================ {s} ================");
}

fn fig5_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 5 — SSD update throughput (Ali/Ten × RS codes × clients)");
    let rows = fig5(scale);
    println!("{}", render_throughput(&rows));
    save_json(outdir, "fig5", &rows).expect("write results");
}

fn fig6a_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 6a — TSUE IOPS over time (recycle overhead)");
    let r = fig6a(scale);
    println!("{}", render_fig6a(&r));
    save_json(outdir, "fig6a", &r).expect("write results");
}

fn fig6b_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 6b — IOPS & memory vs log-unit quota");
    let rows = fig6b(scale);
    println!("{}", render_fig6b(&rows));
    save_json(outdir, "fig6b", &rows).expect("write results");
}

fn fig7_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 7 — contribution breakdown (Baseline, +O1..+O5)");
    let rows = fig7(scale);
    println!("{}", render_fig7(&rows));
    save_json(outdir, "fig7", &rows).expect("write results");
}

fn table1_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Table 1 — storage workload & network traffic (Ten, RS(6,4))");
    let rows = table1(scale);
    let life = lifespan(&rows);
    println!("{}", render_table1(&rows, &life));
    save_json(outdir, "table1", &rows).expect("write results");
    save_json(outdir, "lifespan", &life).expect("write results");
}

fn table2_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Table 2 — data residence time per log layer (RS(12,4))");
    let rows = table2(scale);
    println!("{}", render_table2(&rows));
    save_json(outdir, "table2", &rows).expect("write results");
}

fn fig8a_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 8a — HDD update throughput over MSR volumes (RS(6,4))");
    let rows = fig8a(scale);
    println!("{}", render_throughput(&rows));
    save_json(outdir, "fig8a", &rows).expect("write results");
}

fn fig8b_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 8b — recovery bandwidth after updates (HDD)");
    let rows = fig8b(scale);
    println!("{}", render_fig8b(&rows));
    save_json(outdir, "fig8b", &rows).expect("write results");
}
