//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [all|fig5|fig6a|fig6b|fig7|table1|table2|fig8a|fig8b|extras|list] [--quick]
//! ```
//!
//! Results are printed as text tables and persisted as JSON under
//! `results/`; the sweeps with `RunResult`-shaped rows (fig5, table1,
//! fig8a) additionally write a `<name>_scenarios.json` with the
//! [`ScenarioSpec`]s that reproduce each data point (the derived-row
//! figures persist their reduced rows only). `--quick` runs
//! shape-check scale (seconds); the default full scale reproduces the
//! paper's sweeps (minutes). `list` prints the registered schemes and
//! bundled scenario files.

use std::path::PathBuf;
use tsue_bench::*;

const USAGE: &str = "usage: experiments \
[all|fig5|fig6a|fig6b|fig7|table1|table2|fig8a|fig8b|extras|list] [--quick]";

const COMMANDS: [&str; 11] = [
    "all", "fig5", "fig6a", "fig6b", "fig7", "table1", "table2", "fig8a", "fig8b", "extras", "list",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut what: Option<String> = None;
    for a in &args {
        match a.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag '{flag}'\n{USAGE}");
                std::process::exit(2);
            }
            cmd if COMMANDS.contains(&cmd) => {
                if let Some(prev) = &what {
                    eprintln!("error: got both '{prev}' and '{cmd}'\n{USAGE}");
                    std::process::exit(2);
                }
                what = Some(cmd.to_string());
            }
            other => {
                eprintln!("error: unknown experiment '{other}'\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let what = what.unwrap_or_else(|| "all".to_string());
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let outdir = PathBuf::from("results");

    let wall = std::time::Instant::now();
    match what.as_str() {
        "fig5" => fig5_cmd(scale, &outdir),
        "fig6a" => fig6a_cmd(scale, &outdir),
        "fig6b" => fig6b_cmd(scale, &outdir),
        "fig7" => fig7_cmd(scale, &outdir),
        "table1" => table1_cmd(scale, &outdir),
        "table2" => table2_cmd(scale, &outdir),
        "fig8a" => fig8a_cmd(scale, &outdir),
        "fig8b" => fig8b_cmd(scale, &outdir),
        "extras" => extras_cmd(scale, &outdir),
        "list" => {
            list_cmd();
            return;
        }
        "all" => {
            fig5_cmd(scale, &outdir);
            fig6a_cmd(scale, &outdir);
            fig6b_cmd(scale, &outdir);
            fig7_cmd(scale, &outdir);
            table1_cmd(scale, &outdir);
            table2_cmd(scale, &outdir);
            fig8a_cmd(scale, &outdir);
            fig8b_cmd(scale, &outdir);
            extras_cmd(scale, &outdir);
        }
        _ => unreachable!("commands are pre-validated"),
    }
    eprintln!(
        "\n[experiments] total wall time: {:.1}s",
        wall.elapsed().as_secs_f64()
    );
}

/// Prints the scheme registry and the bundled scenario files.
fn list_cmd() {
    print!("{}", render_listing(&default_registry()));
}

/// Persists a sweep's results plus the specs that reproduce them;
/// returns the bare rows for rendering.
fn save_outcomes(
    outdir: &std::path::Path,
    name: &str,
    outcomes: &[ScenarioOutcome],
) -> Vec<RunResult> {
    let rows: Vec<RunResult> = outcomes.iter().map(|o| o.result.clone()).collect();
    save_json(outdir, name, &rows).expect("write results");
    let specs: Vec<&ScenarioSpec> = outcomes.iter().map(|o| &o.spec).collect();
    save_json(outdir, &format!("{name}_scenarios"), &specs).expect("write scenarios");
    rows
}

fn extras_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Extensions — §7 delta compression & §5.3.5 unit-size ablation");
    let (without, with) = ext_compression(scale);
    println!(
        "delta compression: net {:.3} GiB -> {:.3} GiB ({:.0}% saved), IOPS {:.0} -> {:.0}",
        without.net_payload_gib,
        with.net_payload_gib,
        100.0 * (1.0 - with.net_payload_gib / without.net_payload_gib.max(1e-9)),
        without.iops,
        with.iops
    );
    save_json(outdir, "ext_compression", &vec![without, with]).expect("write results");
    let rows = ext_unit_size(scale);
    println!("\nUNIT(MiB)  DATA_BUFFER(ms)      IOPS");
    for r in &rows {
        println!(
            "{:>8} {:>16.1} {:>9.0}",
            r.unit_mib, r.data_buffer_ms, r.iops
        );
    }
    save_json(outdir, "ext_unit_size", &rows).expect("write results");
}

fn banner(s: &str) {
    println!("\n================ {s} ================");
}

fn fig5_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 5 — SSD update throughput (Ali/Ten × RS codes × clients)");
    let rows = save_outcomes(outdir, "fig5", &fig5(scale));
    println!("{}", render_throughput(&rows));
}

fn fig6a_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 6a — TSUE IOPS over time (recycle overhead)");
    let r = fig6a(scale);
    println!("{}", render_fig6a(&r));
    save_json(outdir, "fig6a", &r).expect("write results");
}

fn fig6b_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 6b — IOPS & memory vs log-unit quota");
    let rows = fig6b(scale);
    println!("{}", render_fig6b(&rows));
    save_json(outdir, "fig6b", &rows).expect("write results");
}

fn fig7_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 7 — contribution breakdown (Baseline, +O1..+O5)");
    let rows = fig7(scale);
    println!("{}", render_fig7(&rows));
    save_json(outdir, "fig7", &rows).expect("write results");
}

fn table1_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Table 1 — storage workload & network traffic (Ten, RS(6,4))");
    let rows = save_outcomes(outdir, "table1", &table1(scale));
    let life = lifespan(&rows);
    println!("{}", render_table1(&rows, &life));
    save_json(outdir, "lifespan", &life).expect("write results");
}

fn table2_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Table 2 — data residence time per log layer (RS(12,4))");
    let rows = table2(scale);
    println!("{}", render_table2(&rows));
    save_json(outdir, "table2", &rows).expect("write results");
}

fn fig8a_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 8a — HDD update throughput over MSR volumes (RS(6,4))");
    let rows = save_outcomes(outdir, "fig8a", &fig8a(scale));
    println!("{}", render_throughput(&rows));
}

fn fig8b_cmd(scale: Scale, outdir: &std::path::Path) {
    banner("Fig. 8b — recovery bandwidth after updates (HDD)");
    let rows = fig8b(scale);
    println!("{}", render_fig8b(&rows));
    save_json(outdir, "fig8b", &rows).expect("write results");
}
