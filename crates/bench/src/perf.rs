//! The perf-regression harness behind `tsuectl bench` and `BENCH_*.json`.
//!
//! Every PR that touches the hot path appends a `BENCH_NN.json` stake:
//! a machine-readable report pairing the **zero-copy** kernels and cluster
//! runs with a **baseline** measured in the same process via the legacy
//! allocating codec entry points (`data_delta`, `parity_delta`,
//! `combined_parity_delta`, `encode`) — the pre-refactor small-write path,
//! which the crate keeps precisely so the comparison cannot rot.
//!
//! Schema (`schema: "tsue-bench/v5"`):
//!
//! * `micro` — kernel rows: ops/sec for baseline vs zero-copy, speedup,
//!   and per-op allocation/copy traffic for both paths.
//! * `cluster` — materialized end-to-end runs (fig5/table1 shapes at
//!   bench scale): IOPS, mean latency, payload copies/op, bytes copied
//!   per op, buffer-pool hit rate.
//! * `scaling` — host wall clock across the `--threads` ladder (v2).
//! * `integrity` — checksum on/off wall-clock pairs for the same run:
//!   the hot-path digest tax, target < 5% (v3).
//! * `scrub` — full-sweep verification throughput in MB per host
//!   wall-second (v3).
//! * `cpu_features` / `gf_kernel` — detected SIMD features and the GF
//!   kernel tier the stake ran on, so trajectories across hosts stay
//!   interpretable (v4).
//! * `codec_tiers` — the same codec kernels measured once per available
//!   GF kernel tier (scalar → portable → SIMD), staking the dispatch
//!   speedup directly (v4).
//! * `obs` — observability overhead rows: the same run with op-lifecycle
//!   tracing off vs on (histograms are always on; the trace ring plus the
//!   Chrome-JSON dump at harvest is the only optional cost, and on short
//!   runs it dominates — hence tracing stays opt-in) (v5).
//! * `hist_record_ns` — the latency-histogram record cost, ns/op — the
//!   per-completion tax the always-on histograms add to the small-write
//!   path (v5).

use crate::{default_registry, ScenarioSpec, SchemeSpec, TraceKind};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use tsue_ec::RsCode;
use tsue_ecfs::{run_workload, Cluster};
use tsue_sim::{Sim, MILLISECOND};

/// One microbenchmark row: the same kernel, allocating vs scratch-reusing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MicroRow {
    /// Kernel name.
    pub name: String,
    /// Payload length per op, bytes.
    pub len: u64,
    /// Legacy allocating path, operations per second.
    pub baseline_ops_per_sec: f64,
    /// Zero-copy path, operations per second.
    pub zero_copy_ops_per_sec: f64,
    /// `zero_copy / baseline`.
    pub speedup: f64,
    /// Fresh buffers the baseline allocates per op.
    pub baseline_allocs_per_op: u64,
    /// Bytes of fresh-buffer traffic (alloc + fill) per baseline op.
    pub baseline_alloc_bytes_per_op: u64,
    /// Fresh buffers the zero-copy path allocates per op (steady state).
    pub zero_copy_allocs_per_op: u64,
}

/// One materialized cluster-run row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterRow {
    /// Scenario name.
    pub scenario: String,
    /// Scheme display name.
    pub scheme: String,
    /// Completed operations per second over the window.
    pub iops: f64,
    /// Mean op latency, µs.
    pub mean_latency_us: f64,
    /// Completed client ops.
    pub ops: u64,
    /// Deep payload copies per completed op.
    pub copies_per_op: f64,
    /// Bytes deep-copied per completed op.
    pub bytes_copied_per_op: f64,
    /// Buffer-pool hit rate over the run, `[0, 1]`.
    pub pool_hit_rate: f64,
    /// Pool misses (fresh allocations) per completed op.
    pub allocs_per_op: f64,
}

/// One thread-scaling row: the same materialized, flush-drained cluster
/// run at a given worker-pool width. Virtual-time metrics (IOPS,
/// latency) are bit-identical across rows — only the host wall clock
/// moves, which is the whole point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Scenario name.
    pub scenario: String,
    /// Worker-pool width (`--threads`).
    pub threads: usize,
    /// Host wall-clock for the whole run, milliseconds.
    pub wall_ms: f64,
    /// Completed client ops.
    pub ops: u64,
    /// Completed ops per wall-clock second.
    pub ops_per_wall_sec: f64,
    /// `wall_ms(threads=1) / wall_ms(this row)`.
    pub speedup: f64,
}

/// One checksum-overhead row: the same materialized run with the
/// per-page checksum machinery off vs on, host wall clock (virtual-time
/// results are identical by construction — digests are host work on the
/// byte path, which is exactly the overhead being measured).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IntegrityRow {
    /// Row name (workload shape).
    pub name: String,
    /// Completed client ops (identical on both sides).
    pub ops: u64,
    /// Best-of-N wall clock with checksums disabled, milliseconds.
    pub base_wall_ms: f64,
    /// Best-of-N wall clock with checksums enabled, milliseconds.
    pub checked_wall_ms: f64,
    /// `checked / base - 1` — the hot-path tax (target < 0.05).
    pub overhead_frac: f64,
}

/// One observability-overhead row: the same deterministic run with the
/// op-lifecycle trace ring off vs on (histograms and the metric series
/// are always on — the ring buffer is the only optional cost).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObsRow {
    /// Row name (workload shape).
    pub name: String,
    /// Completed client ops (identical on both sides).
    pub ops: u64,
    /// Best-of-N wall clock with tracing disabled, milliseconds.
    pub base_wall_ms: f64,
    /// Best-of-N wall clock with the trace ring enabled, milliseconds.
    pub traced_wall_ms: f64,
    /// `traced / base - 1` — the tracing tax. Span capture plus the
    /// Chrome-JSON dump at harvest; large on short runs, which is why
    /// the ring stays off unless `--trace-out` asks for it.
    pub overhead_frac: f64,
}

/// One scrub-throughput row: an authoritative full sweep over a
/// populated cluster, host wall clock.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScrubRow {
    /// Row name.
    pub name: String,
    /// Blocks verified by the sweep.
    pub blocks: u64,
    /// Bytes verified by the sweep.
    pub bytes: u64,
    /// Corrupt pages repaired (0 for the clean row).
    pub repaired: u64,
    /// Host wall clock for the sweep, milliseconds.
    pub wall_ms: f64,
    /// Verification throughput, MB per host wall-clock second.
    pub mb_per_wall_sec: f64,
}

/// One per-tier codec row: the same kernel measured with GF dispatch
/// forced onto one tier. `speedup_vs_scalar` is the headline number —
/// how much the split-nibble SIMD path buys over the byte-at-a-time
/// reference on this host.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CodecTierRow {
    /// Kernel tier name (`scalar`, `portable`, `ssse3`, `avx2`, `neon`).
    pub tier: String,
    /// Kernel name (`gf_mul_add`, `rs_encode`, `stripe_replay`).
    pub name: String,
    /// Payload length per op, bytes.
    pub len: u64,
    /// Operations per second on this tier.
    pub ops_per_sec: f64,
    /// Payload throughput, MB processed per second.
    pub mb_per_sec: f64,
    /// `ops_per_sec / ops_per_sec(scalar)` for the same kernel.
    pub speedup_vs_scalar: f64,
}

/// The full report persisted as `BENCH_NN.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report schema identifier.
    pub schema: String,
    /// Which stake in the trajectory this is (`"BENCH_03"`, …).
    pub bench_id: String,
    /// `--quick` runs trim windows and the scheme lineup.
    pub quick: bool,
    /// Physical cores on the host that produced the stake — scaling
    /// rows are only meaningful relative to this.
    pub host_cores: usize,
    /// Kernel comparisons.
    pub micro: Vec<MicroRow>,
    /// End-to-end materialized runs.
    pub cluster: Vec<ClusterRow>,
    /// Wall-clock thread-scaling ladder (empty when `--threads` ≤ 1;
    /// absent from pre-v2 stakes).
    pub scaling: Vec<ScalingRow>,
    /// Checksum hot-path overhead rows (absent from pre-v3 stakes).
    pub integrity: Vec<IntegrityRow>,
    /// Scrub-throughput rows (absent from pre-v3 stakes).
    pub scrub: Vec<ScrubRow>,
    /// SIMD-relevant CPU features detected on the host (absent from
    /// pre-v4 stakes).
    pub cpu_features: Vec<String>,
    /// The GF kernel tier every non-`codec_tiers` number ran on (absent
    /// from pre-v4 stakes).
    pub gf_kernel: String,
    /// Per-tier codec kernel rows (absent from pre-v4 stakes).
    pub codec_tiers: Vec<CodecTierRow>,
    /// Tracing on/off overhead rows (absent from pre-v5 stakes).
    pub obs: Vec<ObsRow>,
    /// Latency-histogram record cost, ns per sample (absent from pre-v5
    /// stakes) — the per-completion tax of the always-on histograms.
    pub hist_record_ns: f64,
}

/// Calibrates a batch of `f` that fills `floor`; returns the batch size.
fn calibrate(floor: Duration, f: &mut dyn FnMut()) -> u64 {
    let mut n: u64 = 1;
    loop {
        let t = Instant::now();
        for _ in 0..n {
            f();
        }
        if t.elapsed() >= floor || n >= 1 << 28 {
            return n;
        }
        n *= 2;
    }
}

/// Paired ops/sec of two variants of one kernel: trials alternate
/// baseline/zero-copy batches so scheduler noise lands on both sides, and
/// each side reports its minimum-time (best) trial — the conventional
/// noise-robust estimator.
fn measure_pair(
    floor: Duration,
    mut baseline: impl FnMut(),
    mut zero_copy: impl FnMut(),
) -> (f64, f64) {
    let nb = calibrate(floor, &mut baseline);
    let nz = calibrate(floor, &mut zero_copy);
    let (mut best_b, mut best_z) = (f64::MIN, f64::MIN);
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..nb {
            baseline();
        }
        best_b = best_b.max(nb as f64 / t.elapsed().as_secs_f64().max(1e-9));
        let t = Instant::now();
        for _ in 0..nz {
            zero_copy();
        }
        best_z = best_z.max(nz as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    (best_b, best_z)
}

/// Best-of-5 ops/sec of a single kernel closure.
fn measure_one(floor: Duration, mut f: impl FnMut()) -> f64 {
    let n = calibrate(floor, &mut f);
    let mut best = f64::MIN;
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..n {
            f();
        }
        best = best.max(n as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    best
}

/// The `codec_tiers` section: three codec kernels measured once per GF
/// kernel tier the host can run, with dispatch forced via
/// `set_kernel_tier` (restored to the entry tier afterwards — safe at
/// any time because all tiers are byte-identical).
///
/// * `gf_mul_add` — the raw fused multiply-accumulate over 64 KiB, the
///   primitive every encode/delta path reduces to.
/// * `rs_encode` — full-stripe RS(6,4) `encode_into` at 64 KiB blocks.
/// * `stripe_replay` — the Eq. 5 combined parity delta at 4 KiB deltas.
fn codec_tier_rows(floor: Duration) -> Vec<CodecTierRow> {
    use tsue_gf::KernelTier;
    let entry = tsue_gf::kernel_tier();

    let (k, m) = (6usize, 4usize);
    let rs = RsCode::new(k, m).unwrap();
    let enc_len = 64 << 10;
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..enc_len).map(|j| (i * 31 + j) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    let mut parity: Vec<Vec<u8>> = vec![vec![0u8; enc_len]; m];

    let delta_len = 4096usize;
    let deltas: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..delta_len).map(|j| (i * 13 + j * 7 + 1) as u8).collect())
        .collect();
    let pairs: Vec<(usize, &[u8])> = deltas
        .iter()
        .enumerate()
        .map(|(i, d)| (i, d.as_slice()))
        .collect();
    let mut accs: Vec<Vec<u8>> = vec![vec![0u8; delta_len]; m];

    let mul_src: Vec<u8> = (0..enc_len).map(|i| (i * 17 + 5) as u8).collect();
    let mut mul_dst = vec![0u8; enc_len];

    let mut rows = Vec::new();
    for tier in KernelTier::available() {
        tsue_gf::set_kernel_tier(tier).unwrap();
        let mul_add = measure_one(floor, || {
            tsue_gf::mul_add_slice(29, &mul_src, &mut mul_dst);
            std::hint::black_box(&mul_dst);
        });
        let encode = measure_one(floor, || {
            rs.encode_into(&refs, &mut parity).unwrap();
            std::hint::black_box(&parity);
        });
        let replay = measure_one(floor, || {
            for (j, acc) in accs.iter_mut().enumerate() {
                rs.fill_combined_parity_delta(j, &pairs, acc);
                std::hint::black_box(&acc);
            }
        });
        for (name, len, ops, bytes_per_op) in [
            ("gf_mul_add", enc_len, mul_add, enc_len),
            ("rs_encode", enc_len, encode, k * enc_len),
            ("stripe_replay", delta_len, replay, k * m * delta_len),
        ] {
            rows.push(CodecTierRow {
                tier: tier.name().to_string(),
                name: name.to_string(),
                len: len as u64,
                ops_per_sec: ops,
                mb_per_sec: ops * bytes_per_op as f64 / 1e6,
                speedup_vs_scalar: 1.0, // filled in below
            });
        }
    }
    tsue_gf::set_kernel_tier(entry).unwrap();

    let scalar: Vec<(String, f64)> = rows
        .iter()
        .filter(|r| r.tier == "scalar")
        .map(|r| (r.name.clone(), r.ops_per_sec))
        .collect();
    for row in &mut rows {
        if let Some((_, base)) = scalar.iter().find(|(n, _)| *n == row.name) {
            row.speedup_vs_scalar = row.ops_per_sec / base.max(1e-9);
        }
    }
    rows
}

/// The small-write delta path as TSUE's two-stage pipeline runs it, per
/// client write: payload lands → DataLog append → replica forward →
/// recycle captures `new ⊕ old` and installs the new content → the raw
/// delta forwards to the DeltaLog and folds into the hot range (Eq. 3).
/// Deliberately **no GF multiply** — in the three-layer design, parity
/// scaling happens later, batched per stripe in the DeltaLog replay (the
/// `stripe_replay` row), which is exactly why the front end must not be
/// dominated by allocator traffic.
///
/// The baseline reproduces the **pre-refactor** data plane step for step:
/// `Vec`-backed chunks deep-copied at each hop (the clones the refactor
/// removed at `tsue.rs` append/forward/collect and `peek_block_range`)
/// and an allocating `data_delta`. The zero-copy path is the shipped one:
/// the payload enters a pool-recycled buffer once and every later hop is
/// a refcount bump; the delta is captured into pooled scratch in one
/// fused pass.
fn micro_small_write_delta(floor: Duration, len: usize) -> MicroRow {
    let incoming: Vec<u8> = (0..len).map(|i| (i * 17 + 3) as u8).collect();
    let mut store_b: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
    let mut store_z = store_b.clone();
    let mut folded_b = vec![0u8; len];
    let mut folded_z = vec![0u8; len];
    let mut scratch = vec![0u8; len];

    let (baseline, zero_copy) = measure_pair(
        floor,
        || {
            // Wire receive materializes a fresh Vec…
            let payload = incoming.clone();
            // …cloned into the DataLog index (pre-refactor tsue.rs:344)…
            let logged = payload.clone();
            // …cloned again when recycle collects jobs (tsue.rs:1006).
            let newest = logged.clone();
            // peek_block_range copied the old content out of the store.
            let old_copy = store_b.clone();
            let d = tsue_ec::data_delta(&old_copy, &newest);
            store_b.copy_from_slice(&newest);
            // DeltaForward cloned the delta payload (tsue.rs:631).
            let fwd = d.clone();
            // DeltaLog same-offset fold (Eq. 3).
            tsue_ec::merge_deltas(&mut folded_b, &fwd);
            std::hint::black_box(&folded_b);
        },
        || {
            // Wire receive into a pool-recycled buffer; every later hop
            // is a refcount bump.
            let payload = tsue_buf::BytesMut::copy_of(&incoming).freeze();
            let logged = payload.clone();
            let newest = logged.clone();
            // One pass captures new ⊕ old and installs the new content.
            tsue_ec::data_delta_into(&store_z, &newest, &mut scratch);
            store_z.copy_from_slice(&newest);
            // DeltaLog same-offset fold (Eq. 3), in place on the scratch.
            tsue_ec::merge_deltas(&mut folded_z, &scratch);
            std::hint::black_box(&folded_z);
        },
    );

    MicroRow {
        name: format!("small_write_delta_{len}"),
        len: len as u64,
        baseline_ops_per_sec: baseline,
        zero_copy_ops_per_sec: zero_copy,
        speedup: zero_copy / baseline,
        // Per client write: payload, append clone, collect clone, old
        // peek, delta, forward clone.
        baseline_allocs_per_op: 6,
        baseline_alloc_bytes_per_op: (6 * len) as u64,
        zero_copy_allocs_per_op: 0,
    }
}

/// The stripe-batched DeltaLog replay (paper Eq. 5): same-offset deltas
/// from `k` data blocks of one stripe fold into one combined parity delta
/// per parity block.
///
/// The baseline reproduces the **pre-refactor** `recycle_delta_unit` step
/// for step: every logged range was cloned out of the index, GF-scaled
/// into a fresh zero-initialized buffer (`gf_scaled`), and XOR-folded into
/// the combined map in a separate pass — `k` clones plus `k` zeroed
/// temporaries plus `2k` passes per parity. The zero-copy path is the
/// shipped one: borrowed ranges, one fused multiply-accumulate per block
/// into a reused accumulator.
fn micro_stripe_replay(floor: Duration, len: usize) -> MicroRow {
    let (k, m) = (6usize, 4usize);
    let rs = RsCode::new(k, m).unwrap();
    let deltas: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..len).map(|j| (i * 13 + j * 7 + 1) as u8).collect())
        .collect();
    let pairs: Vec<(usize, &[u8])> = deltas
        .iter()
        .enumerate()
        .map(|(i, d)| (i, d.as_slice()))
        .collect();

    let mut accs: Vec<Vec<u8>> = vec![vec![0u8; len]; m];
    let (baseline, zero_copy) = measure_pair(
        floor,
        || {
            for j in 0..m {
                let mut combined = vec![0u8; len];
                for (role, d) in &pairs {
                    // Pre-refactor shape: clone the range out of the
                    // borrowed index (tsue.rs:705), gf_scaled into a fresh
                    // zeroed buffer, then a separate XOR fold into the
                    // combined map.
                    let owned = d.to_vec();
                    let mut scaled = vec![0u8; len];
                    tsue_gf::mul_slice(rs.coefficient(j, *role), &owned, &mut scaled);
                    tsue_ec::merge_deltas(&mut combined, &scaled);
                }
                std::hint::black_box(&combined);
            }
        },
        || {
            for (j, acc) in accs.iter_mut().enumerate() {
                rs.fill_combined_parity_delta(j, &pairs, acc);
                std::hint::black_box(&acc);
            }
        },
    );

    MicroRow {
        name: "stripe_replay".into(),
        len: len as u64,
        baseline_ops_per_sec: baseline,
        zero_copy_ops_per_sec: zero_copy,
        speedup: zero_copy / baseline,
        baseline_allocs_per_op: (m * (2 * k + 1)) as u64,
        baseline_alloc_bytes_per_op: (m * (2 * k + 1) * len) as u64,
        zero_copy_allocs_per_op: 0,
    }
}

/// Full-stripe encode: allocating `encode` vs buffer-reusing `encode_into`.
fn micro_encode(floor: Duration, len: usize) -> MicroRow {
    let (k, m) = (6usize, 4usize);
    let rs = RsCode::new(k, m).unwrap();
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..len).map(|j| (i * 31 + j) as u8).collect())
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    let mut parity: Vec<Vec<u8>> = vec![vec![0u8; len]; m];

    let (baseline, zero_copy) = measure_pair(
        floor,
        || {
            std::hint::black_box(rs.encode(&refs).unwrap());
        },
        || {
            rs.encode_into(&refs, &mut parity).unwrap();
            std::hint::black_box(&parity);
        },
    );

    MicroRow {
        name: "rs_encode".into(),
        len: len as u64,
        baseline_ops_per_sec: baseline,
        zero_copy_ops_per_sec: zero_copy,
        speedup: zero_copy / baseline,
        baseline_allocs_per_op: m as u64,
        baseline_alloc_bytes_per_op: (m * len) as u64,
        zero_copy_allocs_per_op: 0,
    }
}

/// Runs one scenario **materialized** (payload bytes flow end to end) and
/// harvests the zero-copy counters alongside throughput.
fn cluster_row(mut spec: ScenarioSpec, quick: bool) -> ClusterRow {
    if quick {
        spec.duration_ms = Some(150);
        spec.file_mb = Some(4);
    }
    let registry = default_registry();
    let scheme = spec.scheme_display(&registry);
    let builder = spec
        .builder(&registry)
        .expect("bench scenarios are valid")
        .materialize(true);
    let mut world = builder.build();
    let mut sim: Sim<Cluster> = Sim::new();
    // Setup traffic (file provisioning) must not pollute the counters.
    let start = tsue_buf::stats();
    run_workload(&mut world, &mut sim, spec.duration_ms() * MILLISECOND);
    let window_end = world.core.stop_at.expect("window set").max(sim.now());
    if spec.flush_after() {
        world.flush_all(&mut sim);
    }
    world
        .core
        .metrics
        .absorb_buf_stats(tsue_buf::stats().since(&start));
    let met = &world.core.metrics;
    let ops = met.ops_completed.max(1);
    ClusterRow {
        scenario: spec.name.clone(),
        scheme,
        iops: met.iops(window_end),
        mean_latency_us: met.mean_latency() / 1000.0,
        ops: met.ops_completed,
        copies_per_op: met.payload_copies as f64 / ops as f64,
        bytes_copied_per_op: met.payload_bytes_copied as f64 / ops as f64,
        pool_hit_rate: met.buf_pool_hit_rate(),
        allocs_per_op: met.buf_pool_misses as f64 / ops as f64,
    }
}

/// Runs the scaling scenario once at `threads` pool workers and times
/// the host wall clock. The spec is a flush-drained materialized TSUE
/// run, so the measured window is dominated by exactly the byte kernels
/// the pool parallelizes (payload gen, delta capture, Eq. 5 combine,
/// parity XOR).
fn scaling_row(quick: bool, threads: usize) -> ScalingRow {
    let mut spec = ScenarioSpec::ssd(
        "scale-tsue-flush",
        TraceKind::Ten,
        6,
        4,
        8,
        SchemeSpec::tsue(),
    );
    spec.duration_ms = Some(if quick { 120 } else { 400 });
    spec.file_mb = Some(if quick { 4 } else { 8 });
    spec.flush_after = Some(true);
    let registry = default_registry();
    let builder = spec
        .builder(&registry)
        .expect("bench scenarios are valid")
        .materialize(true)
        .threads(threads);
    let t0 = Instant::now();
    let mut world = builder.build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, spec.duration_ms() * MILLISECOND);
    world.flush_all(&mut sim);
    let wall = t0.elapsed().as_secs_f64();
    let ops = world.core.metrics.ops_completed;
    ScalingRow {
        scenario: spec.name.clone(),
        threads,
        wall_ms: wall * 1e3,
        ops,
        ops_per_wall_sec: ops as f64 / wall.max(1e-9),
        speedup: 1.0, // filled in once the threads=1 row exists
    }
}

/// Builds and runs one materialized TSUE cluster with checksums on or
/// off, returning `(wall_seconds, ops)`. The DES outcome is identical
/// either way; only the host cost of maintaining the digest tables
/// moves.
fn checksum_trial(spec: &ScenarioSpec, checksums: bool) -> (f64, u64) {
    let registry = default_registry();
    let builder = spec
        .builder(&registry)
        .expect("bench scenarios are valid")
        .materialize(true)
        .checksums(checksums);
    let t0 = Instant::now();
    let mut world = builder.build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, spec.duration_ms() * MILLISECOND);
    (t0.elapsed().as_secs_f64(), world.core.metrics.ops_completed)
}

/// Measures the checksum tax on one workload shape: best-of-3 wall
/// clock for the same run with digests off vs on. Trials alternate so
/// host noise lands on both sides.
fn integrity_row(name: &str, trace: TraceKind, quick: bool) -> IntegrityRow {
    let mut spec = ScenarioSpec::ssd(name, trace, 6, 4, 8, SchemeSpec::tsue());
    spec.duration_ms = Some(if quick { 150 } else { 400 });
    spec.file_mb = Some(if quick { 4 } else { 6 });
    let (mut base, mut checked, mut ops) = (f64::MAX, f64::MAX, 0);
    for _ in 0..3 {
        let (w, _) = checksum_trial(&spec, false);
        base = base.min(w);
        let (w, o) = checksum_trial(&spec, true);
        checked = checked.min(w);
        ops = o;
    }
    IntegrityRow {
        name: name.to_string(),
        ops,
        base_wall_ms: base * 1e3,
        checked_wall_ms: checked * 1e3,
        overhead_frac: checked / base.max(1e-9) - 1.0,
    }
}

/// Runs one scenario with tracing off or on, returning
/// `(wall_seconds, client_ops)`. The DES outcome is identical either
/// way; only the host cost of the trace ring moves.
fn obs_trial(spec: &ScenarioSpec, trace: bool) -> (f64, u64) {
    let registry = default_registry();
    let t0 = Instant::now();
    let (result, _) =
        crate::run_scenario_traced(spec, &registry, 1, trace).expect("bench scenarios are valid");
    (t0.elapsed().as_secs_f64(), result.latency.count)
}

/// Measures the tracing tax on one workload shape: best-of-3 wall clock
/// for the same run with the trace ring off vs on. Trials alternate so
/// host noise lands on both sides.
fn obs_row(name: &str, trace: TraceKind, quick: bool) -> ObsRow {
    let mut spec = ScenarioSpec::ssd(name, trace, 6, 4, 8, SchemeSpec::tsue());
    spec.duration_ms = Some(if quick { 150 } else { 400 });
    spec.file_mb = Some(if quick { 4 } else { 6 });
    let (mut base, mut traced, mut ops) = (f64::MAX, f64::MAX, 0);
    for _ in 0..3 {
        let (w, o) = obs_trial(&spec, false);
        base = base.min(w);
        ops = o;
        let (w, _) = obs_trial(&spec, true);
        traced = traced.min(w);
    }
    ObsRow {
        name: name.to_string(),
        ops,
        base_wall_ms: base * 1e3,
        traced_wall_ms: traced * 1e3,
        overhead_frac: traced / base.max(1e-9) - 1.0,
    }
}

/// Measures [`tsue_obs::Histogram::record`] in isolation: the ns/op the
/// always-on latency histograms add per completion on the hot path.
fn hist_record_cost(floor: Duration) -> f64 {
    let mut h = tsue_obs::Histogram::new();
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut f = || {
        // Cheap xorshift so the bucket index varies like real latencies.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        h.record(x & ((1 << 30) - 1));
    };
    let n = calibrate(floor, &mut f);
    let t0 = Instant::now();
    for _ in 0..n {
        f();
    }
    let ns = t0.elapsed().as_secs_f64() * 1e9 / n as f64;
    std::hint::black_box(&h);
    ns
}

/// Times one authoritative full scrub sweep over a freshly populated
/// cluster (clean: pure verification, no repairs).
fn scrub_row(quick: bool) -> ScrubRow {
    let mut spec = ScenarioSpec::ssd("scrub-sweep", TraceKind::Ten, 6, 4, 8, SchemeSpec::tsue());
    spec.duration_ms = Some(if quick { 100 } else { 200 });
    spec.file_mb = Some(if quick { 4 } else { 8 });
    let registry = default_registry();
    let builder = spec
        .builder(&registry)
        .expect("bench scenarios are valid")
        .materialize(true)
        .checksums(true);
    let mut world = builder.build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, spec.duration_ms() * MILLISECOND);
    world.flush_all(&mut sim);
    let bs = world.core.cfg.stripe.block_size;
    let mut best = f64::MAX;
    let mut report = tsue_ecfs::scrub::FullScrubReport::default();
    for _ in 0..3 {
        let t0 = Instant::now();
        report = tsue_ecfs::run_full_scrub(&mut world, &mut sim);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let bytes = report.scrubbed * bs;
    ScrubRow {
        name: "full_sweep_clean".into(),
        blocks: report.scrubbed,
        bytes,
        repaired: report.repaired,
        wall_ms: best * 1e3,
        mb_per_wall_sec: bytes as f64 / 1e6 / best.max(1e-9),
    }
}

/// The `--threads N` ladder: powers of two up to `n`, plus `n` itself.
fn thread_ladder(n: usize) -> Vec<usize> {
    let n = n.max(1);
    let mut ladder: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= n)
        .collect();
    if !ladder.contains(&n) {
        ladder.push(n);
    }
    ladder
}

/// Assembles the full report: the kernel rows plus fig5/table1-shaped
/// materialized runs (`--quick` trims windows and the scheme lineup),
/// plus — when `threads > 1` — a wall-clock scaling ladder over the
/// worker pool. `bench_id` names the stake (derived from the output
/// filename by `tsuectl bench`, so `--out BENCH_05.json`
/// self-identifies correctly).
pub fn bench_report(bench_id: &str, quick: bool, threads: usize) -> BenchReport {
    let floor = if quick {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(250)
    };
    let micro = vec![
        micro_small_write_delta(floor, 512),
        micro_small_write_delta(floor, 1024),
        micro_small_write_delta(floor, 4096),
        micro_stripe_replay(floor, 4096),
        micro_encode(floor, 64 << 10),
    ];

    // Fig. 5 shape: the update-throughput lineup on one RS(6,4) cell.
    let lineup: Vec<SchemeSpec> = if quick {
        ["fo", "cord", "tsue"]
            .into_iter()
            .map(SchemeSpec::named)
            .collect()
    } else {
        SchemeSpec::fig5_lineup()
    };
    let mut cluster = Vec::new();
    for scheme in lineup {
        let name = format!("fig5-{}", scheme.name);
        let mut s = ScenarioSpec::ssd(name, TraceKind::Ten, 6, 4, 8, scheme);
        s.duration_ms = Some(400);
        s.file_mb = Some(6);
        cluster.push(cluster_row(s, quick));
    }
    // Table 1 shape: fixed work, drained logs (recycle I/O included).
    let mut t1 = ScenarioSpec::ssd(
        "table1-tsue-flush",
        TraceKind::Ali,
        6,
        4,
        8,
        SchemeSpec::tsue(),
    );
    t1.duration_ms = Some(400);
    t1.file_mb = Some(6);
    t1.flush_after = Some(true);
    cluster.push(cluster_row(t1, quick));

    let mut scaling = Vec::new();
    if threads > 1 {
        for t in thread_ladder(threads) {
            scaling.push(scaling_row(quick, t));
        }
        let base = scaling[0].wall_ms;
        for row in &mut scaling {
            row.speedup = base / row.wall_ms.max(1e-9);
        }
    }

    let integrity = vec![
        integrity_row("integrity-ten", TraceKind::Ten, quick),
        integrity_row("integrity-ali", TraceKind::Ali, quick),
    ];
    let scrub = vec![scrub_row(quick)];
    let codec_tiers = codec_tier_rows(floor);
    let obs = vec![
        obs_row("obs-ten", TraceKind::Ten, quick),
        obs_row("obs-ali", TraceKind::Ali, quick),
    ];
    let hist_record_ns = hist_record_cost(floor);

    BenchReport {
        schema: "tsue-bench/v5".into(),
        bench_id: bench_id.to_string(),
        quick,
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        micro,
        cluster,
        scaling,
        integrity,
        scrub,
        cpu_features: tsue_gf::cpu_features()
            .into_iter()
            .map(str::to_string)
            .collect(),
        gf_kernel: tsue_gf::kernel_tier().name().to_string(),
        codec_tiers,
        obs,
        hist_record_ns,
    }
}

/// Renders the human summary printed after a bench run.
pub fn render_bench(r: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{} (quick={})", r.bench_id, r.quick);
    if !r.gf_kernel.is_empty() {
        let _ = writeln!(
            out,
            "gf kernel: {} (cpu features: {})",
            r.gf_kernel,
            if r.cpu_features.is_empty() {
                "none".to_string()
            } else {
                r.cpu_features.join(", ")
            }
        );
    }
    let _ = writeln!(
        out,
        "{:<20} {:>6} {:>14} {:>14} {:>8} {:>14}",
        "kernel", "len", "baseline op/s", "zero-copy op/s", "speedup", "allocs/op 0->"
    );
    for m in &r.micro {
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:>14.0} {:>14.0} {:>7.2}x {:>7} -> {}",
            m.name,
            m.len,
            m.baseline_ops_per_sec,
            m.zero_copy_ops_per_sec,
            m.speedup,
            m.baseline_allocs_per_op,
            m.zero_copy_allocs_per_op
        );
    }
    let _ = writeln!(
        out,
        "\n{:<16} {:<8} {:>10} {:>12} {:>10} {:>12} {:>9}",
        "scenario", "scheme", "iops", "latency_us", "copies/op", "bytes/op", "pool_hit"
    );
    for c in &r.cluster {
        let _ = writeln!(
            out,
            "{:<16} {:<8} {:>10.0} {:>12.1} {:>10.2} {:>12.0} {:>8.1}%",
            c.scenario,
            c.scheme,
            c.iops,
            c.mean_latency_us,
            c.copies_per_op,
            c.bytes_copied_per_op,
            c.pool_hit_rate * 100.0
        );
    }
    if !r.scaling.is_empty() {
        let _ = writeln!(
            out,
            "\nscaling ({} host cores) {:<16} {:>8} {:>10} {:>14} {:>8}",
            r.host_cores, "scenario", "threads", "wall_ms", "ops/wall_sec", "speedup"
        );
        for s in &r.scaling {
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>10.0} {:>14.0} {:>7.2}x",
                s.scenario, s.threads, s.wall_ms, s.ops_per_wall_sec, s.speedup
            );
        }
    }
    if !r.integrity.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<16} {:>8} {:>12} {:>14} {:>9}",
            "integrity", "ops", "base_ms", "checked_ms", "overhead"
        );
        for i in &r.integrity {
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>12.1} {:>14.1} {:>8.1}%",
                i.name,
                i.ops,
                i.base_wall_ms,
                i.checked_wall_ms,
                i.overhead_frac * 100.0
            );
        }
    }
    if !r.scrub.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<16} {:>8} {:>12} {:>9} {:>10} {:>12}",
            "scrub", "blocks", "bytes", "repaired", "wall_ms", "MB/wall_s"
        );
        for s in &r.scrub {
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>12} {:>9} {:>10.1} {:>12.0}",
                s.name, s.blocks, s.bytes, s.repaired, s.wall_ms, s.mb_per_wall_sec
            );
        }
    }
    if !r.obs.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<16} {:>8} {:>12} {:>14} {:>9}",
            "obs (tracing)", "ops", "base_ms", "traced_ms", "overhead"
        );
        for o in &r.obs {
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>12.1} {:>14.1} {:>8.1}%",
                o.name,
                o.ops,
                o.base_wall_ms,
                o.traced_wall_ms,
                o.overhead_frac * 100.0
            );
        }
        let _ = writeln!(out, "histogram record: {:.1} ns/op", r.hist_record_ns);
    }
    if !r.codec_tiers.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<10} {:<16} {:>8} {:>14} {:>10} {:>11}",
            "tier", "kernel", "len", "ops/sec", "MB/s", "vs scalar"
        );
        for t in &r.codec_tiers {
            let _ = writeln!(
                out,
                "{:<10} {:<16} {:>8} {:>14.0} {:>10.0} {:>10.2}x",
                t.tier, t.name, t.len, t.ops_per_sec, t.mb_per_sec, t.speedup_vs_scalar
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_rows_report_sane_numbers() {
        let floor = Duration::from_millis(5);
        let row = micro_small_write_delta(floor, 1024);
        assert!(row.baseline_ops_per_sec > 0.0);
        assert!(row.zero_copy_ops_per_sec > 0.0);
        assert!(row.speedup > 0.0);
        assert_eq!(row.zero_copy_allocs_per_op, 0);
        assert_eq!(row.baseline_allocs_per_op, 6, "one buffer per hop");
    }

    #[test]
    fn cluster_row_counts_zero_copies_on_the_write_path() {
        let mut s = ScenarioSpec::ssd(
            "bench-test",
            TraceKind::Ten,
            4,
            2,
            2,
            SchemeSpec::named("fo"),
        );
        s.duration_ms = Some(50);
        s.file_mb = Some(2);
        let row = cluster_row(s, true);
        assert!(row.ops > 0, "run must complete ops");
        assert!(row.pool_hit_rate >= 0.0 && row.pool_hit_rate <= 1.0);
    }
}
