//! Property tests pinning the histogram's quantile error bound and the
//! algebra (associativity/commutativity of `merge`) that the sorted-merge
//! determinism invariant rests on.

use proptest::prelude::*;
use tsue_obs::{Histogram, SUB_BUCKETS};

fn from_vals(vals: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in vals {
        h.record(v);
    }
    h
}

proptest! {
    /// Every bucketed quantile is within one bucket's relative error of
    /// the exact sorted-vector quantile: |approx - exact| <= exact/16 + 1.
    #[test]
    fn quantiles_within_one_bucket_relative_error(
        mut vals in proptest::collection::vec(0u64..u64::MAX / 2, 1..400),
        qs in proptest::collection::vec(0u64..=1000, 1..8),
    ) {
        let h = from_vals(&vals);
        vals.sort_unstable();
        for q in qs.into_iter().map(|permille| permille as f64 / 1000.0) {
            let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
            let exact = vals[rank - 1];
            let approx = h.quantile(q);
            let tol = exact / SUB_BUCKETS as u64 + 1;
            prop_assert!(
                approx.abs_diff(exact) <= tol,
                "q={q} approx={approx} exact={exact} tol={tol}"
            );
        }
    }

    /// merge is commutative: a+b == b+a.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..1 << 48, 0..100),
        b in proptest::collection::vec(0u64..1 << 48, 0..100),
    ) {
        let (ha, hb) = (from_vals(&a), from_vals(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// merge is associative: (a+b)+c == a+(b+c), and both equal recording
    /// everything into one histogram.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..1 << 48, 0..80),
        b in proptest::collection::vec(0u64..1 << 48, 0..80),
        c in proptest::collection::vec(0u64..1 << 48, 0..80),
    ) {
        let (ha, hb, hc) = (from_vals(&a), from_vals(&b), from_vals(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &from_vals(&all));
    }

    /// since() after a merge-window recovers exactly the window's counts.
    #[test]
    fn since_recovers_window_counts(
        before in proptest::collection::vec(0u64..1 << 48, 0..100),
        window in proptest::collection::vec(0u64..1 << 48, 0..100),
    ) {
        let snap = from_vals(&before);
        let mut cum = snap.clone();
        for &v in &window {
            cum.record(v);
        }
        let w = cum.since(&snap);
        prop_assert_eq!(w.count(), window.len() as u64);
        prop_assert_eq!(w.sum(), window.iter().sum::<u64>());
        prop_assert_eq!(w.nonzero_buckets(), from_vals(&window).nonzero_buckets());
    }
}
