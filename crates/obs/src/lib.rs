//! End-to-end observability for the TSUE reproduction.
//!
//! Three layers, all in deterministic virtual time:
//!
//! * [`Histogram`] — log-bucketed HDR-style latency histograms
//!   (p50/p90/p99/p999/max) recorded per **op class** (update, read,
//!   degraded write, recovery decode, scrub round) and per pipeline
//!   **stage** (client issue → MDS map → OSD data-log append → delta
//!   forward → recycle merge → ack).
//! * [`TraceRing`] — an optional bounded ring of op-lifecycle spans,
//!   exported as Chrome `trace_event` JSON (`tsuectl run --trace-out`).
//! * [`ObsSeries`] — per-node / per-rack metric families (bytes, ops,
//!   device busy time, queue pressure, uplink utilization) sampled on a
//!   configurable cadence by the scenario harness.
//!
//! Everything here is recorded from single-threaded DES coordinator
//! events keyed by `op_id`, and histograms merge by element-wise
//! addition folded in a fixed sorted order — so results are bit-identical
//! at any `--threads` width (the worker pool only parallelizes byte
//! kernels, never metric recording).

#![warn(missing_docs)]

mod hist;
mod trace;

pub use hist::{HistReport, Histogram, LatencySummary, NUM_BUCKETS, SUB_BUCKETS};
pub use trace::{TraceEvent, TraceRing, DEFAULT_TRACE_CAPACITY};

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use tsue_sim::Time;

/// Completed-operation classes, each with its own latency histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Client update (write) completed on the normal two-stage path.
    Update,
    /// Client read completed (including degraded reconstructions).
    Read,
    /// Client update completed after parking in the degraded-write
    /// journal because its home OSD was dead.
    DegradedWrite,
    /// One block rebuilt by the recovery engine: survivor reads through
    /// decode to the rebuilt block hitting the device.
    RecoveryDecode,
    /// One background-scrub block verification round.
    ScrubRound,
}

impl OpClass {
    /// Every class, in the fixed report order.
    pub const ALL: [OpClass; 5] = [
        OpClass::Update,
        OpClass::Read,
        OpClass::DegradedWrite,
        OpClass::RecoveryDecode,
        OpClass::ScrubRound,
    ];

    /// Stable lower-snake token used in reports and trace events.
    pub fn token(self) -> &'static str {
        match self {
            OpClass::Update => "update",
            OpClass::Read => "read",
            OpClass::DegradedWrite => "degraded_write",
            OpClass::RecoveryDecode => "recovery_decode",
            OpClass::ScrubRound => "scrub_round",
        }
    }

    const fn idx(self) -> usize {
        self as usize
    }
}

/// Op-lifecycle pipeline stages, each with its own duration histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Client dispatch + wire time: op issue until the update extent
    /// arrives at its home OSD.
    ClientIssue,
    /// MDS extent→stripe map lookup. The model charges no time here, so
    /// this histogram pins the stage at zero — it exists to make the
    /// lifecycle decomposition total.
    MdsMap,
    /// OSD service: extent arrival until the scheme acks it durable
    /// (DataLog append for log-structured schemes).
    DataLogAppend,
    /// Scheme-to-scheme delta forward wire hop (data/parity deltas).
    DeltaForward,
    /// One log-unit recycle merge (data, delta, or parity layer).
    RecycleMerge,
    /// Ack wire time: OSD completion back to the issuing client.
    Ack,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::ClientIssue,
        Stage::MdsMap,
        Stage::DataLogAppend,
        Stage::DeltaForward,
        Stage::RecycleMerge,
        Stage::Ack,
    ];

    /// Stable lower-snake token used in reports and trace events.
    pub fn token(self) -> &'static str {
        match self {
            Stage::ClientIssue => "client_issue",
            Stage::MdsMap => "mds_map",
            Stage::DataLogAppend => "data_log_append",
            Stage::DeltaForward => "delta_forward",
            Stage::RecycleMerge => "recycle_merge",
            Stage::Ack => "ack",
        }
    }

    const fn idx(self) -> usize {
        self as usize
    }
}

/// Per-op span bookkeeping: extent arrivals not yet matched with their
/// service completion. FIFO pairing — OSD scheme callbacks complete
/// extents in coordinator event order, which is deterministic.
#[derive(Debug, Default)]
struct SpanState {
    arrivals: VecDeque<Time>,
}

/// The cluster's observability state: per-class and per-stage histograms,
/// in-flight span bookkeeping keyed by `op_id`, the optional trace ring,
/// and the time-series samples collected by the harness probe.
#[derive(Debug, Default)]
pub struct ObsState {
    classes: Vec<Histogram>,
    stages: Vec<Histogram>,
    spans: HashMap<u64, SpanState>,
    trace: Option<TraceRing>,
    /// Time-series samples appended by the scenario harness probe.
    pub series: ObsSeries,
}

impl ObsState {
    /// Fresh state with tracing disabled.
    pub fn new() -> Self {
        ObsState {
            classes: (0..OpClass::ALL.len()).map(|_| Histogram::new()).collect(),
            stages: (0..Stage::ALL.len()).map(|_| Histogram::new()).collect(),
            spans: HashMap::new(),
            trace: None,
            series: ObsSeries::default(),
        }
    }

    /// Turns on span tracing into a ring of at most `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceRing::new(capacity));
    }

    /// Whether span tracing is on.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace ring, when tracing is on.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.trace.as_ref()
    }

    /// Renders the trace ring as Chrome `trace_event` JSON, if tracing.
    pub fn trace_json(&self) -> Option<String> {
        self.trace.as_ref().map(|t| t.chrome_json())
    }

    #[inline]
    fn emit(
        &mut self,
        name: &'static str,
        cat: &'static str,
        ts: Time,
        dur: Time,
        pid: u64,
        tid: u64,
    ) {
        if let Some(ring) = self.trace.as_mut() {
            ring.push(TraceEvent {
                name,
                cat,
                ts,
                dur,
                pid,
                tid,
            });
        }
    }

    /// The cumulative histogram of one op class.
    pub fn class_hist(&self, class: OpClass) -> &Histogram {
        &self.classes[class.idx()]
    }

    /// The cumulative histogram of one pipeline stage.
    pub fn stage_hist(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.idx()]
    }

    /// Records a duration sample into a stage histogram (no trace event).
    pub fn record_stage(&mut self, stage: Stage, dur: Time) {
        self.stages[stage.idx()].record(dur);
    }

    /// All client-op completions (update + read + degraded write) merged,
    /// in the fixed class order — the "foreground latency" histogram the
    /// fault engine snapshots around failure phases.
    pub fn client_op_hist(&self) -> Histogram {
        let mut h = self.classes[OpClass::Update.idx()].clone();
        h.merge(&self.classes[OpClass::Read.idx()]);
        h.merge(&self.classes[OpClass::DegradedWrite.idx()]);
        h
    }

    /// Sum of all completed client-op latencies, ns.
    pub fn total_client_latency(&self) -> Time {
        self.client_op_hist().sum()
    }

    /// Maximum completed client-op latency, ns.
    pub fn max_client_latency(&self) -> Time {
        self.client_op_hist().max()
    }

    /// A client op was issued: starts its span and records the (zero-cost
    /// in this model) MDS map stage.
    pub fn op_issued(&mut self, op_id: u64, client: usize, now: Time) {
        self.spans.entry(op_id).or_default();
        self.stages[Stage::MdsMap.idx()].record(0);
        self.emit(Stage::MdsMap.token(), "stage", now, 0, client as u64, op_id);
    }

    /// An update extent arrived at its home OSD: closes the client-issue
    /// stage and queues the arrival for service-time pairing.
    pub fn update_arrival(&mut self, op_id: u64, osd: usize, issued_at: Time, now: Time) {
        let dur = now.saturating_sub(issued_at);
        self.stages[Stage::ClientIssue.idx()].record(dur);
        self.spans.entry(op_id).or_default().arrivals.push_back(now);
        self.emit(
            Stage::ClientIssue.token(),
            "stage",
            issued_at,
            dur,
            osd as u64,
            op_id,
        );
    }

    /// The scheme acked one extent durable: closes the OSD service stage
    /// against the oldest unmatched arrival of the op (FIFO pairing).
    pub fn extent_service_done(&mut self, op_id: u64, osd: usize, now: Time) {
        let Some(t0) = self
            .spans
            .get_mut(&op_id)
            .and_then(|s| s.arrivals.pop_front())
        else {
            return; // degraded extents park without a tracked arrival
        };
        let dur = now.saturating_sub(t0);
        self.stages[Stage::DataLogAppend.idx()].record(dur);
        self.emit(
            Stage::DataLogAppend.token(),
            "stage",
            t0,
            dur,
            osd as u64,
            op_id,
        );
    }

    /// An extent ack left the OSD for the client; `arrival` is its
    /// already-computed wire delivery time.
    pub fn ack_sent(&mut self, op_id: u64, client: usize, now: Time, arrival: Time) {
        let dur = arrival.saturating_sub(now);
        self.stages[Stage::Ack.idx()].record(dur);
        self.emit(Stage::Ack.token(), "stage", now, dur, client as u64, op_id);
    }

    /// A scheme delta message left `src` for `dst`, delivered at `arrival`.
    pub fn delta_forwarded(&mut self, src: usize, dst: usize, now: Time, arrival: Time) {
        let dur = arrival.saturating_sub(now);
        self.stages[Stage::DeltaForward.idx()].record(dur);
        self.emit(
            Stage::DeltaForward.token(),
            "stage",
            now,
            dur,
            src as u64,
            dst as u64,
        );
    }

    /// One log-unit recycle merge finished on `osd`, having started at
    /// `started`.
    pub fn recycle_merged(&mut self, osd: usize, unit: u64, started: Time, now: Time) {
        let dur = now.saturating_sub(started);
        self.stages[Stage::RecycleMerge.idx()].record(dur);
        self.emit(
            Stage::RecycleMerge.token(),
            "stage",
            started,
            dur,
            osd as u64,
            unit,
        );
    }

    /// Records a completed whole operation of `class`. Client classes
    /// close the op's span; recovery/scrub rounds pass a synthetic lane
    /// id that never touches the span table.
    pub fn op_complete(
        &mut self,
        class: OpClass,
        op_id: u64,
        node: usize,
        started: Time,
        now: Time,
    ) {
        let dur = now.saturating_sub(started);
        self.classes[class.idx()].record(dur);
        if matches!(
            class,
            OpClass::Update | OpClass::Read | OpClass::DegradedWrite
        ) {
            self.spans.remove(&op_id);
        }
        self.emit(class.token(), "op", started, dur, node as u64, op_id);
    }

    /// The serializable report: per-class and per-stage histograms in
    /// fixed order plus the collected time series.
    pub fn report(&self) -> ObsReport {
        ObsReport {
            classes: OpClass::ALL
                .iter()
                .map(|&c| self.classes[c.idx()].report(c.token()))
                .collect(),
            stages: Stage::ALL
                .iter()
                .map(|&s| self.stages[s.idx()].report(s.token()))
                .collect(),
            series: self.series.clone(),
        }
    }
}

/// One node's counters at a sample instant (cumulative since run start).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeSample {
    /// Bytes this node has put on the wire.
    pub tx_bytes: u64,
    /// Bytes delivered to this node.
    pub rx_bytes: u64,
    /// Foreground device ops completed (reads + writes).
    pub dev_ops: u64,
    /// Device busy time, virtual ns.
    pub dev_busy_ns: u64,
    /// Queue pressure: how far ahead of `now` the device is booked,
    /// virtual ns (0 when idle).
    pub queue_ns: u64,
}

/// One rack's ToR-uplink counters at a sample instant.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RackSample {
    /// Bytes that left the rack through its uplink (cumulative).
    pub up_bytes: u64,
    /// Bytes that entered the rack through its uplink (cumulative).
    pub down_bytes: u64,
    /// Mean uplink (egress) utilization since the window start, `[0, 1]`
    /// (0 on flat topologies with no modeled uplink).
    pub up_util: f64,
}

/// One probe firing: every node and rack sampled at the same instant.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSample {
    /// Sample time, virtual ms since run start.
    pub t_ms: u64,
    /// Per-OSD-node samples, indexed by node id.
    pub nodes: Vec<NodeSample>,
    /// Per-rack samples, indexed by rack id.
    pub racks: Vec<RackSample>,
}

/// The time-series section of a run result: utilization curves instead
/// of end-of-run scalars.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSeries {
    /// Probe cadence, virtual ms (0 = sampling disabled).
    pub cadence_ms: u64,
    /// Samples in time order.
    pub samples: Vec<ObsSample>,
}

/// The full serialized observability section of a `RunResult`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsReport {
    /// Per-op-class latency histograms, in [`OpClass::ALL`] order.
    pub classes: Vec<HistReport>,
    /// Per-stage duration histograms, in [`Stage::ALL`] order.
    pub stages: Vec<HistReport>,
    /// Per-node / per-rack time series.
    pub series: ObsSeries,
}

impl ObsReport {
    /// The class histogram report named `token`, if present.
    pub fn class(&self, token: &str) -> Option<&HistReport> {
        self.classes.iter().find(|c| c.name == token)
    }

    /// The merged client-op (update + read + degraded write) summary.
    pub fn client_summary(&self) -> LatencySummary {
        let mut h = Histogram::new();
        for name in ["update", "read", "degraded_write"] {
            if let Some(r) = self.class(name) {
                // Reconstruction is bucket-accurate by design.
                for &(idx, c) in &r.buckets {
                    h.record_n(bucket_value(idx), c);
                }
            }
        }
        h.summary()
    }
}

/// Representative (lower-edge) value of a bucket index — the inverse of
/// histogram bucketing, used to rebuild a histogram from its sparse
/// serialized buckets.
fn bucket_value(idx: u32) -> u64 {
    let idx = idx as usize;
    if idx < SUB_BUCKETS {
        idx as u64
    } else {
        let g = (idx - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (idx - SUB_BUCKETS) % SUB_BUCKETS;
        ((SUB_BUCKETS + sub) as u64) << g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_records_all_stages_and_classes() {
        let mut obs = ObsState::new();
        obs.enable_trace(64);
        obs.op_issued(1, 0, 100);
        obs.update_arrival(1, 3, 100, 150);
        obs.extent_service_done(1, 3, 190);
        obs.ack_sent(1, 0, 190, 210);
        obs.delta_forwarded(3, 4, 160, 170);
        obs.recycle_merged(3, 9, 120, 400);
        obs.op_complete(OpClass::Update, 1, 0, 100, 210);
        for s in Stage::ALL {
            assert_eq!(obs.stage_hist(s).count(), 1, "stage {:?}", s);
        }
        assert_eq!(obs.stage_hist(Stage::ClientIssue).sum(), 50);
        assert_eq!(obs.stage_hist(Stage::DataLogAppend).sum(), 40);
        assert_eq!(obs.stage_hist(Stage::Ack).sum(), 20);
        assert_eq!(obs.class_hist(OpClass::Update).sum(), 110);
        assert_eq!(obs.total_client_latency(), 110);
        assert_eq!(obs.max_client_latency(), 110);
        let trace = obs.trace().unwrap();
        assert_eq!(trace.len(), 7);
        assert!(obs.trace_json().unwrap().contains("\"ph\":\"X\""));
        assert!(obs.spans.is_empty(), "span closed on completion");
    }

    #[test]
    fn service_pairing_is_fifo_and_tolerates_unmatched_completions() {
        let mut obs = ObsState::new();
        obs.update_arrival(7, 0, 0, 10);
        obs.update_arrival(7, 0, 0, 20);
        obs.extent_service_done(7, 0, 25); // pairs with t=10
        obs.extent_service_done(7, 0, 26); // pairs with t=20
        obs.extent_service_done(7, 0, 27); // unmatched: ignored
        assert_eq!(obs.stage_hist(Stage::DataLogAppend).count(), 2);
        assert_eq!(obs.stage_hist(Stage::DataLogAppend).sum(), 15 + 6);
    }

    #[test]
    fn report_round_trips_and_summarizes_clients() {
        let mut obs = ObsState::new();
        obs.op_complete(OpClass::Update, 1, 0, 0, 1000);
        obs.op_complete(OpClass::Read, 2, 0, 0, 3000);
        obs.op_complete(OpClass::ScrubRound, 0, 1, 0, 500);
        let rep = obs.report();
        assert_eq!(rep.classes.len(), OpClass::ALL.len());
        assert_eq!(rep.stages.len(), Stage::ALL.len());
        assert_eq!(rep.class("update").unwrap().count, 1);
        let s = rep.client_summary();
        assert_eq!(s.count, 2, "scrub rounds are not client ops");
        let json = serde_json::to_string_pretty(&rep).unwrap();
        let back: ObsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn tracing_off_records_histograms_only() {
        let mut obs = ObsState::new();
        obs.op_issued(1, 0, 0);
        obs.op_complete(OpClass::Read, 1, 0, 0, 10);
        assert!(obs.trace_json().is_none());
        assert_eq!(obs.class_hist(OpClass::Read).count(), 1);
    }
}
