//! Bounded op-lifecycle event ring with a Chrome `trace_event` exporter.
//!
//! Every span is a *complete* event (`ph: "X"`): the recording site knows
//! both endpoints in virtual time when it fires, so no begin/end pairing
//! is needed. Timestamps are virtual nanoseconds converted to the
//! microsecond floats Chrome/Perfetto expect; `pid` carries the node id
//! and `tid` the op (or unit) id, so Perfetto lays spans out per node
//! with one lane per in-flight op.

use serde::Value;
use std::collections::VecDeque;
use tsue_sim::Time;

/// Default ring capacity used by `tsuectl run --trace-out`.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 18;

/// One complete span in virtual time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (op-class or stage token).
    pub name: &'static str,
    /// Category: `"op"` for whole-op spans, `"stage"` for pipeline stages.
    pub cat: &'static str,
    /// Span start, virtual ns.
    pub ts: Time,
    /// Span duration, virtual ns.
    pub dur: Time,
    /// Node id (client or OSD) the span ran on.
    pub pid: u64,
    /// Op id (or recycle-unit / rebuild id) the span belongs to.
    pub tid: u64,
}

/// Fixed-capacity ring of [`TraceEvent`]s; the oldest events are evicted
/// once full, with an eviction counter so truncation is never silent.
#[derive(Clone, Debug)]
pub struct TraceRing {
    cap: usize,
    events: VecDeque<TraceEvent>,
    /// Events evicted because the ring was full.
    pub dropped: u64,
}

impl TraceRing {
    /// An empty ring holding at most `cap` events (min 1).
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap: cap.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when at capacity.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates the held events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Renders the ring as Chrome `trace_event` JSON (the object form,
    /// `{"traceEvents": [...]}`), loadable in Perfetto or
    /// `chrome://tracing`. `ts`/`dur` are microsecond floats per the
    /// format spec.
    pub fn chrome_json(&self) -> String {
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|ev| {
                Value::Object(vec![
                    ("name".into(), Value::Str(ev.name.to_string())),
                    ("cat".into(), Value::Str(ev.cat.to_string())),
                    ("ph".into(), Value::Str("X".into())),
                    ("ts".into(), Value::Float(ev.ts as f64 / 1e3)),
                    ("dur".into(), Value::Float(ev.dur as f64 / 1e3)),
                    ("pid".into(), Value::UInt(ev.pid)),
                    ("tid".into(), Value::UInt(ev.tid)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("traceEvents".into(), Value::Array(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
            ("droppedEvents".into(), Value::UInt(self.dropped)),
        ]);
        serde_json::to_string(&doc).expect("trace values are finite")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: Time) -> TraceEvent {
        TraceEvent {
            name: "update",
            cat: "op",
            ts,
            dur: 10,
            pid: 1,
            tid: 7,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = TraceRing::new(2);
        r.push(ev(1));
        r.push(ev(2));
        r.push(ev(3));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped, 1);
        let ts: Vec<Time> = r.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3]);
    }

    #[test]
    fn chrome_json_parses_and_has_complete_events() {
        let mut r = TraceRing::new(8);
        r.push(ev(1500));
        let json = r.chrome_json();
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let Value::Object(fields) = v else {
            panic!("object root")
        };
        let (_, evs) = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .expect("traceEvents");
        let Value::Array(evs) = evs else {
            panic!("array")
        };
        assert_eq!(evs.len(), 1);
        let Value::Object(e) = &evs[0] else {
            panic!("event object")
        };
        let get = |k: &str| &e.iter().find(|(n, _)| n == k).expect("field").1;
        assert_eq!(get("ph"), &Value::Str("X".into()));
        assert_eq!(get("ts"), &Value::Float(1.5));
    }
}
