//! Log-bucketed (HDR-style) latency histogram.
//!
//! Values are virtual-time durations in nanoseconds. Buckets are
//! log-linear: values below [`SUB_BUCKETS`] get one exact bucket each;
//! above that, every power of two is split into [`SUB_BUCKETS`] linear
//! sub-buckets, bounding the relative width of any bucket to
//! `1/SUB_BUCKETS` of its lower edge. Quantiles report the bucket
//! midpoint, so the approximation error is at most one bucket's relative
//! error (≤ 1/16 of the true value, plus one for integer rounding).
//!
//! Histograms are plain count vectors, so they merge by element-wise
//! addition: `merge` is associative and commutative, which is what makes
//! per-shard recording safe — any merge order (as long as it is a fixed,
//! sorted order) produces the identical histogram. `since` is the window
//! inverse: the histogram of everything recorded after an earlier
//! snapshot of the same cumulative histogram.

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power of two (and the exact-bucket span).
pub const SUB_BUCKETS: usize = 16;
const SUB_BITS: u32 = 4; // log2(SUB_BUCKETS)

/// Total bucket count covering the full `u64` range.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Bucket index of a value. Total order preserving: `a <= b` implies
/// `index(a) <= index(b)`.
#[inline]
fn index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let sub = ((v >> (e - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        SUB_BUCKETS + (e - SUB_BITS) as usize * SUB_BUCKETS + sub
    }
}

/// Inclusive lower edge of a bucket.
#[inline]
fn bucket_lo(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        idx as u64
    } else {
        let g = (idx - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (idx - SUB_BUCKETS) % SUB_BUCKETS;
        ((SUB_BUCKETS + sub) as u64) << g
    }
}

/// Width of a bucket (1 for the exact region).
#[inline]
fn bucket_width(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        1
    } else {
        1u64 << ((idx - SUB_BUCKETS) / SUB_BUCKETS)
    }
}

/// A mergeable log-bucketed latency histogram (durations in ns).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical durations in O(1).
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[index(v)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations, ns.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded duration (0 when empty), ns.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded duration, ns.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded duration, ns (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// holding the rank-`ceil(q·count)` sample, clamped to the recorded
    /// `[min, max]` range. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let mid = bucket_lo(idx) + bucket_width(idx) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Element-wise accumulation of `other` into `self`. Associative and
    /// commutative — fold shards in any fixed (sorted) order for
    /// deterministic results.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The window histogram of everything recorded in `self` after the
    /// earlier snapshot `older` of the same cumulative histogram. Bucket
    /// counts subtract exactly; the window min/max are re-derived from
    /// the surviving buckets' edges (tightened by the cumulative max).
    pub fn since(&self, older: &Histogram) -> Histogram {
        let mut h = Histogram::new();
        for (i, (a, b)) in self.counts.iter().zip(&older.counts).enumerate() {
            h.counts[i] = a.saturating_sub(*b);
        }
        h.count = self.count.saturating_sub(older.count);
        h.sum = self.sum.saturating_sub(older.sum);
        if h.count > 0 {
            let lo = h.counts.iter().position(|&c| c > 0).unwrap_or(0);
            let hi = h.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
            h.min = bucket_lo(lo).max(self.min);
            h.max = (bucket_lo(hi) + bucket_width(hi) - 1).min(self.max);
            h.min = h.min.min(h.max);
        }
        h
    }

    /// Sparse `(bucket index, count)` pairs of the non-empty buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// The compact serializable quantile summary.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_us: self.mean() / 1e3,
            p50_us: self.quantile(0.50) as f64 / 1e3,
            p90_us: self.quantile(0.90) as f64 / 1e3,
            p99_us: self.quantile(0.99) as f64 / 1e3,
            p999_us: self.quantile(0.999) as f64 / 1e3,
            max_us: self.max as f64 / 1e3,
        }
    }

    /// The full serializable export: the summary plus the sparse buckets.
    pub fn report(&self, name: &str) -> HistReport {
        let buckets = self.nonzero_buckets();
        HistReport {
            name: name.to_string(),
            count: self.count,
            sum_ns: self.sum,
            min_ns: self.min(),
            max_ns: self.max,
            mean_us: self.mean() / 1e3,
            p50_us: self.quantile(0.50) as f64 / 1e3,
            p90_us: self.quantile(0.90) as f64 / 1e3,
            p99_us: self.quantile(0.99) as f64 / 1e3,
            p999_us: self.quantile(0.999) as f64 / 1e3,
            buckets,
        }
    }
}

/// Compact latency quantile summary (microseconds), the serialized form
/// used by fault-phase snapshots and summary tables.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples in the window.
    pub count: u64,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 90th-percentile latency, µs.
    pub p90_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// Maximum latency, µs.
    pub max_us: f64,
}

/// Full serialized histogram: quantile summary plus the sparse log-linear
/// buckets, from which any quantile can be recomputed downstream.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistReport {
    /// Op class or stage name.
    pub name: String,
    /// Recorded samples.
    pub count: u64,
    /// Sum of recorded durations, ns.
    pub sum_ns: u64,
    /// Smallest recorded duration, ns (0 when empty).
    pub min_ns: u64,
    /// Largest recorded duration, ns.
    pub max_ns: u64,
    /// Mean duration, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: f64,
    /// 90th percentile, µs.
    pub p90_us: f64,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// Sparse `(bucket index, count)` pairs of non-empty buckets.
    pub buckets: Vec<(u32, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_monotone_and_in_range() {
        let mut vals: Vec<u64> = (0..64)
            .flat_map(|s| [0u64, 1, 7].map(|d| (1u64 << s).saturating_add(d)))
            .chain([0, 5, 15, 16, u64::MAX])
            .collect();
        vals.sort_unstable();
        let mut prev = 0usize;
        for v in vals {
            let i = index(v);
            assert!(i < NUM_BUCKETS, "v={v} idx={i}");
            assert!(i >= prev, "monotone at v={v}: {i} < {prev}");
            prev = i;
            let lo = bucket_lo(i);
            let w = bucket_width(i);
            assert!(lo <= v && v - lo < w, "v={v} lo={lo} w={w}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS as u64 - 1);
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.sum(), (0..SUB_BUCKETS as u64).sum::<u64>());
    }

    #[test]
    fn quantiles_track_exact_within_bucket_error() {
        let mut h = Histogram::new();
        let vals: Vec<u64> = (0..1000).map(|i| 1000 + i * 97).collect();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = h.quantile(q);
            let tol = exact / SUB_BUCKETS as u64 + 1;
            assert!(
                approx.abs_diff(exact) <= tol,
                "q={q} approx={approx} exact={exact} tol={tol}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let (mut a, mut b, mut all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [3u64, 99, 1024, 70_000, 1 << 40] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 17, 500_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn since_isolates_the_window() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(2_000);
        let snap = h.clone();
        h.record(1_000_000);
        h.record(1_000_010);
        let w = h.since(&snap);
        assert_eq!(w.count(), 2);
        assert_eq!(w.sum(), 2_000_010);
        assert!(w.quantile(0.5) >= 900_000, "window p50 {}", w.quantile(0.5));
        assert!(w.min() >= 900_000, "window min {}", w.min());
        assert_eq!(h.since(&h).count(), 0);
    }

    #[test]
    fn summary_and_report_round_trip() {
        let mut h = Histogram::new();
        for i in 0..100u64 {
            h.record(i * 1000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50_us <= s.p99_us && s.p99_us <= s.p999_us);
        assert!(s.p999_us <= s.max_us + 1e-9);
        let r = h.report("update");
        let json = serde_json::to_string(&r).unwrap();
        let back: HistReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // Quantiles are recomputable from the sparse buckets alone.
        let mut h2 = Histogram::new();
        for &(idx, c) in &back.buckets {
            for _ in 0..c {
                h2.record(bucket_lo(idx as usize));
            }
        }
        assert_eq!(h2.count(), h.count());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.summary(), LatencySummary::default());
    }
}
