//! Scripted fault injection driving **online recovery under load**.
//!
//! The seed repo could only kill a node *after* traffic stopped
//! ([`tsue_ecfs::run_recovery`]). Production failures do not wait: Rashmi
//! et al. (arXiv:1309.0186) show recovery cost is dominated by cross-rack
//! traffic racing with foreground I/O, and rack-aware maintenance (CNC,
//! arXiv:1206.4175) changes the picture entirely. This crate supplies the
//! missing machinery:
//!
//! * [`FaultPlan`] — a serializable script of timed [`FaultEvent`]s:
//!   node kills, whole-rack kills, transient NIC slowdowns, heals.
//! * [`install`] — schedules the plan into the DES. Kills trigger a
//!   *phase*: a drain gate (schemes flush their logs while clients keep
//!   issuing — lazily-recycled schemes pay their recycle storm here),
//!   then online rebuild through [`tsue_ecfs::RecoveryState`] with
//!   bounded concurrency, degraded reads shrinking as blocks rehome.
//! * A failover **watchdog** that force-completes client ops stalled by
//!   in-flight state lost with a dead node (modeled timeout + retry), so
//!   every scheme's closed loop survives arbitrary kill timing.
//! * [`FaultReport`] / [`PhaseReport`] — per-phase recovery bandwidth,
//!   drain vs rebuild split, unrecoverable-block counts (data loss under
//!   rack-oblivious placement), and the intra-/cross-rack traffic split.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::cell::RefCell;
use std::rc::Rc;
use tsue_ecfs::{fail_node, reap_stalled_ops, start_recovery, Cluster, HealStats, SplitRng};
use tsue_net::TierTraffic;
use tsue_obs::{Histogram, LatencySummary};
use tsue_sim::{Sim, Time, MILLISECOND};

/// One scripted fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// Kill one OSD at `at_ms` (virtual milliseconds).
    KillNode {
        /// Trigger time, virtual ms.
        at_ms: u64,
        /// Victim OSD index.
        node: usize,
    },
    /// Kill every OSD in a rack at `at_ms` (ToR/PDU failure).
    KillRack {
        /// Trigger time, virtual ms.
        at_ms: u64,
        /// Victim rack index.
        rack: usize,
    },
    /// Degrade one OSD's NIC by `factor` for `duration_ms` (straggler).
    SlowNode {
        /// Trigger time, virtual ms.
        at_ms: u64,
        /// Affected OSD index.
        node: usize,
        /// Service-time multiplier (`>= 1.0`).
        factor: f64,
        /// How long the slowdown lasts, virtual ms.
        duration_ms: u64,
    },
    /// Revive a dead OSD (transient failure over) and clear slowdowns.
    /// Blocks already rebuilt elsewhere stay rehomed; blocks not yet
    /// rebuilt become readable again.
    HealNode {
        /// Trigger time, virtual ms.
        at_ms: u64,
        /// Healed OSD index.
        node: usize,
    },
    /// Flip a few random bits in stored blocks on one OSD (silent media
    /// corruption / bit rot). Only materialized runs carry real bytes to
    /// corrupt; timing-only runs treat this as a no-op. Detection happens
    /// later, at read-time verification or a scrub sweep — never here.
    CorruptBlock {
        /// Trigger time, virtual ms.
        at_ms: u64,
        /// Affected OSD index.
        node: usize,
        /// How many distinct blocks to hit (default 1, capped at the
        /// node's block count).
        blocks: Option<u64>,
        /// Deterministic RNG seed; defaults to a mix of `at_ms`/`node`.
        seed: Option<u64>,
    },
    /// Power-loss at one OSD: the in-flight log append is torn at a
    /// pseudo-random offset, then the node restarts with a log scan.
    /// Replicated appends replay from a surviving copy; unreplicated
    /// ones are discarded (the framing checksum rejects the torn tail,
    /// so a torn record is never half-applied). The node stays up.
    PowerLoss {
        /// Trigger time, virtual ms.
        at_ms: u64,
        /// Affected OSD index.
        node: usize,
        /// Deterministic RNG seed; defaults to a mix of `at_ms`/`node`.
        seed: Option<u64>,
    },
}

impl FaultEvent {
    /// Trigger time in virtual milliseconds.
    pub fn at_ms(&self) -> u64 {
        match self {
            FaultEvent::KillNode { at_ms, .. }
            | FaultEvent::KillRack { at_ms, .. }
            | FaultEvent::SlowNode { at_ms, .. }
            | FaultEvent::HealNode { at_ms, .. }
            | FaultEvent::CorruptBlock { at_ms, .. }
            | FaultEvent::PowerLoss { at_ms, .. } => *at_ms,
        }
    }

    /// The JSON `kind` tags, for error messages.
    pub fn kinds() -> &'static [&'static str] {
        &[
            "kill_node",
            "kill_rack",
            "slow_node",
            "heal_node",
            "corrupt_block",
            "power_loss",
        ]
    }

    /// This event's JSON `kind` tag (validation error messages).
    pub fn kind_name(&self) -> &'static str {
        match self {
            FaultEvent::KillNode { .. } => "kill_node",
            FaultEvent::KillRack { .. } => "kill_rack",
            FaultEvent::SlowNode { .. } => "slow_node",
            FaultEvent::HealNode { .. } => "heal_node",
            FaultEvent::CorruptBlock { .. } => "corrupt_block",
            FaultEvent::PowerLoss { .. } => "power_loss",
        }
    }
}

// Hand-written serde: events read as tagged objects, e.g.
// `{"kind": "kill_rack", "at_ms": 400, "rack": 1}` — friendlier scenario
// JSON than the derive's tuple-variant encoding.
impl Serialize for FaultEvent {
    fn to_value(&self) -> Value {
        let mut entries = vec![];
        let kind = match self {
            FaultEvent::KillNode { at_ms, node } => {
                entries.push(("at_ms".to_string(), Value::UInt(*at_ms)));
                entries.push(("node".to_string(), Value::UInt(*node as u64)));
                "kill_node"
            }
            FaultEvent::KillRack { at_ms, rack } => {
                entries.push(("at_ms".to_string(), Value::UInt(*at_ms)));
                entries.push(("rack".to_string(), Value::UInt(*rack as u64)));
                "kill_rack"
            }
            FaultEvent::SlowNode {
                at_ms,
                node,
                factor,
                duration_ms,
            } => {
                entries.push(("at_ms".to_string(), Value::UInt(*at_ms)));
                entries.push(("node".to_string(), Value::UInt(*node as u64)));
                entries.push(("factor".to_string(), Value::Float(*factor)));
                entries.push(("duration_ms".to_string(), Value::UInt(*duration_ms)));
                "slow_node"
            }
            FaultEvent::HealNode { at_ms, node } => {
                entries.push(("at_ms".to_string(), Value::UInt(*at_ms)));
                entries.push(("node".to_string(), Value::UInt(*node as u64)));
                "heal_node"
            }
            FaultEvent::CorruptBlock {
                at_ms,
                node,
                blocks,
                seed,
            } => {
                entries.push(("at_ms".to_string(), Value::UInt(*at_ms)));
                entries.push(("node".to_string(), Value::UInt(*node as u64)));
                if let Some(b) = blocks {
                    entries.push(("blocks".to_string(), Value::UInt(*b)));
                }
                if let Some(s) = seed {
                    entries.push(("seed".to_string(), Value::UInt(*s)));
                }
                "corrupt_block"
            }
            FaultEvent::PowerLoss { at_ms, node, seed } => {
                entries.push(("at_ms".to_string(), Value::UInt(*at_ms)));
                entries.push(("node".to_string(), Value::UInt(*node as u64)));
                if let Some(s) = seed {
                    entries.push(("seed".to_string(), Value::UInt(*s)));
                }
                "power_loss"
            }
        };
        entries.insert(0, ("kind".to_string(), Value::Str(kind.to_string())));
        Value::Object(entries)
    }
}

impl Deserialize for FaultEvent {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        let Value::Object(entries) = v else {
            return Err(serde::DeError::mismatch("FaultEvent", "object", v));
        };
        let kind: String = serde::de_field(entries, "FaultEvent", "kind")?;
        let known: &[&str] = match kind.as_str() {
            "kill_node" => &["kind", "at_ms", "node"],
            "kill_rack" => &["kind", "at_ms", "rack"],
            "slow_node" => &["kind", "at_ms", "node", "factor", "duration_ms"],
            "heal_node" => &["kind", "at_ms", "node"],
            "corrupt_block" => &["kind", "at_ms", "node", "blocks", "seed"],
            "power_loss" => &["kind", "at_ms", "node", "seed"],
            other => {
                return Err(serde::DeError::unknown_variant(
                    "FaultEvent",
                    other,
                    Self::kinds(),
                ))
            }
        };
        for (key, _) in entries.iter() {
            if !known.contains(&key.as_str()) {
                return Err(serde::DeError::unknown_field("FaultEvent", key, known));
            }
        }
        let at_ms: u64 = serde::de_field(entries, "FaultEvent", "at_ms")?;
        Ok(match kind.as_str() {
            "kill_node" => FaultEvent::KillNode {
                at_ms,
                node: serde::de_field(entries, "FaultEvent", "node")?,
            },
            "kill_rack" => FaultEvent::KillRack {
                at_ms,
                rack: serde::de_field(entries, "FaultEvent", "rack")?,
            },
            "slow_node" => FaultEvent::SlowNode {
                at_ms,
                node: serde::de_field(entries, "FaultEvent", "node")?,
                factor: serde::de_field(entries, "FaultEvent", "factor")?,
                duration_ms: serde::de_field(entries, "FaultEvent", "duration_ms")?,
            },
            "heal_node" => FaultEvent::HealNode {
                at_ms,
                node: serde::de_field(entries, "FaultEvent", "node")?,
            },
            "corrupt_block" => FaultEvent::CorruptBlock {
                at_ms,
                node: serde::de_field(entries, "FaultEvent", "node")?,
                blocks: serde::de_field(entries, "FaultEvent", "blocks")?,
                seed: serde::de_field(entries, "FaultEvent", "seed")?,
            },
            "power_loss" => FaultEvent::PowerLoss {
                at_ms,
                node: serde::de_field(entries, "FaultEvent", "node")?,
                seed: serde::de_field(entries, "FaultEvent", "seed")?,
            },
            _ => unreachable!("kind validated above"),
        })
    }
}

/// A scripted fault schedule.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The timed events (any order; the DES sorts by trigger time).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan from a bare event list.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// Checks every event against the cluster shape.
    ///
    /// # Errors
    /// Returns a description of the first out-of-range node/rack or
    /// nonsensical factor.
    pub fn validate(&self, osds: usize, racks: usize) -> Result<(), String> {
        for (i, e) in self.events.iter().enumerate() {
            // Errors name the offending event, not just its index, so a
            // scenario author can find it in a long fault list.
            let who = format!("fault #{i} ({} @{}ms)", e.kind_name(), e.at_ms());
            match *e {
                FaultEvent::KillNode { node, .. }
                | FaultEvent::HealNode { node, .. }
                | FaultEvent::CorruptBlock { node, .. }
                | FaultEvent::PowerLoss { node, .. } => {
                    if node >= osds {
                        return Err(format!(
                            "{who}: node {node} out of range (cluster has {osds} OSDs)"
                        ));
                    }
                }
                FaultEvent::KillRack { rack, .. } => {
                    if rack >= racks {
                        return Err(format!(
                            "{who}: rack {rack} out of range (topology has {racks} racks)"
                        ));
                    }
                }
                FaultEvent::SlowNode { node, factor, .. } => {
                    if node >= osds {
                        return Err(format!(
                            "{who}: node {node} out of range (cluster has {osds} OSDs)"
                        ));
                    }
                    if factor.is_nan() || factor < 1.0 {
                        return Err(format!("{who}: slowdown factor {factor} must be >= 1.0"));
                    }
                }
            }
        }
        Ok(())
    }

    /// True when the plan kills anything (i.e. recovery phases will run).
    pub fn has_kills(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::KillNode { .. } | FaultEvent::KillRack { .. }))
    }
}

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Drain-gate pump interval: how often dead-node phases re-issue
    /// `flush` to live schemes while waiting for backlogs to hit zero.
    pub drain_stride: Time,
    /// Drain-gate cap in strides: lazily-recycled schemes that cannot
    /// drain under sustained load start rebuilding anyway after this many
    /// strides (the recycle storm then competes with the rebuild, which
    /// is exactly the §5.4 failure mode).
    pub drain_cap_strides: u32,
    /// Strides without a new backlog minimum before the gate opens: under
    /// live traffic the backlog never touches zero (fresh extents keep
    /// arriving), so the gate opens once the at-failure *storm* has
    /// drained and the backlog has flattened at its steady-state churn.
    pub drain_stall_strides: u32,
    /// Concurrent block-rebuild jobs.
    pub rebuild_concurrency: usize,
    /// Completion-poll interval for the rebuild phase.
    pub poll_period: Time,
    /// Client ops older than this are force-completed by the watchdog
    /// (modeled client timeout + retry) while failures are in play.
    pub op_timeout: Time,
    /// Watchdog sweep interval.
    pub watchdog_period: Time,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            drain_stride: 20 * MILLISECOND,
            drain_cap_strides: 250,
            drain_stall_strides: 3,
            rebuild_concurrency: 8,
            poll_period: 10 * MILLISECOND,
            op_timeout: 300 * MILLISECOND,
            watchdog_period: 25 * MILLISECOND,
        }
    }
}

/// One kill event's recovery outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Trigger time, virtual ms.
    pub at_ms: u64,
    /// OSDs killed by this event.
    pub killed: Vec<usize>,
    /// Scheme-log backlog (live nodes) at the instant of failure.
    pub backlog_at_failure: u64,
    /// Virtual ms spent waiting on the scheme-log drain gate.
    pub drain_ms: f64,
    /// Virtual ms of the rebuild stage itself.
    pub rebuild_ms: f64,
    /// Blocks this phase enqueued for rebuild (blocks an overlapping
    /// earlier phase already had queued or in flight are not re-counted).
    pub blocks_lost: u64,
    /// Blocks successfully rebuilt during this phase.
    pub blocks_rebuilt: u64,
    /// Blocks with fewer than `k` survivors (data loss).
    pub blocks_unrecoverable: u64,
    /// Blocks skipped because their home healed before rebuild.
    pub blocks_skipped: u64,
    /// Bytes reconstructed.
    pub bytes_rebuilt: u64,
    /// Journaled degraded-write bytes replayed into blocks this phase
    /// rebuilt (after the reconstruct, before the rehome).
    pub journal_replayed_bytes: u64,
    /// Recovery bandwidth over the whole phase (drain + rebuild), MB/s.
    pub recovery_mb_s: f64,
    /// Wire bytes that stayed intra-rack during the phase (all traffic,
    /// foreground included).
    pub intra_rack_mb: f64,
    /// Wire bytes that crossed racks during the phase.
    pub cross_rack_mb: f64,
    /// Degraded reads served while the phase ran.
    pub degraded_reads: u64,
    /// Client-op latency distribution accumulated *before* the kill
    /// landed (cumulative from run start to the phase trigger).
    pub lat_before: LatencySummary,
    /// Client-op latency distribution over the phase window itself
    /// (drain + rebuild) — the degraded-mode tail the paper's online
    /// recovery experiments measure.
    pub lat_during: LatencySummary,
    /// Client-op latency distribution from phase end to run end.
    /// `None` until the harness backfills it after the workload drains
    /// (and stays `None` for reports loaded from older JSON).
    pub lat_after: Option<LatencySummary>,
}

/// One heal event's rejoin & re-sync outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResyncReport {
    /// Trigger time, virtual ms.
    pub at_ms: u64,
    /// The healed OSD.
    pub node: usize,
    /// Virtual ms spent on the pre-re-sync drain gate (scheme logs must
    /// merge before rehomed copies are copied back).
    pub drain_ms: f64,
    /// Virtual ms of the re-sync I/O itself.
    pub resync_ms: f64,
    /// Blocks caught up in place from the degraded-write journal at the
    /// heal instant (their rebuild had not run yet).
    pub blocks_replayed: u64,
    /// Journaled bytes replayed into the healed node's own copies.
    pub replayed_bytes: u64,
    /// Blocks copied back from their rehomed (rebuilt) copies.
    pub blocks_copied_back: u64,
    /// Bytes copied back.
    pub bytes_copied_back: u64,
    /// Rehome-table entries reclaimed (the override table shrinks).
    pub blocks_reclaimed: u64,
    /// Parity blocks re-encoded because they missed NACKed deltas.
    pub parity_repaired: u64,
    /// `Mds::rehomed_count()` after this re-sync finished.
    pub rehomed_residual: u64,
}

/// Everything the fault engine observed across the run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FaultReport {
    /// One entry per kill event, in trigger order.
    pub phases: Vec<PhaseReport>,
    /// One entry per heal event, in completion order.
    pub resyncs: Vec<ResyncReport>,
    /// Rebuild-attributed wire bytes that stayed intra-rack.
    pub rebuild_intra_bytes: u64,
    /// Rebuild-attributed wire bytes that crossed racks.
    pub rebuild_cross_bytes: u64,
}

impl FaultReport {
    /// Worst (smallest) per-phase recovery bandwidth, MB/s.
    pub fn min_recovery_mb_s(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| p.recovery_mb_s)
            .fold(f64::INFINITY, f64::min)
    }

    /// Total blocks the run could not rebuild.
    pub fn total_unrecoverable(&self) -> u64 {
        self.phases.iter().map(|p| p.blocks_unrecoverable).sum()
    }
}

/// Shared progress state between the engine's scheduled closures and the
/// harness (which polls [`FaultTracker::finished`]).
#[derive(Debug, Default)]
pub struct FaultTracker {
    /// Kill and heal phases not yet finalized.
    active_phases: usize,
    /// The accumulating report.
    pub report: FaultReport,
    /// Cumulative client-op latency histogram captured at each phase's
    /// finalize instant, in [`FaultReport::phases`] order. The harness
    /// diffs these against the end-of-run histogram to backfill
    /// [`PhaseReport::lat_after`]; runtime-only, never serialized.
    pub phase_end_lat: Vec<Histogram>,
    watchdog_armed: bool,
}

impl FaultTracker {
    /// True once every scheduled kill phase has completed its rebuild
    /// and every heal phase has completed its re-sync.
    pub fn finished(&self) -> bool {
        self.active_phases == 0
    }
}

/// Shared handle to the engine state.
pub type FaultHandle = Rc<RefCell<FaultTracker>>;

/// Schedules `plan` into the simulation and returns the progress handle.
/// Call before the workload starts; after the workload drains, keep the
/// sim running until [`FaultTracker::finished`] (see
/// [`run_plan_to_completion`]).
///
/// # Errors
/// Returns the [`FaultPlan::validate`] description (naming the offending
/// event) when the plan does not fit this cluster — no events are
/// scheduled in that case.
pub fn install(
    world: &Cluster,
    sim: &mut Sim<Cluster>,
    plan: &FaultPlan,
    cfg: EngineConfig,
) -> Result<FaultHandle, String> {
    plan.validate(world.core.cfg.osds, world.core.net.racks())?;
    let tracker: FaultHandle = Rc::new(RefCell::new(FaultTracker {
        // Kills run a rebuild phase, heals a re-sync phase; both must
        // finalize before the plan counts as finished. Slowdowns,
        // corruption injections, and power losses are instantaneous —
        // their consequences surface through reads, scrubs, and log
        // replays, not through a tracked phase.
        active_phases: plan
            .events
            .iter()
            .filter(|e| {
                !matches!(
                    e,
                    FaultEvent::SlowNode { .. }
                        | FaultEvent::CorruptBlock { .. }
                        | FaultEvent::PowerLoss { .. }
                )
            })
            .count(),
        ..FaultTracker::default()
    }));
    for event in plan.events.iter().copied() {
        let at = event.at_ms() * MILLISECOND;
        let t = tracker.clone();
        sim.schedule_at(at, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            trigger(w, sim, event, t, cfg);
        });
    }
    Ok(tracker)
}

/// Runs the simulation until every kill phase has finished (no-op when
/// the plan had no kills or everything already completed).
pub fn run_plan_to_completion(world: &mut Cluster, sim: &mut Sim<Cluster>, tracker: &FaultHandle) {
    let t = tracker.clone();
    sim.run_while(world, move |_| !t.borrow().finished());
}

/// Executes one scripted event.
fn trigger(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    event: FaultEvent,
    tracker: FaultHandle,
    cfg: EngineConfig,
) {
    match event {
        FaultEvent::SlowNode {
            node,
            factor,
            duration_ms,
            ..
        } => {
            let until = sim.now() + duration_ms * MILLISECOND;
            world.core.net.set_slowdown(node, factor, until);
        }
        FaultEvent::HealNode { at_ms, node } => {
            // Revive + in-place journal replay happen synchronously at
            // the heal instant (nothing can interleave); the drain-gated
            // delta re-sync and rehome reclamation follow as a phase.
            let heal = tsue_ecfs::heal_node(world, sim, node);
            resync_phase_start(world, sim, at_ms, node, heal, tracker, cfg);
        }
        FaultEvent::KillNode { at_ms, node } => {
            fail_node(world, node);
            phase_start(world, sim, at_ms, vec![node], tracker, cfg);
        }
        FaultEvent::KillRack { at_ms, rack } => {
            let victims = tsue_ecfs::fail_rack(world, rack);
            phase_start(world, sim, at_ms, victims, tracker, cfg);
        }
        FaultEvent::CorruptBlock {
            at_ms,
            node,
            blocks,
            seed,
        } => {
            let mut rng = SplitRng::new(seed.unwrap_or(0xB1707 ^ (at_ms << 8) ^ node as u64));
            let ids = world.core.osds[node].block_ids();
            if ids.is_empty() {
                return;
            }
            // A handful of flips per victim block — enough that at least
            // one lands outside any page a later write happens to cover.
            let picks = blocks.unwrap_or(1).min(ids.len() as u64);
            for _ in 0..picks {
                let id = ids[rng.below(ids.len() as u64) as usize];
                world.core.osds[node].corrupt_bits(id, &mut rng, 3);
            }
        }
        FaultEvent::PowerLoss { at_ms, node, seed } => {
            let seed = seed.unwrap_or(0x9_0FF ^ (at_ms << 8) ^ node as u64);
            world.power_loss(sim, node, seed);
        }
    }
}

/// Snapshot taken at phase start, consumed at finalize. Block counts
/// come from the recovery engine's per-phase stats (exact even when
/// kill phases overlap); the traffic and degraded-read fields are
/// whole-cluster deltas over the phase window.
#[derive(Clone)]
struct PhaseSnapshot {
    at_ms: u64,
    killed: Vec<usize>,
    t_kill: Time,
    backlog_at_failure: u64,
    tier0: TierTraffic,
    degraded0: u64,
    /// Cumulative client-op latency histogram at the kill instant; the
    /// phase window's distribution is recovered with [`Histogram::since`].
    lat0: Histogram,
}

/// Kill landed: snapshot, arm the watchdog, enter the drain gate.
fn phase_start(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    at_ms: u64,
    killed: Vec<usize>,
    tracker: FaultHandle,
    cfg: EngineConfig,
) {
    let snap = PhaseSnapshot {
        at_ms,
        killed,
        t_kill: sim.now(),
        backlog_at_failure: world.total_scheme_backlog(),
        tier0: *world.core.net.tier_traffic(),
        degraded0: world.core.metrics.degraded_reads,
        lat0: world.core.metrics.obs.client_op_hist(),
    };
    arm_watchdog(world, sim, tracker.clone(), cfg);
    let best = snap.backlog_at_failure;
    drain_gate(
        world,
        sim,
        snap,
        DrainProgress {
            strides: 0,
            best,
            stalled: 0,
        },
        tracker,
        cfg,
    );
}

/// Drain-gate loop state.
#[derive(Clone, Copy)]
struct DrainProgress {
    strides: u32,
    /// Lowest live-scheme backlog observed since the kill.
    best: u64,
    /// Consecutive strides without a new minimum.
    stalled: u32,
}

/// The failover watchdog: periodically force-completes client ops that
/// have been in flight longer than `op_timeout` — state lost inside a
/// dead node must not wedge any scheme's closed loop.
fn arm_watchdog(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    tracker: FaultHandle,
    cfg: EngineConfig,
) {
    if tracker.borrow().watchdog_armed {
        return;
    }
    tracker.borrow_mut().watchdog_armed = true;
    let _ = world;
    watchdog_tick(sim, tracker, cfg);
}

fn watchdog_tick(sim: &mut Sim<Cluster>, tracker: FaultHandle, cfg: EngineConfig) {
    sim.schedule(
        cfg.watchdog_period,
        move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            let any_dead = w.core.osds.iter().any(|o| o.dead);
            // Reap only while a node is actually down: ops merely queued
            // behind recovery congestion on a healed cluster must run to
            // their true completion, not be clipped at the timeout.
            // (Reaped ops are counted separately in `metrics.reaped_ops`.)
            if any_dead {
                let deadline = sim.now().saturating_sub(cfg.op_timeout);
                reap_stalled_ops(w, sim, deadline);
            }
            let keep = !tracker.borrow().finished()
                || (any_dead && (!w.core.pending.is_empty() || w.core.accepting(sim.now())));
            if keep {
                watchdog_tick(sim, tracker, cfg);
            } else {
                tracker.borrow_mut().watchdog_armed = false;
            }
        },
    );
}

/// One gate stride, shared by the kill (drain) and heal (re-sync)
/// gates: folds the current live-scheme backlog into the progress
/// tracker and reports whether the at-failure log storm has drained —
/// backlog either reaches zero (TSUE: almost immediately; traffic
/// stopped) or flattens at its steady-state churn (live traffic keeps a
/// small rolling backlog).
fn gate_observe(world: &Cluster, progress: &mut DrainProgress, cfg: EngineConfig) -> bool {
    let backlog = world.total_scheme_backlog();
    if progress.strides > 0 {
        if backlog < progress.best {
            progress.best = backlog;
            progress.stalled = 0;
        } else {
            progress.stalled += 1;
        }
    }
    backlog == 0 || progress.stalled >= cfg.drain_stall_strides
}

/// Re-issues `flush` to every live scheme (the gate's pump half).
fn flush_live_schemes(world: &mut Cluster, sim: &mut Sim<Cluster>) {
    for osd in 0..world.core.cfg.osds {
        if world.core.osds[osd].dead {
            continue;
        }
        let mut s = world.schemes[osd].take().expect("scheme missing");
        s.flush(&mut world.core, sim, osd);
        world.schemes[osd] = Some(s);
    }
}

/// Drain gate: pump flushes each stride until the storm has drained or
/// the stride cap fires; then start the rebuild.
fn drain_gate(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    snap: PhaseSnapshot,
    mut progress: DrainProgress,
    tracker: FaultHandle,
    cfg: EngineConfig,
) {
    let storm_drained = gate_observe(world, &mut progress, cfg);
    if storm_drained || progress.strides >= cfg.drain_cap_strides {
        rebuild_start(world, sim, snap, tracker, cfg);
        return;
    }
    flush_live_schemes(world, sim);
    progress.strides += 1;
    sim.schedule(
        cfg.drain_stride,
        move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            drain_gate(w, sim, snap, progress, tracker, cfg);
        },
    );
}

/// Logs drained (or the cap fired): enumerate lost blocks and rebuild
/// them online, then poll for completion.
fn rebuild_start(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    snap: PhaseSnapshot,
    tracker: FaultHandle,
    cfg: EngineConfig,
) {
    let drain_ns = sim.now() - snap.t_kill;
    // Phase boundary: no worker-pool byte job may straddle the
    // drain→rebuild transition (the pool joins all workers inside each
    // event, so this only documents and checks the invariant).
    world.core.pool.quiesce();
    world.core.recovery.concurrency = cfg.rebuild_concurrency;
    let victims = snap.killed.clone();
    let phase = start_recovery(world, sim, &victims);
    poll_done(world, sim, snap, drain_ns, phase, tracker, cfg);
}

fn poll_done(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    snap: PhaseSnapshot,
    drain_ns: Time,
    phase: u64,
    tracker: FaultHandle,
    cfg: EngineConfig,
) {
    if world.core.recovery.phase_stats(phase).pending() > 0 {
        sim.schedule(
            cfg.poll_period,
            move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                poll_done(w, sim, snap, drain_ns, phase, tracker, cfg);
            },
        );
        return;
    }
    finalize_phase(world, sim, snap, drain_ns, phase, tracker);
}

fn finalize_phase(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    snap: PhaseSnapshot,
    drain_ns: Time,
    phase: u64,
    tracker: FaultHandle,
) {
    const MB: f64 = 1e6;
    let core = &world.core;
    let stats = core.recovery.phase_stats(phase);
    let total_ns = sim.now().saturating_sub(snap.t_kill).max(1);
    let tier = core.net.tier_traffic().since(&snap.tier0);
    let phase = PhaseReport {
        at_ms: snap.at_ms,
        killed: snap.killed.clone(),
        backlog_at_failure: snap.backlog_at_failure,
        drain_ms: drain_ns as f64 / MILLISECOND as f64,
        rebuild_ms: (total_ns - drain_ns) as f64 / MILLISECOND as f64,
        blocks_lost: stats.enqueued,
        blocks_rebuilt: stats.rebuilt,
        blocks_unrecoverable: stats.unrecoverable,
        blocks_skipped: stats.skipped,
        bytes_rebuilt: stats.bytes_rebuilt,
        journal_replayed_bytes: stats.journal_replayed_bytes,
        recovery_mb_s: stats.bytes_rebuilt as f64 * 1e9 / total_ns as f64 / MB,
        intra_rack_mb: tier.intra_wire as f64 / MB,
        cross_rack_mb: tier.cross_wire as f64 / MB,
        degraded_reads: core.metrics.degraded_reads - snap.degraded0,
        lat_before: snap.lat0.summary(),
        lat_during: core
            .metrics
            .obs
            .client_op_hist()
            .since(&snap.lat0)
            .summary(),
        lat_after: None,
    };
    let mut t = tracker.borrow_mut();
    t.phase_end_lat.push(core.metrics.obs.client_op_hist());
    t.report.phases.push(phase);
    t.report.rebuild_intra_bytes = core.recovery.intra_rack_bytes;
    t.report.rebuild_cross_bytes = core.recovery.cross_rack_bytes;
    t.active_phases -= 1;
}

/// Heal landed: run the re-sync phase. The gate re-flushes live schemes
/// each stride until the log storm has drained *and* the recovery engine
/// has no queued/in-flight rebuilds (a rebuild completing after the
/// copy-back would re-populate the rehome table the re-sync just
/// reclaimed); then the copy-back + reclamation + parity repair run and
/// the phase polls their modeled I/O to completion.
fn resync_phase_start(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    at_ms: u64,
    node: usize,
    heal: HealStats,
    tracker: FaultHandle,
    cfg: EngineConfig,
) {
    let t_heal = sim.now();
    let best = world.total_scheme_backlog();
    resync_gate(
        world,
        sim,
        at_ms,
        node,
        heal,
        t_heal,
        DrainProgress {
            strides: 0,
            best,
            stalled: 0,
        },
        tracker,
        cfg,
    );
}

#[allow(clippy::too_many_arguments)] // phase context threaded through the gate loop
fn resync_gate(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    at_ms: u64,
    node: usize,
    heal: HealStats,
    t_heal: Time,
    mut progress: DrainProgress,
    tracker: FaultHandle,
    cfg: EngineConfig,
) {
    if !world.core.mds.is_alive(node) {
        // The node was re-killed while the gate was striding (a flapping
        // node). Copying content onto a dead OSD and reclaiming its
        // rehome entries would point live reads at a corpse — abandon
        // the re-sync; the re-kill's own phase (and the next heal's
        // re-sync) take over from here.
        let drain_ns = sim.now() - t_heal;
        resync_poll(
            world,
            sim,
            at_ms,
            node,
            heal,
            t_heal,
            drain_ns,
            tsue_ecfs::ResyncStats::default(),
            tracker,
            cfg,
        );
        return;
    }
    let storm_drained = gate_observe(world, &mut progress, cfg);
    let rebuilds_idle = world.core.recovery.pending() == 0;
    if (storm_drained && rebuilds_idle) || progress.strides >= cfg.drain_cap_strides {
        let drain_ns = sim.now() - t_heal;
        // Phase boundary: re-sync copy-back must see every in-flight
        // byte job retired (see the drain-gate note in `rebuild_start`).
        world.core.pool.quiesce();
        let stats = tsue_ecfs::start_resync(world, sim, node);
        resync_poll(
            world, sim, at_ms, node, heal, t_heal, drain_ns, stats, tracker, cfg,
        );
        return;
    }
    flush_live_schemes(world, sim);
    progress.strides += 1;
    sim.schedule(
        cfg.drain_stride,
        move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            resync_gate(w, sim, at_ms, node, heal, t_heal, progress, tracker, cfg);
        },
    );
}

#[allow(clippy::too_many_arguments)] // phase context threaded through the poll loop
fn resync_poll(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    at_ms: u64,
    node: usize,
    heal: HealStats,
    t_heal: Time,
    drain_ns: Time,
    stats: tsue_ecfs::ResyncStats,
    tracker: FaultHandle,
    cfg: EngineConfig,
) {
    if world.core.resync.pending() > 0 {
        sim.schedule(
            cfg.poll_period,
            move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                resync_poll(
                    w, sim, at_ms, node, heal, t_heal, drain_ns, stats, tracker, cfg,
                );
            },
        );
        return;
    }
    let total_ns = sim.now().saturating_sub(t_heal);
    let mut t = tracker.borrow_mut();
    t.report.resyncs.push(ResyncReport {
        at_ms,
        node,
        drain_ms: drain_ns as f64 / MILLISECOND as f64,
        resync_ms: total_ns.saturating_sub(drain_ns) as f64 / MILLISECOND as f64,
        blocks_replayed: heal.blocks_replayed,
        replayed_bytes: heal.replayed_bytes,
        blocks_copied_back: stats.blocks_copied_back,
        bytes_copied_back: stats.bytes_copied_back,
        blocks_reclaimed: stats.blocks_reclaimed,
        parity_repaired: stats.parity_repaired,
        rehomed_residual: world.core.mds.rehomed_count() as u64,
    });
    t.active_phases -= 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_json(e: &FaultEvent) -> Value {
        serde::Serialize::to_value(e)
    }

    #[test]
    fn fault_events_round_trip_through_serde() {
        let events = vec![
            FaultEvent::KillNode { at_ms: 10, node: 3 },
            FaultEvent::KillRack { at_ms: 20, rack: 1 },
            FaultEvent::SlowNode {
                at_ms: 5,
                node: 0,
                factor: 4.0,
                duration_ms: 50,
            },
            FaultEvent::HealNode { at_ms: 90, node: 3 },
        ];
        for e in &events {
            let back = <FaultEvent as serde::Deserialize>::from_value(&ev_json(e)).unwrap();
            assert_eq!(*e, back);
        }
        let plan = FaultPlan::new(events);
        let v = serde::Serialize::to_value(&plan);
        let back = <FaultPlan as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn unknown_kind_and_fields_fail_loudly() {
        let bad = Value::Object(vec![
            ("kind".into(), Value::Str("kill_everything".into())),
            ("at_ms".into(), Value::UInt(1)),
        ]);
        let err = <FaultEvent as serde::Deserialize>::from_value(&bad).unwrap_err();
        assert!(err.to_string().contains("kill_rack"), "{err}");

        let typo = Value::Object(vec![
            ("kind".into(), Value::Str("kill_node".into())),
            ("at_ms".into(), Value::UInt(1)),
            ("noed".into(), Value::UInt(2)),
        ]);
        let err = <FaultEvent as serde::Deserialize>::from_value(&typo).unwrap_err();
        assert!(err.to_string().contains("noed"), "{err}");
    }

    #[test]
    fn invalid_plan_error_names_the_offending_event() {
        let plan = FaultPlan::new(vec![
            FaultEvent::KillNode { at_ms: 5, node: 0 },
            FaultEvent::HealNode {
                at_ms: 90,
                node: 99,
            },
        ]);
        let err = plan.validate(16, 4).unwrap_err();
        for needle in ["fault #1", "heal_node", "@90ms", "node 99"] {
            assert!(err.contains(needle), "missing '{needle}' in: {err}");
        }
    }

    #[test]
    fn install_rejects_an_invalid_plan_without_scheduling() {
        let mut cfg = tsue_ecfs::ClusterConfig::ssd_testbed(2, 1, 1);
        cfg.osds = 4;
        cfg.file_size_per_client = 1 << 20;
        let world = Cluster::new(cfg, |_| Box::new(tsue_ecfs::InstantScheme::default()));
        let mut sim: Sim<Cluster> = Sim::new();
        let plan = FaultPlan::new(vec![FaultEvent::KillNode { at_ms: 1, node: 9 }]);
        let err = install(&world, &mut sim, &plan, EngineConfig::default()).unwrap_err();
        assert!(err.contains("kill_node"), "{err}");
        assert_eq!(sim.pending(), 0, "no events scheduled from a bad plan");
    }

    #[test]
    fn plan_validation_checks_ranges() {
        let plan = FaultPlan::new(vec![FaultEvent::KillRack { at_ms: 1, rack: 7 }]);
        let err = plan.validate(16, 4).unwrap_err();
        assert!(err.contains("rack 7"), "{err}");
        let plan = FaultPlan::new(vec![FaultEvent::SlowNode {
            at_ms: 1,
            node: 0,
            factor: 0.5,
            duration_ms: 1,
        }]);
        assert!(plan.validate(16, 4).is_err());
        assert!(FaultPlan::default().validate(16, 4).is_ok());
        assert!(!FaultPlan::default().has_kills());
    }
}
