//! Scenario-file knobs for TSUE and its [`SchemeRegistry`] registration.
//!
//! A scenario selects TSUE with `"scheme": {"name": "tsue"}` and may
//! attach a `knobs` object overriding any subset of [`TsueConfig`] on
//! top of the device-class default — including the Fig. 7 ablation
//! switches O1–O5, either individually (`datalog_locality`, …) or via
//! the cumulative `breakdown_level` preset (0 = Baseline … 5 = +O5).

use crate::{Tsue, TsueConfig};
use serde::{Deserialize, Value};
use tsue_ecfs::{DeviceKind, MakeScheme, SchemeError, SchemeRegistry};

/// Partial [`TsueConfig`] override parsed from a scenario's `knobs`
/// object. Every field is optional; absent fields keep the base value.
///
/// `breakdown_level` (0–5) is applied first as the Fig. 7 cumulative
/// ablation preset, then the individual fields override it, so
/// `{"breakdown_level": 3, "pools": 2}` means "+O1..O3, but 2 pools".
#[derive(Clone, Debug, Default, PartialEq, Eq, Deserialize)]
pub struct TsueKnobs {
    /// Log unit size in bytes.
    pub unit_size: Option<u64>,
    /// Units per pool.
    pub max_units: Option<usize>,
    /// Log pools per device per layer (O4 strength).
    pub pools: Option<usize>,
    /// O1: DataLog locality folding.
    pub datalog_locality: Option<bool>,
    /// O2: ParityLog locality folding.
    pub paritylog_locality: Option<bool>,
    /// O3: FIFO multi-unit pool.
    pub use_log_pool: Option<bool>,
    /// O5: route deltas through the DeltaLog.
    pub use_delta_log: Option<bool>,
    /// Total DataLog copies including the primary.
    pub data_replicas: Option<usize>,
    /// Recycle thread pool width per OSD.
    pub recycle_threads: Option<usize>,
    /// Background seal interval, ns.
    pub seal_interval: Option<u64>,
    /// §7 extension: compress deltas in the log layers.
    pub compress_deltas: Option<bool>,
    /// Fig. 7 cumulative ablation preset (0 = Baseline … 5 = +O5).
    pub breakdown_level: Option<usize>,
}

impl TsueKnobs {
    /// Applies the knobs on top of `base`.
    ///
    /// # Errors
    /// Rejects an out-of-range `breakdown_level`.
    pub fn apply(&self, base: TsueConfig) -> Result<TsueConfig, SchemeError> {
        let mut cfg = match self.breakdown_level {
            None => base,
            Some(level @ 0..=5) => TsueConfig::breakdown(level),
            Some(level) => {
                return Err(SchemeError::msg(format!(
                    "breakdown_level must be 0..=5, got {level}"
                )))
            }
        };
        macro_rules! over {
            ($($field:ident),*) => {$(
                if let Some(v) = self.$field {
                    cfg.$field = v;
                }
            )*};
        }
        over!(
            unit_size,
            max_units,
            pools,
            datalog_locality,
            paritylog_locality,
            use_log_pool,
            use_delta_log,
            data_replicas,
            recycle_threads,
            seal_interval,
            compress_deltas
        );
        if cfg.unit_size == 0 || cfg.max_units == 0 || cfg.pools == 0 || cfg.data_replicas == 0 {
            return Err(SchemeError::msg(
                "unit_size, max_units, pools, and data_replicas must be non-zero",
            ));
        }
        Ok(cfg)
    }
}

impl TsueConfig {
    /// Resolves a scenario `knobs` value into a full config: the device
    /// default ([`TsueConfig::ssd_default`] / [`TsueConfig::hdd_default`])
    /// overridden by the parsed [`TsueKnobs`].
    ///
    /// # Errors
    /// Unknown knob keys, ill-typed values, and out-of-range presets are
    /// rejected with the offending key named.
    pub fn from_knobs(device: DeviceKind, knobs: &Value) -> Result<Self, SchemeError> {
        let base = match device {
            DeviceKind::Ssd => TsueConfig::ssd_default(),
            DeviceKind::Hdd => TsueConfig::hdd_default(),
        };
        match knobs {
            Value::Null => Ok(base),
            other => {
                let parsed =
                    TsueKnobs::from_value(other).map_err(|e| SchemeError::msg(e.to_string()))?;
                parsed.apply(base)
            }
        }
    }
}

/// Registers TSUE with a [`SchemeRegistry`] under the name `tsue`.
pub fn register_tsue(reg: &mut SchemeRegistry) {
    reg.register(
        "tsue",
        "TSUE",
        "two-stage update: replicated DataLog front end, real-time recycle \
         through Delta/ParityLog pools (knobs: TsueConfig fields + breakdown_level)",
        |params| -> Result<MakeScheme, SchemeError> {
            let cfg = TsueConfig::from_knobs(params.device, &params.knobs)?;
            Ok(Box::new(move |_| Box::new(Tsue::new(cfg.clone()))))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_knobs_give_device_defaults() {
        let ssd = TsueConfig::from_knobs(DeviceKind::Ssd, &Value::Null).unwrap();
        assert_eq!(ssd, TsueConfig::ssd_default());
        let hdd = TsueConfig::from_knobs(DeviceKind::Hdd, &Value::Null).unwrap();
        assert_eq!(hdd, TsueConfig::hdd_default());
    }

    #[test]
    fn full_config_round_trips_through_knobs() {
        let mut cfg = TsueConfig::ssd_default();
        cfg.unit_size = 8 << 20;
        cfg.pools = 2;
        cfg.compress_deltas = true;
        cfg.use_delta_log = false;
        let knobs = serde::Serialize::to_value(&cfg);
        let back = TsueConfig::from_knobs(DeviceKind::Hdd, &knobs).unwrap();
        assert_eq!(back, cfg, "serialized config must override every field");
    }

    #[test]
    fn breakdown_preset_then_field_overrides() {
        let knobs = serde_json::value_from_str(r#"{"breakdown_level": 3, "pools": 2}"#).unwrap();
        let cfg = TsueConfig::from_knobs(DeviceKind::Ssd, &knobs).unwrap();
        let mut expect = TsueConfig::breakdown(3);
        expect.pools = 2;
        assert_eq!(cfg, expect);
    }

    #[test]
    fn unknown_and_ill_typed_knobs_are_rejected() {
        let typo = serde_json::value_from_str(r#"{"max_unit": 4}"#).unwrap();
        let err = TsueConfig::from_knobs(DeviceKind::Ssd, &typo).expect_err("typo must fail");
        assert!(err.to_string().contains("max_unit"), "{err}");

        let bad = serde_json::value_from_str(r#"{"pools": "four"}"#).unwrap();
        assert!(TsueConfig::from_knobs(DeviceKind::Ssd, &bad).is_err());

        let oob = serde_json::value_from_str(r#"{"breakdown_level": 9}"#).unwrap();
        assert!(TsueConfig::from_knobs(DeviceKind::Ssd, &oob).is_err());

        let zero = serde_json::value_from_str(r#"{"max_units": 0}"#).unwrap();
        assert!(TsueConfig::from_knobs(DeviceKind::Ssd, &zero).is_err());
    }
}
