//! Residence-time accounting per log layer — the source of Table 2
//! ("Time of Data Resided in Memory"): append latency, buffer dwell time,
//! and recycle duration for the DataLog, DeltaLog, and ParityLog.

use tsue_sim::Time;

/// Streaming mean accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct StatAcc {
    sum: u128,
    count: u64,
    max: Time,
}

impl StatAcc {
    /// Adds one sample (nanoseconds).
    pub fn add(&mut self, v: Time) {
        self.sum += v as u128;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Mean in microseconds — Table 2's unit.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns() / 1000.0
    }

    /// Maximum sample in nanoseconds.
    pub fn max_ns(&self) -> Time {
        self.max
    }
}

/// Per-layer residence statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LayerResidency {
    /// Append persist latency per record.
    pub append: StatAcc,
    /// Dwell between first append and recycle start, per unit.
    pub buffer: StatAcc,
    /// Recycle duration per unit.
    pub recycle: StatAcc,
}

impl LayerResidency {
    /// Mean end-to-end residence for this layer, ns.
    pub fn total_mean_ns(&self) -> f64 {
        self.append.mean_ns() + self.buffer.mean_ns() + self.recycle.mean_ns()
    }
}

/// The three layers of Table 2.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResidencyStats {
    /// DataLog row.
    pub data: LayerResidency,
    /// DeltaLog row.
    pub delta: LayerResidency,
    /// ParityLog row.
    pub parity: LayerResidency,
}

impl ResidencyStats {
    /// Table 2's TOTAL TIME: mean residence summed across layers, ns.
    pub fn total_ns(&self) -> f64 {
        self.data.total_mean_ns() + self.delta.total_mean_ns() + self.parity.total_mean_ns()
    }

    /// Formats the three rows like Table 2 (µs).
    pub fn rows(&self) -> [(&'static str, f64, f64, f64); 3] {
        [
            (
                "DATA_LOG",
                self.data.append.mean_us(),
                self.data.buffer.mean_us(),
                self.data.recycle.mean_us(),
            ),
            (
                "DELTA_LOG",
                self.delta.append.mean_us(),
                self.delta.buffer.mean_us(),
                self.delta.recycle.mean_us(),
            ),
            (
                "PARITY_LOG",
                self.parity.append.mean_us(),
                self.parity.buffer.mean_us(),
                self.parity.recycle.mean_us(),
            ),
        ]
    }

    /// Merges another instance (cluster-wide aggregation).
    pub fn merge(&mut self, other: &ResidencyStats) {
        for (a, b) in [
            (&mut self.data, &other.data),
            (&mut self.delta, &other.delta),
            (&mut self.parity, &other.parity),
        ] {
            a.append.sum += b.append.sum;
            a.append.count += b.append.count;
            a.append.max = a.append.max.max(b.append.max);
            a.buffer.sum += b.buffer.sum;
            a.buffer.count += b.buffer.count;
            a.buffer.max = a.buffer.max.max(b.buffer.max);
            a.recycle.sum += b.recycle.sum;
            a.recycle.count += b.recycle.count;
            a.recycle.max = a.recycle.max.max(b.recycle.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_acc_mean_and_max() {
        let mut s = StatAcc::default();
        assert_eq!(s.mean_ns(), 0.0);
        s.add(1000);
        s.add(3000);
        assert_eq!(s.mean_ns(), 2000.0);
        assert_eq!(s.mean_us(), 2.0);
        assert_eq!(s.max_ns(), 3000);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn rows_report_all_layers() {
        let mut r = ResidencyStats::default();
        r.data.append.add(1000);
        r.delta.buffer.add(2000);
        r.parity.recycle.add(3000);
        let rows = r.rows();
        assert_eq!(rows[0].0, "DATA_LOG");
        assert_eq!(rows[0].1, 1.0);
        assert_eq!(rows[1].2, 2.0);
        assert_eq!(rows[2].3, 3.0);
        assert_eq!(r.total_ns(), 6000.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = ResidencyStats::default();
        a.data.append.add(100);
        let mut b = ResidencyStats::default();
        b.data.append.add(300);
        a.merge(&b);
        assert_eq!(a.data.append.count(), 2);
        assert_eq!(a.data.append.mean_ns(), 200.0);
    }
}
