//! The FIFO log pool (paper §3.2, Fig. 3).
//!
//! A pool manages a bounded set of fixed-size [`LogUnit`]s in a FIFO
//! queue: exactly one Empty unit (the tail) accepts appends; sealed units
//! await/undergo recycling; Recycled units linger as read caches until the
//! pool reuses them as fresh Empty units. The quota (`max_units`) bounds
//! memory; when every unit is still busy recycling, appends experience
//! backpressure — which is precisely the Fig. 6b effect (throughput
//! collapses at `max_units = 2`, saturates at 4+).

use crate::logunit::{LogUnit, UnitId, UnitState};
use std::collections::VecDeque;
use tsue_sim::Time;

/// A FIFO queue of log units with a single active tail.
#[derive(Debug)]
pub struct LogPool<K> {
    /// Units, oldest first; the active (Empty) unit, if any, is the back.
    units: VecDeque<LogUnit<K>>,
    /// Capacity of one unit in bytes.
    pub unit_size: u64,
    /// Maximum number of units (the Fig. 6b quota).
    pub max_units: usize,
    next_id: UnitId,
    /// Pool-unique id offset so unit ids are globally distinct.
    id_stride: u64,
}

impl<K: Ord + Copy> LogPool<K> {
    /// Creates a pool; `pool_tag` disambiguates unit ids across pools.
    pub fn new(unit_size: u64, max_units: usize, pool_tag: u64) -> Self {
        assert!(max_units >= 1, "pool needs at least one unit");
        LogPool {
            units: VecDeque::new(),
            unit_size,
            max_units,
            next_id: 0,
            id_stride: pool_tag << 32,
        }
    }

    /// The active unit if one exists and has room for `len` more bytes.
    pub fn active_fits(&self, len: u64) -> bool {
        match self.units.back() {
            Some(u) if u.state == UnitState::Empty => u.bytes + len <= self.unit_size,
            _ => false,
        }
    }

    /// True if the back unit is Empty (appendable).
    pub fn has_active(&self) -> bool {
        matches!(
            self.units.back(),
            Some(u) if u.state == UnitState::Empty
        )
    }

    /// Mutable access to the active unit.
    ///
    /// # Panics
    /// Panics if there is no active unit.
    pub fn active_mut(&mut self) -> &mut LogUnit<K> {
        // INVARIANT: documented contract (# Panics above) — callers
        // provision an active unit before appending.
        let u = self.units.back_mut().expect("no units in pool");
        assert_eq!(u.state, UnitState::Empty, "back unit is not active");
        u
    }

    /// Seals the active unit (marks it Recyclable); returns its id, or
    /// `None` if there is no active unit or it is empty of data.
    pub fn seal_active(&mut self, now: Time) -> Option<UnitId> {
        let u = self.units.back_mut()?;
        if u.state != UnitState::Empty || u.raw_records == 0 {
            return None;
        }
        u.state = UnitState::Recyclable;
        u.sealed_at = Some(now);
        Some(u.id)
    }

    /// Ensures an Empty active unit exists at the tail. Allocates a new
    /// unit while under quota, else reuses the oldest Recycled unit.
    /// Returns false when every unit is busy (backpressure).
    pub fn provision_active(&mut self) -> bool {
        if self.has_active() {
            return true;
        }
        if self.units.len() < self.max_units {
            let id = self.id_stride | self.next_id;
            self.next_id += 1;
            self.units.push_back(LogUnit::new(id));
            return true;
        }
        // Reuse the oldest Recycled unit (dropping its read-cache role).
        if let Some(pos) = self
            .units
            .iter()
            .position(|u| u.state == UnitState::Recycled)
        {
            // INVARIANT: `pos` came from position() on this deque with no
            // mutation in between.
            let mut u = self.units.remove(pos).expect("position valid");
            u.reset();
            self.units.push_back(u);
            return true;
        }
        false
    }

    /// Looks up a unit by id.
    pub fn unit_mut(&mut self, id: UnitId) -> Option<&mut LogUnit<K>> {
        self.units.iter_mut().find(|u| u.id == id)
    }

    /// Immutable unit lookup.
    pub fn unit(&self, id: UnitId) -> Option<&LogUnit<K>> {
        self.units.iter().find(|u| u.id == id)
    }

    /// Iterates units oldest → newest (overlay order: newest content last
    /// so it wins).
    pub fn iter_oldest_first(&self) -> impl Iterator<Item = &LogUnit<K>> {
        self.units.iter()
    }

    /// Overlays the pool's content for `key` across all units (read-cache
    /// path); returns true when the union fully covers the range.
    pub fn overlay(&self, key: &K, off: u64, len: u64, mut buf: Option<&mut [u8]>) -> bool {
        let mut cover = tsue_ecfs::RangeMap::new();
        for u in &self.units {
            if u.overlay(key, off, len, buf.as_deref_mut()) {
                return true; // a single unit fully covers (fast path)
            }
            // Track partial coverage for the union check.
            if let Some(e) = u.index.get(key) {
                if e.raw.is_empty() {
                    for (o, c) in e.ranges.iter() {
                        let s = o.max(off);
                        let t = (o + c.len).min(off + len);
                        if t > s {
                            cover.insert(s, tsue_ecfs::Chunk::ghost(t - s));
                        }
                    }
                } else {
                    for (o, c) in &e.raw {
                        let s = (*o).max(off);
                        let t = (o + c.len).min(off + len);
                        if t > s {
                            cover.insert(s, tsue_ecfs::Chunk::ghost(t - s));
                        }
                    }
                }
            }
        }
        cover.overlay(off, len, None)
    }

    /// Total unrecycled work items (active + sealed units).
    pub fn pending_work(&self) -> u64 {
        self.units
            .iter()
            .filter(|u| matches!(u.state, UnitState::Empty | UnitState::Recyclable))
            .map(LogUnit::work_items)
            .sum()
    }

    /// Total memory pinned by the pool.
    pub fn memory_bytes(&self) -> u64 {
        self.units.iter().map(LogUnit::memory_bytes).sum()
    }

    /// Number of units currently allocated.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Releases surplus Recycled units down to `keep` (idle shrink —
    /// §3.2.2 "unused log space is released").
    pub fn shrink_to(&mut self, keep: usize) {
        while self.units.len() > keep {
            if let Some(pos) = self
                .units
                .iter()
                .position(|u| u.state == UnitState::Recycled)
            {
                self.units.remove(pos);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsue_ecfs::rangemap::Discipline;
    use tsue_ecfs::Chunk;

    fn fill_active(p: &mut LogPool<u32>, key: u32, n: usize, len: u64) {
        for i in 0..n {
            p.active_mut().append(
                key,
                i as u64 * len,
                Chunk::ghost(len),
                Discipline::Overwrite,
                true,
                0,
            );
        }
    }

    #[test]
    fn lifecycle_empty_seal_recycle_reuse() {
        let mut p: LogPool<u32> = LogPool::new(1 << 20, 2, 0);
        assert!(p.provision_active());
        fill_active(&mut p, 1, 4, 4096);
        let id = p.seal_active(100).expect("sealed");
        assert!(!p.has_active());
        assert!(p.provision_active(), "second unit under quota");
        assert_eq!(p.unit_count(), 2);
        // Both busy: no third unit.
        fill_active(&mut p, 2, 1, 4096);
        p.seal_active(200);
        assert!(!p.provision_active(), "quota reached, nothing recycled");
        // Recycle the first: reuse becomes possible.
        p.unit_mut(id).unwrap().state = UnitState::Recycled;
        assert!(p.provision_active());
        assert_eq!(p.unit_count(), 2, "reused, not grown");
    }

    #[test]
    fn seal_empty_unit_returns_none() {
        let mut p: LogPool<u32> = LogPool::new(1 << 20, 2, 0);
        p.provision_active();
        assert_eq!(p.seal_active(0), None, "no data, nothing to seal");
    }

    #[test]
    fn active_fits_respects_unit_size() {
        let mut p: LogPool<u32> = LogPool::new(10_000, 2, 0);
        p.provision_active();
        assert!(p.active_fits(5000));
        fill_active(&mut p, 1, 1, 8000);
        assert!(!p.active_fits(5000));
    }

    #[test]
    fn overlay_across_units_newest_wins() {
        let mut p: LogPool<u32> = LogPool::new(1 << 20, 3, 0);
        p.provision_active();
        p.active_mut().append(
            1,
            0,
            Chunk::real(vec![0xAA; 100]),
            Discipline::Overwrite,
            true,
            0,
        );
        p.seal_active(10);
        p.provision_active();
        p.active_mut().append(
            1,
            50,
            Chunk::real(vec![0xBB; 100]),
            Discipline::Overwrite,
            true,
            20,
        );
        let mut buf = vec![0u8; 150];
        assert!(p.overlay(&1, 0, 150, Some(&mut buf)));
        assert!(buf[..50].iter().all(|&b| b == 0xAA));
        assert!(buf[50..].iter().all(|&b| b == 0xBB), "newer unit wins");
        // Uncovered gap → not a full hit.
        assert!(!p.overlay(&1, 0, 200, None));
    }

    #[test]
    fn pending_work_ignores_recycled_units() {
        let mut p: LogPool<u32> = LogPool::new(1 << 20, 2, 0);
        p.provision_active();
        fill_active(&mut p, 1, 3, 4096);
        let id = p.seal_active(0).unwrap();
        assert_eq!(p.pending_work(), 1, "3 adjacent appends merged to 1");
        p.unit_mut(id).unwrap().state = UnitState::Recycled;
        assert_eq!(p.pending_work(), 0);
    }

    #[test]
    fn shrink_releases_only_recycled() {
        let mut p: LogPool<u32> = LogPool::new(1 << 20, 4, 0);
        for i in 0..4 {
            p.provision_active();
            fill_active(&mut p, i, 1, 512);
            p.seal_active(0);
        }
        assert_eq!(p.unit_count(), 4);
        p.shrink_to(2);
        assert_eq!(p.unit_count(), 4, "nothing recycled yet");
        for u in p.units.iter_mut() {
            u.state = UnitState::Recycled;
        }
        p.shrink_to(2);
        assert_eq!(p.unit_count(), 2);
    }

    #[test]
    fn unit_ids_are_globally_unique_across_pools() {
        let mut a: LogPool<u32> = LogPool::new(1 << 20, 2, 0);
        let mut b: LogPool<u32> = LogPool::new(1 << 20, 2, 1);
        a.provision_active();
        b.provision_active();
        assert_ne!(a.units[0].id, b.units[0].id);
    }
}
