//! # tsue-core — the paper's primary contribution
//!
//! TSUE ("Two-Stage Update for Erasure coding") splits the erasure-code
//! update path into a **synchronous front end** — update payloads are
//! appended to a replicated, sequential *DataLog* and acknowledged
//! immediately — and an **asynchronous back end** that recycles logs in
//! real time through a three-layer hierarchy:
//!
//! ```text
//!   client update
//!        │ append (sequential, replicated ×2)
//!        ▼
//!   [DataLog]  ── merge (newest-wins, coalesce) ──►  data block overwrite
//!        │                                           + data delta
//!        ▼ forward Δ to first parity owner (copy on second)
//!   [DeltaLog] ── merge (Eq. 3) + combine across blocks (Eq. 5), in memory
//!        │
//!        ▼ combined parity deltas to every parity owner
//!   [ParityLog] ── merge (Eq. 3) ──► parity block read-XOR-write
//! ```
//!
//! The crate provides:
//!
//! * [`LogUnit`] / [`LogPool`] — the FIFO log-pool structure with the
//!   two-level (block → offset) coalescing index and bitmap filter (§3.2),
//! * [`Tsue`] / [`TsueConfig`] — the [`tsue_ecfs::UpdateScheme`]
//!   implementation with every Fig. 7 ablation switch (O1–O5),
//! * [`ResidencyStats`] — per-layer append/buffer/recycle residence times
//!   (Table 2),
//! * [`live`] — a thread-based concurrent log pool (parking_lot +
//!   crossbeam) demonstrating the same structure outside the simulator.

pub mod knobs;
pub mod live;
pub mod logpool;
pub mod logunit;
pub mod residency;
pub mod tsue;

pub use knobs::{register_tsue, TsueKnobs};
pub use logpool::LogPool;
pub use logunit::{BlockIndex, LogUnit, UnitId, UnitState, RECORD_HEADER};
pub use residency::{LayerResidency, ResidencyStats, StatAcc};

// TSUE state rides along when a cluster moves to a bench/test worker
// thread; assert it stays free of `Rc`/`RefCell` interior state.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<tsue::Tsue>();
};
pub use tsue::{DeltaKey, Tsue, TsueConfig};
