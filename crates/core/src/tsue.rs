//! The TSUE update scheme: two-stage update over a three-layer,
//! real-time-recycled log hierarchy (paper §3–4).
//!
//! **Front end (synchronous):** an update extent is appended to the
//! DataLog of the block's OSD — a sequential write — replicated to the
//! next node(s), and acknowledged. No read-modify-write, no parity work on
//! the client-visible path.
//!
//! **Back end (asynchronous, real-time):** sealed DataLog units recycle
//! immediately: merged ranges read the original data once, overwrite the
//! data block, and forward data deltas to the DeltaLog on the stripe's
//! first parity owner (with a copy on the second). DeltaLog units merge
//! same-offset deltas within and across blocks (Eq. 3/5) purely in memory
//! and emit combined parity deltas to each ParityLog. ParityLog units
//! merge again and apply the result to parity blocks with few, large
//! read-modify-writes.
//!
//! Every stage that the paper ablates in Fig. 7 is a switch on
//! [`TsueConfig`]: data/parity-log locality folding (O1/O2), the FIFO
//! multi-unit pool (O3), pools-per-device (O4), and the DeltaLog layer
//! (O5).

use crate::logpool::LogPool;
use crate::logunit::{UnitId, UnitState, RECORD_HEADER};
use crate::residency::ResidencyStats;
use std::collections::{BTreeMap, VecDeque};
use tsue_ecfs::logregion::LogRegion;
use tsue_ecfs::rangemap::{Discipline, RangeMap};
use tsue_ecfs::scheme::{DeltaKind, PowerLossReport, ReadServe, SchemeMsg, UpdateReq};
use tsue_ecfs::{
    BlockId, Chunk, Cluster, ClusterCore, ReplicaRecord, SplitRng, UpdateScheme, ACK_BYTES,
};
use tsue_sim::{MultiResource, Sim, Time, SECOND};

/// DeltaLog key: (global stripe, data-block role).
pub type DeltaKey = (u64, usize);

/// Same-span delta contributions grouped for Eq. 5 combining:
/// `(offset, length)` → `[(role, delta bytes)]`.
type SpanGroups<'a> = std::collections::BTreeMap<(u64, u64), Vec<(usize, &'a [u8])>>;

/// Message-tag values on `DeltaForward { kind: DataDelta, .. }`.
const TAG_DELTA: u64 = 2;
const TAG_DELTA_REP: u64 = 3;

/// Timer-tag kinds (low 4 bits).
const TK_SEAL: u64 = 1;
const TK_JOB_DONE: u64 = 2;

/// The three layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LayerKind {
    Data,
    Delta,
    Parity,
}

/// TSUE tunables; every Fig. 6/7 knob lives here.
///
/// Serializes field-for-field (sizes in bytes, intervals in ns), so a
/// full config round-trips through a scenario file's `knobs` object; see
/// [`crate::knobs::TsueKnobs`] for the partial-override form.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct TsueConfig {
    /// Log unit size in bytes (paper: 16 MiB).
    pub unit_size: u64,
    /// Units per pool (Fig. 6b sweeps 2–20; default 4).
    pub max_units: usize,
    /// Log pools per device per layer (O4; default 4).
    pub pools: usize,
    /// O1: exploit locality (merge/coalesce) in the DataLog.
    pub datalog_locality: bool,
    /// O2: exploit locality in the ParityLog.
    pub paritylog_locality: bool,
    /// O3: FIFO multi-unit pool; `false` degrades to one exclusive unit.
    pub use_log_pool: bool,
    /// O5: route deltas through the DeltaLog (three layers vs two).
    pub use_delta_log: bool,
    /// Total DataLog copies incl. the primary (2 on SSD, 3 on HDD).
    pub data_replicas: usize,
    /// Recycle thread pool width per OSD.
    pub recycle_threads: usize,
    /// Background seal interval: an active unit older than this is sealed
    /// even if not full (bounds staleness; drives Table 2 buffer times).
    pub seal_interval: Time,
    /// §7 future-work extension: compress deltas while they reside in the
    /// log layers, shrinking forwarded network traffic at a small CPU cost.
    pub compress_deltas: bool,
}

impl TsueConfig {
    /// Paper defaults for the SSD cluster (§4.1, §5.3.2).
    pub fn ssd_default() -> Self {
        TsueConfig {
            unit_size: 16 << 20,
            max_units: 4,
            pools: 4,
            datalog_locality: true,
            paritylog_locality: true,
            use_log_pool: true,
            use_delta_log: true,
            data_replicas: 2,
            recycle_threads: 4,
            seal_interval: 2 * SECOND,
            compress_deltas: false,
        }
    }

    /// Paper defaults for the HDD cluster (§5.4): 3-copy data log, no
    /// DeltaLog, one pool per (slow) device.
    pub fn hdd_default() -> Self {
        TsueConfig {
            pools: 1,
            use_delta_log: false,
            data_replicas: 3,
            ..Self::ssd_default()
        }
    }

    /// The Fig. 7 cumulative ablation ladder:
    /// 0 = Baseline, 1 = +O1, 2 = +O2, 3 = +O3, 4 = +O4, 5 = +O5.
    pub fn breakdown(level: usize) -> Self {
        let mut c = TsueConfig {
            datalog_locality: false,
            paritylog_locality: false,
            use_log_pool: false,
            pools: 1,
            use_delta_log: false,
            ..Self::ssd_default()
        };
        if level >= 1 {
            c.datalog_locality = true;
        }
        if level >= 2 {
            c.paritylog_locality = true;
        }
        if level >= 3 {
            c.use_log_pool = true;
        }
        if level >= 4 {
            c.pools = 4;
        }
        if level >= 5 {
            c.use_delta_log = true;
        }
        c
    }

    fn effective_max_units(&self) -> usize {
        if self.use_log_pool {
            self.max_units
        } else {
            // Pre-O3 designs double-buffer (one active + one recycling)
            // but have no FIFO pool: appends stall whenever both units are
            // busy.
            2
        }
    }

    fn effective_pools(&self) -> usize {
        if self.use_log_pool {
            self.pools
        } else {
            1
        }
    }
}

/// Backpressured work waiting for a free log unit.
enum QueuedWork {
    Update(UpdateReq),
    Delta {
        key: DeltaKey,
        off: u64,
        chunk: Chunk,
    },
    Parity {
        pblock: BlockId,
        off: u64,
        chunk: Chunk,
    },
}

/// One paced recycle job. Content has already been applied to the block
/// store at seal time (preserving per-block unit order); the job charges
/// the device/CPU timing and forwards the precomputed delta.
enum RecycleJob {
    /// DataLog: timed read-modify-write of the data block + delta forward.
    Data(BlockId, u64, Chunk),
    /// ParityLog: timed read-XOR-write of `len` bytes of the parity block.
    Parity(BlockId, u64, u64),
}

/// The most recent log append on this OSD — the write a power loss tears.
/// Only the in-flight tail record is at risk: every earlier append's
/// framing already persisted whole, so the restart scan recovers it.
#[derive(Clone, Copy, Debug)]
enum TailAppend {
    /// DataLog append: `(block, offset, length, replica seq)`.
    Data(BlockId, u64, u64, u64),
    /// DeltaLog append at this parity owner: `(global stripe, length)`.
    Delta(u64, u64),
    /// ParityLog append: `(global stripe, parity role, length)`.
    Parity(u64, usize, u64),
}

/// In-flight recycle bookkeeping for one unit: jobs are dispatched at most
/// `recycle_threads` at a time, each next job issued when one completes —
/// pacing that keeps foreground appends interleaved on the device instead
/// of queueing behind a recycle dump.
struct InflightUnit {
    layer: LayerKind,
    pool: usize,
    jobs: VecDeque<RecycleJob>,
    running: u64,
}

/// One log layer: pools + persistence regions + backpressure queues.
struct Layer<K> {
    pools: Vec<LogPool<K>>,
    regions: Vec<LogRegion>,
    queues: Vec<VecDeque<QueuedWork>>,
    timer_armed: Vec<bool>,
}

impl<K: Ord + Copy> Layer<K> {
    fn new(cfg: &TsueConfig, layer_idx: u64, stream_base: u32) -> Self {
        let pools = cfg.effective_pools();
        let region_cap = cfg.unit_size * cfg.max_units as u64 + (4 << 20);
        Layer {
            pools: (0..pools)
                .map(|p| {
                    LogPool::new(
                        cfg.unit_size,
                        cfg.effective_max_units(),
                        layer_idx * 16 + p as u64,
                    )
                })
                .collect(),
            regions: (0..pools)
                .map(|p| LogRegion::new(region_cap, stream_base + p as u32 * 2))
                .collect(),
            queues: (0..pools).map(|_| VecDeque::new()).collect(),
            timer_armed: vec![false; pools],
        }
    }

    fn memory_bytes(&self) -> u64 {
        self.pools.iter().map(LogPool::memory_bytes).sum()
    }

    fn pending_work(&self) -> u64 {
        let pool_work: u64 = self.pools.iter().map(LogPool::pending_work).sum();
        pool_work + self.queues.iter().map(|q| q.len() as u64).sum::<u64>()
    }
}

fn pool_hash(x: u64, pools: usize) -> usize {
    (x.wrapping_mul(0x9e3779b97f4a7c15) >> 33) as usize % pools
}

/// The peers holding DataLog replica copies for `home`: the next `copies`
/// nodes around the ring — except on a racked topology, where peers in
/// *other* racks are preferred (ring order within each preference class),
/// so a whole-rack failure cannot take the primary and every copy at once.
/// On a flat topology — or under rack-oblivious placement, which opts
/// the whole cluster out of rack safety — this is exactly
/// `(home + r) % osds`.
fn replica_peers(core: &ClusterCore, home: usize, copies: usize) -> Vec<usize> {
    let osds = core.cfg.osds;
    let mut order: Vec<usize> = (1..osds).map(|r| (home + r) % osds).collect();
    if core.cfg.placement == tsue_ecfs::PlacementKind::RackAware && core.net.racks() > 1 {
        let home_rack = core.net.rack_of(core.osds[home].node);
        // Stable sort: `false < true` puts other-rack peers first while
        // keeping ring order inside each class.
        order.sort_by_key(|&p| core.net.rack_of(core.osds[p].node) == home_rack);
    }
    order.truncate(copies);
    order
}

fn block_key(b: BlockId) -> u64 {
    (b.file as u64) << 40 ^ b.stripe << 8 ^ b.role as u64
}

/// Estimated wire size of a chunk after the §7 compression extension: a
/// run-length bound on real bytes, a conservative constant ratio for
/// timing-only chunks.
fn compressed_len(chunk: &Chunk) -> u64 {
    match &chunk.bytes {
        Some(b) => {
            let mut runs: u64 = 1;
            for w in b.windows(2) {
                if w[0] != w[1] {
                    runs += 1;
                }
            }
            (runs * 2).min(b.len() as u64).max(16)
        }
        None => (chunk.len * 11 / 20).max(16),
    }
}

/// The TSUE scheme instance (one per OSD).
pub struct Tsue {
    /// Configuration (public for the harness's ablation sweeps).
    pub cfg: TsueConfig,
    data: Layer<BlockId>,
    delta: Layer<DeltaKey>,
    parity: Layer<BlockId>,
    /// Replica persistence for peer DataLogs (device-only, no memory).
    data_replica_region: LogRegion,
    /// Replica persistence for peer DeltaLogs.
    delta_replica_region: LogRegion,
    threads: MultiResource,
    acks: tsue_ecfs::scheme::AckTable,
    inflight: BTreeMap<UnitId, InflightUnit>,
    /// Monotonic sequence stamped on each replicated DataLog append, so
    /// peer replica stores can prune exactly the recycled prefix.
    data_seq: u64,
    /// `(min, max)` replica seq held by each not-yet-recycled data unit;
    /// the prune watermark at unit finish is the smallest remaining `min`
    /// minus one (seqs below it are durably merged into the block store).
    unit_seqs: BTreeMap<UnitId, (u64, u64)>,
    /// The newest append on this OSD (power-loss torn-write candidate).
    tail: Option<TailAppend>,
    /// Residence-time statistics (Table 2).
    pub residency: ResidencyStats,
    /// Reads fully served by the data log (read-cache effectiveness).
    pub cache_hits: u64,
}

impl Tsue {
    /// Creates a TSUE instance from a config.
    pub fn new(cfg: TsueConfig) -> Self {
        Tsue {
            data: Layer::new(&cfg, 0, 32),
            delta: Layer::new(&cfg, 1, 64),
            parity: Layer::new(&cfg, 2, 96),
            data_replica_region: LogRegion::new(
                cfg.unit_size * cfg.max_units as u64 * cfg.data_replicas as u64,
                128,
            ),
            delta_replica_region: LogRegion::new(cfg.unit_size * cfg.max_units as u64, 132),
            threads: MultiResource::new(cfg.recycle_threads),
            acks: tsue_ecfs::scheme::AckTable::default(),
            inflight: BTreeMap::new(),
            data_seq: 0,
            unit_seqs: BTreeMap::new(),
            tail: None,
            residency: ResidencyStats::default(),
            cache_hits: 0,
            cfg,
        }
    }

    /// SSD-default instance.
    pub fn ssd() -> Self {
        Self::new(TsueConfig::ssd_default())
    }

    /// HDD-default instance.
    pub fn hdd() -> Self {
        Self::new(TsueConfig::hdd_default())
    }

    // ------------------------------------------------------------------
    // Append paths
    // ------------------------------------------------------------------

    /// Front-end DataLog append: sequential persist + replication + ack.
    fn append_data(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    ) {
        let now = sim.now();
        let pool = pool_hash(block_key(req.block), self.data.pools.len());
        let len = req.data.len;
        let need = len + RECORD_HEADER;
        if !self.ensure_room(core, sim, osd, LayerKind::Data, pool, need) {
            self.data.queues[pool].push_back(QueuedWork::Update(req));
            return;
        }
        let (block, off, op_id) = (req.block, req.off, req.op_id);
        let unit = self.data.pools[pool].active_mut();
        let uid = unit.id;
        // The payload moves into the log index — the client's buffer is
        // shared by refcount the whole way, never duplicated.
        unit.append(
            block,
            off,
            req.data,
            Discipline::Overwrite,
            self.cfg.datalog_locality,
            now,
        );
        self.data_seq += 1;
        let seq = self.data_seq;
        let e = self.unit_seqs.entry(uid).or_insert((seq, seq));
        e.1 = seq;
        self.tail = Some(TailAppend::Data(block, off, len, seq));
        let (t_persist, _) = self.data.regions[pool].append(core, osd, now, need);
        self.residency.data.append.add(t_persist - now);
        self.arm_seal_timer(core, sim, osd, LayerKind::Data, pool);

        // Ack bookkeeping: local persist + (replicas − 1) peers.
        let copies = self
            .cfg
            .data_replicas
            .saturating_sub(1)
            .min(core.cfg.osds - 1);
        let tag = self.acks.register(op_id, 1 + copies as u32);
        sim.schedule_at(t_persist, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            tsue_ecfs::scheme::deliver_msg(w, sim, osd, SchemeMsg::Ack { tag });
        });
        for peer in replica_peers(core, osd, copies) {
            let msg = SchemeMsg::DataForward {
                from: osd,
                block,
                off,
                // The wire and peer-append costs are charged for the full
                // payload, but the parked record is a ghost: the content
                // plane keeps one logical copy (the unit index), which
                // replay reads back through `patch_unmerged` — pinning a
                // second ref here would defeat in-place run coalescing.
                data: Chunk::ghost(len),
                tag,
                seq,
            };
            core.send_to_scheme(sim, osd, peer, len, msg);
        }
    }

    /// DeltaLog append at the first parity owner.
    fn append_delta(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        key: DeltaKey,
        off: u64,
        chunk: Chunk,
    ) {
        let now = sim.now();
        let pool = pool_hash(key.0, self.delta.pools.len());
        let need = chunk.len + RECORD_HEADER;
        if !self.ensure_room(core, sim, osd, LayerKind::Delta, pool, need) {
            self.delta.queues[pool].push_back(QueuedWork::Delta { key, off, chunk });
            return;
        }
        let unit = self.delta.pools[pool].active_mut();
        // Same-offset deltas fold by XOR (Eq. 3); DeltaLog always merges —
        // exploiting locality is the layer's purpose.
        let chunk_len = chunk.len;
        unit.append(key, off, chunk, Discipline::Xor, true, now);
        self.tail = Some(TailAppend::Delta(key.0, chunk_len));
        let (t_persist, _) = self.delta.regions[pool].append(core, osd, now, need);
        self.residency.delta.append.add(t_persist - now);
        self.arm_seal_timer(core, sim, osd, LayerKind::Delta, pool);
    }

    /// ParityLog append at a parity owner.
    fn append_parity(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        pblock: BlockId,
        off: u64,
        chunk: Chunk,
    ) {
        let now = sim.now();
        let pool = pool_hash(block_key(pblock), self.parity.pools.len());
        let need = chunk.len + RECORD_HEADER;
        if !self.ensure_room(core, sim, osd, LayerKind::Parity, pool, need) {
            self.parity.queues[pool].push_back(QueuedWork::Parity { pblock, off, chunk });
            return;
        }
        let gstripe = core.global_stripe(pblock.file, pblock.stripe);
        let chunk_len = chunk.len;
        let unit = self.parity.pools[pool].active_mut();
        unit.append(
            pblock,
            off,
            chunk,
            Discipline::Xor,
            self.cfg.paritylog_locality,
            now,
        );
        self.tail = Some(TailAppend::Parity(gstripe, pblock.role, chunk_len));
        let (t_persist, _) = self.parity.regions[pool].append(core, osd, now, need);
        self.residency.parity.append.add(t_persist - now);
        self.arm_seal_timer(core, sim, osd, LayerKind::Parity, pool);
    }

    /// Makes room in `(layer, pool)` for an append: seals a full active
    /// unit (kicking its recycle) and provisions a fresh one. Returns
    /// false when all units are busy (caller queues the work).
    fn ensure_room(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        layer: LayerKind,
        pool: usize,
        need: u64,
    ) -> bool {
        let now = sim.now();
        let sealed = {
            let fits = match layer {
                LayerKind::Data => self.data.pools[pool].active_fits(need),
                LayerKind::Delta => self.delta.pools[pool].active_fits(need),
                LayerKind::Parity => self.parity.pools[pool].active_fits(need),
            };
            if fits {
                return true;
            }
            match layer {
                LayerKind::Data => self.data.pools[pool].seal_active(now),
                LayerKind::Delta => self.delta.pools[pool].seal_active(now),
                LayerKind::Parity => self.parity.pools[pool].seal_active(now),
            }
        };
        if let Some(uid) = sealed {
            self.recycle_unit(core, sim, osd, layer, pool, uid);
        }
        match layer {
            LayerKind::Data => self.data.pools[pool].provision_active(),
            LayerKind::Delta => self.delta.pools[pool].provision_active(),
            LayerKind::Parity => self.parity.pools[pool].provision_active(),
        }
    }

    // ------------------------------------------------------------------
    // Recycle paths
    // ------------------------------------------------------------------

    fn recycle_unit(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        layer: LayerKind,
        pool: usize,
        uid: UnitId,
    ) {
        match layer {
            LayerKind::Data => self.recycle_data_unit(core, sim, osd, pool, uid),
            LayerKind::Delta => self.recycle_delta_unit(core, sim, osd, pool, uid),
            LayerKind::Parity => self.recycle_parity_unit(core, sim, osd, pool, uid),
        }
    }

    /// DataLog recycle: merged read → delta compute → in-place data write
    /// → delta forwarding (three-layer) or direct parity deltas (two-layer).
    fn recycle_data_unit(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        pool: usize,
        uid: UnitId,
    ) {
        let now = sim.now();
        let jobs: Vec<(BlockId, u64, Chunk)> = {
            // INVARIANT: the recycle event was scheduled with this unit id at
            // seal time, and units are never evicted while Recyclable.
            let unit = self.data.pools[pool].unit_mut(uid).expect("unit exists");
            unit.state = UnitState::Recycling;
            unit.recycle_started = Some(now);
            if let Some(fa) = unit.first_append {
                self.residency.data.buffer.add(now.saturating_sub(fa));
            }
            collect_jobs_blockid(unit)
        };
        // Apply content now, at seal time, so per-block newest-wins
        // semantics hold even though the timed I/O below is paced. The
        // unit's merged ranges are pairwise disjoint, so capture jobs
        // commute — fan the byte work across the cluster pool when the
        // unit is big enough to pay for the barrier.
        let capture = |(block, off, newest): (BlockId, u64, Chunk), store: &tsue_ecfs::Osd| {
            let delta = match &newest.bytes {
                Some(new) => {
                    // One pass over the store: capture new ⊕ old into a
                    // pooled buffer and install the new content, with
                    // no intermediate materialization of the old data.
                    let d = store
                        .delta_poke_range(block, off, new)
                        // INVARIANT: jobs carry bytes only in materialized runs, where
                        // every hosted block has backing data.
                        .expect("materialized block");
                    Chunk::real(d)
                }
                None => Chunk::ghost(newest.len),
            };
            RecycleJob::Data(block, off, delta)
        };
        let real_bytes: u64 = jobs
            .iter()
            .map(|(_, _, c)| if c.bytes.is_some() { c.len } else { 0 })
            .sum();
        let job_queue: VecDeque<RecycleJob> = if core.pool.worth_splitting(jobs.len(), real_bytes) {
            let store = &core.osds[osd];
            core.pool
                .run(jobs, |_, job| capture(job, store))
                .into_iter()
                .collect()
        } else {
            let store = &core.osds[osd];
            jobs.into_iter().map(|job| capture(job, store)).collect()
        };
        self.inflight.insert(
            uid,
            InflightUnit {
                layer: LayerKind::Data,
                pool,
                jobs: job_queue,
                running: 0,
            },
        );
        self.dispatch_unit_jobs(core, sim, osd, uid);
    }

    /// Dispatches queued recycle jobs of `uid` up to the thread-pool width;
    /// each completion re-enters here via the job-done timer, so at most
    /// `recycle_threads` background I/Os are outstanding per unit and
    /// foreground appends interleave fairly on the device.
    fn dispatch_unit_jobs(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        uid: UnitId,
    ) {
        let width = self.cfg.recycle_threads.max(1) as u64;
        loop {
            let job = {
                let Some(inf) = self.inflight.get_mut(&uid) else {
                    return;
                };
                if inf.running >= width {
                    return;
                }
                match inf.jobs.pop_front() {
                    Some(j) => {
                        inf.running += 1;
                        j
                    }
                    None => {
                        if inf.running == 0 {
                            self.finish_unit(core, sim, osd, uid);
                        }
                        return;
                    }
                }
            };
            let done_at = match job {
                RecycleJob::Data(block, off, delta) => {
                    self.run_data_job(core, sim, osd, block, off, delta)
                }
                RecycleJob::Parity(pblock, off, len) => {
                    // Content was XORed into the store at seal time; charge
                    // the timed read-XOR-write here.
                    let th = pool_hash(block_key(pblock), self.cfg.recycle_threads.max(1));
                    let now = sim.now();
                    let compute = self
                        .threads
                        .submit_to(th, now, core.xor_time(len))
                        .saturating_sub(now);
                    core.osds[osd].xor_block_range(now, pblock, off, len, None, compute)
                }
            };
            let done_tag = TK_JOB_DONE | (uid << 4);
            core.scheme_timer(sim, osd, done_at.saturating_sub(sim.now()), done_tag);
        }
    }

    /// Executes the timed I/O of one DataLog recycle job (content already
    /// applied at seal time); returns its completion time.
    fn run_data_job(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        block: BlockId,
        off: u64,
        delta: Chunk,
    ) -> Time {
        let now = sim.now();
        let k = core.cfg.stripe.k;
        let m = core.cfg.stripe.m;
        let th = pool_hash(block_key(block), self.cfg.recycle_threads.max(1));
        // Read the original once per merged range (timing; content for the
        // delta was captured at seal time).
        let (t_read, _) = core.osds[osd].read_block_range(now, block, off, delta.len);
        let t_cpu = self.threads.submit_to(th, t_read, core.xor_time(delta.len));
        // In-place data overwrite with the merged newest content (timing
        // only — the store already holds it).
        let t_write = core.osds[osd].write_block_range(t_cpu, block, off, delta.len, None);
        let gstripe = core.global_stripe(block.file, block.stripe);
        if self.cfg.use_delta_log {
            // Forward the raw data delta to the DeltaLog at P1, copy at P2.
            let p1 = core.owner_of(gstripe, k);
            let len = if self.cfg.compress_deltas {
                compressed_len(&delta)
            } else {
                delta.len
            };
            let msg = SchemeMsg::DeltaForward {
                from: osd,
                block,
                off,
                data: delta,
                kind: DeltaKind::DataDelta,
                parity_index: 0,
                tag: TAG_DELTA,
            };
            sim.schedule_at(t_write, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                w.core.send_to_scheme(sim, osd, p1, len, msg);
            });
            if m >= 2 {
                let p2 = core.owner_of(gstripe, k + 1);
                let rep = SchemeMsg::DeltaForward {
                    from: osd,
                    block,
                    off,
                    data: Chunk::ghost(len),
                    kind: DeltaKind::DataDelta,
                    parity_index: 1,
                    tag: TAG_DELTA_REP,
                };
                sim.schedule_at(t_write, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    w.core.send_to_scheme(sim, osd, p2, len, rep);
                });
            }
        } else {
            // Two-layer mode: scale per parity locally, send to each.
            let t_gf = self
                .threads
                .submit_to(th, t_write, core.gf_time(delta.len * m as u64));
            for j in 0..m {
                let peer = core.owner_of(gstripe, k + j);
                let pd = delta.gf_scaled(core.rs.coefficient(j, block.role));
                let len = if self.cfg.compress_deltas {
                    compressed_len(&pd)
                } else {
                    pd.len
                };
                let msg = SchemeMsg::DeltaForward {
                    from: osd,
                    block,
                    off,
                    data: pd,
                    kind: DeltaKind::ParityDelta,
                    parity_index: j,
                    tag: 0,
                };
                sim.schedule_at(t_gf, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    w.core.send_to_scheme(sim, osd, peer, len, msg);
                });
            }
        }
        t_write
    }

    /// DeltaLog recycle: purely in-memory Eq. 3/5 combination, then
    /// combined parity deltas to every ParityLog.
    ///
    /// The unit's two-level index is read **in place** (no per-range
    /// clones), and same-span deltas from different data blocks of a
    /// stripe fold through [`tsue_ec::RsCode::combined_parity_delta_into`]
    /// — one scratch buffer and one fused multiply-accumulate pass per
    /// contributing block, instead of a scaled temporary per range.
    fn recycle_delta_unit(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        pool: usize,
        uid: UnitId,
    ) {
        let now = sim.now();
        let k = core.cfg.stripe.k;
        let m = core.cfg.stripe.m;
        let mut cpu: Time = 0;
        let mut sends: Vec<(usize, BlockId, u64, Chunk, usize)> = Vec::new();
        {
            // INVARIANT: the recycle event was scheduled with this unit id at
            // seal time, and units are never evicted while Recyclable.
            let unit = self.delta.pools[pool].unit_mut(uid).expect("unit exists");
            unit.state = UnitState::Recycling;
            unit.recycle_started = Some(now);
            if let Some(fa) = unit.first_append {
                self.residency.delta.buffer.add(now.saturating_sub(fa));
            }
            // Stripe → [(role, ranges)] view over the index, borrowed.
            // The unit index is a BTreeMap keyed by (gstripe, role), so
            // this walk already yields roles in ascending order within
            // each stripe — no post-sort needed.
            let mut grouped: std::collections::BTreeMap<u64, Vec<(usize, &RangeMap)>> =
                std::collections::BTreeMap::new();
            for (&(gstripe, role), entry) in unit.index.iter() {
                grouped
                    .entry(gstripe)
                    .or_default()
                    .push((role, &entry.ranges));
            }
            // Pass 1 (coordinator): group spans per (stripe, parity)
            // target and charge the CPU model — workers below need only
            // `&RsCode`, never the clock or the cost model.
            //
            // Eq. (5): one combined parity delta stream per parity.
            // Same-(offset, length) ranges across roles — the common
            // case under stripe-wide locality — combine through one
            // shared accumulator; everything else scales into its
            // own pooled buffer. XOR associativity makes the final
            // map identical either way.
            // (group index, parity index, offset, length, contributors).
            type SpanJob<'a> = (usize, usize, u64, u64, Vec<(usize, &'a [u8])>);
            let mut groups: Vec<(u64, usize, RangeMap)> = Vec::new();
            let mut span_jobs: Vec<SpanJob<'_>> = Vec::new();
            let mut span_bytes: u64 = 0;
            for (&gstripe, roles) in &grouped {
                for j in 0..m {
                    let mut combined = RangeMap::new();
                    let mut spans: SpanGroups<'_> = SpanGroups::new();
                    for (role, ranges) in roles {
                        for (off, c) in ranges.iter() {
                            cpu += core.gf_time(c.len);
                            match &c.bytes {
                                Some(b) => spans
                                    .entry((off, c.len))
                                    .or_default()
                                    .push((*role, b.as_slice())),
                                None => combined.insert_xor(off, Chunk::ghost(c.len)),
                            }
                        }
                    }
                    let gidx = groups.len();
                    for ((off, len), contribs) in spans {
                        span_bytes += len;
                        span_jobs.push((gidx, j, off, len, contribs));
                    }
                    groups.push((gstripe, j, combined));
                }
            }
            // Pass 2: the fused multiply-accumulate kernels. Each job
            // fills its own fresh accumulator from read-only borrows, so
            // the fan-out is bytewise-deterministic at any thread count.
            let rs = &core.rs;
            let fill = |(gidx, j, off, len, contribs): SpanJob<'_>| {
                let mut acc = tsue_buf::BytesMut::take(len as usize);
                rs.fill_combined_parity_delta(j, &contribs, acc.as_mut());
                (gidx, off, acc.freeze())
            };
            let filled: Vec<(usize, u64, tsue_buf::Bytes)> =
                if core.pool.worth_splitting(span_jobs.len(), span_bytes) {
                    core.pool.run(span_jobs, |_, job| fill(job))
                } else {
                    span_jobs.into_iter().map(fill).collect()
                };
            // Pass 3 (coordinator): fold results back in submission order
            // and emit sends per (stripe, parity) group.
            for (gidx, off, bytes) in filled {
                groups[gidx].2.insert_xor(off, Chunk::real(bytes));
            }
            for (gstripe, j, mut combined) in groups {
                let (file, stripe) = core.mds.locate_stripe(gstripe);
                let peer = core.owner_of(gstripe, k + j);
                let carrier = BlockId {
                    file,
                    stripe,
                    role: 0,
                };
                for (off, chunk) in combined.drain() {
                    sends.push((peer, carrier, off, chunk, j));
                }
            }
        }
        self.inflight.insert(
            uid,
            InflightUnit {
                layer: LayerKind::Delta,
                pool,
                jobs: VecDeque::new(),
                running: 1,
            },
        );
        // One CPU job covers the whole in-memory merge (no device I/O).
        let th = pool_hash(uid, self.cfg.recycle_threads.max(1));
        let t_cpu = self.threads.submit_to(th, now, cpu.max(tsue_ecfs::MEM_OP));
        for (peer, carrier, off, chunk, j) in sends {
            let len = if self.cfg.compress_deltas {
                compressed_len(&chunk)
            } else {
                chunk.len
            };
            let msg = SchemeMsg::DeltaForward {
                from: osd,
                block: carrier,
                off,
                data: chunk,
                kind: DeltaKind::ParityDelta,
                parity_index: j,
                tag: 0,
            };
            sim.schedule_at(t_cpu, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                w.core.send_to_scheme(sim, osd, peer, len, msg);
            });
        }
        let done_tag = TK_JOB_DONE | (uid << 4);
        core.scheme_timer(sim, osd, t_cpu.saturating_sub(now), done_tag);
    }

    /// ParityLog recycle: merged parity delta ranges applied to parity
    /// blocks with read-XOR-write.
    fn recycle_parity_unit(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        pool: usize,
        uid: UnitId,
    ) {
        let now = sim.now();
        let jobs: Vec<(BlockId, u64, Chunk)> = {
            // INVARIANT: the recycle event was scheduled with this unit id at
            // seal time, and units are never evicted while Recyclable.
            let unit = self.parity.pools[pool].unit_mut(uid).expect("unit exists");
            unit.state = UnitState::Recycling;
            unit.recycle_started = Some(now);
            if let Some(fa) = unit.first_append {
                self.residency.parity.buffer.add(now.saturating_sub(fa));
            }
            collect_jobs_blockid(unit)
        };
        let _ = now;
        // Apply parity XOR content now (order-free: XOR commutes), pace the
        // timed read-modify-writes below. Commutativity is exactly the
        // tick-barrier determinism condition, so the application fans out
        // across the worker pool for large units.
        let apply = |(pblock, off, delta): (BlockId, u64, Chunk), store: &tsue_ecfs::Osd| {
            if let Some(d) = delta.bytes.as_ref() {
                // In-place XOR into the store — no peek/poke round trip.
                store.xor_poke_range(pblock, off, d);
            }
            RecycleJob::Parity(pblock, off, delta.len)
        };
        let real_bytes: u64 = jobs
            .iter()
            .map(|(_, _, c)| if c.bytes.is_some() { c.len } else { 0 })
            .sum();
        let job_queue: VecDeque<RecycleJob> = if core.pool.worth_splitting(jobs.len(), real_bytes) {
            let store = &core.osds[osd];
            core.pool
                .run(jobs, |_, job| apply(job, store))
                .into_iter()
                .collect()
        } else {
            let store = &core.osds[osd];
            jobs.into_iter().map(|job| apply(job, store)).collect()
        };
        self.inflight.insert(
            uid,
            InflightUnit {
                layer: LayerKind::Parity,
                pool,
                jobs: job_queue,
                running: 0,
            },
        );
        self.dispatch_unit_jobs(core, sim, osd, uid);
    }

    /// One recycle job of a unit completed: dispatch the next queued job,
    /// or finish the unit when nothing remains.
    fn unit_job_done(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        uid: UnitId,
    ) {
        {
            let Some(inf) = self.inflight.get_mut(&uid) else {
                return;
            };
            inf.running = inf.running.saturating_sub(1);
        }
        self.dispatch_unit_jobs(core, sim, osd, uid);
    }

    /// All jobs of a unit completed: mark it Recycled and unblock queued
    /// appends.
    fn finish_unit(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        uid: UnitId,
    ) {
        let now = sim.now();
        // INVARIANT: unit_job_done fires exactly once per recycle dispatch,
        // which inserted this entry.
        let inf = self.inflight.remove(&uid).expect("inflight unit");
        let (layer, pool) = (inf.layer, inf.pool);
        match layer {
            LayerKind::Data => {
                if let Some(unit) = self.data.pools[pool].unit_mut(uid) {
                    unit.state = UnitState::Recycled;
                    if let Some(start) = unit.recycle_started {
                        self.residency.data.recycle.add(now.saturating_sub(start));
                        core.metrics.obs.recycle_merged(osd, uid, start, now);
                    }
                }
                // Every append of this unit is now merged into the block
                // store, so its peer replica copies are dead weight. The
                // safe prune watermark is bounded by the oldest append
                // still sitting in an unrecycled unit (units recycle out
                // of seq order across pools).
                if self.unit_seqs.remove(&uid).is_some() {
                    let watermark = match self.unit_seqs.values().map(|&(lo, _)| lo).min() {
                        Some(lo) => lo.saturating_sub(1),
                        None => self.data_seq,
                    };
                    core.replicas.prune_up_to(osd, watermark);
                }
            }
            LayerKind::Delta => {
                if let Some(unit) = self.delta.pools[pool].unit_mut(uid) {
                    unit.state = UnitState::Recycled;
                    if let Some(start) = unit.recycle_started {
                        self.residency.delta.recycle.add(now.saturating_sub(start));
                        core.metrics.obs.recycle_merged(osd, uid, start, now);
                    }
                }
            }
            LayerKind::Parity => {
                if let Some(unit) = self.parity.pools[pool].unit_mut(uid) {
                    unit.state = UnitState::Recycled;
                    if let Some(start) = unit.recycle_started {
                        self.residency.parity.recycle.add(now.saturating_sub(start));
                        core.metrics.obs.recycle_merged(osd, uid, start, now);
                    }
                }
            }
        }
        self.drain_queue(core, sim, osd, layer, pool);
    }

    /// Replays queued work after a unit freed up.
    fn drain_queue(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        layer: LayerKind,
        pool: usize,
    ) {
        loop {
            let work = match layer {
                LayerKind::Data => self.data.queues[pool].pop_front(),
                LayerKind::Delta => self.delta.queues[pool].pop_front(),
                LayerKind::Parity => self.parity.queues[pool].pop_front(),
            };
            let Some(work) = work else { break };
            let before = self.queue_len(layer, pool);
            match work {
                QueuedWork::Update(req) => self.append_data(core, sim, osd, req),
                QueuedWork::Delta { key, off, chunk } => {
                    self.append_delta(core, sim, osd, key, off, chunk)
                }
                QueuedWork::Parity { pblock, off, chunk } => {
                    self.append_parity(core, sim, osd, pblock, off, chunk)
                }
            }
            // If the append re-queued itself (still no room), stop.
            if self.queue_len(layer, pool) > before {
                break;
            }
        }
    }

    fn queue_len(&self, layer: LayerKind, pool: usize) -> usize {
        match layer {
            LayerKind::Data => self.data.queues[pool].len(),
            LayerKind::Delta => self.delta.queues[pool].len(),
            LayerKind::Parity => self.parity.queues[pool].len(),
        }
    }

    /// Arms the background seal timer for a pool if not already armed.
    fn arm_seal_timer(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        layer: LayerKind,
        pool: usize,
    ) {
        let armed = match layer {
            LayerKind::Data => &mut self.data.timer_armed[pool],
            LayerKind::Delta => &mut self.delta.timer_armed[pool],
            LayerKind::Parity => &mut self.parity.timer_armed[pool],
        };
        if *armed {
            return;
        }
        *armed = true;
        let tag = TK_SEAL | ((layer as u64) << 4) | ((pool as u64) << 8);
        core.scheme_timer(sim, osd, self.cfg.seal_interval, tag);
    }

    /// Seal-timer fire: seal a lingering active unit (real-time recycle
    /// guarantee) and re-arm while traffic continues.
    fn on_seal_timer(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        layer: LayerKind,
        pool: usize,
    ) {
        let now = sim.now();
        let sealed = match layer {
            LayerKind::Data => self.data.pools[pool].seal_active(now),
            LayerKind::Delta => self.delta.pools[pool].seal_active(now),
            LayerKind::Parity => self.parity.pools[pool].seal_active(now),
        };
        if let Some(uid) = sealed {
            self.recycle_unit(core, sim, osd, layer, pool, uid);
            match layer {
                LayerKind::Data => self.data.pools[pool].provision_active(),
                LayerKind::Delta => self.delta.pools[pool].provision_active(),
                LayerKind::Parity => self.parity.pools[pool].provision_active(),
            };
            // Re-arm: traffic is flowing.
            let armed = match layer {
                LayerKind::Data => &mut self.data.timer_armed[pool],
                LayerKind::Delta => &mut self.delta.timer_armed[pool],
                LayerKind::Parity => &mut self.parity.timer_armed[pool],
            };
            *armed = false;
            self.arm_seal_timer(core, sim, osd, layer, pool);
        } else {
            // Idle: shrink the pool and stop the timer until new appends.
            match layer {
                LayerKind::Data => self.data.pools[pool].shrink_to(2),
                LayerKind::Delta => self.delta.pools[pool].shrink_to(2),
                LayerKind::Parity => self.parity.pools[pool].shrink_to(2),
            }
            let armed = match layer {
                LayerKind::Data => &mut self.data.timer_armed[pool],
                LayerKind::Delta => &mut self.delta.timer_armed[pool],
                LayerKind::Parity => &mut self.parity.timer_armed[pool],
            };
            *armed = false;
        }
    }
}

/// Collects `(block, offset, chunk)` recycle jobs from a unit keyed by
/// [`BlockId`], honouring raw (no-locality) mode.
fn collect_jobs_blockid(unit: &crate::logunit::LogUnit<BlockId>) -> Vec<(BlockId, u64, Chunk)> {
    // Deterministic cross-block order; raw entries keep their append
    // order *within* a block — overlapping raw records must replay in
    // arrival order for newest-wins semantics.
    let mut keys: Vec<BlockId> = unit.index.keys().copied().collect();
    keys.sort();
    let mut jobs = Vec::new();
    for block in keys {
        let entry = &unit.index[&block];
        if entry.raw.is_empty() {
            for (off, c) in entry.ranges.iter() {
                jobs.push((block, off, c.clone()));
            }
        } else {
            for (off, c) in &entry.raw {
                jobs.push((block, *off, c.clone()));
            }
        }
    }
    jobs
}

impl UpdateScheme for Tsue {
    fn name(&self) -> &'static str {
        "TSUE"
    }

    fn on_update(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        req: UpdateReq,
    ) {
        self.append_data(core, sim, osd, req);
    }

    fn on_message(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        msg: SchemeMsg,
    ) {
        match msg {
            SchemeMsg::DataForward {
                from,
                block,
                off,
                data,
                tag,
                seq,
            } => {
                // Peer DataLog replica: persist to device only (§4.1 — the
                // replica is stored solely on the SSD, no memory).
                let (t, _) =
                    self.data_replica_region
                        .append(core, osd, sim.now(), data.len + RECORD_HEADER);
                // Every append also lands in the cluster's replica index,
                // keyed by the home OSD: if the home dies before this
                // append recycles, the rebuild replays the records (seq
                // order) so acked writes stay byte-exact. Records are
                // ghosts — replay content comes from the home's unit
                // index via `UpdateScheme::patch_unmerged`.
                core.replicas.push(
                    from,
                    ReplicaRecord {
                        seq,
                        block,
                        off,
                        data,
                    },
                );
                sim.schedule_at(t, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                    w.core
                        .send_to_scheme(sim, osd, from, ACK_BYTES, SchemeMsg::Ack { tag });
                });
            }
            SchemeMsg::DeltaForward {
                block,
                off,
                data,
                kind: DeltaKind::DataDelta,
                tag,
                ..
            } => {
                if tag == TAG_DELTA_REP {
                    // Second-parity copy: device persistence only.
                    let _ = self.delta_replica_region.append(
                        core,
                        osd,
                        sim.now(),
                        data.len + RECORD_HEADER,
                    );
                } else {
                    let gstripe = core.global_stripe(block.file, block.stripe);
                    self.append_delta(core, sim, osd, (gstripe, block.role), off, data);
                }
            }
            SchemeMsg::DeltaForward {
                block,
                off,
                data,
                kind: DeltaKind::ParityDelta,
                parity_index,
                ..
            } => {
                let pblock = BlockId {
                    role: core.cfg.stripe.k + parity_index,
                    ..block
                };
                self.append_parity(core, sim, osd, pblock, off, data);
            }
            SchemeMsg::Ack { tag } => {
                if let Some(op_id) = self.acks.ack(tag) {
                    core.extent_done(sim, osd, op_id);
                }
            }
            // INVARIANT: TSUE peers exchange only the kinds above; a Control
            // frame here is a message-routing bug.
            SchemeMsg::Control { .. } => unreachable!("TSUE sends no Control messages"),
        }
    }

    fn on_timer(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize, tag: u64) {
        match tag & 0xF {
            TK_SEAL => {
                let layer = match (tag >> 4) & 0xF {
                    0 => LayerKind::Data,
                    1 => LayerKind::Delta,
                    _ => LayerKind::Parity,
                };
                let pool = (tag >> 8) as usize;
                self.on_seal_timer(core, sim, osd, layer, pool);
            }
            TK_JOB_DONE => {
                let uid = tag >> 4;
                self.unit_job_done(core, sim, osd, uid);
            }
            // INVARIANT: every TSUE timer is scheduled by this scheme with a
            // TK_* tag, matched exhaustively above.
            _ => unreachable!("unknown TSUE timer tag {tag:#x}"),
        }
    }

    fn read_overlay(
        &mut self,
        _core: &mut ClusterCore,
        _osd: usize,
        block: BlockId,
        off: u64,
        len: u64,
        buf: Option<&mut [u8]>,
    ) -> ReadServe {
        // The DataLog doubles as a read cache (§3.3.3).
        let pool = pool_hash(block_key(block), self.data.pools.len());
        if self.data.pools[pool].overlay(&block, off, len, buf) {
            self.cache_hits += 1;
            ReadServe::CacheHit
        } else {
            ReadServe::Miss
        }
    }

    fn patch_unmerged(&self, block: BlockId, off: u64, len: u64, buf: &mut [u8]) {
        let pool = pool_hash(block_key(block), self.data.pools.len());
        self.data.pools[pool].overlay(&block, off, len, Some(buf));
    }

    fn flush(&mut self, core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize) {
        let now = sim.now();
        for layer in [LayerKind::Data, LayerKind::Delta, LayerKind::Parity] {
            let pools = match layer {
                LayerKind::Data => self.data.pools.len(),
                LayerKind::Delta => self.delta.pools.len(),
                LayerKind::Parity => self.parity.pools.len(),
            };
            for pool in 0..pools {
                let sealed = match layer {
                    LayerKind::Data => self.data.pools[pool].seal_active(now),
                    LayerKind::Delta => self.delta.pools[pool].seal_active(now),
                    LayerKind::Parity => self.parity.pools[pool].seal_active(now),
                };
                if let Some(uid) = sealed {
                    self.recycle_unit(core, sim, osd, layer, pool, uid);
                }
                match layer {
                    LayerKind::Data => self.data.pools[pool].provision_active(),
                    LayerKind::Delta => self.delta.pools[pool].provision_active(),
                    LayerKind::Parity => self.parity.pools[pool].provision_active(),
                };
                self.drain_queue(core, sim, osd, layer, pool);
            }
        }
    }

    fn power_loss(
        &mut self,
        core: &mut ClusterCore,
        sim: &mut Sim<Cluster>,
        osd: usize,
        seed: u64,
    ) -> PowerLossReport {
        let now = sim.now();
        let mut rep = PowerLossReport::default();
        // Restart: scan every persisted log region. Fully-framed records
        // rebuild the in-memory indexes verbatim (which is why the unit
        // state needs no surgery); only the in-flight tail record is at
        // risk of a tear.
        for pool in 0..self.data.regions.len() {
            self.data.regions[pool].scan(core, osd, now);
        }
        for pool in 0..self.delta.regions.len() {
            self.delta.regions[pool].scan(core, osd, now);
        }
        for pool in 0..self.parity.regions.len() {
            self.parity.regions[pool].scan(core, osd, now);
        }
        self.data_replica_region.scan(core, osd, now);
        self.delta_replica_region.scan(core, osd, now);

        let Some(tail) = self.tail.take() else {
            return rep;
        };
        let mut rng = SplitRng::new(seed);
        let k = core.cfg.stripe.k;
        let m = core.cfg.stripe.m;
        match tail {
            TailAppend::Data(block, off, len, _seq) => {
                // The tear lands at a pseudo-random offset inside the
                // record; the framing checksum rejects *any* cut short of
                // the full frame, so the cut position never changes what
                // the scan recovers — a torn record is discarded whole.
                let cut = rng.below((len + RECORD_HEADER).max(1));
                debug_assert!(cut < len + RECORD_HEADER);
                rep.torn_detected = 1;
                let copies = self
                    .cfg
                    .data_replicas
                    .saturating_sub(1)
                    .min(core.cfg.osds - 1);
                let pool = pool_hash(block_key(block), self.data.pools.len());
                if copies > 0 {
                    // Acked ⇒ replicated: re-fetch the record from the
                    // first live replica peer and re-append it locally.
                    // Content-wise the unit index already holds it.
                    let src = replica_peers(core, osd, copies)
                        .into_iter()
                        .find(|&p| core.mds.is_alive(p));
                    let t_fetch = match src {
                        Some(p) => {
                            core.net
                                .transfer(now, core.osds[p].node, core.osds[osd].node, len)
                        }
                        None => now,
                    };
                    let _ = self.data.regions[pool].append(core, osd, t_fetch, len + RECORD_HEADER);
                    rep.torn_replayed = 1;
                } else {
                    // data_replicas == 1 opted out of the durability
                    // guarantee: the record is gone. Revert the log
                    // overlay to the pre-append store bytes so reads
                    // serve the *old* data — stale, but never torn.
                    let reverted = self.data.pools[pool]
                        .iter_oldest_first()
                        .filter(|u| {
                            matches!(u.state, UnitState::Empty | UnitState::Recyclable)
                                && u.index.contains_key(&block)
                        })
                        .last()
                        .map(|u| u.id);
                    if let Some(uid) = reverted {
                        let pre = core.osds[osd]
                            .peek_block_range(block, off, len)
                            .map(Chunk::real)
                            .unwrap_or_else(|| Chunk::ghost(len));
                        let locality = self.cfg.datalog_locality;
                        if let Some(unit) = self.data.pools[pool].unit_mut(uid) {
                            unit.append(block, off, pre, Discipline::Overwrite, locality, now);
                        }
                        rep.torn_discarded = 1;
                    } else {
                        // The unit already recycled: the content reached
                        // the block store before the power cut, so the
                        // torn log record is irrelevant.
                        rep.torn_replayed = 1;
                    }
                }
            }
            TailAppend::Delta(gstripe, len) => {
                rep.torn_detected = 1;
                if self.cfg.use_delta_log && m >= 2 {
                    // The TAG_DELTA_REP copy persists on the second parity
                    // owner: re-fetch and re-append.
                    let p2 = core.owner_of(gstripe, k + 1);
                    let t_fetch = if p2 != osd && core.mds.is_alive(p2) {
                        core.net
                            .transfer(now, core.osds[p2].node, core.osds[osd].node, len)
                    } else {
                        now
                    };
                    let pool = pool_hash(gstripe, self.delta.pools.len());
                    let _ =
                        self.delta.regions[pool].append(core, osd, t_fetch, len + RECORD_HEADER);
                    rep.torn_replayed = 1;
                } else {
                    // No copy exists: the delta is lost before reaching
                    // any parity log. Every parity of the stripe is now
                    // stale — mark them for re-encode from data.
                    for j in 0..m {
                        core.mds.mark_parity_dirty(gstripe, k + j);
                    }
                    rep.torn_discarded = 1;
                }
            }
            TailAppend::Parity(gstripe, role, _len) => {
                // ParityLog appends carry no replica; the lost combined
                // delta leaves this parity stale until re-encoded.
                rep.torn_detected = 1;
                core.mds.mark_parity_dirty(gstripe, role);
                rep.torn_discarded = 1;
            }
        }
        rep
    }

    fn backlog(&self) -> u64 {
        let inflight: u64 = self
            .inflight
            .values()
            .map(|i| i.jobs.len() as u64 + i.running)
            .sum();
        self.data.pending_work()
            + self.delta.pending_work()
            + self.parity.pending_work()
            + inflight
            + self.acks.outstanding() as u64
    }

    fn memory_usage(&self) -> u64 {
        self.data.memory_bytes() + self.delta.memory_bytes() + self.parity.memory_bytes()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Aggregates residency statistics from every TSUE instance in a cluster
/// (the Table 2 harvest).
pub fn harvest_residency(world: &Cluster) -> ResidencyStats {
    let mut total = ResidencyStats::default();
    for s in world.schemes.iter().flatten() {
        if let Some(t) = s.as_any().and_then(|a| a.downcast_ref::<Tsue>()) {
            total.merge(&t.residency);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_expose_the_ablation_ladder() {
        let base = TsueConfig::breakdown(0);
        assert!(!base.datalog_locality && !base.use_log_pool && !base.use_delta_log);
        assert_eq!(base.effective_max_units(), 2, "pre-O3 double-buffers");
        assert_eq!(base.effective_pools(), 1);
        let o3 = TsueConfig::breakdown(3);
        assert!(o3.use_log_pool && o3.paritylog_locality);
        assert_eq!(o3.effective_pools(), 1);
        let o5 = TsueConfig::breakdown(5);
        assert!(o5.use_delta_log);
        assert_eq!(o5.effective_pools(), 4);
    }

    #[test]
    fn hdd_config_follows_paper() {
        let h = TsueConfig::hdd_default();
        assert_eq!(h.data_replicas, 3);
        assert!(!h.use_delta_log);
        let s = TsueConfig::ssd_default();
        assert_eq!(s.data_replicas, 2);
        assert!(s.use_delta_log);
    }

    #[test]
    fn fresh_instance_has_no_backlog() {
        let t = Tsue::ssd();
        assert_eq!(t.backlog(), 0);
        assert_eq!(t.memory_usage(), 0);
        assert_eq!(t.name(), "TSUE");
    }
}
