//! The log unit: a fixed-size log segment with the paper's **two-level
//! index** (§3.3.1).
//!
//! Level one hashes the owning block; level two is an offset-sorted,
//! coalescing interval map ([`RangeMap`]) per block, fronted by a bitmap
//! filter for cheap hit checks. Under spatio-temporal locality this index
//! is what turns "many small random log records" into "few large merged
//! ranges" before any recycle I/O is issued.
//!
//! For the Fig. 7 ablation, a unit can run with locality folding disabled
//! (`locality = false`): records are then kept as a raw append-ordered
//! list, and recycle processes every record individually — the Baseline /
//! O1 / O2 comparison points.

use std::collections::BTreeMap;
use tsue_ecfs::rangemap::{Discipline, RangeMap};
use tsue_ecfs::Chunk;
use tsue_sim::Time;

/// Unique identifier of a log unit within one scheme instance.
pub type UnitId = u64;

/// Lifecycle of a unit (paper Fig. 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitState {
    /// Accepting appends (at most one Empty unit is active per pool).
    Empty,
    /// Sealed, waiting for a recycle thread.
    Recyclable,
    /// Being recycled.
    Recycling,
    /// Recycled; contents retained as a read cache until reuse.
    Recycled,
}

/// Second-level index entry for one block.
#[derive(Debug)]
pub struct BlockIndex {
    /// Offset-sorted coalescing ranges (locality mode).
    pub ranges: RangeMap,
    /// Raw append-ordered records (no-locality ablation mode).
    pub raw: Vec<(u64, Chunk)>,
    /// Quick-hit filter: bit `i` covers offsets hashed to slot `i`.
    pub bitmap: u128,
}

impl BlockIndex {
    fn new() -> Self {
        BlockIndex {
            ranges: RangeMap::new(),
            raw: Vec::new(),
            bitmap: 0,
        }
    }

    fn bitmap_mask(off: u64, len: u64) -> u128 {
        // 8 KiB slots folded into 128 bits.
        let first = (off >> 13) % 128;
        let last = ((off + len.max(1) - 1) >> 13) % 128;
        let mut m = 0u128;
        if last >= first {
            for b in first..=last {
                m |= 1 << b;
            }
        } else {
            // Wrapped: set both tails.
            for b in first..128 {
                m |= 1 << b;
            }
            for b in 0..=last {
                m |= 1 << b;
            }
        }
        m
    }

    /// Cheap may-contain check before walking the interval map.
    pub fn may_contain(&self, off: u64, len: u64) -> bool {
        self.bitmap & Self::bitmap_mask(off, len) != 0
    }
}

/// A fixed-size log segment with the two-level index.
#[derive(Debug)]
pub struct LogUnit<K> {
    /// Unit identifier (unique per scheme instance).
    pub id: UnitId,
    /// Lifecycle state.
    pub state: UnitState,
    /// Level-one index: block → level-two entry. Ordered so that every
    /// whole-index walk (recycle job collection, work accounting) visits
    /// blocks in the same order on every run.
    pub index: BTreeMap<K, BlockIndex>,
    /// Appended payload bytes (including per-record headers).
    pub bytes: u64,
    /// Number of raw records appended (pre-merge).
    pub raw_records: u64,
    /// Virtual time of the first append since the unit became Empty.
    pub first_append: Option<Time>,
    /// When the unit was sealed (Recyclable).
    pub sealed_at: Option<Time>,
    /// When recycling started.
    pub recycle_started: Option<Time>,
}

/// Per-record header bytes accounted in the unit fill level.
pub const RECORD_HEADER: u64 = 24;

impl<K: Ord + Copy> LogUnit<K> {
    /// Creates an Empty unit.
    pub fn new(id: UnitId) -> Self {
        LogUnit {
            id,
            state: UnitState::Empty,
            index: BTreeMap::new(),
            bytes: 0,
            raw_records: 0,
            first_append: None,
            sealed_at: None,
            recycle_started: None,
        }
    }

    /// Appends one record under `disc`; with `locality` the record folds
    /// into the interval map (merging repeats and coalescing neighbours),
    /// otherwise it is kept raw.
    ///
    /// # Panics
    /// Panics if the unit is not Empty (active).
    pub fn append(
        &mut self,
        key: K,
        off: u64,
        chunk: Chunk,
        disc: Discipline,
        locality: bool,
        now: Time,
    ) {
        assert_eq!(self.state, UnitState::Empty, "append to inactive unit");
        let len = chunk.len;
        let entry = self.index.entry(key).or_insert_with(BlockIndex::new);
        entry.bitmap |= BlockIndex::bitmap_mask(off, len);
        if locality {
            entry.ranges.insert_with(off, chunk, disc);
        } else {
            entry.raw.push((off, chunk));
        }
        self.bytes += len + RECORD_HEADER;
        self.raw_records += 1;
        self.first_append.get_or_insert(now);
    }

    /// Units of recycle work this unit holds: merged ranges in locality
    /// mode, raw records otherwise.
    pub fn work_items(&self) -> u64 {
        self.index
            .values()
            .map(|e| {
                if e.raw.is_empty() {
                    e.ranges.len() as u64
                } else {
                    e.raw.len() as u64
                }
            })
            .sum()
    }

    /// Bytes of recycle I/O this unit will issue (post-merge).
    pub fn work_bytes(&self) -> u64 {
        self.index
            .values()
            .map(|e| {
                if e.raw.is_empty() {
                    e.ranges.covered_bytes()
                } else {
                    e.raw.iter().map(|(_, c)| c.len).sum()
                }
            })
            .sum()
    }

    /// Memory pinned by this unit (payload + index overhead).
    pub fn memory_bytes(&self) -> u64 {
        let entries: u64 = self
            .index
            .values()
            .map(|e| (e.ranges.len() + e.raw.len()) as u64)
            .sum();
        self.work_bytes() + entries * 48 + self.index.len() as u64 * 64
    }

    /// Overlays this unit's content for `key` onto `buf`; returns true if
    /// the unit alone fully covers the range.
    pub fn overlay(&self, key: &K, off: u64, len: u64, mut buf: Option<&mut [u8]>) -> bool {
        let Some(entry) = self.index.get(key) else {
            return false;
        };
        if !entry.may_contain(off, len) {
            return false;
        }
        if entry.raw.is_empty() {
            entry.ranges.overlay(off, len, buf)
        } else {
            // Raw mode: replay records in append order; coverage tracked
            // with a scratch map.
            let mut cover = RangeMap::new();
            for (roff, chunk) in &entry.raw {
                let r_end = roff + chunk.len;
                let i_start = (*roff).max(off);
                let i_end = r_end.min(off + len);
                if i_end <= i_start {
                    continue;
                }
                cover.insert(i_start, Chunk::ghost(i_end - i_start));
                if let (Some(b), Some(bytes)) = (buf.as_deref_mut(), chunk.bytes.as_ref()) {
                    let dst = &mut b[(i_start - off) as usize..(i_end - off) as usize];
                    dst.copy_from_slice(&bytes[(i_start - roff) as usize..(i_end - roff) as usize]);
                }
            }
            cover.overlay(off, len, None)
        }
    }

    /// Reuses the unit as a fresh Empty segment (read-cache content is
    /// dropped here, matching the paper's "retained until reused" rule).
    pub fn reset(&mut self) {
        self.state = UnitState::Empty;
        self.index.clear();
        self.bytes = 0;
        self.raw_records = 0;
        self.first_append = None;
        self.sealed_at = None;
        self.recycle_started = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(b: u8, n: usize) -> Chunk {
        Chunk::real(vec![b; n])
    }

    #[test]
    fn locality_mode_merges_repeats_and_neighbours() {
        let mut u: LogUnit<u32> = LogUnit::new(0);
        // Three writes to the same place + one adjacent: 2 work items max.
        u.append(7, 0, real(1, 4096), Discipline::Overwrite, true, 10);
        u.append(7, 0, real(2, 4096), Discipline::Overwrite, true, 20);
        u.append(7, 0, real(3, 4096), Discipline::Overwrite, true, 30);
        u.append(7, 4096, real(4, 4096), Discipline::Overwrite, true, 40);
        assert_eq!(u.raw_records, 4);
        assert_eq!(u.work_items(), 1, "adjacent + repeated must coalesce");
        assert_eq!(u.work_bytes(), 8192);
        assert_eq!(u.first_append, Some(10));
    }

    #[test]
    fn raw_mode_keeps_every_record() {
        let mut u: LogUnit<u32> = LogUnit::new(0);
        for i in 0..5 {
            u.append(1, 0, real(i, 512), Discipline::Overwrite, false, 0);
        }
        assert_eq!(u.work_items(), 5, "no-locality ablation keeps all");
        assert_eq!(u.work_bytes(), 5 * 512);
    }

    #[test]
    fn overlay_returns_newest_content() {
        let mut u: LogUnit<u32> = LogUnit::new(0);
        u.append(3, 100, real(0xAA, 50), Discipline::Overwrite, true, 0);
        u.append(3, 120, real(0xBB, 50), Discipline::Overwrite, true, 0);
        let mut buf = vec![0u8; 70];
        assert!(u.overlay(&3, 100, 70, Some(&mut buf)));
        assert!(buf[..20].iter().all(|&b| b == 0xAA));
        assert!(buf[20..].iter().all(|&b| b == 0xBB));
        // Unknown block or uncovered range.
        assert!(!u.overlay(&4, 100, 10, None));
        assert!(!u.overlay(&3, 0, 300, None));
    }

    #[test]
    fn raw_overlay_replays_in_order() {
        let mut u: LogUnit<u32> = LogUnit::new(0);
        u.append(1, 0, real(1, 100), Discipline::Overwrite, false, 0);
        u.append(1, 50, real(2, 100), Discipline::Overwrite, false, 0);
        let mut buf = vec![0u8; 150];
        assert!(u.overlay(&1, 0, 150, Some(&mut buf)));
        assert!(buf[..50].iter().all(|&b| b == 1));
        assert!(buf[50..].iter().all(|&b| b == 2), "later record wins");
    }

    #[test]
    fn bitmap_filter_rejects_cold_ranges() {
        let mut u: LogUnit<u32> = LogUnit::new(0);
        u.append(1, 0, real(1, 4096), Discipline::Overwrite, true, 0);
        let e = u.index.get(&1).unwrap();
        assert!(e.may_contain(0, 100));
        // A range in a different 8 KiB slot (but same 1 MiB fold window)
        // must be filtered out.
        assert!(!e.may_contain(16 << 10, 100));
    }

    #[test]
    fn xor_discipline_folds_deltas() {
        let mut u: LogUnit<u32> = LogUnit::new(0);
        u.append(1, 0, real(0b1100, 16), Discipline::Xor, true, 0);
        u.append(1, 0, real(0b1010, 16), Discipline::Xor, true, 0);
        let mut buf = vec![0u8; 16];
        assert!(u.overlay(&1, 0, 16, Some(&mut buf)));
        assert!(buf.iter().all(|&b| b == 0b0110));
        assert_eq!(u.work_items(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut u: LogUnit<u32> = LogUnit::new(9);
        u.append(1, 0, real(1, 512), Discipline::Overwrite, true, 5);
        u.state = UnitState::Recycled;
        u.reset();
        assert_eq!(u.state, UnitState::Empty);
        assert_eq!(u.bytes, 0);
        assert!(u.index.is_empty());
        assert_eq!(u.first_append, None);
    }

    #[test]
    #[should_panic(expected = "append to inactive unit")]
    fn append_to_sealed_unit_panics() {
        let mut u: LogUnit<u32> = LogUnit::new(0);
        u.state = UnitState::Recyclable;
        u.append(1, 0, real(1, 8), Discipline::Overwrite, true, 0);
    }
}
