//! A *live* (thread-based) log pool: the same two-level-index / FIFO-pool
//! structure as the simulated TSUE front end, driven by real threads.
//!
//! This is the embeddable form of the paper's §3.2 structure for use
//! outside the simulator: producers append concurrently under a
//! `parking_lot` lock; sealed units are merged and dispatched over
//! `crossbeam` channels to a recycler pool; jobs for the same key always
//! land on the same worker (the paper's per-block thread affinity), so
//! per-location ordering — and therefore newest-wins semantics — is
//! preserved end to end.
//!
//! ```
//! use std::sync::Arc;
//! use tsue_core::live::{LiveLogPool, LivePoolConfig, RecycleSink};
//! use parking_lot::Mutex;
//!
//! struct Sink(Mutex<Vec<(u64, u64, Vec<u8>)>>);
//! impl RecycleSink for Sink {
//!     fn merge(&self, key: u64, off: u64, data: &[u8]) {
//!         self.0.lock().push((key, off, data.to_vec()));
//!     }
//! }
//!
//! let sink = Arc::new(Sink(Mutex::new(Vec::new())));
//! let pool = LiveLogPool::new(LivePoolConfig::default(), sink.clone());
//! pool.append(7, 0, &[1, 2, 3]);
//! pool.flush();
//! assert_eq!(sink.0.lock().len(), 1);
//! pool.shutdown();
//! ```

use crate::logpool::LogPool;
use crate::logunit::UnitState;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use tsue_ecfs::rangemap::Discipline;
use tsue_ecfs::Chunk;

/// Where recycled (merged) log content is applied — the live analogue of
/// "overwrite the data block".
pub trait RecycleSink: Send + Sync + 'static {
    /// Applies one merged range. Calls for the same `key` arrive in log
    /// order on a single thread.
    fn merge(&self, key: u64, off: u64, data: &[u8]);
}

/// Tunables for the live pool.
#[derive(Clone, Debug)]
pub struct LivePoolConfig {
    /// Unit capacity in bytes.
    pub unit_size: u64,
    /// Units retained in the FIFO (read-cache depth).
    pub max_units: usize,
    /// Recycler worker threads.
    pub workers: usize,
    /// Backpressure bound on dispatched-but-unfinished merge jobs.
    pub max_outstanding: u64,
}

impl Default for LivePoolConfig {
    fn default() -> Self {
        LivePoolConfig {
            unit_size: 1 << 20,
            max_units: 4,
            workers: 2,
            max_outstanding: 4096,
        }
    }
}

struct Job {
    key: u64,
    off: u64,
    /// Shared view of the unit's merged range — the worker borrows it,
    /// never copies it.
    data: tsue_buf::Bytes,
}

struct Shared {
    pool: Mutex<LogPool<u64>>,
    outstanding: AtomicU64,
    drained: Condvar,
    drain_lock: Mutex<()>,
    appended: AtomicU64,
    merged: AtomicU64,
}

/// The concurrent log pool.
pub struct LiveLogPool {
    shared: Arc<Shared>,
    senders: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    cfg: LivePoolConfig,
}

impl LiveLogPool {
    /// Creates the pool and spawns its recycler workers.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new<S: RecycleSink>(cfg: LivePoolConfig, sink: Arc<S>) -> Self {
        assert!(cfg.workers > 0, "need at least one recycler");
        let shared = Arc::new(Shared {
            pool: Mutex::new(LogPool::new(cfg.unit_size, cfg.max_units, 0)),
            outstanding: AtomicU64::new(0),
            drained: Condvar::new(),
            drain_lock: Mutex::new(()),
            appended: AtomicU64::new(0),
            merged: AtomicU64::new(0),
        });
        let mut senders = Vec::with_capacity(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        for w in 0..cfg.workers {
            let (tx, rx) = unbounded::<Job>();
            senders.push(tx);
            let sink = Arc::clone(&sink);
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tsue-recycler-{w}"))
                    .spawn(move || {
                        for job in rx {
                            sink.merge(job.key, job.off, &job.data);
                            shared.merged.fetch_add(1, Ordering::Relaxed);
                            if shared.outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
                                let _g = shared.drain_lock.lock();
                                shared.drained.notify_all();
                            }
                        }
                    })
                    // INVARIANT: OS thread spawn fails only on resource exhaustion at
                    // startup; the live pool cannot operate without its recyclers.
                    .expect("spawn recycler"),
            );
        }
        LiveLogPool {
            shared,
            senders,
            workers,
            cfg,
        }
    }

    /// Appends a record; may seal and dispatch a full unit, and blocks
    /// briefly when the recycler backlog exceeds the configured bound.
    pub fn append(&self, key: u64, off: u64, data: &[u8]) {
        assert!(!data.is_empty(), "empty append");
        // Backpressure.
        while self.shared.outstanding.load(Ordering::Acquire) > self.cfg.max_outstanding {
            let mut g = self.shared.drain_lock.lock();
            self.shared
                .drained
                .wait_for(&mut g, std::time::Duration::from_millis(1));
        }
        let need = data.len() as u64 + crate::logunit::RECORD_HEADER;
        let mut pool = self.shared.pool.lock();
        if !pool.active_fits(need) {
            if let Some(uid) = pool.seal_active(0) {
                self.dispatch_unit(&mut pool, uid);
            }
            assert!(
                pool.provision_active(),
                "live pool exhausted: recycled units unavailable"
            );
        }
        // Into a pool-recycled buffer (the caller's slice is borrowed, so
        // this boundary copy is inherent — and counted).
        pool.active_mut().append(
            key,
            off,
            Chunk::real(tsue_buf::Bytes::copy_from_slice(data)),
            Discipline::Overwrite,
            true,
            0,
        );
        self.shared.appended.fetch_add(1, Ordering::Relaxed);
    }

    /// Serves a read from the log cache; returns true when the range was
    /// fully covered (and `buf` patched).
    pub fn read(&self, key: u64, off: u64, buf: &mut [u8]) -> bool {
        let pool = self.shared.pool.lock();
        pool.overlay(&key, off, buf.len() as u64, Some(buf))
    }

    /// Seals the active unit and blocks until every dispatched merge has
    /// been applied.
    pub fn flush(&self) {
        {
            let mut pool = self.shared.pool.lock();
            if let Some(uid) = pool.seal_active(0) {
                self.dispatch_unit(&mut pool, uid);
            }
            pool.provision_active();
        }
        let mut g = self.shared.drain_lock.lock();
        while self.shared.outstanding.load(Ordering::Acquire) > 0 {
            self.shared
                .drained
                .wait_for(&mut g, std::time::Duration::from_millis(1));
        }
    }

    /// Records appended so far.
    pub fn appended(&self) -> u64 {
        self.shared.appended.load(Ordering::Relaxed)
    }

    /// Merged ranges applied so far (post-folding — expect far fewer than
    /// [`Self::appended`] under locality).
    pub fn merged(&self) -> u64 {
        self.shared.merged.load(Ordering::Relaxed)
    }

    /// Stops the workers after draining. Consumes the pool.
    pub fn shutdown(mut self) {
        self.flush();
        self.senders.clear(); // closes channels; workers exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Extracts merged jobs from a sealed unit and dispatches them with
    /// per-key affinity; the unit becomes a Recycled read cache.
    fn dispatch_unit(&self, pool: &mut LogPool<u64>, uid: crate::logunit::UnitId) {
        // INVARIANT: the caller seals `uid` under this same pool lock just
        // before dispatching, and sealed units are never evicted.
        let unit = pool.unit_mut(uid).expect("sealed unit");
        unit.state = UnitState::Recycling;
        let mut jobs = Vec::new();
        for (&key, entry) in unit.index.iter() {
            for (off, chunk) in entry.ranges.iter() {
                jobs.push(Job {
                    key,
                    off,
                    // INVARIANT: the live pool appends only materialized chunks,
                    // never ghosts, so every merged range carries bytes.
                    data: chunk.bytes.clone().expect("live pool stores real bytes"),
                });
            }
        }
        // Deterministic dispatch order.
        jobs.sort_by_key(|j| (j.key, j.off));
        unit.state = UnitState::Recycled;
        let n = self.senders.len();
        for job in jobs {
            self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
            let w = (job.key as usize).wrapping_mul(0x9e3779b9) >> 16;
            // INVARIANT: worker receivers live until drop() joins the pool,
            // and nothing dispatches after drop.
            self.senders[w % n].send(job).expect("worker alive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Sink that records the final content per (key, offset) byte.
    struct MapSink {
        bytes: Mutex<HashMap<(u64, u64), u8>>,
    }

    impl RecycleSink for MapSink {
        fn merge(&self, key: u64, off: u64, data: &[u8]) {
            let mut m = self.bytes.lock();
            for (i, &b) in data.iter().enumerate() {
                m.insert((key, off + i as u64), b);
            }
        }
    }

    fn new_pool(unit_size: u64) -> (LiveLogPool, Arc<MapSink>) {
        let sink = Arc::new(MapSink {
            bytes: Mutex::new(HashMap::new()),
        });
        let cfg = LivePoolConfig {
            unit_size,
            max_units: 4,
            workers: 2,
            max_outstanding: 1024,
        };
        (LiveLogPool::new(cfg, Arc::clone(&sink)), sink)
    }

    #[test]
    fn append_flush_applies_newest() {
        let (pool, sink) = new_pool(1 << 20);
        pool.append(1, 0, &[1; 64]);
        pool.append(1, 0, &[2; 64]); // newest wins
        pool.append(1, 64, &[3; 64]);
        pool.flush();
        let m = sink.bytes.lock();
        assert_eq!(m[&(1, 0)], 2);
        assert_eq!(m[&(1, 63)], 2);
        assert_eq!(m[&(1, 64)], 3);
        drop(m);
        assert_eq!(pool.appended(), 3);
        assert!(pool.merged() <= 2, "folding must shrink the job count");
        pool.shutdown();
    }

    #[test]
    fn read_cache_serves_unflushed_content() {
        let (pool, _sink) = new_pool(1 << 20);
        pool.append(9, 100, &[7; 32]);
        let mut buf = [0u8; 32];
        assert!(pool.read(9, 100, &mut buf));
        assert!(buf.iter().all(|&b| b == 7));
        let mut miss = [0u8; 32];
        assert!(!pool.read(9, 0, &mut miss));
        pool.shutdown();
    }

    #[test]
    fn concurrent_producers_converge() {
        let (pool, sink) = new_pool(16 << 10); // small units force seals
        let pool = Arc::new(pool);
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let p = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    // Distinct keys per thread: per-key ordering is the
                    // guarantee under test.
                    p.append(t, (i % 16) * 64, &[(i % 251) as u8; 64]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        pool.flush();
        let m = sink.bytes.lock();
        for t in 0..4u64 {
            for slot in 0..16u64 {
                // The newest write to (t, slot) has i ≡ slot + 16·n with the
                // largest n < 200/16; i = 176 + slot … compute directly:
                let last_i = (0..200u64).rev().find(|i| i % 16 == slot).unwrap();
                let expect = (last_i % 251) as u8;
                assert_eq!(
                    m[&(t, slot * 64)],
                    expect,
                    "thread {t} slot {slot} must hold its newest write"
                );
            }
        }
        drop(m);
        match Arc::try_unwrap(pool) {
            Ok(p) => p.shutdown(),
            Err(_) => panic!("pool still shared"),
        }
    }

    #[test]
    #[should_panic(expected = "empty append")]
    fn empty_append_panics() {
        let (pool, _sink) = new_pool(1 << 20);
        pool.append(1, 0, &[]);
    }
}
