//! TSUE end-state correctness: with the full three-layer pipeline — and at
//! every Fig. 7 ablation level — the cluster must converge to exactly the
//! state the arrival-ordered update stream dictates, with parity equal to
//! a fresh encode, once the logs drain.

use tsue_core::{Tsue, TsueConfig};
use tsue_ecfs::{
    check_consistency, run_workload, Cluster, ClusterBuilder, ClusterConfig, DeviceKind,
};
use tsue_sim::{Sim, SECOND};
use tsue_trace::WorkloadProfile;

fn small_config(k: usize, m: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::ssd_testbed(k, m, 4);
    cfg.osds = (k + m + 2).max(8);
    cfg.stripe = tsue_ec::StripeConfig::new(k, m, 64 << 10);
    cfg.file_size_per_client = 1 << 20;
    cfg.materialize = true;
    cfg.record_arrivals = true;
    cfg.seed = seed;
    cfg
}

fn test_profile() -> WorkloadProfile {
    WorkloadProfile {
        name: "tsue-correctness".into(),
        update_fraction: 0.8,
        size_dist: vec![(512, 0.3), (4096, 0.4), (16384, 0.2), (40960, 0.1)],
        hot_fraction: 0.2,
        hot_access_prob: 0.7,
        skew_depth: 2,
        repeat_prob: 0.3,
        seq_run_prob: 0.15,
        align: 512,
    }
}

fn run_tsue(cfg_fn: impl Fn() -> TsueConfig + 'static, k: usize, m: usize, seed: u64, ops: u64) {
    // Shrink units so seals/recycles actually happen within a short test.
    let mut world = ClusterBuilder::from_config(small_config(k, m, seed))
        .workload(&test_profile())
        .ops_per_client(ops)
        .scheme_fn(move |_| {
            let mut c = cfg_fn();
            c.unit_size = 256 << 10;
            c.seal_interval = SECOND / 2;
            Box::new(Tsue::new(c))
        })
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    assert!(world.core.pending.is_empty(), "ops still in flight");
    world.flush_all(&mut sim);
    assert_eq!(world.total_scheme_backlog(), 0, "TSUE backlog after flush");
    let (blocks, stripes) =
        check_consistency(&world).unwrap_or_else(|e| panic!("TSUE inconsistent: {e}"));
    assert!(blocks > 0 && stripes > 0);
}

#[test]
fn tsue_converges_rs42() {
    run_tsue(TsueConfig::ssd_default, 4, 2, 21, 80);
}

#[test]
fn tsue_converges_rs63() {
    run_tsue(TsueConfig::ssd_default, 6, 3, 22, 60);
}

#[test]
fn tsue_converges_rs22_minimum_m() {
    run_tsue(TsueConfig::ssd_default, 2, 2, 23, 60);
}

#[test]
fn tsue_hdd_mode_converges() {
    // 3-copy data log, no delta log.
    let mut world = ClusterBuilder::from_config(small_config(4, 2, 24))
        .device(DeviceKind::Hdd)
        .workload(&test_profile())
        .ops_per_client(40)
        .scheme_fn(|_| {
            let mut c = TsueConfig::hdd_default();
            c.unit_size = 256 << 10;
            c.seal_interval = SECOND / 2;
            Box::new(Tsue::new(c))
        })
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    world.flush_all(&mut sim);
    check_consistency(&world).unwrap();
}

#[test]
fn every_breakdown_level_converges() {
    // Fig. 7's Baseline and O1–O5 must all be *correct*; they differ only
    // in performance.
    for level in 0..=5 {
        run_tsue(
            move || TsueConfig::breakdown(level),
            4,
            2,
            30 + level as u64,
            50,
        );
    }
}

#[test]
fn residency_stats_populate() {
    let mut world = ClusterBuilder::from_config(small_config(4, 2, 40))
        .workload(&test_profile())
        .ops_per_client(60)
        .scheme_fn(|_| {
            let mut c = TsueConfig::ssd_default();
            c.unit_size = 128 << 10;
            c.seal_interval = SECOND / 4;
            Box::new(Tsue::new(c))
        })
        .build();
    let mut sim: Sim<Cluster> = Sim::new();
    run_workload(&mut world, &mut sim, 3600 * SECOND);
    world.flush_all(&mut sim);
    let stats = tsue_core::tsue::harvest_residency(&world);
    assert!(stats.data.append.count() > 0, "data appends recorded");
    assert!(stats.data.buffer.count() > 0, "data units recycled");
    assert!(
        stats.parity.recycle.count() > 0,
        "parity units recycled: {:?}",
        stats
    );
}
