//! Property tests for TSUE's log structures: the two-level index against a
//! byte-map reference model, and pool lifecycle conservation.

use proptest::prelude::*;
use std::collections::HashMap;
use tsue_core::{LogPool, LogUnit, UnitState};
use tsue_ecfs::rangemap::Discipline;
use tsue_ecfs::Chunk;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Overwrite-mode unit overlay equals a plain byte-map replay for any
    /// append sequence, in both locality and raw modes.
    #[test]
    fn unit_overlay_matches_reference(
        ops in proptest::collection::vec((0u32..4, 0u64..300, 1u64..50, any::<u8>()), 1..120),
        locality: bool,
    ) {
        let mut unit: LogUnit<u32> = LogUnit::new(0);
        let mut model: HashMap<(u32, u64), u8> = HashMap::new();
        for (key, off, len, val) in &ops {
            unit.append(
                *key,
                *off,
                Chunk::real(vec![*val; *len as usize]),
                Discipline::Overwrite,
                locality,
                0,
            );
            for o in *off..*off + *len {
                model.insert((*key, o), *val);
            }
        }
        for key in 0u32..4 {
            for off in 0u64..360 {
                let mut buf = [0xEEu8; 1];
                let covered = unit.overlay(&key, off, 1, Some(&mut buf));
                match model.get(&(key, off)) {
                    Some(&v) => {
                        prop_assert!(covered, "key {} off {} should be covered", key, off);
                        prop_assert_eq!(buf[0], v, "key {} off {}", key, off);
                    }
                    None => prop_assert!(!covered, "key {} off {} spurious", key, off),
                }
            }
        }
        // Locality mode must never need MORE work items than raw mode.
        if locality {
            prop_assert!(unit.work_items() <= ops.len() as u64);
        } else {
            prop_assert_eq!(unit.work_items(), ops.len() as u64);
        }
    }

    /// Pool lifecycle conservation: every appended record is either in an
    /// Empty/Recyclable unit (pending) or in a Recycled unit (done); seal +
    /// provision never lose or duplicate records.
    #[test]
    fn pool_lifecycle_conserves_records(
        batches in proptest::collection::vec(1usize..30, 1..12),
    ) {
        let mut pool: LogPool<u32> = LogPool::new(1 << 20, 4, 0);
        let mut appended = 0u64;
        let mut recycled_records = 0u64;
        for (b, n) in batches.iter().enumerate() {
            if !pool.has_active() && !pool.provision_active() {
                // All units busy: recycle the oldest sealed unit to move on.
                let ids: Vec<u64> = pool
                    .iter_oldest_first()
                    .filter(|u| u.state == UnitState::Recyclable)
                    .map(|u| u.id)
                    .collect();
                for id in ids {
                    let u = pool.unit_mut(id).unwrap();
                    recycled_records += u.raw_records;
                    u.state = UnitState::Recycled;
                }
                prop_assert!(pool.provision_active());
            }
            for i in 0..*n {
                // Distinct offsets so records never fold: conservation is
                // exact.
                pool.active_mut().append(
                    b as u32,
                    (i as u64) * 100,
                    Chunk::ghost(10),
                    Discipline::Overwrite,
                    true,
                    0,
                );
                appended += 1;
            }
            pool.seal_active(0);
        }
        let pending: u64 = pool
            .iter_oldest_first()
            .filter(|u| matches!(u.state, UnitState::Empty | UnitState::Recyclable))
            .map(|u| u.raw_records)
            .sum();
        prop_assert_eq!(pending + recycled_records, appended);
    }

    /// Xor-mode units fold same-offset deltas exactly like XOR on bytes.
    #[test]
    fn xor_unit_matches_reference(
        ops in proptest::collection::vec((0u64..100, 1u64..30, any::<u8>()), 1..80),
    ) {
        let mut unit: LogUnit<u32> = LogUnit::new(0);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (off, len, val) in &ops {
            unit.append(
                7,
                *off,
                Chunk::real(vec![*val; *len as usize]),
                Discipline::Xor,
                true,
                0,
            );
            for o in *off..*off + *len {
                *model.entry(o).or_insert(0) ^= *val;
            }
        }
        for off in 0u64..140 {
            let mut buf = [0u8; 1];
            let covered = unit.overlay(&7, off, 1, Some(&mut buf));
            match model.get(&off) {
                Some(&v) => {
                    prop_assert!(covered);
                    prop_assert_eq!(buf[0], v, "off {}", off);
                }
                None => prop_assert!(!covered),
            }
        }
    }
}
