//! Property tests for the DES kernel: ordering, determinism, and resource
//! conservation under arbitrary schedules.

use proptest::prelude::*;
use tsue_sim::{FifoResource, MultiResource, Sim};

proptest! {
    /// Events always execute in non-decreasing time order, ties in
    /// insertion order, and all of them run.
    #[test]
    fn event_order_is_total_and_stable(
        delays in proptest::collection::vec(0u64..10_000, 1..200),
    ) {
        let mut sim: Sim<Vec<(u64, usize)>> = Sim::new();
        for (i, &d) in delays.iter().enumerate() {
            sim.schedule(d, move |w: &mut Vec<(u64, usize)>, sim: &mut Sim<Vec<(u64, usize)>>| {
                w.push((sim.now(), i));
            });
        }
        let mut log = Vec::new();
        sim.run(&mut log);
        prop_assert_eq!(log.len(), delays.len());
        for pair in log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time went backwards");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "insertion order violated");
            }
        }
    }

    /// Two identical schedules produce identical execution traces.
    #[test]
    fn execution_is_deterministic(
        delays in proptest::collection::vec(0u64..5_000, 1..100),
    ) {
        let run = |ds: &[u64]| {
            let mut sim: Sim<Vec<usize>> = Sim::new();
            for (i, &d) in ds.iter().enumerate() {
                sim.schedule(d, move |w: &mut Vec<usize>, _: &mut Sim<Vec<usize>>| w.push(i));
            }
            let mut order = Vec::new();
            sim.run(&mut order);
            (order, sim.now())
        };
        prop_assert_eq!(run(&delays), run(&delays));
    }

    /// A FIFO resource conserves busy time and never overlaps jobs.
    #[test]
    fn fifo_resource_conserves_service(
        jobs in proptest::collection::vec((0u64..1_000, 1u64..500), 1..100),
    ) {
        let mut r = FifoResource::new();
        let mut total = 0u64;
        let mut prev_finish = 0u64;
        let mut now = 0u64;
        for (gap, service) in jobs {
            now += gap;
            let finish = r.submit(now, service);
            total += service;
            prop_assert!(finish >= now + service, "job finished too early");
            prop_assert!(finish >= prev_finish, "FIFO order violated");
            prev_finish = finish;
        }
        prop_assert_eq!(r.busy_ticks(), total);
        prop_assert!(r.next_free() >= now);
    }

    /// A k-wide pool is never slower than a single server and never
    /// faster than the work-conservation bound.
    #[test]
    fn multi_resource_bounds(
        services in proptest::collection::vec(1u64..1_000, 1..100),
        width in 1usize..8,
    ) {
        let mut single = FifoResource::new();
        let mut pool = MultiResource::new(width);
        let mut single_finish = 0;
        let mut pool_finish = 0;
        for &s in &services {
            single_finish = single.submit(0, s);
            pool_finish = pool_finish.max(pool.submit(0, s));
        }
        prop_assert!(pool_finish <= single_finish, "pool slower than one server");
        let total: u64 = services.iter().sum();
        let lower = total.div_ceil(width as u64);
        prop_assert!(pool_finish >= lower.min(single_finish),
            "pool beat the work-conservation bound");
        prop_assert_eq!(pool.busy_ticks(), total);
    }
}
