//! FIFO resources: the queueing primitive behind disks, NICs, and recycle
//! threads.
//!
//! A [`FifoResource`] models a single server with non-preemptive FIFO
//! service: a request arriving at `t` with service time `s` starts at
//! `max(t, next_free)` and completes at `start + s`. A [`MultiResource`]
//! models `n` identical servers (SSD channels, a recycle thread pool) with
//! least-loaded dispatch.

use crate::Time;

/// A single FIFO server.
#[derive(Clone, Debug, Default)]
pub struct FifoResource {
    next_free: Time,
    busy_ticks: Time,
    jobs: u64,
}

impl FifoResource {
    /// Creates an idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a job arriving at `now` needing `service` ticks.
    /// Returns the completion time.
    pub fn submit(&mut self, now: Time, service: Time) -> Time {
        let start = self.next_free.max(now);
        let finish = start + service;
        self.next_free = finish;
        self.busy_ticks += service;
        self.jobs += 1;
        finish
    }

    /// When the server next becomes idle.
    #[inline]
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Queueing delay a job arriving at `now` would currently experience.
    #[inline]
    pub fn backlog(&self, now: Time) -> Time {
        self.next_free.saturating_sub(now)
    }

    /// Total busy time accumulated (for utilization metrics).
    #[inline]
    pub fn busy_ticks(&self) -> Time {
        self.busy_ticks
    }

    /// Number of jobs served.
    #[inline]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over the window `[0, now]`.
    pub fn utilization(&self, now: Time) -> f64 {
        if now == 0 {
            0.0
        } else {
            self.busy_ticks.min(now) as f64 / now as f64
        }
    }
}

/// `n` identical FIFO servers with least-loaded dispatch — models SSD
/// channel parallelism and thread pools.
#[derive(Clone, Debug)]
pub struct MultiResource {
    servers: Vec<FifoResource>,
}

impl MultiResource {
    /// Creates a pool of `n` idle servers.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "resource pool needs at least one server");
        MultiResource {
            servers: vec![FifoResource::new(); n],
        }
    }

    /// Number of servers.
    #[inline]
    pub fn width(&self) -> usize {
        self.servers.len()
    }

    /// Dispatches a job to the server that frees up soonest.
    /// Returns the completion time.
    pub fn submit(&mut self, now: Time, service: Time) -> Time {
        let idx = self.least_loaded();
        self.servers[idx].submit(now, service)
    }

    /// Dispatches to a *specific* server — used when work must stay ordered
    /// with earlier work on the same key (e.g. per-block recycle affinity).
    pub fn submit_to(&mut self, server: usize, now: Time, service: Time) -> Time {
        let idx = server % self.servers.len();
        self.servers[idx].submit(now, service)
    }

    /// Index of the server with the earliest `next_free`.
    pub fn least_loaded(&self) -> usize {
        let mut best = 0;
        let mut best_free = self.servers[0].next_free();
        for (i, s) in self.servers.iter().enumerate().skip(1) {
            if s.next_free() < best_free {
                best_free = s.next_free();
                best = i;
            }
        }
        best
    }

    /// Earliest time any server is free.
    pub fn next_free(&self) -> Time {
        self.servers
            .iter()
            .map(FifoResource::next_free)
            .min()
            .unwrap_or(0)
    }

    /// Sum of busy ticks over all servers.
    pub fn busy_ticks(&self) -> Time {
        self.servers.iter().map(FifoResource::busy_ticks).sum()
    }

    /// Total jobs across all servers.
    pub fn jobs(&self) -> u64 {
        self.servers.iter().map(FifoResource::jobs).sum()
    }

    /// Mean utilization over `[0, now]`.
    pub fn utilization(&self, now: Time) -> f64 {
        if now == 0 {
            return 0.0;
        }
        self.busy_ticks() as f64 / (now as f64 * self.servers.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serializes_overlapping_jobs() {
        let mut r = FifoResource::new();
        assert_eq!(r.submit(0, 10), 10);
        assert_eq!(r.submit(0, 10), 20); // queued behind the first
        assert_eq!(r.submit(25, 5), 30); // idle gap, starts immediately
        assert_eq!(r.jobs(), 3);
        assert_eq!(r.busy_ticks(), 25);
    }

    #[test]
    fn fifo_backlog_reflects_queue() {
        let mut r = FifoResource::new();
        r.submit(0, 100);
        assert_eq!(r.backlog(30), 70);
        assert_eq!(r.backlog(200), 0);
    }

    #[test]
    fn utilization_is_bounded() {
        let mut r = FifoResource::new();
        r.submit(0, 50);
        assert!((r.utilization(100) - 0.5).abs() < 1e-9);
        assert_eq!(FifoResource::new().utilization(0), 0.0);
    }

    #[test]
    fn multi_spreads_load_across_servers() {
        let mut m = MultiResource::new(4);
        // 4 simultaneous jobs all complete in parallel.
        for _ in 0..4 {
            assert_eq!(m.submit(0, 10), 10);
        }
        // The 5th queues behind one of them.
        assert_eq!(m.submit(0, 10), 20);
        assert_eq!(m.jobs(), 5);
    }

    #[test]
    fn multi_submit_to_keeps_affinity() {
        let mut m = MultiResource::new(3);
        let f1 = m.submit_to(1, 0, 10);
        let f2 = m.submit_to(1, 0, 10);
        assert_eq!(f1, 10);
        assert_eq!(f2, 20); // same server, serialized
        let f3 = m.submit_to(0, 0, 10);
        assert_eq!(f3, 10); // different server, parallel
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_width_pool_panics() {
        let _ = MultiResource::new(0);
    }
}
