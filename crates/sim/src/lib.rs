//! A deterministic discrete-event simulation (DES) kernel.
//!
//! This is the substrate that stands in for the paper's 16-node Chameleon
//! testbed: virtual time in nanoseconds, an event queue ordered by
//! `(time, insertion sequence)` so runs are bit-for-bit reproducible, and
//! FIFO *resources* that model serialized hardware (a disk, a NIC lane, a
//! recycle thread) by tracking when they next become free.
//!
//! Events are boxed continuations over a user-supplied world type `W`:
//!
//! ```
//! use tsue_sim::Sim;
//!
//! let mut sim: Sim<u64> = Sim::new();
//! sim.schedule(5, |w: &mut u64, sim: &mut Sim<u64>| {
//!     *w += 1;
//!     sim.schedule(10, |w: &mut u64, _: &mut Sim<u64>| *w += 10);
//! });
//! let mut world = 0u64;
//! sim.run(&mut world);
//! assert_eq!(world, 11);
//! assert_eq!(sim.now(), 15);
//! ```

#![warn(missing_docs)]

pub mod exec;
pub mod resource;

pub use exec::{chunk_ranges, WorkerPool};
pub use resource::{FifoResource, MultiResource};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type Time = u64;

/// One second in simulation ticks.
pub const SECOND: Time = 1_000_000_000;
/// One millisecond in simulation ticks.
pub const MILLISECOND: Time = 1_000_000;
/// One microsecond in simulation ticks.
pub const MICROSECOND: Time = 1_000;

/// A scheduled continuation.
type Event<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Entry<W> {
    at: Time,
    seq: u64,
    event: Event<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulation executor: a virtual clock plus an event queue.
///
/// `Sim` is generic over the world `W` it drives; events receive
/// `(&mut W, &mut Sim<W>)` so they can mutate state and schedule follow-ups.
pub struct Sim<W> {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Reverse<Entry<W>>>,
    events_executed: u64,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Sim {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            events_executed: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far (useful for budget guards).
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` to run `delay` ticks from now. Events scheduled at
    /// the same instant run in insertion order, which keeps runs
    /// deterministic.
    pub fn schedule<F>(&mut self, delay: Time, event: F)
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedules `event` at the absolute virtual time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at<F>(&mut self, at: Time, event: F)
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Entry {
            at,
            seq,
            event: Box::new(event),
        }));
    }

    /// Runs to quiescence (queue empty). Returns the final time.
    pub fn run(&mut self, world: &mut W) -> Time {
        while self.step(world) {}
        self.now
    }

    /// Runs until virtual time reaches `deadline` (events at exactly
    /// `deadline` still execute) or the queue drains. The clock is advanced
    /// to `deadline` afterwards so rate computations over the window are
    /// well-defined even if the last event fired earlier.
    pub fn run_until(&mut self, world: &mut W, deadline: Time) -> Time {
        while let Some(Reverse(event)) = self.queue.peek() {
            if event.at > deadline {
                break;
            }
            self.step(world);
        }
        self.now = self.now.max(deadline);
        self.now
    }

    /// Runs while `cond(world)` holds and events remain.
    pub fn run_while<F>(&mut self, world: &mut W, mut cond: F) -> Time
    where
        F: FnMut(&W) -> bool,
    {
        while cond(world) && self.step(world) {}
        self.now
    }

    /// Executes a single event. Returns false when the queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        match self.queue.pop() {
            Some(Reverse(entry)) => {
                debug_assert!(entry.at >= self.now, "time went backwards");
                self.now = entry.at;
                self.events_executed += 1;
                (entry.event)(world, self);
                true
            }
            None => false,
        }
    }

    /// Drops all pending events (used by failure-injection teardown).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule(30, |w: &mut Vec<u32>, _: &mut Sim<Vec<u32>>| w.push(3));
        sim.schedule(10, |w: &mut Vec<u32>, _: &mut Sim<Vec<u32>>| w.push(1));
        sim.schedule(20, |w: &mut Vec<u32>, _: &mut Sim<Vec<u32>>| w.push(2));
        let mut world = Vec::new();
        sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(sim.now(), 30);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn same_time_events_run_in_insertion_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        for i in 0..10 {
            sim.schedule(5, move |w: &mut Vec<u32>, _: &mut Sim<Vec<u32>>| w.push(i));
        }
        let mut world = Vec::new();
        sim.run(&mut world);
        assert_eq!(world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<u64> = Sim::new();
        fn tick(w: &mut u64, sim: &mut Sim<u64>) {
            *w += 1;
            if *w < 100 {
                sim.schedule(1, tick);
            }
        }
        sim.schedule(0, tick);
        let mut world = 0;
        sim.run(&mut world);
        assert_eq!(world, 100);
        assert_eq!(sim.now(), 99);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Sim<u64> = Sim::new();
        for t in (0..10).map(|i| i * 10) {
            sim.schedule(t, |w: &mut u64, _: &mut Sim<u64>| *w += 1);
        }
        let mut world = 0;
        sim.run_until(&mut world, 45);
        assert_eq!(world, 5); // events at 0,10,20,30,40
        assert!(sim.pending() > 0);
        sim.run(&mut world);
        assert_eq!(world, 10);
    }

    #[test]
    fn run_while_observes_condition() {
        let mut sim: Sim<u64> = Sim::new();
        for _ in 0..100 {
            sim.schedule(1, |w: &mut u64, _: &mut Sim<u64>| *w += 1);
        }
        let mut world = 0;
        sim.run_while(&mut world, |w| *w < 7);
        assert_eq!(world, 7);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule(10, |_: &mut (), sim: &mut Sim<()>| {
            sim.schedule_at(5, |_, _| {});
        });
        sim.run(&mut ());
    }

    #[test]
    fn clear_drops_pending() {
        let mut sim: Sim<u64> = Sim::new();
        sim.schedule(1, |w: &mut u64, _: &mut Sim<u64>| *w += 1);
        sim.clear();
        let mut w = 0;
        sim.run(&mut w);
        assert_eq!(w, 0);
    }
}
