//! The tick-barrier worker pool: real host-core parallelism under a
//! deterministic virtual clock.
//!
//! The DES event loop is inherently sequential — events mutate the world
//! and the clock in a total order — so the parallelism that scales with
//! host cores lives *inside* single events: the byte work (GF kernels,
//! XOR merges, delta captures, decode) of one seal/recycle/rebuild tick
//! fans out across workers and joins before the event returns. That join
//! is the **tick barrier**: the virtual clock never advances while
//! workers run, workers never touch the clock or schedule events, and
//! results are merged in submission order. Three rules make any thread
//! count produce bit-identical output:
//!
//! 1. **Pure jobs** — a job computes a value that is a function of
//!    pre-barrier state only (its own item plus shared read-only state).
//! 2. **Disjoint writes** — jobs that mutate shared stores (through the
//!    sharded locks in `tsue_ecfs`) touch disjoint byte ranges, or only
//!    commutative operations (XOR) on overlapping ones.
//! 3. **Ordered merge** — [`WorkerPool::run`] returns results indexed by
//!    submission position, so the coordinator consumes them in the same
//!    order a sequential run would have produced them.
//!
//! With `threads = 1` the pool executes inline — no threads are spawned,
//! no channels built, zero overhead — which is how the golden
//! reproducibility suites run.
//!
//! Work distribution uses the `crossbeam` channel shim as the job/result
//! queues; scoped borrowing comes from [`std::thread::scope`] (the
//! vendored crossbeam exposes only channels). Spawning costs a few tens
//! of microseconds per barrier, so callers gate parallel dispatch on
//! batch size (see [`WorkerPool::worth_splitting`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// A scoped worker pool executing one batch of jobs per tick barrier.
///
/// Cheap to construct and `Send + Sync`; clusters hold one instance and
/// share it by reference with every parallel phase.
#[derive(Debug)]
pub struct WorkerPool {
    threads: usize,
    jobs: AtomicU64,
    barriers: AtomicU64,
}

/// Batches smaller than this many bytes of kernel work run inline even
/// on a multi-threaded pool — the spawn cost would exceed the win.
pub const PARALLEL_BYTES_FLOOR: u64 = 128 << 10;

impl WorkerPool {
    /// Creates a pool of `threads` workers; `0` is clamped to `1`
    /// (inline execution).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
            jobs: AtomicU64::new(0),
            barriers: AtomicU64::new(0),
        }
    }

    /// Worker count (1 = inline, no threads spawned).
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when `run` may actually fan out.
    #[inline]
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Heuristic gate for callers: parallel dispatch pays off only when
    /// the batch has at least two jobs and enough byte work to amortize
    /// the scoped-spawn cost.
    #[inline]
    pub fn worth_splitting(&self, jobs: usize, bytes: u64) -> bool {
        self.is_parallel() && jobs > 1 && bytes >= PARALLEL_BYTES_FLOOR
    }

    /// Total jobs executed through the pool (diagnostics).
    pub fn jobs_executed(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Total tick barriers crossed (one per parallel `run`).
    pub fn barriers_crossed(&self) -> u64 {
        self.barriers.load(Ordering::Relaxed)
    }

    /// Asserts the pool has no outstanding work. Every `run` is a full
    /// barrier (workers are joined before it returns), so this always
    /// holds; fault-injection drain gates call it to document — and keep
    /// checked — the invariant that no worker outlives its tick.
    pub fn quiesce(&self) {
        // Scoped workers cannot outlive `run`; nothing to wait for.
    }

    /// Executes `f` over `items`, returning results in item order.
    ///
    /// With one worker (or zero/one item) this is an inline map. With
    /// more, items are distributed over scoped workers through a shared
    /// channel and the call blocks until every job completes — the tick
    /// barrier. `f` sees `(index, item)` so jobs can vary by position
    /// without shared mutable state.
    ///
    /// # Panics
    /// Propagates the first worker panic after the barrier.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        self.jobs.fetch_add(n as u64, Ordering::Relaxed);
        if self.threads <= 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        self.barriers.fetch_add(1, Ordering::Relaxed);
        let (jtx, jrx) = crossbeam::channel::unbounded();
        for pair in items.into_iter().enumerate() {
            let _ = jtx.send(pair);
        }
        drop(jtx);
        let (rtx, rrx) = crossbeam::channel::unbounded::<(usize, R)>();
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let f = &f;
        std::thread::scope(|s| {
            for _ in 0..self.threads.min(n) {
                let jrx = jrx.clone();
                let rtx = rtx.clone();
                s.spawn(move || {
                    while let Ok((i, item)) = jrx.recv() {
                        let _ = rtx.send((i, f(i, item)));
                    }
                });
            }
            drop(rtx);
            for (i, r) in rrx.iter() {
                out[i] = Some(r);
            }
        });
        out.into_iter()
            // INVARIANT: the scope join above re-raises worker panics,
            // so every slot is filled when we get here.
            .map(|o| o.expect("worker delivered result"))
            .collect()
    }
}

/// Splits `len` bytes into at most `parts` contiguous `(start, end)`
/// ranges of near-equal size, in order. Used to chunk one large kernel
/// (a block decode, a payload fill) across workers: bytewise kernels
/// produce identical output per range regardless of which worker runs
/// it, so chunking preserves bit-exact results by construction.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let sz = base + usize::from(i < extra);
        if sz == 0 {
            break;
        }
        out.push((start, start + sz));
        start += sz;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_pool_maps_in_order() {
        let pool = WorkerPool::new(1);
        let got = pool.run(vec![1u32, 2, 3], |i, x| (i, x * 10));
        assert_eq!(got, vec![(0, 10), (1, 20), (2, 30)]);
        assert_eq!(pool.jobs_executed(), 3);
        assert_eq!(pool.barriers_crossed(), 0);
    }

    #[test]
    fn parallel_pool_preserves_submission_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..100).collect();
        let got = pool.run(items, |_, x| x * x);
        assert_eq!(got, (0..100).map(|x: u64| x * x).collect::<Vec<_>>());
        assert!(pool.barriers_crossed() >= 1);
    }

    #[test]
    fn parallel_matches_inline_bit_for_bit() {
        let seq = WorkerPool::new(1);
        let par = WorkerPool::new(8);
        let items: Vec<u64> = (0..64).collect();
        let f = |i: usize, x: u64| {
            let mut h = x.wrapping_mul(0x9e3779b97f4a7c15) ^ i as u64;
            h ^= h >> 33;
            h
        };
        assert_eq!(seq.run(items.clone(), f), par.run(items, f));
    }

    #[test]
    fn zero_threads_clamps_to_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(!pool.is_parallel());
    }

    #[test]
    fn worth_splitting_gates_on_size() {
        let pool = WorkerPool::new(8);
        assert!(
            !pool.worth_splitting(1, 10 << 20),
            "single job never splits"
        );
        assert!(!pool.worth_splitting(8, 1024), "tiny batches stay inline");
        assert!(pool.worth_splitting(8, 1 << 20));
        assert!(!WorkerPool::new(1).worth_splitting(8, 1 << 20));
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for (len, parts) in [(0usize, 4), (1, 4), (10, 3), (1 << 20, 8), (7, 16)] {
            let ranges = chunk_ranges(len, parts);
            let mut cursor = 0;
            for &(s, e) in &ranges {
                assert_eq!(s, cursor);
                assert!(e > s);
                cursor = e;
            }
            assert_eq!(cursor, len.min(if len == 0 { 0 } else { len }));
            assert!(ranges.len() <= parts.max(1));
        }
    }

    #[test]
    fn disjoint_slice_writes_compose() {
        // The recovery-decode pattern: one output buffer chunked across
        // workers, each filling its own range.
        let pool = WorkerPool::new(4);
        let mut out = vec![0u8; 4096];
        let ranges = chunk_ranges(out.len(), pool.threads());
        let mut slices: Vec<(usize, &mut [u8])> = Vec::new();
        let mut rest = out.as_mut_slice();
        let mut offset = 0;
        for &(s, e) in &ranges {
            let (seg, tail) = rest.split_at_mut(e - s);
            slices.push((offset, seg));
            rest = tail;
            offset = e;
        }
        pool.run(slices, |_, (off, seg)| {
            for (i, b) in seg.iter_mut().enumerate() {
                *b = ((off + i) % 251) as u8;
            }
        });
        for (i, &b) in out.iter().enumerate() {
            assert_eq!(b, (i % 251) as u8);
        }
    }
}
