//! Runtime-dispatched slice-kernel backends: split-nibble SIMD where the
//! host supports it, portable word-wide code everywhere else.
//!
//! # Design
//!
//! Every public slice kernel in the crate root ([`crate::mul_slice`],
//! [`crate::mul_add_slice`], [`crate::mul_slice_assign`],
//! [`crate::xor_slice`], [`crate::xor_into`]) funnels through one
//! function-pointer vtable (`Kernels`) selected once at first use and
//! cached in an atomic. Five tiers exist:
//!
//! * **`avx2`** — 32 products per `_mm256_shuffle_epi8` pair (x86_64).
//! * **`ssse3`** — 16 products per `_mm_shuffle_epi8` pair (x86_64).
//! * **`neon`** — 16 products per `vqtbl1q_u8` pair (aarch64).
//! * **`portable`** — unrolled 256-entry-row lookups for multiplies and
//!   8-bytes-at-a-time `u64` words for XOR; compiles everywhere.
//! * **`scalar`** — the one-byte-at-a-time reference the equivalence
//!   suite measures every other tier against (see [`crate::reference`]).
//!
//! The SIMD multiplies use the *split-nibble* construction: GF(2^8)
//! multiplication distributes over XOR, so the product `c · b` splits
//! into `c · (b & 0xf) ⊕ c · (b & 0xf0)` — two 16-entry table lookups
//! ([`tables::NIB_LO`]/[`tables::NIB_HI`]) that a byte-shuffle
//! instruction evaluates for a whole vector register at once.
//!
//! # Invariant
//!
//! **All tiers are byte-identical.** Dispatch may legally change at any
//! moment (the tests swap tiers mid-process); no observable output of
//! the simulator may depend on which tier ran. The cross-tier property
//! suite (`crates/gf/tests/`) and the golden reruns
//! (`tests/golden_equivalence.rs`) pin this.
//!
//! # Selection
//!
//! The first kernel call resolves the tier: the `TSUE_GF_KERNEL`
//! environment variable, when set, **forces** a tier (`scalar`,
//! `portable`, `ssse3`, `avx2`, `neon`, or `native` for
//! detect-the-best); otherwise the best tier the CPU supports wins
//! (`is_x86_feature_detected!` on x86_64). Forcing a tier the host
//! cannot run panics loudly — a silent fallback would let a CI matrix
//! think it covered a backend it never executed. [`set_kernel_tier`]
//! swaps tiers programmatically (benchmarks and the equivalence suite).

use crate::tables::{self, MUL_TABLE};
use std::sync::atomic::{AtomicU8, Ordering};

/// One selectable kernel backend. Ordering is by preference: higher
/// discriminants are wider (faster) backends.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum KernelTier {
    /// Byte-at-a-time reference loops.
    Scalar = 0,
    /// Unrolled table-row multiplies + `u64`-word XOR; no `std::arch`.
    Portable = 1,
    /// x86_64 split-nibble via 128-bit `_mm_shuffle_epi8`.
    Ssse3 = 2,
    /// x86_64 split-nibble via 256-bit `_mm256_shuffle_epi8`.
    Avx2 = 3,
    /// aarch64 split-nibble via `vqtbl1q_u8`.
    Neon = 4,
}

impl KernelTier {
    /// Every tier, in ascending preference order.
    pub const ALL: [KernelTier; 5] = [
        KernelTier::Scalar,
        KernelTier::Portable,
        KernelTier::Ssse3,
        KernelTier::Avx2,
        KernelTier::Neon,
    ];

    /// The tier's stable lower-case name (`scalar`, `portable`, `ssse3`,
    /// `avx2`, `neon`) — the vocabulary of `TSUE_GF_KERNEL`, the bench
    /// report, and the metrics surface.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Portable => "portable",
            KernelTier::Ssse3 => "ssse3",
            KernelTier::Avx2 => "avx2",
            KernelTier::Neon => "neon",
        }
    }

    /// Parses a tier name (the inverse of [`Self::name`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<KernelTier> {
        KernelTier::ALL.into_iter().find(|t| t.name() == s)
    }

    /// Whether this tier can run on the current host (compiled in *and*
    /// its CPU features are present).
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            KernelTier::Scalar | KernelTier::Portable => true,
            KernelTier::Ssse3 => cfg!(target_arch = "x86_64") && has_x86_feature("ssse3"),
            KernelTier::Avx2 => cfg!(target_arch = "x86_64") && has_x86_feature("avx2"),
            KernelTier::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// Every tier the current host supports, ascending preference.
    #[must_use]
    pub fn available() -> Vec<KernelTier> {
        KernelTier::ALL
            .into_iter()
            .filter(|t| t.is_supported())
            .collect()
    }

    /// The widest tier the current host supports.
    #[must_use]
    pub fn best() -> KernelTier {
        *KernelTier::available()
            .last()
            .expect("portable always runs")
    }

    fn from_u8(v: u8) -> KernelTier {
        KernelTier::ALL[v as usize]
    }
}

#[cfg(target_arch = "x86_64")]
fn has_x86_feature(feature: &str) -> bool {
    match feature {
        "ssse3" => std::arch::is_x86_feature_detected!("ssse3"),
        "avx2" => std::arch::is_x86_feature_detected!("avx2"),
        _ => false,
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn has_x86_feature(_feature: &str) -> bool {
    false
}

/// SIMD-relevant CPU features detected on this host, by stable name.
/// Recorded in bench reports so trajectories across hosts stay
/// interpretable.
#[must_use]
pub fn cpu_features() -> Vec<&'static str> {
    let mut out = Vec::new();
    if cfg!(target_arch = "x86_64") {
        for f in ["ssse3", "avx2"] {
            if has_x86_feature(f) {
                out.push(f);
            }
        }
    }
    if cfg!(target_arch = "aarch64") {
        out.push("neon");
    }
    out
}

/// The per-tier function-pointer vtable. The `c == 0` / `c == 1` fast
/// paths live in the crate-root wrappers, so multiply backends may
/// assume a non-trivial coefficient (they stay correct for any `c`).
pub(crate) struct Kernels {
    pub(crate) tier: KernelTier,
    pub(crate) mul_slice: fn(u8, &[u8], &mut [u8]),
    pub(crate) mul_add_slice: fn(u8, &[u8], &mut [u8]),
    pub(crate) mul_slice_assign: fn(u8, &mut [u8]),
    pub(crate) xor_slice: fn(&[u8], &mut [u8]),
    pub(crate) xor_into: fn(&[u8], &[u8], &mut [u8]),
}

static SCALAR: Kernels = Kernels {
    tier: KernelTier::Scalar,
    mul_slice: scalar::mul_slice,
    mul_add_slice: scalar::mul_add_slice,
    mul_slice_assign: scalar::mul_slice_assign,
    xor_slice: scalar::xor_slice,
    xor_into: scalar::xor_into,
};

static PORTABLE: Kernels = Kernels {
    tier: KernelTier::Portable,
    mul_slice: portable::mul_slice,
    mul_add_slice: portable::mul_add_slice,
    mul_slice_assign: portable::mul_slice_assign,
    xor_slice: portable::xor_slice,
    xor_into: portable::xor_into,
};

#[cfg(target_arch = "x86_64")]
static SSSE3: Kernels = Kernels {
    tier: KernelTier::Ssse3,
    mul_slice: x86::mul_slice_ssse3,
    mul_add_slice: x86::mul_add_slice_ssse3,
    mul_slice_assign: x86::mul_slice_assign_ssse3,
    xor_slice: x86::xor_slice_sse2,
    xor_into: x86::xor_into_sse2,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernels = Kernels {
    tier: KernelTier::Avx2,
    mul_slice: x86::mul_slice_avx2,
    mul_add_slice: x86::mul_add_slice_avx2,
    mul_slice_assign: x86::mul_slice_assign_avx2,
    xor_slice: x86::xor_slice_avx2,
    xor_into: x86::xor_into_avx2,
};

#[cfg(target_arch = "aarch64")]
static NEON: Kernels = Kernels {
    tier: KernelTier::Neon,
    mul_slice: neon::mul_slice_neon,
    mul_add_slice: neon::mul_add_slice_neon,
    mul_slice_assign: neon::mul_slice_assign_neon,
    xor_slice: neon::xor_slice_neon,
    xor_into: neon::xor_into_neon,
};

fn table_for(tier: KernelTier) -> &'static Kernels {
    match tier {
        KernelTier::Scalar => &SCALAR,
        KernelTier::Portable => &PORTABLE,
        #[cfg(target_arch = "x86_64")]
        KernelTier::Ssse3 => &SSSE3,
        #[cfg(target_arch = "x86_64")]
        KernelTier::Avx2 => &AVX2,
        #[cfg(target_arch = "aarch64")]
        KernelTier::Neon => &NEON,
        #[allow(unreachable_patterns)] // arms above are cfg-gated
        _ => &PORTABLE,
    }
}

/// `u8::MAX` = not yet resolved; otherwise a `KernelTier` discriminant.
static ACTIVE: AtomicU8 = AtomicU8::new(u8::MAX);

/// The currently active vtable, resolving the tier on first use.
#[inline]
pub(crate) fn active() -> &'static Kernels {
    match ACTIVE.load(Ordering::Relaxed) {
        u8::MAX => resolve_default(),
        v => table_for(KernelTier::from_u8(v)),
    }
}

/// Cold path of [`active`]: applies `TSUE_GF_KERNEL` or feature
/// detection, publishes the choice, and returns the vtable. Races
/// between threads are benign — every contender computes the same tier.
#[cold]
fn resolve_default() -> &'static Kernels {
    let tier = match std::env::var("TSUE_GF_KERNEL") {
        Err(_) => KernelTier::best(),
        Ok(v) if v.is_empty() || v == "native" || v == "auto" => KernelTier::best(),
        Ok(v) => {
            let tier = KernelTier::parse(&v).unwrap_or_else(|| {
                panic!(
                    "TSUE_GF_KERNEL={v:?} is not a kernel tier \
                     (expected scalar|portable|ssse3|avx2|neon|native)"
                )
            });
            assert!(
                tier.is_supported(),
                "TSUE_GF_KERNEL={v:?} forces a tier this host cannot run \
                 (detected features: {:?})",
                cpu_features()
            );
            tier
        }
    };
    ACTIVE.store(tier as u8, Ordering::Relaxed);
    table_for(tier)
}

/// The tier the slice kernels currently dispatch to.
#[must_use]
pub fn kernel_tier() -> KernelTier {
    active().tier
}

/// Forces dispatch onto `tier` for the rest of the process (or until the
/// next call). Used by the equivalence suites and the per-tier bench
/// rows; safe to call at any time because all tiers produce identical
/// bytes.
///
/// # Errors
/// Returns the unsupported tier's name if this host cannot run it.
pub fn set_kernel_tier(tier: KernelTier) -> Result<(), String> {
    if !tier.is_supported() {
        return Err(format!(
            "kernel tier '{}' is not supported on this host (detected: {:?})",
            tier.name(),
            cpu_features()
        ));
    }
    ACTIVE.store(tier as u8, Ordering::Relaxed);
    Ok(())
}

/// The byte-at-a-time reference kernels. Public (re-exported as
/// [`crate::reference`]) so equivalence suites can compare any tier
/// against ground truth without touching the dispatcher.
pub mod reference {
    use super::MUL_TABLE;

    /// `dst[i] = c * src[i]`, one table lookup per byte.
    pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        let row = &MUL_TABLE[c as usize];
        for (s, d) in src.iter().zip(dst.iter_mut()) {
            *d = row[*s as usize];
        }
    }

    /// `dst[i] ^= c * src[i]`, one table lookup per byte.
    pub fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        let row = &MUL_TABLE[c as usize];
        for (s, d) in src.iter().zip(dst.iter_mut()) {
            *d ^= row[*s as usize];
        }
    }

    /// `buf[i] = c * buf[i]`, one table lookup per byte.
    pub fn mul_slice_assign(c: u8, buf: &mut [u8]) {
        let row = &MUL_TABLE[c as usize];
        for d in buf.iter_mut() {
            *d = row[*d as usize];
        }
    }

    /// `dst[i] ^= src[i]`, one byte at a time.
    pub fn xor_slice(src: &[u8], dst: &mut [u8]) {
        for (s, d) in src.iter().zip(dst.iter_mut()) {
            *d ^= *s;
        }
    }

    /// `dst[i] = a[i] ^ b[i]`, one byte at a time.
    pub fn xor_into(a: &[u8], b: &[u8], dst: &mut [u8]) {
        for ((x, y), d) in a.iter().zip(b.iter()).zip(dst.iter_mut()) {
            *d = *x ^ *y;
        }
    }
}

use reference as scalar;

/// The no-`std::arch` tier: multiplies walk a 256-entry product row
/// unrolled by 8, XOR runs on `u64` words with a byte remainder loop.
/// `pub(crate)` so the crate-root XOR wrappers can take this path
/// inline for short slices, skipping the dispatch indirection.
pub(crate) mod portable {
    use super::MUL_TABLE;

    pub(super) fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        let row = &MUL_TABLE[c as usize];
        let mut src_chunks = src.chunks_exact(8);
        let mut dst_chunks = dst.chunks_exact_mut(8);
        for (s, d) in (&mut src_chunks).zip(&mut dst_chunks) {
            d[0] = row[s[0] as usize];
            d[1] = row[s[1] as usize];
            d[2] = row[s[2] as usize];
            d[3] = row[s[3] as usize];
            d[4] = row[s[4] as usize];
            d[5] = row[s[5] as usize];
            d[6] = row[s[6] as usize];
            d[7] = row[s[7] as usize];
        }
        for (s, d) in src_chunks
            .remainder()
            .iter()
            .zip(dst_chunks.into_remainder())
        {
            *d = row[*s as usize];
        }
    }

    pub(super) fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
        let row = &MUL_TABLE[c as usize];
        let mut src_chunks = src.chunks_exact(8);
        let mut dst_chunks = dst.chunks_exact_mut(8);
        for (s, d) in (&mut src_chunks).zip(&mut dst_chunks) {
            d[0] ^= row[s[0] as usize];
            d[1] ^= row[s[1] as usize];
            d[2] ^= row[s[2] as usize];
            d[3] ^= row[s[3] as usize];
            d[4] ^= row[s[4] as usize];
            d[5] ^= row[s[5] as usize];
            d[6] ^= row[s[6] as usize];
            d[7] ^= row[s[7] as usize];
        }
        for (s, d) in src_chunks
            .remainder()
            .iter()
            .zip(dst_chunks.into_remainder())
        {
            *d ^= row[*s as usize];
        }
    }

    pub(super) fn mul_slice_assign(c: u8, buf: &mut [u8]) {
        let row = &MUL_TABLE[c as usize];
        let mut chunks = buf.chunks_exact_mut(8);
        for d in &mut chunks {
            d[0] = row[d[0] as usize];
            d[1] = row[d[1] as usize];
            d[2] = row[d[2] as usize];
            d[3] = row[d[3] as usize];
            d[4] = row[d[4] as usize];
            d[5] = row[d[5] as usize];
            d[6] = row[d[6] as usize];
            d[7] = row[d[7] as usize];
        }
        for d in chunks.into_remainder() {
            *d = row[*d as usize];
        }
    }

    #[inline]
    pub(crate) fn xor_slice(src: &[u8], dst: &mut [u8]) {
        let mut src_chunks = src.chunks_exact(8);
        let mut dst_chunks = dst.chunks_exact_mut(8);
        for (s, d) in (&mut src_chunks).zip(&mut dst_chunks) {
            let sv = u64::from_ne_bytes(s.try_into().unwrap());
            let dv = u64::from_ne_bytes((&*d).try_into().unwrap());
            d.copy_from_slice(&(sv ^ dv).to_ne_bytes());
        }
        for (s, d) in src_chunks
            .remainder()
            .iter()
            .zip(dst_chunks.into_remainder())
        {
            *d ^= *s;
        }
    }

    #[inline]
    pub(crate) fn xor_into(a: &[u8], b: &[u8], dst: &mut [u8]) {
        let mut ac = a.chunks_exact(8);
        let mut bc = b.chunks_exact(8);
        let mut dc = dst.chunks_exact_mut(8);
        for ((s, t), d) in (&mut ac).zip(&mut bc).zip(&mut dc) {
            let sv = u64::from_ne_bytes(s.try_into().unwrap());
            let tv = u64::from_ne_bytes(t.try_into().unwrap());
            d.copy_from_slice(&(sv ^ tv).to_ne_bytes());
        }
        for ((s, t), d) in ac
            .remainder()
            .iter()
            .zip(bc.remainder())
            .zip(dc.into_remainder())
        {
            *d = s ^ t;
        }
    }
}

/// x86_64 backends. SSSE3 (`pshufb`) drives the 128-bit split-nibble
/// multiplies, AVX2 the 256-bit ones; XOR uses baseline SSE2 at the
/// SSSE3 tier. Every entry point is a safe wrapper that proves the
/// required feature before entering the `#[target_feature]` body, and
/// every vector loop hands its sub-register tail to the portable code.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{portable, tables};
    use core::arch::x86_64::*;

    // ---- SSSE3 split-nibble multiply ----

    /// 16 products at once: low/high nibble table shuffles XORed.
    ///
    /// # Safety
    /// Caller must have verified SSSE3 support.
    // SAFETY: register-only and/shift/shuffle/xor intrinsics — no memory
    // access; sound whenever SSSE3 is present, which the contract gives.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn mul16(lo: __m128i, hi: __m128i, mask: __m128i, x: __m128i) -> __m128i {
        let xl = _mm_and_si128(x, mask);
        let xh = _mm_and_si128(_mm_srli_epi64::<4>(x), mask);
        _mm_xor_si128(_mm_shuffle_epi8(lo, xl), _mm_shuffle_epi8(hi, xh))
    }

    /// # Safety
    /// Caller must have verified SSSE3 support.
    // SAFETY: table loads read exactly 16 bytes from the `[u8; 16]` rows
    // of NIB_LO/NIB_HI; loop loads/stores are unaligned 16-byte accesses
    // at `i` with `i + 16 <= n <= src.len() == dst.len()` (lengths
    // asserted equal by the public wrappers).
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_slice_ssse3_impl(c: u8, src: &[u8], dst: &mut [u8]) {
        let lo = _mm_loadu_si128(tables::NIB_LO[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(tables::NIB_HI[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0f);
        let n = src.len() & !15;
        let mut i = 0;
        while i < n {
            let x = _mm_loadu_si128(src.as_ptr().add(i).cast());
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), mul16(lo, hi, mask, x));
            i += 16;
        }
        portable::mul_slice(c, &src[n..], &mut dst[n..]);
    }

    /// # Safety
    /// Caller must have verified SSSE3 support.
    // SAFETY: bounds as in mul_slice_ssse3_impl — 16-byte rows for the
    // tables, `i + 16 <= n <= src.len() == dst.len()` for the loop; the
    // extra dst load reads the same in-bounds 16 bytes the store writes.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_add_slice_ssse3_impl(c: u8, src: &[u8], dst: &mut [u8]) {
        let lo = _mm_loadu_si128(tables::NIB_LO[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(tables::NIB_HI[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0f);
        let n = src.len() & !15;
        let mut i = 0;
        while i < n {
            let x = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let p = mul16(lo, hi, mask, x);
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, p));
            i += 16;
        }
        portable::mul_add_slice(c, &src[n..], &mut dst[n..]);
    }

    /// # Safety
    /// Caller must have verified SSSE3 support.
    // SAFETY: single-buffer variant — each iteration loads and stores
    // the same 16 in-bounds bytes (`i + 16 <= n <= buf.len()`); table
    // loads stay within the `[u8; 16]` rows.
    #[target_feature(enable = "ssse3")]
    unsafe fn mul_slice_assign_ssse3_impl(c: u8, buf: &mut [u8]) {
        let lo = _mm_loadu_si128(tables::NIB_LO[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(tables::NIB_HI[c as usize].as_ptr().cast());
        let mask = _mm_set1_epi8(0x0f);
        let n = buf.len() & !15;
        let mut i = 0;
        while i < n {
            let x = _mm_loadu_si128(buf.as_ptr().add(i).cast());
            _mm_storeu_si128(buf.as_mut_ptr().add(i).cast(), mul16(lo, hi, mask, x));
            i += 16;
        }
        portable::mul_slice_assign(c, &mut buf[n..]);
    }

    pub(super) fn mul_slice_ssse3(c: u8, src: &[u8], dst: &mut [u8]) {
        // SAFETY: this fn is only reachable through the ssse3 vtable,
        // installed after `is_x86_feature_detected!("ssse3")`.
        unsafe { mul_slice_ssse3_impl(c, src, dst) }
    }

    pub(super) fn mul_add_slice_ssse3(c: u8, src: &[u8], dst: &mut [u8]) {
        // SAFETY: as above — ssse3 verified before vtable install.
        unsafe { mul_add_slice_ssse3_impl(c, src, dst) }
    }

    pub(super) fn mul_slice_assign_ssse3(c: u8, buf: &mut [u8]) {
        // SAFETY: as above — ssse3 verified before vtable install.
        unsafe { mul_slice_assign_ssse3_impl(c, buf) }
    }

    // ---- AVX2 split-nibble multiply ----

    /// 32 products at once.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support.
    // SAFETY: register-only 256-bit and/shift/shuffle/xor — no memory
    // access; sound whenever AVX2 is present, which the contract gives.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul32(lo: __m256i, hi: __m256i, mask: __m256i, x: __m256i) -> __m256i {
        let xl = _mm256_and_si256(x, mask);
        let xh = _mm256_and_si256(_mm256_srli_epi64::<4>(x), mask);
        _mm256_xor_si256(_mm256_shuffle_epi8(lo, xl), _mm256_shuffle_epi8(hi, xh))
    }

    /// Both 16-entry tables broadcast to 256-bit lanes.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support.
    // SAFETY: the two loads read exactly 16 bytes from the `[u8; 16]`
    // rows of NIB_LO/NIB_HI; the broadcasts are register-only.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn tables256(c: u8) -> (__m256i, __m256i) {
        let lo = _mm_loadu_si128(tables::NIB_LO[c as usize].as_ptr().cast());
        let hi = _mm_loadu_si128(tables::NIB_HI[c as usize].as_ptr().cast());
        (
            _mm256_broadcastsi128_si256(lo),
            _mm256_broadcastsi128_si256(hi),
        )
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    // SAFETY: unaligned 32-byte loads/stores at `i` with
    // `i + 32 <= n <= src.len() == dst.len()` (lengths asserted equal by
    // the public wrappers); the sub-32 tail goes to the SSSE3 impl, whose
    // contract holds because AVX2 implies SSSE3.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_slice_avx2_impl(c: u8, src: &[u8], dst: &mut [u8]) {
        let (lo, hi) = tables256(c);
        let mask = _mm256_set1_epi8(0x0f);
        let n = src.len() & !31;
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), mul32(lo, hi, mask, x));
            i += 32;
        }
        mul_slice_ssse3_impl(c, &src[n..], &mut dst[n..]);
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    // SAFETY: bounds as in mul_slice_avx2_impl; the extra dst load reads
    // the same in-bounds 32 bytes the store writes; AVX2 implies SSSE3
    // for the tail call.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_add_slice_avx2_impl(c: u8, src: &[u8], dst: &mut [u8]) {
        let (lo, hi) = tables256(c);
        let mask = _mm256_set1_epi8(0x0f);
        let n = src.len() & !31;
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let p = mul32(lo, hi, mask, x);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, p));
            i += 32;
        }
        mul_add_slice_ssse3_impl(c, &src[n..], &mut dst[n..]);
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    // SAFETY: single-buffer variant — each iteration loads and stores
    // the same 32 in-bounds bytes (`i + 32 <= n <= buf.len()`); AVX2
    // implies SSSE3 for the tail call.
    #[target_feature(enable = "avx2")]
    unsafe fn mul_slice_assign_avx2_impl(c: u8, buf: &mut [u8]) {
        let (lo, hi) = tables256(c);
        let mask = _mm256_set1_epi8(0x0f);
        let n = buf.len() & !31;
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_si256(buf.as_ptr().add(i).cast());
            _mm256_storeu_si256(buf.as_mut_ptr().add(i).cast(), mul32(lo, hi, mask, x));
            i += 32;
        }
        mul_slice_assign_ssse3_impl(c, &mut buf[n..]);
    }

    pub(super) fn mul_slice_avx2(c: u8, src: &[u8], dst: &mut [u8]) {
        // SAFETY: this fn is only reachable through the avx2 vtable,
        // installed after `is_x86_feature_detected!("avx2")` (which
        // implies ssse3 for the tail path).
        unsafe { mul_slice_avx2_impl(c, src, dst) }
    }

    pub(super) fn mul_add_slice_avx2(c: u8, src: &[u8], dst: &mut [u8]) {
        // SAFETY: as above — avx2 verified before vtable install.
        unsafe { mul_add_slice_avx2_impl(c, src, dst) }
    }

    pub(super) fn mul_slice_assign_avx2(c: u8, buf: &mut [u8]) {
        // SAFETY: as above — avx2 verified before vtable install.
        unsafe { mul_slice_assign_avx2_impl(c, buf) }
    }

    // ---- wide XOR ----

    pub(super) fn xor_slice_sse2(src: &[u8], dst: &mut [u8]) {
        let n = src.len() & !15;
        let mut i = 0;
        while i < n {
            // SAFETY: SSE2 is x86_64 baseline; `i + 16 <= n <= len` on
            // both slices (lengths asserted equal by the caller).
            unsafe {
                let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
                let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(s, d));
            }
            i += 16;
        }
        portable::xor_slice(&src[n..], &mut dst[n..]);
    }

    pub(super) fn xor_into_sse2(a: &[u8], b: &[u8], dst: &mut [u8]) {
        let n = a.len() & !15;
        let mut i = 0;
        while i < n {
            // SAFETY: SSE2 is x86_64 baseline; bounds as in xor_slice.
            unsafe {
                let x = _mm_loadu_si128(a.as_ptr().add(i).cast());
                let y = _mm_loadu_si128(b.as_ptr().add(i).cast());
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(x, y));
            }
            i += 16;
        }
        portable::xor_into(&a[n..], &b[n..], &mut dst[n..]);
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    // SAFETY: unaligned 32-byte loads/stores at `i` with
    // `i + 32 <= n <= src.len() == dst.len()` (lengths asserted equal by
    // the public wrappers); tail handled by portable code.
    #[target_feature(enable = "avx2")]
    unsafe fn xor_slice_avx2_impl(src: &[u8], dst: &mut [u8]) {
        let n = src.len() & !31;
        let mut i = 0;
        while i < n {
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(s, d));
            i += 32;
        }
        portable::xor_slice(&src[n..], &mut dst[n..]);
    }

    /// # Safety
    /// Caller must have verified AVX2 support.
    // SAFETY: three-slice variant — all three are at least `a.len()`
    // long (asserted by the public wrappers), so the 32-byte accesses at
    // `i < n <= a.len()` are in bounds on each.
    #[target_feature(enable = "avx2")]
    unsafe fn xor_into_avx2_impl(a: &[u8], b: &[u8], dst: &mut [u8]) {
        let n = a.len() & !31;
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let y = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(x, y));
            i += 32;
        }
        portable::xor_into(&a[n..], &b[n..], &mut dst[n..]);
    }

    pub(super) fn xor_slice_avx2(src: &[u8], dst: &mut [u8]) {
        // SAFETY: avx2 verified before vtable install.
        unsafe { xor_slice_avx2_impl(src, dst) }
    }

    pub(super) fn xor_into_avx2(a: &[u8], b: &[u8], dst: &mut [u8]) {
        // SAFETY: avx2 verified before vtable install.
        unsafe { xor_into_avx2_impl(a, b, dst) }
    }
}

/// aarch64 backend: split-nibble multiplies via `vqtbl1q_u8` (NEON is
/// baseline on aarch64, so no runtime detection is needed).
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{portable, tables};
    use core::arch::aarch64::*;

    /// 16 products at once. `vshrq_n_u8` shifts each byte lane
    /// logically, so the high nibble needs no mask.
    ///
    /// # Safety
    /// NEON must be available (always true on aarch64).
    // SAFETY: register-only and/shift/table-lookup/xor intrinsics — no
    // memory access; NEON is baseline on aarch64.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn mul16(lo: uint8x16_t, hi: uint8x16_t, x: uint8x16_t) -> uint8x16_t {
        let xl = vandq_u8(x, vdupq_n_u8(0x0f));
        let xh = vshrq_n_u8::<4>(x);
        veorq_u8(vqtbl1q_u8(lo, xl), vqtbl1q_u8(hi, xh))
    }

    /// # Safety
    /// NEON must be available (always true on aarch64).
    // SAFETY: table loads read exactly 16 bytes from the `[u8; 16]` rows
    // of NIB_LO/NIB_HI; loop loads/stores access 16 bytes at `i` with
    // `i + 16 <= n <= src.len() == dst.len()` (lengths asserted equal by
    // the public wrappers).
    #[target_feature(enable = "neon")]
    unsafe fn mul_slice_neon_impl(c: u8, src: &[u8], dst: &mut [u8]) {
        let lo = vld1q_u8(tables::NIB_LO[c as usize].as_ptr());
        let hi = vld1q_u8(tables::NIB_HI[c as usize].as_ptr());
        let n = src.len() & !15;
        let mut i = 0;
        while i < n {
            let x = vld1q_u8(src.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), mul16(lo, hi, x));
            i += 16;
        }
        portable::mul_slice(c, &src[n..], &mut dst[n..]);
    }

    /// # Safety
    /// NEON must be available (always true on aarch64).
    // SAFETY: bounds as in mul_slice_neon_impl; the extra dst load reads
    // the same in-bounds 16 bytes the store writes.
    #[target_feature(enable = "neon")]
    unsafe fn mul_add_slice_neon_impl(c: u8, src: &[u8], dst: &mut [u8]) {
        let lo = vld1q_u8(tables::NIB_LO[c as usize].as_ptr());
        let hi = vld1q_u8(tables::NIB_HI[c as usize].as_ptr());
        let n = src.len() & !15;
        let mut i = 0;
        while i < n {
            let x = vld1q_u8(src.as_ptr().add(i));
            let d = vld1q_u8(dst.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, mul16(lo, hi, x)));
            i += 16;
        }
        portable::mul_add_slice(c, &src[n..], &mut dst[n..]);
    }

    /// # Safety
    /// NEON must be available (always true on aarch64).
    // SAFETY: single-buffer variant — each iteration loads and stores
    // the same 16 in-bounds bytes (`i + 16 <= n <= buf.len()`); table
    // loads stay within the `[u8; 16]` rows.
    #[target_feature(enable = "neon")]
    unsafe fn mul_slice_assign_neon_impl(c: u8, buf: &mut [u8]) {
        let lo = vld1q_u8(tables::NIB_LO[c as usize].as_ptr());
        let hi = vld1q_u8(tables::NIB_HI[c as usize].as_ptr());
        let n = buf.len() & !15;
        let mut i = 0;
        while i < n {
            let x = vld1q_u8(buf.as_ptr().add(i));
            vst1q_u8(buf.as_mut_ptr().add(i), mul16(lo, hi, x));
            i += 16;
        }
        portable::mul_slice_assign(c, &mut buf[n..]);
    }

    /// # Safety
    /// NEON must be available (always true on aarch64).
    // SAFETY: 16-byte loads/stores at `i` with
    // `i + 16 <= n <= src.len() == dst.len()` (lengths asserted equal by
    // the public wrappers); tail handled by portable code.
    #[target_feature(enable = "neon")]
    unsafe fn xor_slice_neon_impl(src: &[u8], dst: &mut [u8]) {
        let n = src.len() & !15;
        let mut i = 0;
        while i < n {
            let s = vld1q_u8(src.as_ptr().add(i));
            let d = vld1q_u8(dst.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(s, d));
            i += 16;
        }
        portable::xor_slice(&src[n..], &mut dst[n..]);
    }

    /// # Safety
    /// NEON must be available (always true on aarch64).
    // SAFETY: three-slice variant — all three are at least `a.len()`
    // long (asserted by the public wrappers), so the 16-byte accesses at
    // `i < n <= a.len()` are in bounds on each.
    #[target_feature(enable = "neon")]
    unsafe fn xor_into_neon_impl(a: &[u8], b: &[u8], dst: &mut [u8]) {
        let n = a.len() & !15;
        let mut i = 0;
        while i < n {
            let x = vld1q_u8(a.as_ptr().add(i));
            let y = vld1q_u8(b.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(x, y));
            i += 16;
        }
        portable::xor_into(&a[n..], &b[n..], &mut dst[n..]);
    }

    pub(super) fn mul_slice_neon(c: u8, src: &[u8], dst: &mut [u8]) {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { mul_slice_neon_impl(c, src, dst) }
    }

    pub(super) fn mul_add_slice_neon(c: u8, src: &[u8], dst: &mut [u8]) {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { mul_add_slice_neon_impl(c, src, dst) }
    }

    pub(super) fn mul_slice_assign_neon(c: u8, buf: &mut [u8]) {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { mul_slice_assign_neon_impl(c, buf) }
    }

    pub(super) fn xor_slice_neon(src: &[u8], dst: &mut [u8]) {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { xor_slice_neon_impl(src, dst) }
    }

    pub(super) fn xor_into_neon(a: &[u8], b: &[u8], dst: &mut [u8]) {
        // SAFETY: NEON is baseline on aarch64.
        unsafe { xor_into_neon_impl(a, b, dst) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_names_round_trip() {
        for t in KernelTier::ALL {
            assert_eq!(KernelTier::parse(t.name()), Some(t));
        }
        assert_eq!(KernelTier::parse("mmx"), None);
    }

    #[test]
    fn best_is_last_available_and_always_exists() {
        let avail = KernelTier::available();
        assert!(avail.contains(&KernelTier::Scalar));
        assert!(avail.contains(&KernelTier::Portable));
        assert_eq!(KernelTier::best(), *avail.last().unwrap());
    }

    #[test]
    fn set_kernel_tier_rejects_unsupported() {
        let unsupported: Vec<_> = KernelTier::ALL
            .into_iter()
            .filter(|t| !t.is_supported())
            .collect();
        for t in unsupported {
            assert!(set_kernel_tier(t).is_err(), "{t:?}");
        }
    }
}
