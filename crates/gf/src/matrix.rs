//! Dense row-major matrices over GF(2^8).
//!
//! Sized for erasure coding: dimensions are `k + m ≤ 255`, so everything is
//! small enough that simple Gauss–Jordan elimination is the right tool.

use crate::{div, inv, mul, mul_add_slice, mul_slice};
use std::fmt;

/// A dense row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    /// Creates a zero matrix of the given dimensions.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1;
        }
        m
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows are ragged or empty.
    pub fn from_rows(rows: Vec<Vec<u8>>) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in &rows {
            assert_eq!(r.len(), cols, "ragged matrix rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A Vandermonde matrix with `rows` rows and `cols` columns:
    /// `V[i][j] = (2^i)^j`. Any `cols` distinct rows are linearly
    /// independent, which is what makes it usable as an erasure-code
    /// generator.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let base = crate::exp2(i);
            for j in 0..cols {
                m.data[i * cols + j] = crate::pow(base, j);
            }
        }
        m
    }

    /// A Cauchy matrix `C[i][j] = 1 / (x_i + y_j)` with
    /// `x_i = i + cols` and `y_j = j`, which are disjoint sets so every
    /// denominator is non-zero. Every square submatrix of a Cauchy matrix is
    /// invertible, making it directly usable as the parity part of a
    /// systematic generator.
    ///
    /// # Panics
    /// Panics if `rows + cols > 256` (coordinates would collide).
    pub fn cauchy(rows: usize, cols: usize) -> Self {
        assert!(rows + cols <= 256, "Cauchy coordinates exhausted");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let xi = (i + cols) as u8;
            for j in 0..cols {
                let yj = j as u8;
                m.data[i * cols + j] = inv(xi ^ yj);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matrix mul dimension mismatch");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for i in 0..self.rows {
            for (kk, &a) in self.row(i).iter().enumerate() {
                if a == 0 {
                    continue;
                }
                let src = rhs.row(kk);
                let dst = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                mul_add_slice(a, src, dst);
            }
        }
        out
    }

    /// Applies the matrix to a set of data buffers: output row `i` is
    /// `sum_j self[i][j] * inputs[j]`. This is exactly erasure-code encoding
    /// when `self` is a generator matrix.
    ///
    /// # Panics
    /// Panics if `inputs.len() != self.cols`, if `outputs.len() != self.rows`,
    /// or if buffer lengths differ.
    pub fn apply(&self, inputs: &[&[u8]], outputs: &mut [Vec<u8>]) {
        assert_eq!(inputs.len(), self.cols, "input count mismatch");
        assert_eq!(outputs.len(), self.rows, "output count mismatch");
        for (i, out) in outputs.iter_mut().enumerate() {
            let mut first = true;
            for (j, &input) in inputs.iter().enumerate() {
                let c = self.get(i, j);
                if first {
                    out.resize(input.len(), 0);
                    mul_slice(c, input, out);
                    first = false;
                } else {
                    assert_eq!(input.len(), out.len(), "buffer length mismatch");
                    mul_add_slice(c, input, out);
                }
            }
        }
    }

    /// Returns the submatrix made of the given rows.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut m = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            let dst = &mut m.data[i * self.cols..(i + 1) * self.cols];
            dst.copy_from_slice(self.row(r));
        }
        m
    }

    /// Vertically stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn stack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "stack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Inverts a square matrix by Gauss–Jordan elimination with partial
    /// pivoting (any non-zero pivot works in a field).
    ///
    /// Returns `None` if the matrix is singular.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut out = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot row at or below `col`.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                a.swap_rows(pivot, col);
                out.swap_rows(pivot, col);
            }
            // Normalize the pivot row.
            let p = a.get(col, col);
            if p != 1 {
                let pinv = inv(p);
                a.scale_row(col, pinv);
                out.scale_row(col, pinv);
            }
            // Eliminate the column from all other rows.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let f = a.get(r, col);
                if f != 0 {
                    a.add_scaled_row(col, r, f);
                    out.add_scaled_row(col, r, f);
                }
            }
        }
        Some(out)
    }

    /// Returns true if every square `take`-row subset of this matrix is
    /// invertible — the MDS property check used by codec construction tests.
    /// Exponential in rows; only call with small matrices.
    pub fn all_submatrices_invertible(&self, take: usize) -> bool {
        let mut idx: Vec<usize> = (0..take).collect();
        loop {
            if self.select_rows(&idx).inverse().is_none() {
                return false;
            }
            // Next combination in lexicographic order.
            let mut i = take;
            loop {
                if i == 0 {
                    return true;
                }
                i -= 1;
                if idx[i] != i + self.rows - take {
                    idx[i] += 1;
                    for j in i + 1..take {
                        idx[j] = idx[j - 1] + 1;
                    }
                    break;
                }
            }
        }
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(r1 * self.cols + c, r2 * self.cols + c);
        }
    }

    fn scale_row(&mut self, r: usize, f: u8) {
        for c in 0..self.cols {
            let v = self.get(r, c);
            self.set(r, c, mul(v, f));
        }
    }

    /// `row[dst] ^= f * row[src]`.
    fn add_scaled_row(&mut self, src: usize, dst: usize, f: u8) {
        for c in 0..self.cols {
            let v = mul(self.get(src, c), f);
            let d = self.get(dst, c);
            self.set(dst, c, d ^ v);
        }
    }

    /// Solves nothing — helper to divide a row for display or testing.
    pub fn div_row(&mut self, r: usize, d: u8) {
        for c in 0..self.cols {
            let v = self.get(r, c);
            self.set(r, c, div(v, d));
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:02x?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_identity() {
        let v = Matrix::vandermonde(4, 4);
        let i = Matrix::identity(4);
        assert_eq!(v.mul(&i), v);
        assert_eq!(i.mul(&v), v);
    }

    #[test]
    fn inverse_roundtrip_vandermonde() {
        for n in 1..8 {
            let v = Matrix::vandermonde(n, n);
            let vi = v.inverse().expect("vandermonde square is invertible");
            assert_eq!(v.mul(&vi), Matrix::identity(n), "n={n}");
            assert_eq!(vi.mul(&v), Matrix::identity(n), "n={n}");
        }
    }

    #[test]
    fn singular_matrix_returns_none() {
        let m = Matrix::from_rows(vec![vec![1, 2], vec![1, 2]]);
        assert!(m.inverse().is_none());
        let z = Matrix::zero(3, 3);
        assert!(z.inverse().is_none());
    }

    #[test]
    fn cauchy_every_submatrix_invertible() {
        // Cauchy property: every square submatrix invertible. Check the
        // 4+2 configuration exhaustively.
        let c = Matrix::cauchy(3, 4);
        for r1 in 0..3 {
            for r2 in (r1 + 1)..3 {
                for c1 in 0..4 {
                    for c2 in (c1 + 1)..4 {
                        let sub = Matrix::from_rows(vec![
                            vec![c.get(r1, c1), c.get(r1, c2)],
                            vec![c.get(r2, c1), c.get(r2, c2)],
                        ]);
                        assert!(sub.inverse().is_some());
                    }
                }
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // per-index matrix-vector reference
    fn apply_matches_mul() {
        let g = Matrix::cauchy(2, 3);
        let data: Vec<Vec<u8>> = vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8], vec![9, 10, 11, 12]];
        let inputs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut outputs = vec![Vec::new(), Vec::new()];
        g.apply(&inputs, &mut outputs);
        // Reference: per-byte matrix-vector product.
        for byte in 0..4 {
            for i in 0..2 {
                let mut acc = 0u8;
                for j in 0..3 {
                    acc ^= mul(g.get(i, j), data[j][byte]);
                }
                assert_eq!(outputs[i][byte], acc);
            }
        }
    }

    #[test]
    fn select_and_stack() {
        let m = Matrix::vandermonde(5, 3);
        let top = m.select_rows(&[0, 1, 2]);
        let bottom = m.select_rows(&[3, 4]);
        assert_eq!(top.stack(&bottom), m);
    }

    #[test]
    fn all_submatrices_invertible_detects_bad_matrix() {
        // Plain (non-extended) Vandermonde stacked under identity is known
        // to be NOT universally MDS; a matrix with a zero row definitely
        // fails.
        let mut bad = Matrix::vandermonde(5, 3);
        for c in 0..3 {
            bad.set(4, c, 0);
        }
        assert!(!bad.all_submatrices_invertible(3));
        let good = Matrix::identity(3).stack(&Matrix::cauchy(2, 3));
        assert!(good.all_submatrices_invertible(3));
    }
}
