//! Arithmetic over the finite field GF(2^8) and small dense matrices over it.
//!
//! This is the algebraic substrate for the Reed–Solomon codec in `tsue-ec`.
//! The field is GF(2^8) with the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), the conventional choice for
//! RS-based storage codes. Addition and subtraction are XOR; multiplication
//! and division go through compile-time log/exp tables.
//!
//! The slice kernels ([`mul_slice`], [`mul_add_slice`], [`xor_slice`]) are the
//! hot path of encoding. They dispatch at runtime to the widest backend the
//! host CPU supports — split-nibble SIMD (SSSE3/AVX2/NEON byte-shuffles that
//! compute 16 or 32 products per instruction) down to a portable word-wide
//! fallback — through a function-pointer vtable resolved once on first use.
//! See [`kernel`] for the backend design, the `TSUE_GF_KERNEL` override, and
//! the byte-identical-tiers invariant.

#![warn(missing_docs)]

pub mod kernel;
pub mod matrix;
pub mod tables;

pub use kernel::{cpu_features, kernel_tier, reference, set_kernel_tier, KernelTier};
pub use matrix::Matrix;
pub use tables::{EXP_TABLE, LOG_TABLE};

/// The field order (number of elements), 2^8.
pub const FIELD_SIZE: usize = 256;

/// Adds two field elements. In GF(2^8) addition is XOR.
#[inline(always)]
pub const fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Subtracts `b` from `a`. Identical to [`add`] in characteristic 2.
#[inline(always)]
pub const fn sub(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements via the log/exp tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let log_sum = LOG_TABLE[a as usize] as usize + LOG_TABLE[b as usize] as usize;
    // EXP_TABLE is doubled in length so the sum (max 508) indexes directly.
    EXP_TABLE[log_sum]
}

/// Divides `a` by `b`.
///
/// # Panics
/// Panics if `b == 0` (division by zero is undefined in a field).
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "GF(2^8) division by zero");
    if a == 0 {
        return 0;
    }
    let log_diff = 255 + LOG_TABLE[a as usize] as usize - LOG_TABLE[b as usize] as usize;
    EXP_TABLE[log_diff]
}

/// Returns the multiplicative inverse of `a`.
///
/// # Panics
/// Panics if `a == 0`.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "GF(2^8) inverse of zero");
    EXP_TABLE[255 - LOG_TABLE[a as usize] as usize]
}

/// Raises `a` to the integer power `n`.
pub fn pow(a: u8, n: usize) -> u8 {
    if n == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let log = LOG_TABLE[a as usize] as usize * n % 255;
    EXP_TABLE[log]
}

/// Returns the generator element `2` raised to `n` — a convenient way to
/// enumerate distinct non-zero elements for Vandermonde rows.
#[inline]
pub fn exp2(n: usize) -> u8 {
    EXP_TABLE[n % 255]
}

/// A borrowed view of the 256-entry multiplication row for a constant
/// coefficient: `row[x] == mul(c, x)` for all `x`.
///
/// Slice kernels use this so the inner loop is a single table lookup.
#[inline]
pub fn mul_row(c: u8) -> &'static [u8; 256] {
    &tables::MUL_TABLE[c as usize]
}

/// `dst[i] = c * src[i]` for all `i`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_slice length mismatch");
    if c == 0 {
        dst.fill(0);
        return;
    }
    if c == 1 {
        dst.copy_from_slice(src);
        return;
    }
    (kernel::active().mul_slice)(c, src, dst);
}

/// `dst[i] ^= c * src[i]` for all `i` — the fused multiply-accumulate that
/// dominates Reed–Solomon encode and parity-delta application.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn mul_add_slice(c: u8, src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "mul_add_slice length mismatch");
    if c == 0 {
        return;
    }
    if c == 1 {
        xor_slice(src, dst);
        return;
    }
    (kernel::active().mul_add_slice)(c, src, dst);
}

/// `buf[i] = c * buf[i]` for all `i` — in-place scaling, for callers that
/// own their buffer uniquely and want no scratch at all.
pub fn mul_slice_assign(c: u8, buf: &mut [u8]) {
    if c == 0 {
        buf.fill(0);
        return;
    }
    if c == 1 {
        return;
    }
    (kernel::active().mul_slice_assign)(c, buf);
}

/// `dst[i] = a[i] ^ b[i]` for all `i` — a one-pass delta kernel writing
/// into caller-provided scratch (no intermediate copy of either input).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn xor_into(a: &[u8], b: &[u8], dst: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "xor_into length mismatch");
    assert_eq!(a.len(), dst.len(), "xor_into length mismatch");
    // Short-slice regime (small-write deltas): the dispatch indirection
    // costs more than any vector-width advantage — the word-wide loop
    // inlines and auto-vectorizes here. XOR is tier-invariant by
    // definition, so this changes no observable behavior.
    if a.len() < XOR_DISPATCH_FLOOR {
        kernel::portable::xor_into(a, b, dst);
        return;
    }
    (kernel::active().xor_into)(a, b, dst);
}

/// Below this many bytes, [`xor_slice`]/[`xor_into`] skip the dispatch
/// vtable and run the inlined portable word loop: the indirect call and
/// tier lookup cost more than wider vectors save on short slices.
const XOR_DISPATCH_FLOOR: usize = 1024;

/// `dst[i] ^= src[i]` for all `i` — field addition of two buffers.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn xor_slice(src: &[u8], dst: &mut [u8]) {
    assert_eq!(src.len(), dst.len(), "xor_slice length mismatch");
    // See xor_into: short slices take the inlined portable word loop.
    if src.len() < XOR_DISPATCH_FLOOR {
        kernel::portable::xor_slice(src, dst);
        return;
    }
    (kernel::active().xor_slice)(src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_xor() {
        assert_eq!(add(0b1010, 0b0110), 0b1100);
        assert_eq!(sub(0b1010, 0b0110), 0b1100);
    }

    #[test]
    fn mul_identities() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
        }
    }

    #[test]
    fn mul_matches_carryless_reference() {
        // Slow bitwise reference multiplication modulo 0x11d.
        fn slow_mul(mut a: u8, mut b: u8) -> u8 {
            let mut acc = 0u8;
            while b != 0 {
                if b & 1 != 0 {
                    acc ^= a;
                }
                let hi = a & 0x80 != 0;
                a <<= 1;
                if hi {
                    a ^= 0x1d;
                }
                b >>= 1;
            }
            acc
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverses_roundtrip() {
        for a in 1..=255u8 {
            let ia = inv(a);
            assert_eq!(mul(a, ia), 1, "a={a}");
            assert_eq!(div(1, a), ia);
            assert_eq!(div(a, a), 1);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = div(3, 0);
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inv_of_zero_panics() {
        let _ = inv(0);
    }

    #[test]
    fn pow_basics() {
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(7, 0), 1);
        assert_eq!(pow(7, 1), 7);
        assert_eq!(pow(7, 2), mul(7, 7));
        // Fermat: a^255 == 1 for a != 0.
        for a in 1..=255u8 {
            assert_eq!(pow(a, 255), 1);
        }
    }

    #[test]
    fn exp2_enumerates_nonzero_elements() {
        let mut seen = [false; 256];
        for n in 0..255 {
            let e = exp2(n);
            assert_ne!(e, 0);
            assert!(!seen[e as usize], "exp2({n}) repeated");
            seen[e as usize] = true;
        }
    }

    #[test]
    fn slice_kernels_match_scalar() {
        let src: Vec<u8> = (0..=255u8).chain(0..=41u8).collect(); // odd length 298
        for c in [0u8, 1, 2, 29, 127, 255] {
            let mut dst = vec![0xaau8; src.len()];
            mul_slice(c, &src, &mut dst);
            for (i, (&s, &d)) in src.iter().zip(dst.iter()).enumerate() {
                assert_eq!(d, mul(c, s), "c={c} i={i}");
            }
            let mut acc = src.clone();
            mul_add_slice(c, &src, &mut acc);
            for (i, (&s, &d)) in src.iter().zip(acc.iter()).enumerate() {
                assert_eq!(d, s ^ mul(c, s), "c={c} i={i}");
            }
        }
    }

    #[test]
    fn mul_slice_assign_matches_mul_slice() {
        let src: Vec<u8> = (0..=255u8).chain(0..=12u8).collect();
        for c in [0u8, 1, 2, 29, 255] {
            let mut expect = vec![0u8; src.len()];
            mul_slice(c, &src, &mut expect);
            let mut buf = src.clone();
            mul_slice_assign(c, &mut buf);
            assert_eq!(buf, expect, "c={c}");
        }
    }

    #[test]
    fn xor_into_matches_scalar() {
        let a: Vec<u8> = (0..103u8).collect();
        let b: Vec<u8> = (100..203u8).collect();
        let mut dst = vec![0xEEu8; a.len()];
        xor_into(&a, &b, &mut dst);
        for i in 0..a.len() {
            assert_eq!(dst[i], a[i] ^ b[i], "i={i}");
        }
    }

    #[test]
    fn xor_slice_matches_scalar() {
        let a: Vec<u8> = (0..100u8).collect();
        let mut b: Vec<u8> = (100..200u8).collect();
        let expect: Vec<u8> = a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect();
        xor_slice(&a, &mut b);
        assert_eq!(b, expect);
    }
}
