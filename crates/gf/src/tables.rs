//! Compile-time lookup tables for GF(2^8) with primitive polynomial 0x11d.
//!
//! All tables are built by `const fn`s, so they live in `.rodata` with zero
//! startup cost and are usable from other `const` contexts.

/// The primitive polynomial x^8 + x^4 + x^3 + x^2 + 1, with the x^8 term
/// implicit in the reduction step (0x1d after the shift).
pub const PRIMITIVE_POLY: u16 = 0x11d;

const fn build_exp() -> [u8; 512] {
    let mut exp = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        exp[i] = x as u8;
        exp[i + 255] = x as u8; // doubled so mul() needs no modulo
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Indices 510 and 511 are never reached by mul/div (max log sum is 508),
    // but keep them well-defined.
    exp[510] = exp[0];
    exp[511] = exp[1];
    exp
}

const fn build_log(exp: &[u8; 512]) -> [u8; 256] {
    let mut log = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        log[exp[i] as usize] = i as u8;
        i += 1;
    }
    // log[0] is undefined in the field; leave as 0 — callers special-case 0.
    log
}

const fn build_mul(exp: &[u8; 512], log: &[u8; 256]) -> [[u8; 256]; 256] {
    let mut table = [[0u8; 256]; 256];
    let mut a = 1;
    while a < 256 {
        let la = log[a] as usize;
        let mut b = 1;
        while b < 256 {
            table[a][b] = exp[la + log[b] as usize];
            b += 1;
        }
        a += 1;
    }
    table
}

const fn build_nib_lo(mul: &[[u8; 256]; 256]) -> [[u8; 16]; 256] {
    let mut table = [[0u8; 16]; 256];
    let mut c = 0;
    while c < 256 {
        let mut x = 0;
        while x < 16 {
            table[c][x] = mul[c][x];
            x += 1;
        }
        c += 1;
    }
    table
}

const fn build_nib_hi(mul: &[[u8; 256]; 256]) -> [[u8; 16]; 256] {
    let mut table = [[0u8; 16]; 256];
    let mut c = 0;
    while c < 256 {
        let mut x = 0;
        while x < 16 {
            table[c][x] = mul[c][x << 4];
            x += 1;
        }
        c += 1;
    }
    table
}

/// `EXP_TABLE[i] = 2^i` for `i in 0..255`, doubled so that
/// `EXP_TABLE[log a + log b]` needs no reduction modulo 255.
pub static EXP_TABLE: [u8; 512] = build_exp();

/// `LOG_TABLE[x] = log_2(x)` for non-zero `x`; `LOG_TABLE[0]` is unused.
pub static LOG_TABLE: [u8; 256] = build_log(&EXP_TABLE);

/// Full 256×256 multiplication table: `MUL_TABLE[a][b] = a * b`.
/// 64 KiB of `.rodata`; row `a` serves as the per-coefficient lookup row
/// used by the slice kernels.
pub static MUL_TABLE: [[u8; 256]; 256] = build_mul(&EXP_TABLE, &LOG_TABLE);

/// Split-nibble product tables, the substrate of the SIMD kernels:
/// `NIB_LO[c][x] = c * x` for `x in 0..16` — the products of the **low**
/// nibble of every byte. Because GF(2^8) multiplication distributes over
/// XOR, `c * b = NIB_LO[c][b & 0xf] ^ NIB_HI[c][b >> 4]`, which a single
/// byte-shuffle instruction (`pshufb` / `vqtbl1q_u8`) evaluates for 16 or
/// 32 bytes at once.
pub static NIB_LO: [[u8; 16]; 256] = build_nib_lo(&MUL_TABLE);

/// `NIB_HI[c][x] = c * (x << 4)` for `x in 0..16` — the products of the
/// **high** nibble of every byte. See [`NIB_LO`].
pub static NIB_HI: [[u8; 16]; 256] = build_nib_hi(&MUL_TABLE);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_are_inverse_permutations() {
        for i in 0..255usize {
            assert_eq!(LOG_TABLE[EXP_TABLE[i] as usize] as usize, i);
        }
        for x in 1..=255usize {
            assert_eq!(EXP_TABLE[LOG_TABLE[x] as usize] as usize, x);
        }
    }

    #[test]
    fn exp_table_is_doubled() {
        for i in 0..255usize {
            assert_eq!(EXP_TABLE[i], EXP_TABLE[i + 255]);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index-pair table lookups
    fn mul_table_row_zero_and_one() {
        for b in 0..256usize {
            assert_eq!(MUL_TABLE[0][b], 0);
            assert_eq!(MUL_TABLE[1][b], b as u8);
            assert_eq!(MUL_TABLE[b][0], 0);
            assert_eq!(MUL_TABLE[b][1], b as u8);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index-pair table lookups
    fn nibble_tables_recompose_every_product() {
        for c in 0..256usize {
            for b in 0..256usize {
                assert_eq!(
                    NIB_LO[c][b & 0xf] ^ NIB_HI[c][b >> 4],
                    MUL_TABLE[c][b],
                    "c={c} b={b}"
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index-pair table lookups
    fn mul_table_is_symmetric() {
        for a in 0..256usize {
            for b in a..256usize {
                assert_eq!(MUL_TABLE[a][b], MUL_TABLE[b][a]);
            }
        }
    }
}
