//! Cross-tier equivalence: every kernel backend the host can run must
//! produce bytes identical to the scalar reference for arbitrary
//! coefficients, lengths, and alignment offsets.
//!
//! This is the proof obligation behind the byte-identical-tiers
//! invariant (see `tsue_gf::kernel`): dispatch may pick any tier at any
//! time, so no tier may ever disagree with another. Lengths are drawn
//! below one vector register, around vector-width boundaries, and well
//! above them; an offset into an over-allocated buffer exercises
//! misaligned heads so the unaligned-load paths and scalar tails are
//! covered.
//!
//! These tests mutate the process-global dispatch tier. That is safe
//! precisely because of the invariant under test — a concurrent test
//! observing a different tier still sees identical bytes — but each
//! test restores the best tier on exit to keep the suite honest.

use proptest::prelude::*;
use tsue_gf::{reference, set_kernel_tier, KernelTier};

/// Runs `f` once per tier the host supports, restoring the default
/// (best) tier afterwards even if `f` panics mid-tier.
fn for_each_tier(mut f: impl FnMut(KernelTier)) {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel_tier(KernelTier::best()).unwrap();
        }
    }
    let _restore = Restore;
    for tier in KernelTier::available() {
        set_kernel_tier(tier).unwrap();
        f(tier);
    }
}

/// Deterministic but non-trivial fill so nibble patterns vary.
fn fill(buf: &mut [u8], seed: u8) {
    let mut x = seed.wrapping_mul(167).wrapping_add(13);
    for b in buf.iter_mut() {
        x = x.wrapping_mul(31).wrapping_add(17);
        *b = x;
    }
}

proptest! {
    /// `mul_slice` / `mul_add_slice` / `mul_slice_assign` agree with the
    /// scalar reference on every tier, for any (c, len, offset).
    #[test]
    fn mul_kernels_byte_identical_across_tiers(
        c: u8,
        len in 0usize..200,
        offset in 0usize..17,
        seed: u8,
    ) {
        let mut src_buf = vec![0u8; offset + len];
        fill(&mut src_buf, seed);
        let src = &src_buf[offset..];

        let mut expect = vec![0u8; len];
        reference::mul_slice(c, src, &mut expect);
        let mut expect_acc = src.to_vec();
        reference::mul_add_slice(c, src, &mut expect_acc);

        for_each_tier(|tier| {
            let mut dst_buf = vec![0xa5u8; offset + len];
            tsue_gf::mul_slice(c, src, &mut dst_buf[offset..]);
            assert_eq!(&dst_buf[offset..], &expect[..], "mul_slice {tier:?} c={c} len={len} off={offset}");

            let mut acc_buf = vec![0u8; offset + len];
            acc_buf[offset..].copy_from_slice(src);
            tsue_gf::mul_add_slice(c, src, &mut acc_buf[offset..]);
            assert_eq!(&acc_buf[offset..], &expect_acc[..], "mul_add_slice {tier:?} c={c} len={len} off={offset}");

            let mut assign_buf = vec![0u8; offset + len];
            assign_buf[offset..].copy_from_slice(src);
            tsue_gf::mul_slice_assign(c, &mut assign_buf[offset..]);
            assert_eq!(&assign_buf[offset..], &expect[..], "mul_slice_assign {tier:?} c={c} len={len} off={offset}");
        });
    }

    /// `xor_slice` / `xor_into` agree with the scalar reference on every
    /// tier, for any (len, offset).
    #[test]
    fn xor_kernels_byte_identical_across_tiers(
        len in 0usize..200,
        offset in 0usize..17,
        seed: u8,
    ) {
        let mut a_buf = vec![0u8; offset + len];
        let mut b_buf = vec![0u8; offset + len];
        fill(&mut a_buf, seed);
        fill(&mut b_buf, seed.wrapping_add(101));
        let a = &a_buf[offset..];
        let b = &b_buf[offset..];

        let mut expect = a.to_vec();
        reference::xor_slice(b, &mut expect);

        for_each_tier(|tier| {
            let mut acc_buf = vec![0u8; offset + len];
            acc_buf[offset..].copy_from_slice(a);
            tsue_gf::xor_slice(b, &mut acc_buf[offset..]);
            assert_eq!(&acc_buf[offset..], &expect[..], "xor_slice {tier:?} len={len} off={offset}");

            let mut dst_buf = vec![0x5au8; offset + len];
            tsue_gf::xor_into(a, b, &mut dst_buf[offset..]);
            assert_eq!(&dst_buf[offset..], &expect[..], "xor_into {tier:?} len={len} off={offset}");
        });
    }
}

/// Exhaustive sweep of every coefficient at lengths that straddle the
/// vector widths (sub-16, 16/32 boundaries, odd tails) — cheap enough
/// to run in full rather than sampled.
#[test]
fn every_coefficient_boundary_lengths_all_tiers() {
    for len in [0usize, 1, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 65] {
        let mut src = vec![0u8; len];
        fill(&mut src, len as u8);
        for c in 0..=255u8 {
            let mut expect = vec![0u8; len];
            reference::mul_slice(c, &src, &mut expect);
            for_each_tier(|tier| {
                let mut dst = vec![0xccu8; len];
                tsue_gf::mul_slice(c, &src, &mut dst);
                assert_eq!(dst, expect, "{tier:?} c={c} len={len}");
            });
        }
    }
}
