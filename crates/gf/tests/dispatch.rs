//! Dispatch smoke tests: the `TSUE_GF_KERNEL` override is honored and
//! `set_kernel_tier` round-trips through every supported tier.
//!
//! Everything lives in ONE test function because the dispatch tier is
//! process-global — separate `#[test]`s would race on it within this
//! binary. (Races are byte-safe thanks to the tier-equivalence
//! invariant, but the assertions here are about *which* tier is active,
//! which is exactly what a race would scramble.)

use tsue_gf::{cpu_features, kernel_tier, set_kernel_tier, KernelTier};

#[test]
fn env_override_and_tier_switching_are_honored() {
    // The very first kernel_tier() call resolves the TSUE_GF_KERNEL
    // environment variable. CI sets it to "portable" on its second test
    // pass; the default pass leaves it unset and must detect the best
    // tier. Either way the initial tier must match what the environment
    // demands.
    let initial = kernel_tier();
    match std::env::var("TSUE_GF_KERNEL") {
        Ok(v) if !v.is_empty() && v != "native" && v != "auto" => {
            let forced = KernelTier::parse(&v)
                .unwrap_or_else(|| panic!("TSUE_GF_KERNEL={v:?} is not a tier name"));
            assert_eq!(
                initial, forced,
                "forced tier {v:?} was not honored (got {initial:?})"
            );
        }
        _ => assert_eq!(
            initial,
            KernelTier::best(),
            "default dispatch must pick the best detected tier"
        ),
    }

    // Every supported tier can be selected, reports itself, and still
    // computes correct products (spot check one multiply per tier).
    for tier in KernelTier::available() {
        set_kernel_tier(tier).unwrap();
        assert_eq!(kernel_tier(), tier);
        let src: Vec<u8> = (0..=255u8).collect();
        let mut dst = vec![0u8; src.len()];
        tsue_gf::mul_slice(29, &src, &mut dst);
        for (s, d) in src.iter().zip(dst.iter()) {
            assert_eq!(*d, tsue_gf::mul(29, *s), "tier {tier:?}");
        }
    }

    // Unsupported tiers are refused, not silently downgraded.
    for tier in KernelTier::ALL {
        if !tier.is_supported() {
            assert!(set_kernel_tier(tier).is_err(), "{tier:?}");
        }
    }

    // cpu_features() never lists a feature whose tier is unsupported.
    for f in cpu_features() {
        let tier = match f {
            "ssse3" => KernelTier::Ssse3,
            "avx2" => KernelTier::Avx2,
            "neon" => KernelTier::Neon,
            other => panic!("unexpected feature name {other:?}"),
        };
        assert!(tier.is_supported(), "{f} listed but tier unsupported");
    }

    // Leave the process on the tier the environment asked for.
    set_kernel_tier(initial).unwrap();
}
