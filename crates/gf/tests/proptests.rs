//! Property-based tests for the GF(2^8) field axioms and matrix algebra.

use proptest::prelude::*;
use tsue_gf::{add, div, inv, mul, mul_add_slice, mul_slice, pow, xor_slice, Matrix};

proptest! {
    #[test]
    fn addition_is_commutative_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(add(a, b), add(b, a));
        prop_assert_eq!(add(add(a, b), c), add(a, add(b, c)));
        prop_assert_eq!(add(a, 0), a);
        prop_assert_eq!(add(a, a), 0); // every element is its own additive inverse
    }

    #[test]
    fn multiplication_is_commutative_associative(a: u8, b: u8, c: u8) {
        prop_assert_eq!(mul(a, b), mul(b, a));
        prop_assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
    }

    #[test]
    fn distributive_law(a: u8, b: u8, c: u8) {
        prop_assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
    }

    #[test]
    fn division_inverts_multiplication(a: u8, b in 1u8..=255) {
        prop_assert_eq!(div(mul(a, b), b), a);
        prop_assert_eq!(mul(div(a, b), b), a);
    }

    #[test]
    fn inverse_is_involutive(a in 1u8..=255) {
        prop_assert_eq!(inv(inv(a)), a);
    }

    #[test]
    fn pow_is_repeated_multiplication(a: u8, n in 0usize..16) {
        let mut acc = 1u8;
        for _ in 0..n {
            acc = mul(acc, a);
        }
        prop_assert_eq!(pow(a, n), acc);
    }

    #[test]
    fn slice_ops_agree_with_scalar(c: u8, data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut out = vec![0u8; data.len()];
        mul_slice(c, &data, &mut out);
        for (i, (&s, &d)) in data.iter().zip(out.iter()).enumerate() {
            prop_assert_eq!(d, mul(c, s), "mul_slice mismatch at {}", i);
        }
        let mut acc = data.clone();
        mul_add_slice(c, &data, &mut acc);
        for (i, (&s, &d)) in data.iter().zip(acc.iter()).enumerate() {
            prop_assert_eq!(d, s ^ mul(c, s), "mul_add_slice mismatch at {}", i);
        }
        let mut x = data.clone();
        xor_slice(&data, &mut x);
        prop_assert!(x.iter().all(|&v| v == 0));
    }

    #[test]
    fn random_square_matrix_inverse_roundtrips(
        n in 1usize..6,
        seed in proptest::collection::vec(any::<u8>(), 36)
    ) {
        let mut m = Matrix::zero(n, n);
        for r in 0..n {
            for c in 0..n {
                m.set(r, c, seed[r * 6 + c]);
            }
        }
        if let Some(mi) = m.inverse() {
            prop_assert_eq!(m.mul(&mi), Matrix::identity(n));
            prop_assert_eq!(mi.mul(&m), Matrix::identity(n));
        }
    }

    #[test]
    fn matrix_mul_is_associative(
        seed in proptest::collection::vec(any::<u8>(), 27)
    ) {
        let build = |off: usize| {
            let mut m = Matrix::zero(3, 3);
            for r in 0..3 {
                for c in 0..3 {
                    m.set(r, c, seed[off + r * 3 + c]);
                }
            }
            m
        };
        let a = build(0);
        let b = build(9);
        let c = build(18);
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }
}
