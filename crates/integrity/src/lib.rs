//! Data-integrity primitives shared by the OSD store, the background
//! scrubber, and the power-loss (torn-write) machinery:
//!
//! * [`checksum`] — a seahash-style 64-bit mixing hash over byte slices,
//!   run four 8-byte lanes at a time so the multiply chains overlap.
//!   Every chain step `state ← (state ⊕ word) · M` composes bijections,
//!   so any change confined to one 8-byte word — in particular **every
//!   single-bit flip** — provably changes the digest.
//! * [`BlockChecksums`] — the per-block page table (one digest per
//!   [`PAGE`]-byte page) the OSD store maintains on every content
//!   mutation and verifies on every read and scrub pass.
//! * [`frame_record`] / [`scan_log`] — self-describing log-record
//!   framing (magic, length, sequence, payload digest) and the
//!   restart-time scan that classifies a truncated tail as torn instead
//!   of ever yielding a verified-but-wrong payload.
//! * [`IntegrityError`] — the typed corruption error surfaced instead of
//!   silent wrong bytes.
//!
//! Everything here is pure host-side computation: no virtual-time charge,
//! no simulator types — the cluster layers decide what detection and
//! repair *cost*; this crate decides what they *mean*.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Page granularity of block checksums, in bytes.
pub const PAGE: u64 = 4096;

/// Odd multiplier driving the mixing chain (golden-ratio derived, the
/// same constant family seahash and splitmix64 use).
const MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// Bytes of framing prepended to every log record by [`frame_record`]:
/// magic (4), payload length (4), sequence (8), payload digest (8).
pub const FRAME_HEADER: usize = 24;

/// Magic tag opening every framed record.
const FRAME_MAGIC: u32 = 0x7375_4c67; // "tsLg"

/// Typed corruption error — the alternative to silent wrong bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IntegrityError {
    /// A page's stored digest does not match its content.
    CorruptPage {
        /// Index of the corrupt page within the block.
        page: usize,
        /// Digest recorded at write time.
        expect: u64,
        /// Digest of the bytes actually read.
        got: u64,
    },
    /// A page was written while its prior content was already corrupt
    /// (partial overwrite or read-modify-write over rotted bytes), so its
    /// digest now blesses untrustworthy content.
    TaintedPage {
        /// Index of the tainted page within the block.
        page: usize,
    },
    /// A log record failed framing validation (torn or scribbled tail).
    TornRecord {
        /// Byte offset of the record's header within the scanned log.
        offset: usize,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::CorruptPage { page, expect, got } => write!(
                f,
                "page {page} corrupt: stored digest {expect:#018x}, read {got:#018x}"
            ),
            IntegrityError::TaintedPage { page } => {
                write!(
                    f,
                    "page {page} written while corrupt: content untrustworthy"
                )
            }
            IntegrityError::TornRecord { offset } => {
                write!(f, "torn log record at offset {offset}")
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

/// Seahash-style 64-bit digest of `bytes`, four lanes wide.
///
/// The bulk runs 32 bytes per step as four independent chains
/// `lᵢ ← (lᵢ ⊕ wᵢ) · M` (odd `M`, so each step is a bijection of its
/// lane), which breaks the serial multiply dependency and lets the CPU
/// overlap the four multiplies — the scrub sweep is bound by this
/// function. The lanes then fold into one state through further
/// xor-multiply steps, the sub-32-byte tail continues the single chain
/// (zero-padded last word), and the length is folded last, so
/// `checksum(b)` and `checksum(b ⧺ [0])` differ.
///
/// Detection property: every 8-byte word feeds exactly one lane, each
/// lane chain is bijective in that word, and the lane fold is bijective
/// in each lane value — so any modification confined to a single word,
/// every single-bit flip included, changes the result.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x16f1_1fe8_9b0d_677c;
    // INVARIANT: `word` is only applied to 8-byte subslices produced by
    // chunks_exact(32) / the padded tail below, so the conversion holds.
    let word = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8-byte chunk"));

    // Distinct lane seeds (consecutive splitmix-style offsets of SEED) so
    // identical words in different lane positions diverge immediately.
    let mut l0 = SEED;
    let mut l1 = SEED.wrapping_add(MIX);
    let mut l2 = SEED.wrapping_add(MIX.wrapping_mul(2));
    let mut l3 = SEED.wrapping_add(MIX.wrapping_mul(3));
    let mut blocks = bytes.chunks_exact(32);
    for b in &mut blocks {
        l0 = (l0 ^ word(&b[0..8])).wrapping_mul(MIX);
        l1 = (l1 ^ word(&b[8..16])).wrapping_mul(MIX);
        l2 = (l2 ^ word(&b[16..24])).wrapping_mul(MIX);
        l3 = (l3 ^ word(&b[24..32])).wrapping_mul(MIX);
    }
    let mut state = l0;
    state = (state ^ l1).wrapping_mul(MIX);
    state = (state ^ l2).wrapping_mul(MIX);
    state = (state ^ l3).wrapping_mul(MIX);

    let mut words = blocks.remainder().chunks_exact(8);
    for w in &mut words {
        state = (state ^ word(w)).wrapping_mul(MIX);
    }
    let rem = words.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        state = (state ^ u64::from_le_bytes(tail)).wrapping_mul(MIX);
    }
    state = (state ^ bytes.len() as u64).wrapping_mul(MIX);
    // Final avalanche (xorshift-multiply, bijective).
    state ^= state >> 32;
    state = state.wrapping_mul(MIX);
    state ^ (state >> 29)
}

/// The per-block checksum page table: one digest per [`PAGE`]-byte page,
/// recomputed for touched pages on every write and compared on reads
/// and scrub passes.
#[derive(Clone, Debug)]
pub struct BlockChecksums {
    sums: Vec<u64>,
    /// Pages written while already corrupt: the recomputed digest blesses
    /// rotted bytes, so the page stays flagged until a repair (or a full
    /// clean overwrite) replaces its entire content.
    tainted: Vec<bool>,
}

impl BlockChecksums {
    /// A table for a block of `block_len` bytes, digesting its initial
    /// (all-zero) content.
    #[must_use]
    pub fn new_zeroed(block_len: u64) -> Self {
        let pages = block_len.div_ceil(PAGE) as usize;
        let mut sums = vec![0u64; pages];
        let full = checksum(&[0u8; PAGE as usize]);
        for (i, s) in sums.iter_mut().enumerate() {
            let len = page_len(block_len, i);
            *s = if len == PAGE as usize {
                full
            } else {
                checksum(&vec![0u8; len])
            };
        }
        let tainted = vec![false; sums.len()];
        BlockChecksums { sums, tainted }
    }

    /// Number of pages tracked.
    #[must_use]
    pub fn pages(&self) -> usize {
        self.sums.len()
    }

    /// Stored digest of `page`.
    ///
    /// # Panics
    /// Panics when `page` is out of range.
    #[must_use]
    pub fn digest(&self, page: usize) -> u64 {
        self.sums[page]
    }

    /// Recomputes the digests of every page overlapping
    /// `[off, off + len)` from the block's current `data`.
    pub fn update_range(&mut self, data: &[u8], off: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = (off / PAGE) as usize;
        let last = ((off + len - 1) / PAGE) as usize;
        for page in first..=last.min(self.sums.len().saturating_sub(1)) {
            let s = page * PAGE as usize;
            let e = (s + PAGE as usize).min(data.len());
            self.sums[page] = checksum(&data[s..e]);
        }
    }

    /// Recomputes every digest (post-install / post-repair resync). The
    /// caller asserts the content is authoritative, so all taint clears.
    pub fn update_all(&mut self, data: &[u8]) {
        self.update_range(data, 0, data.len() as u64);
        self.tainted.fill(false);
    }

    /// Pre-mutation audit: call with the block's **pre-image** before a
    /// write to `[off, off + len)`. A page whose old content no longer
    /// matches its digest is about to have corruption folded into its
    /// recomputed digest, so it is marked tainted — except when a plain
    /// overwrite covers the page entirely, which replaces the content
    /// wholesale and *clears* any taint. Read-modify-write mutations
    /// (`overwrite = false`, XOR merges and delta captures) can never
    /// clean a page: they mix the rotted bytes into the result.
    pub fn pre_write_scan(&mut self, data: &[u8], off: u64, len: u64, overwrite: bool) {
        if len == 0 {
            return;
        }
        let first = (off / PAGE) as usize;
        let last = ((off + len - 1) / PAGE) as usize;
        for page in first..=last.min(self.sums.len().saturating_sub(1)) {
            let s = page * PAGE as usize;
            let e = (s + PAGE as usize).min(data.len());
            let covered = off as usize <= s && (off + len) as usize >= e;
            if overwrite && covered {
                self.tainted[page] = false;
            } else if !self.tainted[page] && checksum(&data[s..e]) != self.sums[page] {
                self.tainted[page] = true;
            }
        }
    }

    /// Whether `page` is flagged as written-while-corrupt.
    #[must_use]
    pub fn is_tainted(&self, page: usize) -> bool {
        self.tainted.get(page).copied().unwrap_or(false)
    }

    /// Clears the taint flag of one repaired page.
    pub fn clear_taint(&mut self, page: usize) {
        if let Some(t) = self.tainted.get_mut(page) {
            *t = false;
        }
    }

    /// Every tainted page index, ascending.
    #[must_use]
    pub fn tainted_pages(&self) -> Vec<usize> {
        (0..self.tainted.len())
            .filter(|&p| self.tainted[p])
            .collect()
    }

    /// Verifies every page overlapping `[off, off + len)` against
    /// `data`, returning the first mismatch.
    ///
    /// # Errors
    /// [`IntegrityError::CorruptPage`] naming the first corrupt page.
    pub fn verify_range(&self, data: &[u8], off: u64, len: u64) -> Result<(), IntegrityError> {
        if len == 0 {
            return Ok(());
        }
        let first = (off / PAGE) as usize;
        let last = ((off + len - 1) / PAGE) as usize;
        for page in first..=last.min(self.sums.len().saturating_sub(1)) {
            if self.tainted[page] {
                return Err(IntegrityError::TaintedPage { page });
            }
            let s = page * PAGE as usize;
            let e = (s + PAGE as usize).min(data.len());
            let got = checksum(&data[s..e]);
            if got != self.sums[page] {
                return Err(IntegrityError::CorruptPage {
                    page,
                    expect: self.sums[page],
                    got,
                });
            }
        }
        Ok(())
    }

    /// Scans the whole block, returning the indices of every corrupt or
    /// tainted page (empty = clean).
    #[must_use]
    pub fn corrupt_pages(&self, data: &[u8]) -> Vec<usize> {
        (0..self.sums.len())
            .filter(|&page| {
                if self.tainted[page] {
                    return true;
                }
                let s = page * PAGE as usize;
                let e = (s + PAGE as usize).min(data.len());
                checksum(&data[s..e]) != self.sums[page]
            })
            .collect()
    }
}

/// Length in bytes of page `page` of a block of `block_len` bytes.
fn page_len(block_len: u64, page: usize) -> usize {
    let start = page as u64 * PAGE;
    (block_len.saturating_sub(start)).min(PAGE) as usize
}

/// One record recovered by [`scan_log`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScannedRecord {
    /// Monotonic sequence number stamped at append time.
    pub seq: u64,
    /// Byte offset of the record header within the scanned buffer.
    pub offset: usize,
    /// The verified payload.
    pub payload: Vec<u8>,
}

/// Frames `payload` with the `(magic, len, seq, digest)` header a
/// restart-time scan validates: exactly [`FRAME_HEADER`] bytes of
/// framing ahead of the payload.
#[must_use]
pub fn frame_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    // INVARIANT: the frame header stores a 32-bit length; callers frame
    // single log records (≤ unit size, far below 4 GiB), so a larger
    // payload is a caller bug worth stopping on, not truncating.
    let len = u32::try_from(payload.len()).expect("record payload fits the u32 frame length");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Restart-time log scan: walks framed records from the front of `log`,
/// returning every record whose framing and payload digest verify, plus
/// the torn tail (if the buffer ends inside or on a corrupt record).
///
/// The guarantee the power-loss model rests on: **a truncation at any
/// byte offset never yields a verified-but-wrong payload** — the cut
/// record either loses header bytes (short read), loses payload bytes
/// (length mismatch), or fails its digest; all three classify as torn.
#[must_use]
pub fn scan_log(log: &[u8]) -> (Vec<ScannedRecord>, Option<IntegrityError>) {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < log.len() {
        let Some(header) = log.get(off..off + FRAME_HEADER) else {
            return (out, Some(IntegrityError::TornRecord { offset: off }));
        };
        // INVARIANT: `header` is exactly FRAME_HEADER (24) bytes — the
        // `get` above returned Some — so each fixed subrange converts.
        let magic = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        if magic != FRAME_MAGIC {
            return (out, Some(IntegrityError::TornRecord { offset: off }));
        }
        let len = // INVARIANT: header[4..8] is 4 bytes (see above)
            u32::from_le_bytes(header[4..8].try_into().expect("4 bytes")) as usize;
        let seq = // INVARIANT: header[8..16] is 8 bytes (see above)
            u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        let digest = // INVARIANT: header[16..24] is 8 bytes (see above)
            u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let Some(payload) = log.get(off + FRAME_HEADER..off + FRAME_HEADER + len) else {
            return (out, Some(IntegrityError::TornRecord { offset: off }));
        };
        if checksum(payload) != digest {
            return (out, Some(IntegrityError::TornRecord { offset: off }));
        }
        out.push(ScannedRecord {
            seq,
            offset: off,
            payload: payload.to_vec(),
        });
        off += FRAME_HEADER + len;
    }
    (out, None)
}

/// Deterministic xorshift64* stream used to pick corruption targets and
/// torn offsets; seeded, so fault injection replays bit-identically.
#[derive(Clone, Debug)]
pub struct SplitRng(u64);

impl SplitRng {
    /// Creates a stream from `seed` (0 is remapped to a fixed non-zero).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitRng(if seed == 0 {
            0x853c_49e6_748f_ea9b
        } else {
            seed
        })
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(MIX)
    }

    /// Uniform draw in `[0, bound)`; `bound` 0 yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_detects_single_bit_flips() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
        let base = checksum(&data);
        for byte in [0usize, 7, 8, 150, 299] {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(base, checksum(&flipped), "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn checksum_distinguishes_zero_padding_from_length() {
        assert_ne!(checksum(b"abc"), checksum(b"abc\0"));
        assert_ne!(checksum(&[]), checksum(&[0]));
    }

    #[test]
    fn page_table_tracks_range_updates() {
        let mut data = vec![0u8; (2 * PAGE + 100) as usize];
        let mut sums = BlockChecksums::new_zeroed(data.len() as u64);
        assert_eq!(sums.pages(), 3);
        assert!(sums.verify_range(&data, 0, data.len() as u64).is_ok());

        data[5000] = 0xAB; // page 1
        assert!(sums.verify_range(&data, 4096, 10).is_err());
        sums.update_range(&data, 5000, 1);
        assert!(sums.verify_range(&data, 0, data.len() as u64).is_ok());
        assert_eq!(sums.corrupt_pages(&data), Vec::<usize>::new());
    }

    #[test]
    fn corrupt_pages_names_silent_flips() {
        let mut data = vec![7u8; (3 * PAGE) as usize];
        let mut sums = BlockChecksums::new_zeroed(data.len() as u64);
        sums.update_all(&data);
        data[0] ^= 1;
        data[(2 * PAGE) as usize + 17] ^= 0x80;
        assert_eq!(sums.corrupt_pages(&data), vec![0, 2]);
        let err = sums.verify_range(&data, 0, PAGE).unwrap_err();
        assert!(matches!(err, IntegrityError::CorruptPage { page: 0, .. }));
    }

    #[test]
    fn taint_survives_partial_overwrite_and_clears_on_full() {
        let mut data = vec![0u8; (2 * PAGE) as usize];
        let mut sums = BlockChecksums::new_zeroed(data.len() as u64);
        // Rot a bit of page 0, then partially overwrite the page: the
        // recomputed digest would bless the rot without the taint flag.
        data[100] ^= 4;
        sums.pre_write_scan(&data, 200, 8, true);
        data[200..208].fill(9);
        sums.update_range(&data, 200, 8);
        assert!(sums.is_tainted(0));
        assert_eq!(sums.corrupt_pages(&data), vec![0]);
        assert!(matches!(
            sums.verify_range(&data, 0, 10),
            Err(IntegrityError::TaintedPage { page: 0 })
        ));
        // A full-page plain overwrite replaces the content wholesale.
        sums.pre_write_scan(&data, 0, PAGE, true);
        data[..PAGE as usize].fill(3);
        sums.update_range(&data, 0, PAGE);
        assert!(!sums.is_tainted(0));
        assert!(sums.verify_range(&data, 0, PAGE).is_ok());
        // An XOR merge over a rotted page taints even at full coverage.
        data[PAGE as usize] ^= 1;
        sums.pre_write_scan(&data, PAGE, PAGE, false);
        assert!(sums.is_tainted(1));
        sums.clear_taint(1);
        sums.update_all(&data);
        assert!(sums.corrupt_pages(&data).is_empty());
    }

    #[test]
    fn scan_recovers_framed_records() {
        let mut log = Vec::new();
        log.extend(frame_record(1, b"hello"));
        log.extend(frame_record(2, b""));
        log.extend(frame_record(3, &[9u8; 1000]));
        let (recs, torn) = scan_log(&log);
        assert!(torn.is_none());
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].payload, b"hello");
        assert_eq!(recs[1].seq, 2);
        assert_eq!(recs[2].payload.len(), 1000);
    }

    #[test]
    fn truncation_at_every_offset_is_detected_never_misread() {
        let mut log = Vec::new();
        log.extend(frame_record(1, b"first-record"));
        log.extend(frame_record(2, b"second"));
        let (full, _) = scan_log(&log);
        let boundaries = [0, FRAME_HEADER + b"first-record".len(), log.len()];
        for cut in 0..log.len() {
            let (recs, torn) = scan_log(&log[..cut]);
            // Whatever survives is a verified prefix of the original.
            assert!(recs.len() <= full.len());
            for (got, want) in recs.iter().zip(&full) {
                assert_eq!(got, want, "cut at {cut} must not alter a record");
            }
            if boundaries.contains(&cut) {
                assert!(torn.is_none(), "boundary cut at {cut} is a clean log");
            } else {
                assert!(torn.is_some(), "mid-record cut at {cut} must flag a tear");
            }
        }
    }

    #[test]
    fn scribbled_tail_is_torn_not_data() {
        let mut log = frame_record(1, b"payload");
        log.extend_from_slice(&[0xFFu8; 10]); // garbage after the record
        let (recs, torn) = scan_log(&log);
        assert_eq!(recs.len(), 1);
        assert!(matches!(torn, Some(IntegrityError::TornRecord { .. })));
    }

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let mut a = SplitRng::new(7);
        let mut b = SplitRng::new(7);
        for _ in 0..100 {
            let x = a.below(13);
            assert_eq!(x, b.below(13));
            assert!(x < 13);
        }
        assert_eq!(SplitRng::new(0).next_u64(), SplitRng::new(0).next_u64());
    }
}
