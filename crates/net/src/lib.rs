//! Cluster network fabric model.
//!
//! Models the paper's testbed interconnects (25 Gb/s Ethernet for the SSD
//! cluster, 40 Gb/s InfiniBand for the HDD cluster) as full-duplex per-node
//! NIC resources joined by a switch fabric. Two fabric shapes exist:
//!
//! * **flat** (the seed model, [`Topology::flat`]) — a single non-blocking
//!   switch: a transfer serializes on the sender's TX lane and the
//!   receiver's RX lane (whichever frees later dominates), plus a fixed
//!   RPC/switch latency;
//! * **two-tier** ([`Topology`] with `racks > 1`) — racks of nodes behind
//!   top-of-rack (ToR) uplinks. Intra-rack transfers behave like the flat
//!   model; cross-rack transfers additionally serialize on the source
//!   rack's up-lane and the destination rack's down-lane, whose bandwidth
//!   is the rack's aggregate host bandwidth divided by the
//!   *oversubscription* ratio, and pay an extra per-hop uplink latency.
//!
//! All bytes are counted globally, per node, and per tier (intra- vs
//! cross-rack) — the source of the Table 1 "NETWORK TRAFFIC" column and of
//! the recovery experiments' cross-rack traffic split. Transient per-node
//! slowdowns (straggler NICs) scale a node's lane service times until a
//! deadline, for fault-injection scenarios.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use tsue_sim::{FifoResource, Time, MICROSECOND};

/// Identifies a node (OSD, MDS, or client host) on the fabric.
pub type NodeId = usize;

/// Fabric parameters.
///
/// Serializes field-for-field (bandwidth in bytes/s, latency in ns), so
/// a scenario file pins a custom fabric with the full
/// `{bandwidth, latency, header_bytes}` object; [`NetSpec::by_name`]
/// resolves the two named testbed fabrics for CLI flags like
/// `tsuectl --net`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Per-NIC bandwidth in bytes/second (each direction).
    pub bandwidth: u64,
    /// Fixed per-message latency (propagation + switch + RPC stack), ns.
    pub latency: Time,
    /// Per-message protocol overhead added to the payload, bytes.
    pub header_bytes: u64,
}

impl NetSpec {
    /// 25 Gb/s Ethernet (the paper's SSD-cluster fabric).
    pub fn ethernet_25g() -> Self {
        NetSpec {
            bandwidth: 25_000_000_000 / 8,
            latency: 25 * MICROSECOND,
            header_bytes: 128,
        }
    }

    /// 40 Gb/s InfiniBand (the paper's HDD-cluster fabric).
    pub fn infiniband_40g() -> Self {
        NetSpec {
            bandwidth: 40_000_000_000 / 8,
            latency: 8 * MICROSECOND,
            header_bytes: 96,
        }
    }

    /// The canonical names [`NetSpec::by_name`] resolves — error messages
    /// list these so an unknown `--net` flag fails with the alternatives.
    pub fn names() -> &'static [&'static str] {
        &["ethernet-25g", "infiniband-40g"]
    }

    /// Resolves a named fabric profile (`"ethernet-25g"`,
    /// `"infiniband-40g"`); `None` for unknown names.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "ethernet-25g" | "ethernet_25g" => Some(Self::ethernet_25g()),
            "infiniband-40g" | "infiniband_40g" => Some(Self::infiniband_40g()),
            _ => None,
        }
    }
}

/// Two-tier fabric shape: racks behind oversubscribed ToR uplinks.
///
/// `racks == 1` degenerates to the flat non-blocking switch (no uplink
/// resources are modeled at all, so flat clusters behave bit-for-bit like
/// the seed model). Serializes as either a profile name string
/// (`"flat"`, `"rack4"`, …) or the full field object, mirroring
/// [`NetSpec`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Topology {
    /// Number of racks (1 = flat non-blocking switch).
    pub racks: usize,
    /// Oversubscription ratio: a rack's aggregate host bandwidth divided
    /// by its uplink bandwidth. 1.0 = non-blocking core.
    pub oversubscription: f64,
    /// Extra one-way latency per cross-rack transfer, ns.
    pub uplink_latency: Time,
}

impl Default for Topology {
    fn default() -> Self {
        Self::flat()
    }
}

impl Topology {
    /// The flat non-blocking switch (the seed model).
    pub fn flat() -> Self {
        Topology {
            racks: 1,
            oversubscription: 1.0,
            uplink_latency: 0,
        }
    }

    /// A typical lightly-oversubscribed 4-rack pod (2:1 uplinks).
    pub fn rack4() -> Self {
        Topology {
            racks: 4,
            oversubscription: 2.0,
            uplink_latency: 2 * MICROSECOND,
        }
    }

    /// A congested 4-rack pod (8:1 uplinks) — recovery storms hurt here.
    pub fn rack4_hot() -> Self {
        Topology {
            oversubscription: 8.0,
            ..Self::rack4()
        }
    }

    /// An 8-rack pod with 3:1 uplinks.
    pub fn rack8() -> Self {
        Topology {
            racks: 8,
            oversubscription: 3.0,
            uplink_latency: 2 * MICROSECOND,
        }
    }

    /// The canonical names [`Topology::by_name`] resolves — error
    /// messages list these so an unknown `--topology` flag fails with
    /// the alternatives.
    pub fn names() -> &'static [&'static str] {
        &["flat", "rack4", "rack4-hot", "rack8"]
    }

    /// Resolves a named topology profile; `None` for unknown names.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "flat" => Some(Self::flat()),
            "rack4" => Some(Self::rack4()),
            "rack4-hot" | "rack4_hot" => Some(Self::rack4_hot()),
            "rack8" => Some(Self::rack8()),
            _ => None,
        }
    }

    /// Standard rack assignment for a cluster of `osds` storage nodes
    /// followed by `clients` client hosts (node ids `osds..osds+clients`):
    /// OSDs fill racks contiguously (adjacent ports on the same ToR, the
    /// realistic cabling), clients spread round-robin so client load hits
    /// every uplink evenly.
    pub fn rack_map(&self, osds: usize, clients: usize) -> Vec<usize> {
        let mut map = Vec::with_capacity(osds + clients);
        for i in 0..osds {
            map.push(i * self.racks / osds.max(1));
        }
        for c in 0..clients {
            map.push(c % self.racks);
        }
        map
    }
}

impl Serialize for Topology {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("racks".to_string(), Value::UInt(self.racks as u64)),
            (
                "oversubscription".to_string(),
                Value::Float(self.oversubscription),
            ),
            (
                "uplink_latency".to_string(),
                Value::UInt(self.uplink_latency),
            ),
        ])
    }
}

// Hand-written so a scenario can say `"topology": "rack4"` (profile name)
// or pin the full `{racks, oversubscription, uplink_latency}` object.
impl Deserialize for Topology {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        match v {
            Value::Str(name) => Self::by_name(name).ok_or_else(|| {
                serde::DeError::msg(format!(
                    "unknown topology profile '{name}' (expected one of: {})",
                    Self::names().join(", ")
                ))
            }),
            Value::Object(entries) => {
                const KNOWN: &[&str] = &["racks", "oversubscription", "uplink_latency"];
                for (key, _) in entries.iter() {
                    if !KNOWN.contains(&key.as_str()) {
                        return Err(serde::DeError::unknown_field("Topology", key, KNOWN));
                    }
                }
                let topo = Topology {
                    racks: serde::de_field(entries, "Topology", "racks")?,
                    oversubscription: serde::de_field::<f64>(
                        entries,
                        "Topology",
                        "oversubscription",
                    )
                    .or_else(|_| {
                        // Absent ⇒ non-blocking uplinks.
                        match entries.iter().find(|(k, _)| k == "oversubscription") {
                            Some(_) => Err(serde::DeError::msg(
                                "Topology.oversubscription: expected number",
                            )),
                            None => Ok(1.0),
                        }
                    })?,
                    uplink_latency: match entries.iter().find(|(k, _)| k == "uplink_latency") {
                        Some((_, v)) => u64::from_value(v)
                            .map_err(|e| e.in_field("Topology", "uplink_latency"))?,
                        None => 0,
                    },
                };
                if topo.racks == 0 {
                    return Err(serde::DeError::msg("Topology.racks must be >= 1"));
                }
                if topo.oversubscription.is_nan() || topo.oversubscription < 1.0 {
                    return Err(serde::DeError::msg(
                        "Topology.oversubscription must be >= 1.0",
                    ));
                }
                Ok(topo)
            }
            other => Err(serde::DeError::mismatch(
                "Topology",
                "profile name or object",
                other,
            )),
        }
    }
}

/// Per-node traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Bytes sent (payload + headers).
    pub tx_bytes: u64,
    /// Bytes received (payload + headers).
    pub rx_bytes: u64,
    /// Messages sent.
    pub tx_msgs: u64,
    /// Messages received.
    pub rx_msgs: u64,
}

/// Per-tier traffic split: where on the fabric the bytes travelled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierTraffic {
    /// Payload bytes that stayed inside one rack.
    pub intra_payload: u64,
    /// Wire bytes (payload + headers) that stayed inside one rack.
    pub intra_wire: u64,
    /// Payload bytes that crossed the rack boundary.
    pub cross_payload: u64,
    /// Wire bytes (payload + headers) that crossed the rack boundary.
    pub cross_wire: u64,
}

impl TierTraffic {
    /// Difference against an earlier snapshot (per-phase accounting).
    pub fn since(&self, earlier: &TierTraffic) -> TierTraffic {
        TierTraffic {
            intra_payload: self.intra_payload - earlier.intra_payload,
            intra_wire: self.intra_wire - earlier.intra_wire,
            cross_payload: self.cross_payload - earlier.cross_payload,
            cross_wire: self.cross_wire - earlier.cross_wire,
        }
    }
}

/// Per-rack uplink counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RackTraffic {
    /// Wire bytes leaving the rack through its ToR uplink.
    pub up_bytes: u64,
    /// Wire bytes entering the rack through its ToR uplink.
    pub down_bytes: u64,
}

/// The network: NIC lanes per node, rack uplink lanes, plus accounting.
#[derive(Debug)]
pub struct NetModel {
    spec: NetSpec,
    topo: Topology,
    rack_of: Vec<usize>,
    tx: Vec<FifoResource>,
    rx: Vec<FifoResource>,
    /// Per-rack up/down ToR lanes (empty when the fabric is flat).
    up: Vec<FifoResource>,
    down: Vec<FifoResource>,
    /// Per-rack uplink bandwidth, bytes/s (empty when flat).
    uplink_bw: Vec<u64>,
    /// Transient straggler model: `(service multiplier, active until)`.
    slow: Vec<(f64, Time)>,
    traffic: Vec<NodeTraffic>,
    rack_traffic: Vec<RackTraffic>,
    tier: TierTraffic,
    total_payload: u64,
    total_wire: u64,
}

impl NetModel {
    /// Creates a flat (single non-blocking switch) fabric joining `nodes`
    /// endpoints — the seed model.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn new(spec: NetSpec, nodes: usize) -> Self {
        assert!(nodes > 0, "network needs at least one node");
        Self::with_topology(spec, Topology::flat(), vec![0; nodes])
    }

    /// Creates a two-tier fabric: `rack_of[n]` is node `n`'s rack. Rack
    /// uplink bandwidth is the rack's aggregate host bandwidth divided by
    /// `topo.oversubscription`.
    ///
    /// # Panics
    /// Panics if `rack_of` is empty, a rack index is out of range, or a
    /// rack has no members.
    pub fn with_topology(spec: NetSpec, topo: Topology, rack_of: Vec<usize>) -> Self {
        assert!(!rack_of.is_empty(), "network needs at least one node");
        assert!(topo.racks > 0, "topology needs at least one rack");
        assert!(
            topo.oversubscription >= 1.0,
            "oversubscription below 1.0 would make uplinks faster than hosts"
        );
        let nodes = rack_of.len();
        let mut members = vec![0u64; topo.racks];
        for &r in &rack_of {
            assert!(r < topo.racks, "rack index {r} out of range");
            members[r] += 1;
        }
        let (up, down, uplink_bw) = if topo.racks > 1 {
            assert!(
                members.iter().all(|&m| m > 0),
                "every rack needs at least one member"
            );
            let bw: Vec<u64> = members
                .iter()
                .map(|&m| {
                    (((spec.bandwidth as f64) * m as f64 / topo.oversubscription) as u64).max(1)
                })
                .collect();
            (
                vec![FifoResource::new(); topo.racks],
                vec![FifoResource::new(); topo.racks],
                bw,
            )
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        NetModel {
            spec,
            topo,
            rack_of,
            tx: vec![FifoResource::new(); nodes],
            rx: vec![FifoResource::new(); nodes],
            up,
            down,
            uplink_bw,
            slow: vec![(1.0, 0); nodes],
            traffic: vec![NodeTraffic::default(); nodes],
            rack_traffic: vec![RackTraffic::default(); topo.racks],
            tier: TierTraffic::default(),
            total_payload: 0,
            total_wire: 0,
        }
    }

    /// Number of endpoints.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// Spec accessor.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// Topology accessor.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of racks.
    pub fn racks(&self) -> usize {
        self.topo.racks
    }

    /// Rack hosting `node`.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn rack_of(&self, node: NodeId) -> usize {
        self.rack_of[node]
    }

    /// Modeled ToR-uplink bandwidth of `rack` in bytes/sec, or `None` on
    /// flat (single-rack) topologies with no uplink — the capacity the
    /// observability layer divides byte counters by for utilization.
    pub fn uplink_bandwidth(&self, rack: usize) -> Option<u64> {
        self.uplink_bw.get(rack).copied()
    }

    /// Marks `node`'s NIC as degraded: lane service times are multiplied
    /// by `factor` for transfers starting before `until` (transient
    /// straggler injection). `factor <= 1.0` (or a past deadline) heals.
    pub fn set_slowdown(&mut self, node: NodeId, factor: f64, until: Time) {
        self.slow[node] = (factor.max(1.0), until);
    }

    /// Clears any active slowdown on `node`.
    pub fn clear_slowdown(&mut self, node: NodeId) {
        self.slow[node] = (1.0, 0);
    }

    /// The slowdown multiplier in force on `node` at `now`.
    fn slow_factor(&self, node: NodeId, now: Time) -> f64 {
        let (factor, until) = self.slow[node];
        if now < until {
            factor
        } else {
            1.0
        }
    }

    /// Transfers `payload` bytes from `src` to `dst` starting at `now`.
    /// Returns the arrival (fully-received) time. Loopback messages are
    /// free apart from a nominal latency tick. Cross-rack transfers
    /// additionally serialize on both rack uplinks and pay the uplink
    /// latency.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn transfer(&mut self, now: Time, src: NodeId, dst: NodeId, payload: u64) -> Time {
        assert!(src < self.nodes() && dst < self.nodes(), "bad endpoint");
        if src == dst {
            // Local hand-off: no wire traffic, negligible latency.
            return now + MICROSECOND;
        }
        let wire = payload + self.spec.header_bytes;
        self.traffic[src].tx_bytes += wire;
        self.traffic[src].tx_msgs += 1;
        self.traffic[dst].rx_bytes += wire;
        self.traffic[dst].rx_msgs += 1;
        self.total_payload += payload;
        self.total_wire += wire;

        let (sr, dr) = (self.rack_of[src], self.rack_of[dst]);
        let cross = sr != dr;
        if cross {
            self.tier.cross_payload += payload;
            self.tier.cross_wire += wire;
            self.rack_traffic[sr].up_bytes += wire;
            self.rack_traffic[dr].down_bytes += wire;
        } else {
            self.tier.intra_payload += payload;
            self.tier.intra_wire += wire;
        }

        let service = self.serialization_time(wire);
        let tx_service = Self::scaled(service, self.slow_factor(src, now));
        let rx_service = Self::scaled(service, self.slow_factor(dst, now));
        // The message occupies the TX lane, each rack uplink lane (when
        // crossing racks), then the RX lane; cut-through forwarding lets
        // each hop start as soon as the previous one starts delivering, so
        // with uncontended lanes the slowest hop dominates.
        let tx_done = self.tx[src].submit(now, tx_service);
        let mut hop_done = tx_done;
        let mut extra_latency = 0;
        if cross {
            let up_service = self.uplink_time(sr, wire);
            let down_service = self.uplink_time(dr, wire);
            let up_done = self.up[sr].submit(hop_done.saturating_sub(up_service), up_service);
            hop_done = hop_done.max(up_done);
            let down_done =
                self.down[dr].submit(hop_done.saturating_sub(down_service), down_service);
            hop_done = hop_done.max(down_done);
            extra_latency = self.topo.uplink_latency;
        }
        let rx_done = self.rx[dst].submit(hop_done.saturating_sub(rx_service), rx_service);
        rx_done.max(hop_done) + self.spec.latency + extra_latency
    }

    /// Pure serialization time for `bytes` on one NIC lane.
    pub fn serialization_time(&self, bytes: u64) -> Time {
        ((bytes as u128 * 1_000_000_000) / self.spec.bandwidth as u128) as Time
    }

    /// Serialization time for `bytes` on rack `r`'s uplink.
    fn uplink_time(&self, r: usize, bytes: u64) -> Time {
        ((bytes as u128 * 1_000_000_000) / self.uplink_bw[r] as u128) as Time
    }

    #[inline]
    fn scaled(service: Time, factor: f64) -> Time {
        if factor == 1.0 {
            service
        } else {
            (service as f64 * factor) as Time
        }
    }

    /// Total payload bytes moved (excludes headers).
    pub fn total_payload(&self) -> u64 {
        self.total_payload
    }

    /// Total wire bytes moved (includes headers).
    pub fn total_wire(&self) -> u64 {
        self.total_wire
    }

    /// Per-node counters.
    pub fn node_traffic(&self, node: NodeId) -> &NodeTraffic {
        &self.traffic[node]
    }

    /// Per-tier intra-/cross-rack split.
    pub fn tier_traffic(&self) -> &TierTraffic {
        &self.tier
    }

    /// Per-rack uplink counters.
    pub fn rack_traffic(&self, rack: usize) -> &RackTraffic {
        &self.rack_traffic[rack]
    }

    /// Resets counters (between experiment phases) without resetting lanes.
    pub fn reset_counters(&mut self) {
        self.traffic.fill(NodeTraffic::default());
        self.rack_traffic.fill(RackTraffic::default());
        self.tier = TierTraffic::default();
        self.total_payload = 0;
        self.total_wire = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_includes_latency_and_serialization() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 4);
        let t = net.transfer(0, 0, 1, 1 << 20);
        let min = net.serialization_time(1 << 20);
        assert!(t >= min + net.spec().latency);
    }

    #[test]
    fn loopback_is_free() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 2);
        let t = net.transfer(100, 1, 1, 1 << 30);
        assert_eq!(t, 100 + MICROSECOND);
        assert_eq!(net.total_wire(), 0);
    }

    #[test]
    fn concurrent_senders_to_one_receiver_serialize_on_rx() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 3);
        let t1 = net.transfer(0, 0, 2, 10 << 20);
        let t2 = net.transfer(0, 1, 2, 10 << 20);
        // Two senders, one receiver: the second arrival is pushed out by
        // roughly one serialization time.
        assert!(t2 > t1, "rx lane must serialize: {t1} vs {t2}");
    }

    #[test]
    fn one_sender_two_receivers_serializes_on_tx() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 3);
        let t1 = net.transfer(0, 0, 1, 10 << 20);
        let t2 = net.transfer(0, 0, 2, 10 << 20);
        assert!(t2 > t1, "tx lane must serialize");
    }

    #[test]
    fn traffic_conservation() {
        let mut net = NetModel::new(NetSpec::infiniband_40g(), 4);
        net.transfer(0, 0, 1, 1000);
        net.transfer(0, 2, 3, 500);
        net.transfer(0, 1, 0, 250);
        let tx: u64 = (0..4).map(|n| net.node_traffic(n).tx_bytes).sum();
        let rx: u64 = (0..4).map(|n| net.node_traffic(n).rx_bytes).sum();
        assert_eq!(tx, rx);
        assert_eq!(tx, net.total_wire());
        assert_eq!(net.total_payload(), 1750);
        let hdr = net.spec().header_bytes;
        assert_eq!(net.total_wire(), 1750 + 3 * hdr);
    }

    #[test]
    fn bandwidth_ceiling_holds_under_load() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 2);
        let msg: u64 = 1 << 20;
        let n = 64;
        let mut last = 0;
        for _ in 0..n {
            last = net.transfer(0, 0, 1, msg);
        }
        let total_bytes = (msg + net.spec().header_bytes) * n;
        let measured_bw = total_bytes as f64 / (last as f64 / 1e9);
        assert!(
            measured_bw <= net.spec().bandwidth as f64 * 1.01,
            "measured {measured_bw} exceeds spec {}",
            net.spec().bandwidth
        );
    }

    #[test]
    fn reset_clears_counters() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 2);
        net.transfer(0, 0, 1, 100);
        net.reset_counters();
        assert_eq!(net.total_wire(), 0);
        assert_eq!(net.node_traffic(0).tx_msgs, 0);
        assert_eq!(net.tier_traffic(), &TierTraffic::default());
    }

    #[test]
    #[should_panic(expected = "bad endpoint")]
    fn out_of_range_endpoint_panics() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 2);
        net.transfer(0, 0, 5, 1);
    }

    fn two_rack_net() -> NetModel {
        // Nodes 0,1 in rack 0; nodes 2,3 in rack 1; 2:1 oversubscription.
        let topo = Topology {
            racks: 2,
            oversubscription: 2.0,
            uplink_latency: 3 * MICROSECOND,
        };
        NetModel::with_topology(NetSpec::ethernet_25g(), topo, vec![0, 0, 1, 1])
    }

    #[test]
    fn tier_accounting_splits_intra_and_cross() {
        let mut net = two_rack_net();
        net.transfer(0, 0, 1, 1000); // intra rack 0
        net.transfer(0, 0, 2, 2000); // cross
        net.transfer(0, 3, 2, 4000); // intra rack 1
        let hdr = net.spec().header_bytes;
        let tier = *net.tier_traffic();
        assert_eq!(tier.intra_payload, 5000);
        assert_eq!(tier.cross_payload, 2000);
        assert_eq!(tier.intra_wire + tier.cross_wire, net.total_wire());
        assert_eq!(tier.cross_wire, 2000 + hdr);
        assert_eq!(net.rack_traffic(0).up_bytes, 2000 + hdr);
        assert_eq!(net.rack_traffic(1).down_bytes, 2000 + hdr);
        assert_eq!(net.rack_traffic(1).up_bytes, 0);
    }

    #[test]
    fn cross_rack_pays_uplink_latency() {
        let mut a = two_rack_net();
        let t_intra = a.transfer(0, 0, 1, 1 << 20);
        let mut b = two_rack_net();
        let t_cross = b.transfer(0, 0, 2, 1 << 20);
        assert!(
            t_cross >= t_intra + 3 * MICROSECOND,
            "cross-rack hop must add uplink latency: {t_intra} vs {t_cross}"
        );
    }

    #[test]
    fn oversubscribed_uplink_is_the_bottleneck_under_fanin() {
        // Both rack-0 hosts blast rack 1: aggregate demand 2×NIC, uplink
        // capacity only 1×NIC (2:1 oversub on a 2-host rack) ⇒ the uplink
        // serializes what the flat fabric would carry in parallel.
        let mut flat = NetModel::new(NetSpec::ethernet_25g(), 4);
        let mut tiered = two_rack_net();
        let msg = 8 << 20;
        let mut flat_last = 0;
        let mut tier_last = 0;
        for i in 0..8u64 {
            let src = (i % 2) as usize;
            let dst = 2 + (i % 2) as usize;
            flat_last = flat_last.max(flat.transfer(0, src, dst, msg));
            tier_last = tier_last.max(tiered.transfer(0, src, dst, msg));
        }
        assert!(
            tier_last > flat_last,
            "contended uplink must be slower than non-blocking: {tier_last} vs {flat_last}"
        );
    }

    #[test]
    fn flat_topology_matches_seed_model_exactly() {
        let mut seed = NetModel::new(NetSpec::ethernet_25g(), 4);
        let mut flat =
            NetModel::with_topology(NetSpec::ethernet_25g(), Topology::flat(), vec![0; 4]);
        for i in 0..32u64 {
            let (s, d) = ((i % 4) as usize, ((i + 1) % 4) as usize);
            assert_eq!(
                seed.transfer(i * 100, s, d, 1 << 16),
                flat.transfer(i * 100, s, d, 1 << 16)
            );
        }
    }

    #[test]
    fn slowdown_inflates_service_until_deadline() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 2);
        let base = net.transfer(0, 0, 1, 1 << 20);
        let mut slow = NetModel::new(NetSpec::ethernet_25g(), 2);
        slow.set_slowdown(0, 4.0, 1_000_000_000);
        let t = slow.transfer(0, 0, 1, 1 << 20);
        assert!(t > base, "slowdown must inflate transfers: {base} vs {t}");
        // Past the deadline the node heals.
        let healed = slow.transfer(2_000_000_000, 0, 1, 1 << 20) - 2_000_000_000;
        let fresh = NetModel::new(NetSpec::ethernet_25g(), 2).transfer(0, 0, 1, 1 << 20);
        assert_eq!(healed, fresh);
    }

    #[test]
    fn rack_map_fills_racks_contiguously_and_spreads_clients() {
        let topo = Topology::rack4();
        let map = topo.rack_map(16, 4);
        assert_eq!(
            &map[..16],
            &[0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3]
        );
        assert_eq!(&map[16..], &[0, 1, 2, 3]);
    }

    #[test]
    fn topology_by_name_and_serde_round_trip() {
        for name in Topology::names() {
            let t = Topology::by_name(name).expect("named profile resolves");
            let v = serde::Serialize::to_value(&t);
            let back = <Topology as serde::Deserialize>::from_value(&v).unwrap();
            assert_eq!(t, back, "{name} round-trips");
        }
        assert!(Topology::by_name("mesh").is_none());
        let err = <Topology as serde::Deserialize>::from_value(&Value::Str("mesh".into()))
            .expect_err("unknown profile");
        assert!(err.to_string().contains("rack4"), "{err}");
    }
}
