//! Cluster network fabric model.
//!
//! Models the paper's testbed interconnects (25 Gb/s Ethernet for the SSD
//! cluster, 40 Gb/s InfiniBand for the HDD cluster) as full-duplex per-node
//! NIC resources joined by a non-blocking switch:
//!
//! * a transfer serializes on the sender's TX lane and the receiver's RX
//!   lane (whichever frees later dominates),
//! * every message additionally pays a fixed RPC/switch latency,
//! * all bytes are counted globally and per node — the source of the
//!   Table 1 "NETWORK TRAFFIC" column.

use serde::{Deserialize, Serialize};
use tsue_sim::{FifoResource, Time, MICROSECOND};

/// Identifies a node (OSD, MDS, or client host) on the fabric.
pub type NodeId = usize;

/// Fabric parameters.
///
/// Serializes field-for-field (bandwidth in bytes/s, latency in ns), so
/// a scenario file pins a custom fabric with the full
/// `{bandwidth, latency, header_bytes}` object; [`NetSpec::by_name`]
/// resolves the two named testbed fabrics for CLI flags like
/// `tsuectl --net`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetSpec {
    /// Per-NIC bandwidth in bytes/second (each direction).
    pub bandwidth: u64,
    /// Fixed per-message latency (propagation + switch + RPC stack), ns.
    pub latency: Time,
    /// Per-message protocol overhead added to the payload, bytes.
    pub header_bytes: u64,
}

impl NetSpec {
    /// 25 Gb/s Ethernet (the paper's SSD-cluster fabric).
    pub fn ethernet_25g() -> Self {
        NetSpec {
            bandwidth: 25_000_000_000 / 8,
            latency: 25 * MICROSECOND,
            header_bytes: 128,
        }
    }

    /// 40 Gb/s InfiniBand (the paper's HDD-cluster fabric).
    pub fn infiniband_40g() -> Self {
        NetSpec {
            bandwidth: 40_000_000_000 / 8,
            latency: 8 * MICROSECOND,
            header_bytes: 96,
        }
    }

    /// Resolves a named fabric profile (`"ethernet-25g"`,
    /// `"infiniband-40g"`); `None` for unknown names.
    pub fn by_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "ethernet-25g" | "ethernet_25g" => Some(Self::ethernet_25g()),
            "infiniband-40g" | "infiniband_40g" => Some(Self::infiniband_40g()),
            _ => None,
        }
    }
}

/// Per-node traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeTraffic {
    /// Bytes sent (payload + headers).
    pub tx_bytes: u64,
    /// Bytes received (payload + headers).
    pub rx_bytes: u64,
    /// Messages sent.
    pub tx_msgs: u64,
    /// Messages received.
    pub rx_msgs: u64,
}

/// The network: NIC lanes per node plus accounting.
#[derive(Debug)]
pub struct NetModel {
    spec: NetSpec,
    tx: Vec<FifoResource>,
    rx: Vec<FifoResource>,
    traffic: Vec<NodeTraffic>,
    total_payload: u64,
    total_wire: u64,
}

impl NetModel {
    /// Creates a fabric joining `nodes` endpoints.
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn new(spec: NetSpec, nodes: usize) -> Self {
        assert!(nodes > 0, "network needs at least one node");
        NetModel {
            spec,
            tx: vec![FifoResource::new(); nodes],
            rx: vec![FifoResource::new(); nodes],
            traffic: vec![NodeTraffic::default(); nodes],
            total_payload: 0,
            total_wire: 0,
        }
    }

    /// Number of endpoints.
    pub fn nodes(&self) -> usize {
        self.tx.len()
    }

    /// Spec accessor.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// Transfers `payload` bytes from `src` to `dst` starting at `now`.
    /// Returns the arrival (fully-received) time. Loopback messages are
    /// free apart from a nominal latency tick.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn transfer(&mut self, now: Time, src: NodeId, dst: NodeId, payload: u64) -> Time {
        assert!(src < self.nodes() && dst < self.nodes(), "bad endpoint");
        if src == dst {
            // Local hand-off: no wire traffic, negligible latency.
            return now + MICROSECOND;
        }
        let wire = payload + self.spec.header_bytes;
        self.traffic[src].tx_bytes += wire;
        self.traffic[src].tx_msgs += 1;
        self.traffic[dst].rx_bytes += wire;
        self.traffic[dst].rx_msgs += 1;
        self.total_payload += payload;
        self.total_wire += wire;

        let service = self.serialization_time(wire);
        // The message occupies the TX lane, then the RX lane; with a
        // non-blocking switch the later of the two dominates.
        let tx_done = self.tx[src].submit(now, service);
        let rx_done = self.rx[dst].submit(tx_done.saturating_sub(service), service);
        rx_done.max(tx_done) + self.spec.latency
    }

    /// Pure serialization time for `bytes` on one lane.
    pub fn serialization_time(&self, bytes: u64) -> Time {
        ((bytes as u128 * 1_000_000_000) / self.spec.bandwidth as u128) as Time
    }

    /// Total payload bytes moved (excludes headers).
    pub fn total_payload(&self) -> u64 {
        self.total_payload
    }

    /// Total wire bytes moved (includes headers).
    pub fn total_wire(&self) -> u64 {
        self.total_wire
    }

    /// Per-node counters.
    pub fn node_traffic(&self, node: NodeId) -> &NodeTraffic {
        &self.traffic[node]
    }

    /// Resets counters (between experiment phases) without resetting lanes.
    pub fn reset_counters(&mut self) {
        self.traffic.fill(NodeTraffic::default());
        self.total_payload = 0;
        self.total_wire = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_includes_latency_and_serialization() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 4);
        let t = net.transfer(0, 0, 1, 1 << 20);
        let min = net.serialization_time(1 << 20);
        assert!(t >= min + net.spec().latency);
    }

    #[test]
    fn loopback_is_free() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 2);
        let t = net.transfer(100, 1, 1, 1 << 30);
        assert_eq!(t, 100 + MICROSECOND);
        assert_eq!(net.total_wire(), 0);
    }

    #[test]
    fn concurrent_senders_to_one_receiver_serialize_on_rx() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 3);
        let t1 = net.transfer(0, 0, 2, 10 << 20);
        let t2 = net.transfer(0, 1, 2, 10 << 20);
        // Two senders, one receiver: the second arrival is pushed out by
        // roughly one serialization time.
        assert!(t2 > t1, "rx lane must serialize: {t1} vs {t2}");
    }

    #[test]
    fn one_sender_two_receivers_serializes_on_tx() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 3);
        let t1 = net.transfer(0, 0, 1, 10 << 20);
        let t2 = net.transfer(0, 0, 2, 10 << 20);
        assert!(t2 > t1, "tx lane must serialize");
    }

    #[test]
    fn traffic_conservation() {
        let mut net = NetModel::new(NetSpec::infiniband_40g(), 4);
        net.transfer(0, 0, 1, 1000);
        net.transfer(0, 2, 3, 500);
        net.transfer(0, 1, 0, 250);
        let tx: u64 = (0..4).map(|n| net.node_traffic(n).tx_bytes).sum();
        let rx: u64 = (0..4).map(|n| net.node_traffic(n).rx_bytes).sum();
        assert_eq!(tx, rx);
        assert_eq!(tx, net.total_wire());
        assert_eq!(net.total_payload(), 1750);
        let hdr = net.spec().header_bytes;
        assert_eq!(net.total_wire(), 1750 + 3 * hdr);
    }

    #[test]
    fn bandwidth_ceiling_holds_under_load() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 2);
        let msg: u64 = 1 << 20;
        let n = 64;
        let mut last = 0;
        for _ in 0..n {
            last = net.transfer(0, 0, 1, msg);
        }
        let total_bytes = (msg + net.spec().header_bytes) * n;
        let measured_bw = total_bytes as f64 / (last as f64 / 1e9);
        assert!(
            measured_bw <= net.spec().bandwidth as f64 * 1.01,
            "measured {measured_bw} exceeds spec {}",
            net.spec().bandwidth
        );
    }

    #[test]
    fn reset_clears_counters() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 2);
        net.transfer(0, 0, 1, 100);
        net.reset_counters();
        assert_eq!(net.total_wire(), 0);
        assert_eq!(net.node_traffic(0).tx_msgs, 0);
    }

    #[test]
    #[should_panic(expected = "bad endpoint")]
    fn out_of_range_endpoint_panics() {
        let mut net = NetModel::new(NetSpec::ethernet_25g(), 2);
        net.transfer(0, 0, 5, 1);
    }
}
