//! Property tests for the two-tier fabric: per-tier byte conservation and
//! timing sanity across random topologies and transfer schedules.

use proptest::prelude::*;
use tsue_net::{NetModel, NetSpec, Topology};

/// Normalizes raw draws into a valid topology + node→rack map: rack count
/// in `1..=4`, oversubscription `>= 1.0`, and every rack populated (the
/// first `racks` nodes seed one rack each).
fn make_topology(
    racks_raw: usize,
    oversub_halves: u64,
    lat: u64,
    mut rack_of: Vec<usize>,
) -> (Topology, Vec<usize>) {
    let racks = 1 + racks_raw % 4;
    let topo = Topology {
        racks,
        oversubscription: 1.0 + oversub_halves as f64 / 2.0,
        uplink_latency: lat,
    };
    for (i, r) in rack_of.iter_mut().enumerate() {
        *r = if i < racks { i } else { *r % racks };
    }
    (topo, rack_of)
}

proptest! {
    /// Per-tier conservation: intra-rack + cross-rack wire (and payload)
    /// bytes always sum to the fabric totals, and the totals match the
    /// per-node TX/RX sums — no bytes appear or vanish between tiers.
    #[test]
    fn per_tier_traffic_conservation(
        racks_raw in 0usize..4,
        oversub_halves in 0u64..8,
        lat in 0u64..5_000,
        rack_raw in proptest::collection::vec(0usize..4, 8..9),
        transfers in proptest::collection::vec(
            (0usize..8, 0usize..8, 1u64..1_000_000, 0u64..10_000),
            1..80,
        ),
    ) {
        let (topo, rack_of) = make_topology(racks_raw, oversub_halves, lat, rack_raw);
        let mut net = NetModel::with_topology(NetSpec::ethernet_25g(), topo, rack_of);
        let mut now = 0;
        let mut expect_payload = 0u64;
        let mut msgs = 0u64;
        for (src, dst, bytes, gap) in transfers {
            now += gap;
            net.transfer(now, src, dst, bytes);
            if src != dst {
                expect_payload += bytes;
                msgs += 1;
            }
        }
        let tier = *net.tier_traffic();
        prop_assert_eq!(tier.intra_wire + tier.cross_wire, net.total_wire());
        prop_assert_eq!(tier.intra_payload + tier.cross_payload, net.total_payload());
        prop_assert_eq!(net.total_payload(), expect_payload);
        prop_assert_eq!(
            net.total_wire(),
            expect_payload + msgs * net.spec().header_bytes
        );
        let tx: u64 = (0..net.nodes()).map(|n| net.node_traffic(n).tx_bytes).sum();
        let rx: u64 = (0..net.nodes()).map(|n| net.node_traffic(n).rx_bytes).sum();
        prop_assert_eq!(tx, net.total_wire());
        prop_assert_eq!(rx, net.total_wire());
        // Cross-rack wire bytes equal the sum over racks of uplink TX (and
        // of uplink RX) — the ToR counters see exactly the cross tier.
        let up: u64 = (0..net.racks()).map(|r| net.rack_traffic(r).up_bytes).sum();
        let down: u64 = (0..net.racks()).map(|r| net.rack_traffic(r).down_bytes).sum();
        prop_assert_eq!(up, tier.cross_wire);
        prop_assert_eq!(down, tier.cross_wire);
    }

    /// A tiered fabric never beats the flat non-blocking fabric for the
    /// same transfer schedule, and both respect causality (arrival after
    /// submission).
    #[test]
    fn tiered_fabric_is_never_faster_than_flat(
        racks_raw in 0usize..4,
        oversub_halves in 0u64..8,
        lat in 0u64..5_000,
        rack_raw in proptest::collection::vec(0usize..4, 6..7),
        transfers in proptest::collection::vec(
            (0usize..6, 0usize..6, 1u64..2_000_000, 0u64..20_000),
            1..60,
        ),
    ) {
        let (topo, rack_of) = make_topology(racks_raw, oversub_halves, lat, rack_raw);
        let mut flat = NetModel::new(NetSpec::ethernet_25g(), 6);
        let mut tiered = NetModel::with_topology(NetSpec::ethernet_25g(), topo, rack_of);
        let mut now = 0;
        for (src, dst, bytes, gap) in transfers {
            now += gap;
            let t_flat = flat.transfer(now, src, dst, bytes);
            let t_tier = tiered.transfer(now, src, dst, bytes);
            prop_assert!(t_flat >= now && t_tier >= now, "arrival before submission");
            prop_assert!(
                t_tier >= t_flat,
                "tiered fabric beat the non-blocking switch: {} < {}",
                t_tier,
                t_flat
            );
        }
    }
}
