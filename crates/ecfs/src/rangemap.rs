//! An interval map over byte offsets with three insertion disciplines.
//!
//! Every log-structured update scheme needs to answer "what is the newest
//! content for `[off, off+len)`?" under arbitrary overlap. [`RangeMap`]
//! keeps non-overlapping, offset-sorted entries of [`Chunk`]s and supports:
//!
//! * [`RangeMap::insert`] — newest wins (data logs, read caches; paper
//!   Eq. (4): the latest update for the same location is the valid one),
//! * [`RangeMap::insert_absent`] — first wins (PARIX's original-data
//!   capture: only the value before the *first* update matters),
//! * [`RangeMap::insert_xor`] — accumulate by XOR (delta logs; paper
//!   Eq. (3): same-offset deltas fold),
//!
//! plus adjacency coalescing, which is precisely the paper's
//! "adjacent records merged into fewer, larger entries" optimization. The
//! map works on ghost (timing-only) chunks as well as real bytes.

use crate::scheme::Chunk;
use std::collections::BTreeMap;

/// Insertion discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// Later inserts overwrite overlapping older content.
    Overwrite,
    /// Later inserts fill only gaps; existing content is preserved.
    Absent,
    /// Overlaps combine by XOR; gaps are filled.
    Xor,
}

/// Non-overlapping, offset-sorted interval map of chunks.
#[derive(Debug, Default, Clone)]
pub struct RangeMap {
    /// start offset -> chunk (entries never overlap).
    entries: BTreeMap<u64, Chunk>,
    /// Total bytes covered (maintained incrementally).
    covered: u64,
}

impl RangeMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no ranges are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes covered by all entries.
    pub fn covered_bytes(&self) -> u64 {
        self.covered
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.covered = 0;
    }

    /// Iterates `(offset, chunk)` in offset order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Chunk)> {
        self.entries.iter().map(|(&o, c)| (o, c))
    }

    /// Drains all entries in offset order.
    pub fn drain(&mut self) -> Vec<(u64, Chunk)> {
        self.covered = 0;
        std::mem::take(&mut self.entries).into_iter().collect()
    }

    /// Newest-wins insertion with adjacency coalescing.
    pub fn insert(&mut self, off: u64, chunk: Chunk) {
        self.insert_with(off, chunk, Discipline::Overwrite);
    }

    /// First-wins insertion (only gaps are filled).
    pub fn insert_absent(&mut self, off: u64, chunk: Chunk) {
        self.insert_with(off, chunk, Discipline::Absent);
    }

    /// XOR-accumulating insertion.
    pub fn insert_xor(&mut self, off: u64, chunk: Chunk) {
        self.insert_with(off, chunk, Discipline::Xor);
    }

    /// General insertion under a discipline.
    ///
    /// # Panics
    /// Panics on zero-length chunks.
    pub fn insert_with(&mut self, off: u64, chunk: Chunk, disc: Discipline) {
        assert!(chunk.len > 0, "zero-length range");
        let end = off + chunk.len;

        // Collect the keys of entries overlapping [off, end).
        let overlapping: Vec<u64> = {
            // Any entry starting before `end` could overlap; walk back from
            // there. Entries are non-overlapping, so only the last one
            // starting at or before `off` can cross `off` from the left.
            let mut keys: Vec<u64> = self.entries.range(off..end).map(|(&k, _)| k).collect();
            if let Some((&k, c)) = self.entries.range(..off).next_back() {
                if k + c.len > off {
                    keys.insert(0, k);
                }
            }
            keys
        };

        match disc {
            Discipline::Overwrite => {
                // Carve out the overlapped parts of existing entries, then
                // insert the new chunk whole.
                for k in overlapping {
                    // INVARIANT: `overlapping` keys were collected from this map
                    // above, and nothing was removed since.
                    let existing = self.entries.remove(&k).unwrap();
                    self.covered -= existing.len;
                    let (left, _mid, right) = split3(k, existing, off, end);
                    if let Some((lo, lc)) = left {
                        self.covered += lc.len;
                        self.entries.insert(lo, lc);
                    }
                    if let Some((ro, rc)) = right {
                        self.covered += rc.len;
                        self.entries.insert(ro, rc);
                    }
                }
                self.covered += chunk.len;
                self.entries.insert(off, chunk);
            }
            Discipline::Absent => {
                // Keep existing entries; fill only the gaps with slices of
                // the new chunk.
                let mut cursor = off;
                let mut gaps: Vec<(u64, u64)> = Vec::new(); // (start, len)
                for &k in &overlapping {
                    let c = &self.entries[&k];
                    let e_start = k.max(off);
                    if e_start > cursor {
                        gaps.push((cursor, e_start - cursor));
                    }
                    cursor = cursor.max(k + c.len);
                }
                if cursor < end {
                    gaps.push((cursor, end - cursor));
                }
                for (gs, gl) in gaps {
                    let piece = slice_chunk(&chunk, gs - off, gl);
                    self.covered += piece.len;
                    self.entries.insert(gs, piece);
                }
            }
            Discipline::Xor => {
                // XOR into overlapped parts; insert slices into gaps.
                let mut cursor = off;
                let mut to_insert: Vec<(u64, Chunk)> = Vec::new();
                for &k in &overlapping {
                    // INVARIANT: `overlapping` keys were collected from this map
                    // above, and nothing was removed since.
                    let existing = self.entries.remove(&k).unwrap();
                    self.covered -= existing.len;
                    let e_end = k + existing.len;
                    // Gap before this entry.
                    let e_start = k.max(off);
                    if e_start > cursor {
                        to_insert
                            .push((cursor, slice_chunk(&chunk, cursor - off, e_start - cursor)));
                    }
                    // Overlapped middle: xor the intersecting span.
                    let i_start = e_start;
                    let i_end = e_end.min(end);
                    if i_end > i_start {
                        // Split the existing entry into pre / mid / post.
                        let (left, mid, right) = split3(k, existing, i_start, i_end);
                        if let Some((lo, lc)) = left {
                            to_insert.push((lo, lc));
                        }
                        if let Some((ro, rc)) = right {
                            to_insert.push((ro, rc));
                        }
                        // INVARIANT: guarded by `i_end > i_start`, so split3 returned
                        // a middle piece.
                        let (mo, mut mc) = mid.expect("mid overlap exists");
                        let patch = slice_chunk(&chunk, mo - off, mc.len);
                        mc.xor_in(&patch);
                        to_insert.push((mo, mc));
                    } else {
                        // Unreachable by construction (collected entries
                        // always intersect), but harmless: restore as-is.
                        to_insert.push((k, existing));
                    }
                    cursor = cursor.max(i_end);
                }
                if cursor < end {
                    to_insert.push((cursor, slice_chunk(&chunk, cursor - off, end - cursor)));
                }
                for (o, c) in to_insert {
                    self.covered += c.len;
                    self.entries.insert(o, c);
                }
            }
        }
        self.coalesce_around(off, end);
    }

    /// Overlays stored content onto `buf` (which represents
    /// `[off, off+len)`); returns `true` if the map fully covers the range.
    pub fn overlay(&self, off: u64, len: u64, mut buf: Option<&mut [u8]>) -> bool {
        let end = off + len;
        let mut cursor = off;
        // Left-crossing entry.
        let start_key = self
            .entries
            .range(..off)
            .next_back()
            .filter(|(&k, c)| k + c.len > off)
            .map(|(&k, _)| k);
        let iter = start_key
            .into_iter()
            .chain(self.entries.range(off..end).map(|(&k, _)| k));
        for k in iter {
            let c = &self.entries[&k];
            let e_end = k + c.len;
            let i_start = k.max(off);
            let i_end = e_end.min(end);
            if i_start > cursor {
                return false_with_patch(self, cursor, end, buf);
            }
            if let (Some(b), Some(bytes)) = (buf.as_deref_mut(), c.bytes.as_ref()) {
                let dst = &mut b[(i_start - off) as usize..(i_end - off) as usize];
                dst.copy_from_slice(&bytes[(i_start - k) as usize..(i_end - k) as usize]);
            }
            cursor = i_end;
            if cursor >= end {
                return true;
            }
        }
        cursor >= end
    }

    /// Merges entries that are exactly adjacent (both real or both ghost) —
    /// the paper's request-coalescing step.
    fn coalesce_around(&mut self, off: u64, end: u64) {
        // Look at the entry before `off` and entries within [off, end], and
        // merge adjacent runs pairwise.
        let mut keys: Vec<u64> = self
            .entries
            .range(..off)
            .next_back()
            .map(|(&k, _)| k)
            .into_iter()
            .chain(self.entries.range(off..=end).map(|(&k, _)| k))
            .collect();
        keys.sort_unstable();
        for w in keys.windows(2) {
            let (a, b) = (w[0], w[1]);
            let (Some(ca), Some(cb)) = (self.entries.get(&a), self.entries.get(&b)) else {
                continue;
            };
            if a + ca.len != b {
                continue;
            }
            let mergeable = matches!((&ca.bytes, &cb.bytes), (Some(_), Some(_)) | (None, None));
            if !mergeable {
                continue;
            }
            // INVARIANT: `a` and `b` were both read from the map in this
            // same loop iteration.
            let cb = self.entries.remove(&b).unwrap();
            // INVARIANT: as above — `a` is still present; only `b` was
            // removed.
            let ca = self.entries.get_mut(&a).unwrap();
            if let (Some(av), Some(bv)) = (ca.bytes.as_mut(), cb.bytes.as_ref()) {
                // Contiguous views of one backing buffer join for free
                // (common when an entry was split and re-merges). A run
                // that solely owns its buffer grows in place (amortized
                // Vec growth, copying only the new bytes — the sequential
                // append case). Only a shared, disjoint buffer pays a full
                // counted re-concatenation through the pool.
                if !av.try_join(bv) && !av.try_extend_from_slice(bv) {
                    let mut m = tsue_buf::BytesMut::take(av.len() + bv.len());
                    m.as_mut()[..av.len()].copy_from_slice(av);
                    m.as_mut()[av.len()..].copy_from_slice(bv);
                    tsue_buf::count_copy((av.len() + bv.len()) as u64);
                    *av = m.freeze();
                }
            }
            ca.len += cb.len;
        }
    }
}

/// Patches whatever partial coverage exists, then reports non-coverage.
fn false_with_patch(map: &RangeMap, cursor: u64, end: u64, buf: Option<&mut [u8]>) -> bool {
    // Still overlay the remaining covered pieces for content correctness.
    if let Some(b) = buf {
        let off0 = end - b.len() as u64;
        for (k, c) in map.entries.range(cursor..end) {
            if let Some(bytes) = c.bytes.as_ref() {
                let i_end = (k + c.len).min(end);
                let dst = &mut b[(*k - off0) as usize..(i_end - off0) as usize];
                dst.copy_from_slice(&bytes[..(i_end - k) as usize]);
            }
        }
    }
    false
}

/// Splits `chunk` (starting at `start`) into (before `lo`, [`lo`,`hi`),
/// after `hi`) pieces, any of which may be absent.
/// One positioned piece produced by [`split3`]: `(offset, chunk)`.
type Piece = Option<(u64, Chunk)>;

fn split3(start: u64, chunk: Chunk, lo: u64, hi: u64) -> (Piece, Piece, Piece) {
    let end = start + chunk.len;
    let left = if start < lo {
        Some((start, slice_chunk(&chunk, 0, lo.min(end) - start)))
    } else {
        None
    };
    let mid_lo = lo.max(start);
    let mid_hi = hi.min(end);
    let mid = if mid_hi > mid_lo {
        Some((mid_lo, slice_chunk(&chunk, mid_lo - start, mid_hi - mid_lo)))
    } else {
        None
    };
    let right = if end > hi {
        Some((
            hi.max(start),
            slice_chunk(&chunk, hi.max(start) - start, end - hi.max(start)),
        ))
    } else {
        None
    };
    (left, mid, right)
}

/// Slices `len` bytes at relative offset `rel` out of a chunk — O(1), the
/// piece shares the original's backing buffer.
fn slice_chunk(chunk: &Chunk, rel: u64, len: u64) -> Chunk {
    chunk.slice(rel, len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(byte: u8, len: usize) -> Chunk {
        Chunk::real(vec![byte; len])
    }

    /// Reference model: plain byte map.
    fn check_against_model(map: &RangeMap, model: &std::collections::HashMap<u64, u8>, span: u64) {
        for off in 0..span {
            let mut buf = [0xEEu8; 1];
            let covered = map.overlay(off, 1, Some(&mut buf));
            match model.get(&off) {
                Some(&b) => {
                    assert!(covered, "offset {off} should be covered");
                    assert_eq!(buf[0], b, "offset {off}");
                }
                None => assert!(!covered, "offset {off} should be uncovered"),
            }
        }
    }

    #[test]
    fn overwrite_newest_wins() {
        let mut m = RangeMap::new();
        m.insert(10, real(1, 10)); // [10,20) = 1
        m.insert(15, real(2, 10)); // [15,25) = 2
        let mut model = std::collections::HashMap::new();
        for o in 10..15 {
            model.insert(o, 1);
        }
        for o in 15..25 {
            model.insert(o, 2);
        }
        check_against_model(&m, &model, 30);
        assert_eq!(m.covered_bytes(), 15);
    }

    #[test]
    fn overwrite_interior_split() {
        let mut m = RangeMap::new();
        m.insert(0, real(7, 30));
        m.insert(10, real(9, 5)); // hole punched in the middle
        let mut buf = vec![0u8; 30];
        assert!(m.overlay(0, 30, Some(&mut buf)));
        for (i, &b) in buf.iter().enumerate() {
            let expect = if (10..15).contains(&i) { 9 } else { 7 };
            assert_eq!(b, expect, "i={i}");
        }
        assert_eq!(m.covered_bytes(), 30);
    }

    #[test]
    fn absent_preserves_existing() {
        let mut m = RangeMap::new();
        m.insert_absent(10, real(1, 10));
        m.insert_absent(5, real(2, 10)); // only [5,10) takes
        let mut model = std::collections::HashMap::new();
        for o in 5..10 {
            model.insert(o, 2);
        }
        for o in 10..20 {
            model.insert(o, 1);
        }
        check_against_model(&m, &model, 25);
    }

    #[test]
    fn xor_accumulates() {
        let mut m = RangeMap::new();
        m.insert_xor(0, real(0b0011, 8));
        m.insert_xor(4, real(0b0101, 8)); // overlap [4,8)
        let mut buf = vec![0u8; 12];
        assert!(m.overlay(0, 12, Some(&mut buf)));
        for (i, &b) in buf.iter().enumerate() {
            let expect = match i {
                0..=3 => 0b0011,
                4..=7 => 0b0011 ^ 0b0101,
                _ => 0b0101,
            };
            assert_eq!(b, expect, "i={i}");
        }
    }

    #[test]
    fn adjacency_coalesces() {
        let mut m = RangeMap::new();
        m.insert(0, real(1, 4));
        m.insert(4, real(1, 4));
        m.insert(8, real(1, 4));
        assert_eq!(m.len(), 1, "adjacent equal-type entries merge");
        assert_eq!(m.covered_bytes(), 12);
    }

    #[test]
    fn ghost_chunks_track_coverage_only() {
        let mut m = RangeMap::new();
        m.insert(100, Chunk::ghost(50));
        m.insert(120, Chunk::ghost(100));
        assert_eq!(m.covered_bytes(), 120);
        assert!(m.overlay(100, 120, None));
        assert!(!m.overlay(90, 20, None));
    }

    #[test]
    fn overlay_partial_returns_false_but_patches() {
        let mut m = RangeMap::new();
        m.insert(10, real(5, 10));
        let mut buf = vec![0u8; 30];
        assert!(!m.overlay(0, 30, Some(&mut buf)));
        assert_eq!(buf[10], 5);
        assert_eq!(buf[19], 5);
        assert_eq!(buf[0], 0);
        assert_eq!(buf[25], 0);
    }

    #[test]
    fn drain_empties_in_order() {
        let mut m = RangeMap::new();
        m.insert(30, real(3, 4));
        m.insert(10, real(1, 4));
        m.insert(20, real(2, 4));
        let drained = m.drain();
        assert_eq!(drained.len(), 3);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(m.is_empty());
        assert_eq!(m.covered_bytes(), 0);
    }

    #[test]
    fn randomized_against_reference_model() {
        // Deterministic pseudo-random fuzz of Overwrite mode vs a byte map.
        let mut m = RangeMap::new();
        let mut model = std::collections::HashMap::new();
        let mut x: u64 = 0x12345;
        for i in 0..500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let off = (x >> 16) % 200;
            let len = 1 + ((x >> 40) % 40);
            let val = (i % 251) as u8;
            m.insert(off, Chunk::real(vec![val; len as usize]));
            for o in off..off + len {
                model.insert(o, val);
            }
        }
        check_against_model(&m, &model, 256);
        assert_eq!(m.covered_bytes(), model.len() as u64);
    }

    #[test]
    fn xor_randomized_against_reference() {
        let mut m = RangeMap::new();
        let mut model = std::collections::HashMap::<u64, u8>::new();
        let mut x: u64 = 99;
        for _ in 0..300 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let off = (x >> 16) % 150;
            let len = 1 + ((x >> 40) % 30);
            let val = (x >> 8) as u8;
            m.insert_xor(off, Chunk::real(vec![val; len as usize]));
            for o in off..off + len {
                *model.entry(o).or_insert(0) ^= val;
            }
        }
        for off in 0..200u64 {
            let mut buf = [0u8; 1];
            let covered = m.overlay(off, 1, Some(&mut buf));
            match model.get(&off) {
                Some(&b) => {
                    assert!(covered);
                    assert_eq!(buf[0], b, "offset {off}");
                }
                None => assert!(!covered),
            }
        }
    }
}
