//! Background scrub: sweeping the OSD stores against their checksum
//! tables and repairing rot from the stripe's surviving blocks.
//!
//! The scrubber is a DES citizen: [`start_scrub`] paces full-block
//! verification reads at [`crate::ClusterConfig::scrub_mb_s`], so scrub
//! traffic interleaves with (and steals device time from) client I/O.
//! Detection is cheap and always safe; *repair* is only provably correct
//! when the stripe's store-level shards form a codeword, which
//! log-buffered schemes violate whenever parity deltas sit unmerged. Two
//! repair modes handle that:
//!
//! * **Digest-guarded (mid-run)** — reconstruct the corrupt page from
//!   `k` clean survivors, but install it only when the result matches
//!   the page's stored digest: the digest was computed from the last
//!   good content, so a match proves the decode is byte-exact
//!   regardless of log state. A mismatch (stale parity, mid-merge cut)
//!   leaves the page queued.
//! * **Final sweep** ([`run_full_scrub`]) — after logs drain, survivors
//!   are authoritative: repair everything, re-encode parity poisoned by
//!   deltas that folded rotted bytes, and count what is genuinely
//!   unrecoverable (fewer than `k` clean live siblings).
//!
//! All repair I/O is charged: survivor device reads, cross-node
//! transfers (visible in per-tier byte accounting), GF decode time, and
//! the home's page write.

use crate::osd::{BlockId, STREAM_BLOCK};
use crate::{Cluster, ClusterCore};
use std::collections::BTreeSet;
use tsue_device::IoKind;
use tsue_integrity::{checksum, PAGE};
use tsue_sim::{Sim, Time, SECOND};

/// Scrub cursor and repair queue, owned by [`crate::ClusterCore`].
#[derive(Debug, Default)]
pub struct ScrubState {
    /// OSD the cursor is sweeping.
    cursor_osd: usize,
    /// Index into that OSD's sorted block list.
    cursor_block: usize,
    /// Blocks with detected corruption awaiting a safe repair point.
    queue: Vec<(usize, BlockId)>,
    /// Dedup set over `queue`.
    queued: BTreeSet<(usize, BlockId)>,
    /// True while paced sweep ticks are scheduled.
    pub active: bool,
}

/// Outcome of one [`run_full_scrub`] sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FullScrubReport {
    /// Blocks verified this sweep.
    pub scrubbed: u64,
    /// Corrupt pages repaired this sweep.
    pub repaired: u64,
    /// Corrupt pages left unrepairable (fewer than `k` clean survivors).
    pub unrecoverable: u64,
    /// Poisoned parity blocks re-encoded from data.
    pub parity_reencoded: u64,
}

/// Records a corruption detection on `block` at `osd`: counts its
/// corrupt pages once and queues the block for repair. Idempotent per
/// `(osd, block)` until the block is repaired clean.
pub fn note_corrupt_block(core: &mut ClusterCore, osd: usize, block: BlockId) {
    if core.scrub.queued.insert((osd, block)) {
        core.scrub.queue.push((osd, block));
        core.metrics.corruptions_detected += core.osds[osd].corrupt_pages(block).len() as u64;
    }
}

/// Virtual time between scrub ticks: one block per tick at the
/// configured aggregate rate.
fn tick_interval(core: &ClusterCore) -> Time {
    let bs = core.cfg.stripe.block_size;
    (bs.saturating_mul(SECOND) / (core.cfg.scrub_mb_s << 20)).max(1)
}

/// Starts the paced background sweep. No-op unless the run materializes
/// content with checksums and `scrub_mb_s > 0`.
pub fn start_scrub(world: &mut Cluster, sim: &mut Sim<Cluster>) {
    let cfg = &world.core.cfg;
    if cfg.scrub_mb_s == 0 || !cfg.materialize || !cfg.checksums || world.core.scrub.active {
        return;
    }
    world.core.scrub.active = true;
    let delay = tick_interval(&world.core);
    sim.schedule(delay, scrub_tick);
}

/// One paced tick: verify the next block under the cursor, then
/// reschedule. Stops (without rescheduling) once the experiment window
/// closes — the scenario-end [`run_full_scrub`] finishes the job.
fn scrub_tick(world: &mut Cluster, sim: &mut Sim<Cluster>) {
    if !world.core.accepting(sim.now()) {
        world.core.scrub.active = false;
        return;
    }
    let osds = world.core.cfg.osds;
    for _ in 0..osds {
        let osd = world.core.scrub.cursor_osd;
        if world.core.osds[osd].dead {
            world.core.scrub.cursor_osd = (osd + 1) % osds;
            world.core.scrub.cursor_block = 0;
            continue;
        }
        let ids = world.core.osds[osd].block_ids();
        let Some(&block) = ids.get(world.core.scrub.cursor_block) else {
            world.core.scrub.cursor_osd = (osd + 1) % osds;
            world.core.scrub.cursor_block = 0;
            continue;
        };
        world.core.scrub.cursor_block += 1;
        scrub_one(&mut world.core, sim, osd, block);
        break;
    }
    let delay = tick_interval(&world.core);
    sim.schedule(delay, scrub_tick);
}

/// Verifies one block (charging its full-block device read); on
/// corruption, queues it and attempts a digest-guarded repair.
fn scrub_one(core: &mut ClusterCore, sim: &mut Sim<Cluster>, osd: usize, block: BlockId) {
    let bs = core.cfg.stripe.block_size;
    let dev = core.osds[osd].block_offset(block);
    let done = core.osds[osd]
        .device
        .submit(sim.now(), IoKind::Read, dev, bs, STREAM_BLOCK);
    // One scrub round = the full-block verification read.
    let round = core.metrics.blocks_scrubbed;
    core.metrics
        .obs
        .op_complete(tsue_obs::OpClass::ScrubRound, round, osd, sim.now(), done);
    core.metrics.blocks_scrubbed += 1;
    if core.osds[osd].corrupt_pages(block).is_empty() {
        return;
    }
    note_corrupt_block(core, osd, block);
    repair_block(core, sim, osd, block, RepairMode::Guarded);
    if core.osds[osd].corrupt_pages(block).is_empty() {
        core.scrub.queued.remove(&(osd, block));
        core.scrub.queue.retain(|e| *e != (osd, block));
    }
}

/// How aggressively a repair pass may act.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RepairMode {
    /// Mid-run: install a reconstructed page only when it matches the
    /// stored digest (provably byte-exact); never count unrecoverable.
    Guarded,
    /// Post-drain: survivors are authoritative — install every decode,
    /// count pages that lack `k` clean survivors as unrecoverable.
    Authoritative,
}

/// Repairs the corrupt pages of one block from `k` clean live siblings.
/// Returns `(pages_repaired, pages_unrecoverable)`.
fn repair_block(
    core: &mut ClusterCore,
    sim: &mut Sim<Cluster>,
    osd: usize,
    block: BlockId,
    mode: RepairMode,
) -> (u64, u64) {
    let now = sim.now();
    let k = core.cfg.stripe.k;
    let bps = core.cfg.stripe.blocks_per_stripe();
    let bs = core.cfg.stripe.block_size;
    let gstripe = core.global_stripe(block.file, block.stripe);

    // Live siblings hosting their role. Dirty parity is stale relative
    // to the stripe, so an *ungated* (authoritative) decode must never
    // source it — but under the digest guard a stale shard is harmless
    // (a wrong decode simply fails the gate) and is exactly what
    // recovers rot on a stripe whose unmerged appends never touched the
    // rotted page. Guarded repairs therefore keep dirty parity as a
    // last-resort source, ordered after every consistent shard.
    let mut siblings: Vec<(usize, usize)> = Vec::with_capacity(bps - 1); // (role, owner)
    let mut stale: Vec<(usize, usize)> = Vec::new();
    for role in 0..bps {
        if role == block.role {
            continue;
        }
        let owner = core.owner_of(gstripe, role);
        if !core.mds.is_alive(owner) || !core.osds[owner].hosts(block_for(block, role)) {
            continue;
        }
        if role >= k && core.mds.parity_is_dirty(gstripe, role) {
            if mode == RepairMode::Guarded {
                stale.push((role, owner));
            }
            continue;
        }
        siblings.push((role, owner));
    }
    siblings.extend(stale);

    let mut repaired = 0u64;
    let mut unrecoverable = 0u64;
    for page in core.osds[osd].corrupt_pages(block) {
        let s = page as u64 * PAGE;
        let len = (bs - s).min(PAGE);
        if mode == RepairMode::Guarded && core.osds[osd].page_tainted(block, page) {
            // The stored digest blesses garbage: no decode can ever
            // match it, so the page waits for the authoritative sweep.
            continue;
        }
        // Page-range shards from the first k siblings whose own page
        // verifies clean.
        let mut shards: Vec<(usize, tsue_buf::Bytes)> = Vec::with_capacity(k);
        for &(role, owner) in &siblings {
            if shards.len() == k {
                break;
            }
            let sib = block_for(block, role);
            if core.osds[owner].verify_range(sib, s, len).is_err() {
                continue;
            }
            if let Some(bytes) = core.osds[owner].peek_block_range(sib, s, len) {
                shards.push((role, bytes));
            }
        }
        if shards.len() < k {
            if mode == RepairMode::Authoritative {
                core.metrics.corruptions_unrecoverable += 1;
                unrecoverable += 1;
            }
            continue;
        }
        let mut out = vec![0u8; len as usize];
        {
            let borrowed: Vec<(usize, &[u8])> =
                shards.iter().map(|(r, b)| (*r, b.as_slice())).collect();
            core.rs
                .reconstruct_one(&borrowed, block.role, &mut out)
                // INVARIANT: the shard set was assembled from exactly k clean
                // live roles above; decode only fails with fewer than k.
                .expect("k clean survivors by construction");
        }
        if mode == RepairMode::Guarded
            && core.osds[osd].page_digest(block, page) != Some(checksum(&out))
        {
            // Store-level shards were not a codeword for this page
            // (unmerged log deltas); leave it queued for the final sweep.
            continue;
        }
        // Charge the repair: k survivor page reads, transfers to the
        // home (per-tier accounted), the decode, and the page rewrite.
        let mut ready = now;
        for &(role, _) in &shards {
            let owner = siblings
                .iter()
                .find(|&&(r, _)| r == role)
                .map(|&(_, o)| o)
                // INVARIANT: `shards` was built by reading from `siblings`, so
                // every shard role has an owner entry there.
                .expect("shard came from a sibling");
            let sib_dev = core.osds[owner].block_offset(block_for(block, role));
            let t_read =
                core.osds[owner]
                    .device
                    .submit(now, IoKind::Read, sib_dev + s, len, STREAM_BLOCK);
            let arrive = core
                .net
                .transfer(t_read, core.osds[owner].node, core.osds[osd].node, len);
            ready = ready.max(arrive);
        }
        let t_decoded = ready + core.gf_time(len * k as u64);
        let dev = core.osds[osd].block_offset(block);
        core.osds[osd]
            .device
            .submit(t_decoded, IoKind::Write, dev + s, len, STREAM_BLOCK);
        core.osds[osd].install_repaired_page(block, page, &out);
        core.metrics.corruptions_repaired += 1;
        repaired += 1;
    }
    (repaired, unrecoverable)
}

/// Sibling block id: same file/stripe, different role.
fn block_for(block: BlockId, role: usize) -> BlockId {
    BlockId {
        file: block.file,
        stripe: block.stripe,
        role,
    }
}

/// Authoritative full sweep, to run after scheme logs have drained
/// (flush barrier): verifies every block on every live OSD, repairs all
/// corrupt pages from clean survivors, re-encodes parity poisoned by
/// deltas that folded rotted source bytes, and counts the truly
/// unrecoverable remainder. Safe to call repeatedly; clean sweeps only
/// bump [`crate::ClusterMetrics::blocks_scrubbed`].
pub fn run_full_scrub(world: &mut Cluster, sim: &mut Sim<Cluster>) -> FullScrubReport {
    let mut report = FullScrubReport::default();
    if !world.core.cfg.materialize || !world.core.cfg.checksums {
        return report;
    }
    let k = world.core.cfg.stripe.k;
    let m = world.core.cfg.stripe.m;
    let bs = world.core.cfg.stripe.block_size;

    // Rot that rode a delta to parity: those parity blocks verify clean
    // against their own checksums but hold wrong content — mark them
    // dirty so the re-encode pass below rebuilds them from data.
    for osd in 0..world.core.cfg.osds {
        for block in world.core.osds[osd].take_poisoned() {
            let gstripe = world.core.global_stripe(block.file, block.stripe);
            for j in 0..m {
                world.core.mds.mark_parity_dirty(gstripe, k + j);
            }
        }
    }

    // Detect everywhere (charging the verification reads), then repair:
    // data first (decode needs clean data more than clean parity),
    // parity re-encode, then remaining parity pages, and one retry round
    // for pages whose survivors only became clean mid-pass.
    let mut corrupt: Vec<(usize, BlockId)> = Vec::new();
    for osd in 0..world.core.cfg.osds {
        if world.core.osds[osd].dead {
            continue;
        }
        for block in world.core.osds[osd].block_ids() {
            let dev = world.core.osds[osd].block_offset(block);
            world.core.osds[osd]
                .device
                .submit(sim.now(), IoKind::Read, dev, bs, STREAM_BLOCK);
            world.core.metrics.blocks_scrubbed += 1;
            report.scrubbed += 1;
            if !world.core.osds[osd].corrupt_pages(block).is_empty() {
                note_corrupt_block(&mut world.core, osd, block);
                corrupt.push((osd, block));
            }
        }
    }
    // Fold in read-path/tick detections whose homes are still live (the
    // sweep above re-finds them, but queue entries may predate it).
    let queued: Vec<(usize, BlockId)> = world.core.scrub.queue.clone();
    for (osd, block) in queued {
        if !world.core.osds[osd].dead && !corrupt.contains(&(osd, block)) {
            corrupt.push((osd, block));
        }
    }
    corrupt.sort_unstable_by_key(|&(osd, b)| (b.role >= k, osd, b));

    // Digest-guarded rounds to fixpoint: every install is provably
    // byte-exact (stale parity may source a decode — the gate rejects
    // any wrong result), and parity re-encode only runs for stripes
    // whose data is clean, so rot never rides a re-encode into a fresh
    // codeword. Unrecoverable is never counted here — a page that looks
    // stuck this round may become repairable once a sibling is fixed.
    for _round in 0..3 {
        let mut progressed = false;
        for &(osd, block) in &corrupt {
            if world.core.osds[osd].corrupt_pages(block).is_empty() {
                continue;
            }
            let (fixed, _) = repair_block(&mut world.core, sim, osd, block, RepairMode::Guarded);
            report.repaired += fixed;
            progressed |= fixed > 0;
        }
        let reencoded = crate::repair_all_dirty_parity(world, sim);
        report.parity_reencoded += reencoded;
        progressed |= reencoded > 0;
        if !progressed {
            break;
        }
    }
    // Authoritative finish: whatever the guard could not prove (tainted
    // digests that bless garbage) now installs from clean survivors
    // only, and the remainder is counted unrecoverable exactly once.
    for &(osd, block) in &corrupt {
        if !world.core.osds[osd].corrupt_pages(block).is_empty() {
            let (fixed, lost) =
                repair_block(&mut world.core, sim, osd, block, RepairMode::Authoritative);
            report.repaired += fixed;
            report.unrecoverable += lost;
        }
        if world.core.osds[osd].corrupt_pages(block).is_empty() {
            world.core.scrub.queued.remove(&(osd, block));
            world.core.scrub.queue.retain(|e| *e != (osd, block));
        }
    }
    // Stripes whose data only came clean in the authoritative pass can
    // settle their parity now.
    report.parity_reencoded += crate::repair_all_dirty_parity(world, sim);
    report
}
