//! Fluent construction of experiment clusters.
//!
//! [`ClusterBuilder`] is the single entry point for assembling a
//! [`Cluster`]: it owns a [`ClusterConfig`] under construction, the
//! scheme choice (a closure or a [`SchemeRegistry`] name), and the
//! workload to install, so call sites never hand-wire
//! `Cluster::new(cfg, make_scheme)` + `set_workload` sequences again.
//!
//! ```
//! use tsue_ecfs::{ClusterBuilder, InstantScheme};
//!
//! let world = ClusterBuilder::ssd(4, 2, 2)
//!     .osds(8)
//!     .file_size_per_client(1 << 20)
//!     .seed(7)
//!     .scheme_fn(|_| Box::new(InstantScheme::default()))
//!     .build();
//! assert_eq!(world.core.cfg.osds, 8);
//! ```

use crate::registry::{MakeScheme, SchemeError, SchemeParams, SchemeRegistry};
use crate::{Cluster, ClusterConfig, ComputeSpec, DeviceKind, PlacementKind, UpdateScheme};
use tsue_ec::StripeConfig;
use tsue_net::{NetSpec, Topology};
use tsue_trace::{TraceOp, WorkloadProfile};

/// Workload installed right after the cluster is provisioned.
enum Workload {
    /// No generator; callers drive clients manually.
    None,
    /// Synthetic profile, per-client seeded.
    Profile(WorkloadProfile),
    /// Recorded trace, phase-shifted per client.
    Replay(Vec<TraceOp>),
}

/// Fluent builder for [`Cluster`].
pub struct ClusterBuilder {
    cfg: ClusterConfig,
    make: Option<MakeScheme>,
    workload: Workload,
    ops_per_client: Option<u64>,
}

impl ClusterBuilder {
    /// Starts from the paper's SSD testbed shape (16 OSDs, 25 Gb/s
    /// Ethernet, 1 MiB blocks).
    pub fn ssd(k: usize, m: usize, clients: usize) -> Self {
        Self::from_config(ClusterConfig::ssd_testbed(k, m, clients))
    }

    /// Starts from the paper's HDD testbed shape (16 OSDs, 40 Gb/s
    /// InfiniBand).
    pub fn hdd(k: usize, m: usize, clients: usize) -> Self {
        Self::from_config(ClusterConfig::hdd_testbed(k, m, clients))
    }

    /// Starts from an explicit configuration (transition path for code
    /// still assembling [`ClusterConfig`] by hand).
    pub fn from_config(cfg: ClusterConfig) -> Self {
        ClusterBuilder {
            cfg,
            make: None,
            workload: Workload::None,
            ops_per_client: None,
        }
    }

    /// Number of OSD nodes.
    pub fn osds(mut self, n: usize) -> Self {
        self.cfg.osds = n;
        self
    }

    /// Number of closed-loop clients.
    pub fn clients(mut self, n: usize) -> Self {
        self.cfg.clients = n;
        self
    }

    /// Full stripe geometry override.
    pub fn stripe(mut self, stripe: StripeConfig) -> Self {
        self.cfg.stripe = stripe;
        self
    }

    /// Block size in bytes, keeping the current (k, m).
    pub fn block_size(mut self, bytes: u64) -> Self {
        self.cfg.stripe = StripeConfig::new(self.cfg.stripe.k, self.cfg.stripe.m, bytes);
        self
    }

    /// Device class backing every OSD. Call before [`Self::scheme`] so
    /// registry factories see the final device.
    pub fn device(mut self, device: DeviceKind) -> Self {
        self.cfg.device = device;
        self
    }

    /// Per-OSD device capacity in bytes (0 = derive from the footprint).
    pub fn device_capacity(mut self, bytes: u64) -> Self {
        self.cfg.device_capacity = bytes;
        self
    }

    /// Network fabric parameters.
    pub fn net(mut self, net: NetSpec) -> Self {
        self.cfg.net = net;
        self
    }

    /// Fabric shape: flat non-blocking switch (default) or racks behind
    /// oversubscribed ToR uplinks.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.cfg.topology = topology;
        self
    }

    /// Block placement policy (flat round-robin vs rack-aware spread).
    pub fn placement(mut self, placement: PlacementKind) -> Self {
        self.cfg.placement = placement;
        self
    }

    /// CPU cost model.
    pub fn compute(mut self, compute: ComputeSpec) -> Self {
        self.cfg.compute = compute;
        self
    }

    /// Bytes of file data owned by each client.
    pub fn file_size_per_client(mut self, bytes: u64) -> Self {
        self.cfg.file_size_per_client = bytes;
        self
    }

    /// Maintain real block/log bytes (correctness runs) instead of
    /// timing-only accounting.
    pub fn materialize(mut self, on: bool) -> Self {
        self.cfg.materialize = on;
        self
    }

    /// Maintain and verify per-page block checksums (default on; only
    /// effective together with [`Self::materialize`]).
    pub fn checksums(mut self, on: bool) -> Self {
        self.cfg.checksums = on;
        self
    }

    /// Background scrub rate in MiB/s per OSD (`0` disables; see
    /// [`crate::scrub`]).
    pub fn scrub_mb_s(mut self, rate: u64) -> Self {
        self.cfg.scrub_mb_s = rate;
        self
    }

    /// Parity-log replica count for log-buffered baselines (default 1 =
    /// no replication; see [`crate::ClusterConfig::log_replicas`]).
    pub fn log_replicas(mut self, n: usize) -> Self {
        self.cfg.log_replicas = n;
        self
    }

    /// Record per-extent arrival order (needed by correctness checks).
    pub fn record_arrivals(mut self, on: bool) -> Self {
        self.cfg.record_arrivals = on;
        self
    }

    /// Journal failure-window writes for replay after rebuild/heal
    /// (default on); off restores the drop-the-payload failover model.
    pub fn journal(mut self, on: bool) -> Self {
        self.cfg.journal = on;
        self
    }

    /// Master seed for workload generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Worker threads for byte-kernel parallelism. `1` (the default)
    /// runs everything inline; any value yields bit-identical results
    /// (see [`tsue_sim::exec`] for the tick-barrier rules).
    pub fn threads(mut self, n: usize) -> Self {
        self.cfg.threads = n;
        self
    }

    /// Installs an update scheme via an explicit per-OSD constructor.
    pub fn scheme_fn<F>(mut self, make: F) -> Self
    where
        F: FnMut(usize) -> Box<dyn UpdateScheme> + 'static,
    {
        self.make = Some(Box::new(make));
        self
    }

    /// Installs an update scheme by registry name, handing `knobs` (the
    /// scenario's per-scheme object, or `serde::Value::Null`) to its
    /// factory along with the builder's current device class.
    ///
    /// # Errors
    /// Unknown names and rejected knobs surface as [`SchemeError`].
    pub fn scheme(
        mut self,
        registry: &SchemeRegistry,
        name: &str,
        knobs: serde::Value,
    ) -> Result<Self, SchemeError> {
        let params = SchemeParams {
            device: self.cfg.device,
            knobs,
        };
        self.make = Some(registry.instantiate(name, &params)?);
        Ok(self)
    }

    /// Installs a synthetic workload profile on every client after
    /// provisioning.
    pub fn workload(mut self, profile: &WorkloadProfile) -> Self {
        self.workload = Workload::Profile(profile.clone());
        self
    }

    /// Installs a recorded trace, phase-shifted across clients.
    pub fn replay(mut self, ops: &[TraceOp]) -> Self {
        self.workload = Workload::Replay(ops.to_vec());
        self
    }

    /// Caps every client at `n` issued ops (fixed-work runs).
    pub fn ops_per_client(mut self, n: u64) -> Self {
        self.ops_per_client = Some(n);
        self
    }

    /// Builds the cluster: provisions files, installs the workload, and
    /// applies the per-client op budget.
    ///
    /// # Panics
    /// Panics when no scheme was chosen ([`Self::scheme`] /
    /// [`Self::scheme_fn`]) or when the configuration is inconsistent
    /// (cluster smaller than the stripe width).
    pub fn build(self) -> Cluster {
        let make = self
            .make
            // INVARIANT: documented build() contract — a cluster cannot be
            // assembled without a scheme; the message names the fix.
            .expect("ClusterBuilder: no scheme chosen — call .scheme() or .scheme_fn()");
        let mut world = Cluster::new(self.cfg, make);
        match &self.workload {
            Workload::None => {}
            Workload::Profile(p) => world.set_workload(p),
            Workload::Replay(ops) => world.set_replay(ops),
        }
        if let Some(n) = self.ops_per_client {
            for c in &mut world.core.clients {
                c.max_ops = Some(n);
            }
        }
        world
    }
}
