//! The degraded-write journal: durability for acked writes whose home
//! died (TSUE §4's promise that no acknowledged update is lost, extended
//! across failure windows).
//!
//! When a client write targets a block whose home OSD is dead and not yet
//! rebuilt, the extent is not dropped: the client re-ships it to the MDS
//! journal — physically hosted on a surviving designated peer (the
//! lowest-indexed live OSD), where it costs a network transfer and a
//! sequential log append — and the ack only fires once the entry is
//! durable. Journaled extents are *replayed* later, exactly once each:
//!
//! * into the **rebuilt** copy of the block, right after
//!   [`tsue_ec::RsCode::reconstruct_one`] and before the MDS rehome
//!   (see [`crate::recovery`]), or
//! * into the **healed** node's own stale copy when the home comes back
//!   before its rebuild ran (see [`crate::resync::heal_node`]).
//!
//! Replay applies entries in append order (one closed-loop client owns
//! each file, so per-block appends are already serialized) and emits the
//! matching parity deltas, keeping stripes consistent across the window.
//! Entries are deduplicated by `(op_id, ext)` so duplicate delivery — a
//! client retransmit racing its own failover timer — journals, and
//! therefore replays, a parked extent exactly once.

use crate::osd::{BlockId, STREAM_BLOCK, STREAM_JOURNAL};
use crate::scheme::Chunk;
use crate::{payload_into, Cluster, ClusterCore};
use std::collections::{BTreeMap, HashSet};
use tsue_device::IoKind;
use tsue_net::NodeId;
use tsue_sim::Sim;

/// One journaled degraded-write extent.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// The client op the extent belonged to (payload derivation).
    pub op_id: u64,
    /// Extent index within the op.
    pub ext: usize,
    /// Offset within the target block.
    pub off: u64,
    /// The parked payload (ghost in timing-only runs).
    pub data: Chunk,
}

/// The MDS-side journal of parked degraded-write extents.
#[derive(Debug, Default)]
pub struct DegradedJournal {
    /// Parked extents per target block, in append (arrival) order.
    /// Ordered by block so pending-work accounting walks deterministically.
    entries: BTreeMap<BlockId, Vec<JournalEntry>>,
    /// Dedupe set: `(op_id, ext)` pairs already journaled (duplicate
    /// delivery must not replay an extent twice).
    seen: HashSet<(u64, usize)>,
    /// Extents journaled (deduplicated).
    pub entries_appended: u64,
    /// Bytes journaled (deduplicated).
    pub bytes_appended: u64,
    /// Bytes replayed into rebuilt or healed blocks so far.
    pub bytes_replayed: u64,
}

impl DegradedJournal {
    /// Appends a parked extent. Returns `false` (and changes nothing)
    /// when `(op_id, ext)` was already journaled — duplicate delivery.
    pub fn append(&mut self, block: BlockId, entry: JournalEntry) -> bool {
        if !self.seen.insert((entry.op_id, entry.ext)) {
            return false;
        }
        self.entries_appended += 1;
        self.bytes_appended += entry.data.len;
        self.entries.entry(block).or_default().push(entry);
        true
    }

    /// True when the journal holds parked extents for `block`.
    pub fn has_block(&self, block: &BlockId) -> bool {
        self.entries.contains_key(block)
    }

    /// Removes and returns `block`'s parked extents in append order
    /// (empty when none). The dedupe set keeps the consumed ids, so a
    /// straggling duplicate still cannot re-journal a replayed extent.
    pub fn take(&mut self, block: &BlockId) -> Vec<JournalEntry> {
        self.entries.remove(block).unwrap_or_default()
    }

    /// Total parked extents not yet replayed.
    pub fn pending_entries(&self) -> u64 {
        self.entries.values().map(|v| v.len() as u64).sum()
    }

    /// Total parked bytes not yet replayed.
    pub fn pending_bytes(&self) -> u64 {
        self.entries
            .values()
            .flat_map(|v| v.iter())
            .map(|e| e.data.len)
            .sum()
    }

    /// Applies `entries` into a materialized block buffer in order: the
    /// *reference model* of replay content semantics. The production
    /// replay (`replay_block`) fuses the same range-set with delta
    /// capture for parity propagation (`delta_poke_range`); tests pin
    /// ordering and idempotence against this plain form, and the
    /// end-to-end byte-exact checks pin the fused path against it.
    pub fn apply_into(entries: &[JournalEntry], buf: &mut [u8]) {
        for e in entries {
            if let Some(bytes) = &e.data.bytes {
                buf[e.off as usize..(e.off + e.data.len) as usize].copy_from_slice(bytes);
            }
        }
    }
}

/// Replays every journaled extent parked for `block` into its copy on
/// `host`, in append order, and propagates the matching parity deltas so
/// the stripe stays consistent. Returns the bytes replayed (0 when the
/// journal held nothing for the block).
///
/// Called from the two replay sites: rebuild completion (the block was
/// reconstructed on a new home while its old home stayed dead) and
/// [`crate::resync::heal_node`] (the home came back before its rebuild
/// ran, so its own stale copy is caught up in place).
///
/// Content is applied instantly at `now` (one DES event — nothing can
/// interleave), while the device writes and parity-delta transfers are
/// charged from `now` onward. Parity owners that are dead at replay time
/// are marked dirty for a later heal-time re-encode. Parity application
/// is XOR-commutative, so racing scheme deltas merge in any order
/// without corruption.
pub(crate) fn replay_block(
    core: &mut ClusterCore,
    sim: &mut Sim<Cluster>,
    host: usize,
    block: BlockId,
) -> u64 {
    let entries = core.journal.take(&block);
    if entries.is_empty() {
        return 0;
    }
    let now = sim.now();
    let gstripe = core.global_stripe(block.file, block.stripe);
    let (k, m) = (core.cfg.stripe.k, core.cfg.stripe.m);
    let mut replayed = 0u64;
    for e in &entries {
        let len = e.data.len;
        replayed += len;
        // Patch the block (capturing old ⊕ new in the same pass) and
        // charge the in-place write.
        let delta = match &e.data.bytes {
            Some(new) => core.osds[host].delta_poke_range(block, e.off, new),
            None => None,
        };
        let dev_off = core.osds[host].block_offset(block) + e.off;
        core.osds[host]
            .device
            .submit(now, IoKind::Write, dev_off, len, STREAM_BLOCK);
        // Propagate the delta to every parity role of the stripe.
        for j in 0..m {
            let prole = k + j;
            let powner = core.owner_of(gstripe, prole);
            if !core.mds.is_alive(powner) {
                core.mds.mark_parity_dirty(gstripe, prole);
                continue;
            }
            let pblock = BlockId {
                role: prole,
                ..block
            };
            if let Some(d) = &delta {
                let coeff = core.rs.coefficient(j, block.role);
                let mut pd = tsue_buf::BytesMut::take(d.len());
                tsue_gf::mul_slice(coeff, d, pd.as_mut());
                core.osds[powner].xor_poke_range(pblock, e.off, pd.as_ref());
            }
            if powner != host {
                core.net
                    .transfer(now, core.osds[host].node, core.osds[powner].node, len);
            }
            let pdev = core.osds[powner].block_offset(pblock) + e.off;
            let t_read =
                core.osds[powner]
                    .device
                    .submit(now, IoKind::Read, pdev, len, STREAM_BLOCK);
            let t_merge = t_read + core.xor_time(len);
            core.osds[powner]
                .device
                .submit(t_merge, IoKind::Write, pdev, len, STREAM_BLOCK);
        }
    }
    core.journal.bytes_replayed += replayed;
    replayed
}

/// Parks one degraded-write extent: counts it, ships it to the journal
/// peer when journaling is on, and completes the extent for the client.
/// Shared by the two detection sites: the client noticing a dead home
/// at dispatch, and [`crate::scheme::deliver_update`] catching an
/// extent that was on the wire when its owner died. Each parked extent
/// is counted exactly once — here, or in `deliver_update`'s reaped-op
/// branch for the one case with nobody left to ack (the op was already
/// force-completed by the failover watchdog, so nothing is parked).
///
/// `data` is the already-materialized payload when the caller has one
/// (the on-the-wire case); otherwise the deterministic payload is
/// regenerated here in materialized runs.
#[allow(clippy::too_many_arguments)] // one parameter per field of the extent descriptor
pub(crate) fn park_degraded_write(
    core: &mut ClusterCore,
    sim: &mut Sim<Cluster>,
    op_id: u64,
    ext: usize,
    block: BlockId,
    off: u64,
    len: u64,
    data: Option<Chunk>,
    src_node: NodeId,
) {
    core.metrics.degraded_writes += 1;
    core.pending.mark_degraded(op_id);
    let peer = core
        .cfg
        .journal
        .then(|| core.mds.live_nodes().into_iter().next());
    let Some(Some(peer)) = peer else {
        // Journaling off (or nothing left alive to host the journal):
        // the extent completes as a failover error and its payload is
        // dropped — the pre-journal behavior.
        crate::fail_over_ack(sim, op_id);
        return;
    };
    let chunk = data.unwrap_or_else(|| {
        if core.cfg.materialize {
            let mut buf = tsue_buf::BytesMut::take(len as usize);
            payload_into(op_id, ext, buf.as_mut());
            Chunk::real(buf.freeze())
        } else {
            Chunk::ghost(len)
        }
    });
    let now = sim.now();
    let arrival = core.net.transfer(now, src_node, core.osds[peer].node, len);
    sim.schedule_at(arrival, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
        journal_append(w, sim, peer, op_id, ext, block, off, chunk);
    });
}

/// The parked extent reached the journal peer: append it durably (one
/// sequential log write), log the arrival for the correctness reference,
/// and ack the client once the append completes. Duplicate delivery is
/// dropped outright — the first append's ack stands (acks are reliable
/// in this model), and a second ack would double-count the extent. If
/// the block's owner came back while the entry was on the wire (its
/// replay already ran), the extent is handed to the live owner as a
/// regular update instead of being parked unreplayably.
#[allow(clippy::too_many_arguments)] // continuation of park_degraded_write
fn journal_append(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    peer: usize,
    op_id: u64,
    ext: usize,
    block: BlockId,
    off: u64,
    chunk: Chunk,
) {
    let core = &mut world.core;
    let len = chunk.len;
    let now = sim.now();
    if !core.mds.is_alive(peer) {
        // The journal peer died with the entry on the wire; the extent
        // completes as a failover error (its durability window lost the
        // race, exactly like a real two-failure burst).
        crate::fail_over_ack(sim, op_id);
        return;
    }
    // The block's owner may have come back while this entry was on the
    // wire (rebuild completed and rehomed, or the home healed). Its
    // replay already ran, so an entry parked now would be stranded
    // forever — an acked-but-lost write. Hand the extent to the live
    // owner as a regular update instead (re-checked on arrival).
    let gstripe = core.global_stripe(block.file, block.stripe);
    let cur = core.owner_of(gstripe, block.role);
    if core.mds.is_alive(cur) {
        let arrival = core
            .net
            .transfer(now, core.osds[peer].node, core.osds[cur].node, len);
        let req = crate::scheme::UpdateReq {
            op_id,
            ext,
            block,
            off,
            data: chunk,
        };
        sim.schedule_at(arrival, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
            crate::scheme::deliver_update(w, sim, cur, req);
        });
        return;
    }
    let appended = core.journal.append(
        block,
        JournalEntry {
            op_id,
            ext,
            off,
            data: chunk,
        },
    );
    if !appended {
        // Duplicate delivery: the first append already acked the client
        // (acks are reliable in this model), and a second ack would
        // double-decrement the op's outstanding-extent count.
        return;
    }
    if core.cfg.record_arrivals {
        core.metrics.record_arrival(op_id, ext, block, off, len);
    }
    let dev_off = core.osds[peer].alloc_region(len);
    let t_durable = core.osds[peer]
        .device
        .submit(now, IoKind::Write, dev_off, len, STREAM_JOURNAL);
    let Some(client) = core.pending.client_of(op_id) else {
        return; // the op was reaped by the failover watchdog meanwhile
    };
    let ack = core.net.transfer(
        t_durable,
        core.osds[peer].node,
        core.client_node(client),
        crate::ACK_BYTES,
    );
    sim.schedule_at(ack, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
        crate::client::client_ack(w, sim, op_id);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid() -> BlockId {
        BlockId {
            file: 0,
            stripe: 0,
            role: 0,
        }
    }

    fn entry(op: u64, ext: usize, off: u64, byte: u8, len: usize) -> JournalEntry {
        JournalEntry {
            op_id: op,
            ext,
            off,
            data: Chunk::real(vec![byte; len]),
        }
    }

    #[test]
    fn append_dedupes_duplicate_delivery() {
        let mut j = DegradedJournal::default();
        assert!(j.append(bid(), entry(1, 0, 0, 0xAA, 4)));
        assert!(!j.append(bid(), entry(1, 0, 0, 0xAA, 4)), "duplicate");
        assert!(j.append(bid(), entry(1, 1, 8, 0xBB, 4)));
        assert_eq!(j.entries_appended, 2);
        assert_eq!(j.bytes_appended, 8);
        assert_eq!(j.pending_entries(), 2);
    }

    #[test]
    fn take_preserves_append_order_and_drains() {
        let mut j = DegradedJournal::default();
        j.append(bid(), entry(1, 0, 0, 0x11, 2));
        j.append(bid(), entry(2, 0, 1, 0x22, 2));
        let got = j.take(&bid());
        assert_eq!(got.len(), 2);
        assert_eq!((got[0].op_id, got[1].op_id), (1, 2));
        assert!(j.take(&bid()).is_empty());
        assert_eq!(j.pending_bytes(), 0);
        // Consumed ids stay deduplicated.
        assert!(!j.append(bid(), entry(1, 0, 0, 0x11, 2)));
    }

    #[test]
    fn apply_into_is_ordered_and_idempotent() {
        let entries = vec![entry(1, 0, 0, 0x11, 4), entry(2, 0, 2, 0x22, 4)];
        let mut a = vec![0u8; 8];
        DegradedJournal::apply_into(&entries, &mut a);
        assert_eq!(a, [0x11, 0x11, 0x22, 0x22, 0x22, 0x22, 0, 0]);
        let snapshot = a.clone();
        DegradedJournal::apply_into(&entries, &mut a);
        assert_eq!(a, snapshot, "replay is idempotent");
    }
}
