//! Rejoin & re-sync: catching a healed OSD up and shrinking the rehome
//! table back toward empty.
//!
//! A node that comes back from a transient failure ([`heal_node`]) keeps
//! whatever blocks it held when it died — stale by every write the
//! cluster acked while it was gone. Two mechanisms close the gap:
//!
//! 1. **Journal replay at heal** — blocks the recovery engine never got
//!    to (still queued, or skipped because the home returned) are caught
//!    up *in place* from the degraded-write journal, synchronously at
//!    the heal instant, before the revived node can accept a new write.
//! 2. **Delta re-sync + reclamation** ([`start_resync`], driven by the
//!    `tsue_fault` engine after a drain gate) — blocks that *were*
//!    rebuilt elsewhere are copied back from their rehomed (current)
//!    copies, and the corresponding [`crate::Mds`] rehome entries are
//!    *reclaimed*, so `rehomed_count()` returns toward zero and degraded
//!    lookups stop paying the override indirection. Parity blocks that
//!    missed deltas while their owner was dead (NACK-bounced scheme
//!    messages) are re-encoded from the live data blocks.
//!
//! Content moves atomically at the instant each job is issued (a single
//! DES event), while device reads/writes and wire transfers are charged
//! forward from that instant; [`ResyncState::pending`] tracks the charge
//! horizon so the fault engine can report the phase's wall time.

use crate::osd::BlockId;
use crate::{Cluster, ClusterCore};
use tsue_sim::Sim;

/// Bookkeeping for in-flight re-sync work, owned by [`crate::ClusterCore`].
#[derive(Debug, Default)]
pub struct ResyncState {
    /// Re-sync jobs whose modeled I/O has not completed yet.
    pending: u64,
    /// Blocks copied back from rehomed copies (all heals).
    pub blocks_copied_back: u64,
    /// Bytes copied back from rehomed copies (all heals).
    pub bytes_copied_back: u64,
    /// Rehome-table entries reclaimed (all heals).
    pub blocks_reclaimed: u64,
    /// Dirty parity blocks re-encoded from data (all heals).
    pub parity_repaired: u64,
    /// Bytes written by parity re-encodes (all heals).
    pub parity_repair_bytes: u64,
}

impl ResyncState {
    /// Re-sync jobs still charging modeled I/O.
    pub fn pending(&self) -> u64 {
        self.pending
    }
}

/// Outcome of one [`heal_node`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct HealStats {
    /// Blocks caught up in place from the degraded-write journal.
    pub blocks_replayed: u64,
    /// Journaled bytes replayed into the healed node's own copies.
    pub replayed_bytes: u64,
}

/// Outcome of one [`start_resync`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResyncStats {
    /// Blocks copied back from their rehomed copies.
    pub blocks_copied_back: u64,
    /// Bytes copied back.
    pub bytes_copied_back: u64,
    /// Rehome entries reclaimed.
    pub blocks_reclaimed: u64,
    /// Dirty parity blocks re-encoded from data.
    pub parity_repaired: u64,
}

/// Revives a dead OSD: marks it alive, clears any NIC slowdown, and
/// replays the degraded-write journal into every block the node still
/// owns (i.e. not rebuilt elsewhere) — synchronously, before any
/// post-heal traffic can race the replay. Blocks rebuilt during the
/// outage are left to [`start_resync`]'s copy-back.
pub fn heal_node(world: &mut Cluster, sim: &mut Sim<Cluster>, node: usize) -> HealStats {
    let core = &mut world.core;
    core.osds[node].dead = false;
    core.mds.mark_alive(node);
    core.net.clear_slowdown(node);

    // Deterministic order over the hosted blocks.
    let owned: Vec<BlockId> = core.osds[node].block_ids();
    let mut stats = HealStats::default();
    for block in owned {
        let gstripe = core.global_stripe(block.file, block.stripe);
        if core.owner_of(gstripe, block.role) != node || !core.journal.has_block(&block) {
            continue;
        }
        let bytes = crate::journal::replay_block(core, sim, node, block);
        if bytes > 0 {
            stats.blocks_replayed += 1;
            stats.replayed_bytes += bytes;
        }
    }
    stats
}

/// Runs the delta re-sync for a healed `node`: copies every block that
/// was rebuilt elsewhere back from its rehomed copy, reclaims the rehome
/// entries, and re-encodes dirty parity. Content and table flips happen
/// at this instant (call it behind a drain gate — pending scheme deltas
/// addressed to rehomed copies must merge before the copy-back); the
/// modeled I/O is charged forward and tracked by
/// [`ResyncState::pending`].
pub fn start_resync(world: &mut Cluster, sim: &mut Sim<Cluster>, node: usize) -> ResyncStats {
    let mut stats = ResyncStats::default();
    if !world.core.mds.is_alive(node) {
        // Re-killed since the heal (flapping node): reclaiming rehome
        // entries onto a dead OSD would point live reads at a corpse.
        return stats;
    }
    copy_back_rehomed(&mut world.core, sim, node, &mut stats);
    repair_dirty_parity(&mut world.core, sim, &mut stats);
    stats
}

/// Runs one standalone dirty-parity repair pass over the whole cluster:
/// every dirty parity block whose owner and data sources are alive is
/// re-encoded from the stripe's data blocks. Returns how many were
/// repaired. Used by the harness as a scenario-end consistency pass —
/// replica replay after a rebuild marks all parity of the replayed
/// stripes dirty (the rebuild cut cannot tell which parity saw the
/// replayed deltas), and this pass settles them.
pub fn repair_all_dirty_parity(world: &mut Cluster, sim: &mut Sim<Cluster>) -> u64 {
    let mut stats = ResyncStats::default();
    repair_dirty_parity(&mut world.core, sim, &mut stats);
    stats.parity_repaired
}

/// Copies rebuilt blocks back from their rehome targets onto the healed
/// placement home and reclaims the rehome-table entries.
fn copy_back_rehomed(
    core: &mut ClusterCore,
    sim: &mut Sim<Cluster>,
    node: usize,
    stats: &mut ResyncStats,
) {
    let now = sim.now();
    let bps = core.cfg.stripe.blocks_per_stripe();
    let bs = core.cfg.stripe.block_size;
    for ((gstripe, role), tgt) in core.mds.rehomed_entries() {
        if core.placement.node_for(gstripe, role, bps) != node {
            continue;
        }
        let (file, stripe) = core.mds.locate_stripe(gstripe);
        let block = BlockId { file, stripe, role };
        core.mds.reclaim(gstripe, role);
        core.resync.blocks_reclaimed += 1;
        stats.blocks_reclaimed += 1;
        if tgt == node || !core.osds[tgt].hosts(block) {
            continue; // nothing to move (the copy already lives here)
        }
        // One block's catch-up: read at the rehomed copy, wire transfer,
        // in-place write at the healed home. Content flips now; the
        // rehomed copy stays behind as an orphan (its scheme may still
        // hold log entries referencing it) and is simply never read.
        let (t_read, data) = core.osds[tgt].read_block_range(now, block, 0, bs);
        let arrive = core
            .net
            .transfer(t_read, core.osds[tgt].node, core.osds[node].node, bs);
        let t_written = core.osds[node].write_block_range(arrive, block, 0, bs, data.as_deref());
        core.resync.blocks_copied_back += 1;
        core.resync.bytes_copied_back += bs;
        stats.blocks_copied_back += 1;
        stats.bytes_copied_back += bs;
        core.resync.pending += 1;
        sim.schedule_at(
            t_written,
            move |w: &mut Cluster, _sim: &mut Sim<Cluster>| {
                w.core.resync.pending -= 1;
            },
        );
    }
}

/// Re-encodes every dirty parity block whose owner is alive from the
/// stripe's data blocks (k reads + transfers + one write). Entries whose
/// owner or data sources are still dead stay marked for a later heal or
/// rebuild.
fn repair_dirty_parity(core: &mut ClusterCore, sim: &mut Sim<Cluster>, stats: &mut ResyncStats) {
    let now = sim.now();
    let k = core.cfg.stripe.k;
    let bs = core.cfg.stripe.block_size;
    'entries: for (gstripe, role) in core.mds.dirty_parity_entries() {
        let owner = core.owner_of(gstripe, role);
        if !core.mds.is_alive(owner) {
            continue; // its rebuild will re-encode it
        }
        let (file, stripe) = core.mds.locate_stripe(gstripe);
        let pblock = BlockId { file, stripe, role };
        if !core.osds[owner].hosts(pblock) {
            continue;
        }
        // All k data blocks must be readable — and clean. Re-encoding
        // from a rotted source would fold the garbage into parity under
        // a fresh digest, turning detectable corruption into a
        // verified-but-wrong codeword; such stripes stay dirty until the
        // scrub repairs (or writes off) the data first.
        let mut sources: Vec<(usize, usize)> = Vec::with_capacity(k); // (data idx, owner)
        for i in 0..k {
            let downer = core.owner_of(gstripe, i);
            if !core.mds.is_alive(downer) {
                continue 'entries;
            }
            let dblock = BlockId {
                file,
                stripe,
                role: i,
            };
            if !core.osds[downer].corrupt_pages(dblock).is_empty() {
                continue 'entries;
            }
            sources.push((i, downer));
        }
        let mut ready = now;
        let mut fresh = core.cfg.materialize.then(|| vec![0u8; bs as usize]);
        for (i, downer) in sources {
            let dblock = BlockId {
                file,
                stripe,
                role: i,
            };
            let (t_read, data) = core.osds[downer].read_block_range(now, dblock, 0, bs);
            let arrive =
                core.net
                    .transfer(t_read, core.osds[downer].node, core.osds[owner].node, bs);
            ready = ready.max(arrive);
            if let (Some(out), Some(d)) = (fresh.as_deref_mut(), data) {
                let coeff = core.rs.coefficient(role - k, i);
                tsue_gf::mul_add_slice(coeff, &d, out);
            }
        }
        let t_encoded = ready + core.gf_time(bs * k as u64);
        let t_written =
            core.osds[owner].write_block_range(t_encoded, pblock, 0, bs, fresh.as_deref());
        core.mds.clear_parity_dirty(gstripe, role);
        core.resync.parity_repaired += 1;
        core.resync.parity_repair_bytes += bs;
        stats.parity_repaired += 1;
        core.resync.pending += 1;
        sim.schedule_at(
            t_written,
            move |w: &mut Cluster, _sim: &mut Sim<Cluster>| {
                w.core.resync.pending -= 1;
            },
        );
    }
}
