//! Experiment counters: completions, latency, time-series buckets, and the
//! arrival log used by correctness tests.

use crate::osd::BlockId;
use tsue_obs::{ObsState, OpClass};
use tsue_sim::{Time, SECOND};

/// One update-extent arrival at an OSD, in OSD-serialized order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArrivalRecord {
    /// The client op.
    pub op_id: u64,
    /// Extent index within the op.
    pub ext: usize,
    /// Target block.
    pub block: BlockId,
    /// Offset within the block.
    pub off: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Cluster-wide experiment metrics.
pub struct ClusterMetrics {
    /// The GF slice-kernel tier the run's byte work dispatched to
    /// (`avx2`/`ssse3`/`neon`/`portable`/`scalar`). Informational only —
    /// all tiers are byte-identical, so it never appears in serialized
    /// results, but harness summaries record it so perf numbers stay
    /// interpretable across hosts.
    pub gf_kernel: &'static str,
    /// Completed client operations (reads + updates).
    pub ops_completed: u64,
    /// Completed update operations.
    pub updates_completed: u64,
    /// Completed read operations.
    pub reads_completed: u64,
    /// Update extents received by OSDs.
    pub extents_received: u64,
    /// Reads fully served from scheme logs/caches.
    pub read_cache_hits: u64,
    /// Latency histograms per op class and pipeline stage, span tracing,
    /// and the harness time series — the observability layer. Latency
    /// aggregates ([`Self::mean_latency`], [`Self::max_latency`],
    /// [`Self::total_latency`]) derive from these histograms.
    pub obs: ObsState,
    /// Completion counts bucketed per virtual second (Fig. 6a series).
    pub per_second: Vec<u64>,
    /// Time origin of the measurement window.
    pub window_start: Time,
    /// Update-extent arrival order (only when `record_arrivals`).
    pub arrivals: Option<Vec<ArrivalRecord>>,
    /// Peak per-OSD scheme memory observed by the harness probe, bytes.
    pub mem_peak: u64,
    /// Reads served via stripe reconstruction because the owner was dead.
    pub degraded_reads: u64,
    /// Updates parked because their owner was dead and not yet rebuilt.
    /// With journaling on (the default) the payload is shipped to the
    /// degraded-write journal and replayed after rebuild/heal; with it
    /// off the extent completes as a failover error and the payload is
    /// dropped. Each parked extent counts exactly once, whichever side
    /// (client dispatch or on-wire delivery) detected the dead home.
    pub degraded_writes: u64,
    /// Reads that could not be served at all: the owner was dead and
    /// fewer than `k` survivors remained (data loss window).
    pub failed_reads: u64,
    /// Scheme messages negatively acknowledged because the destination
    /// OSD was dead (failure-time parity traffic given up on).
    pub nacked_msgs: u64,
    /// In-flight client ops force-completed by the failover watchdog
    /// (modeled client timeout + retry during a failure window).
    pub reaped_ops: u64,
    /// Blocks rebuilt by the recovery engine.
    pub blocks_rebuilt: u64,
    /// Blocks the recovery engine could not rebuild (fewer than `k`
    /// survivors — correlated failure exceeded the code's tolerance).
    pub blocks_unrecoverable: u64,
    /// Buffer copies the recovery cold path still performs (survivor
    /// store → pooled shard per rebuild; the decode itself is zero-copy).
    pub recovery_copies: u64,
    /// Bytes moved by those recovery copies.
    pub recovery_bytes_copied: u64,
    /// Deep copies of payload buffers during the run (zero-copy regression
    /// counter; harvested from [`tsue_buf::stats`]).
    pub payload_copies: u64,
    /// Bytes moved by those deep copies.
    pub payload_bytes_copied: u64,
    /// Buffer-pool hits during the run (scratch served without allocating).
    pub buf_pool_hits: u64,
    /// Buffer-pool misses (allocations) during the run.
    pub buf_pool_misses: u64,
    /// Blocks swept by the background scrubber (checksum verification).
    pub blocks_scrubbed: u64,
    /// Corrupt pages detected (scrub sweep or read-path verification).
    pub corruptions_detected: u64,
    /// Corrupt pages repaired from the stripe's surviving blocks.
    pub corruptions_repaired: u64,
    /// Corrupt pages with fewer than `k` live siblings — unrepairable.
    pub corruptions_unrecoverable: u64,
    /// Torn log-tail records detected by post-power-loss log scans.
    pub torn_detected: u64,
    /// Torn records replayed byte-exactly from a surviving log replica.
    pub torn_replayed: u64,
    /// Torn records discarded for want of a replica (acked data lost —
    /// only reachable with data-log replication turned off).
    pub torn_discarded: u64,
}

impl ClusterMetrics {
    /// Creates zeroed metrics; `record_arrivals` enables the arrival log.
    pub fn new(record_arrivals: bool) -> Self {
        ClusterMetrics {
            gf_kernel: tsue_gf::kernel_tier().name(),
            ops_completed: 0,
            updates_completed: 0,
            reads_completed: 0,
            extents_received: 0,
            read_cache_hits: 0,
            obs: ObsState::new(),
            per_second: Vec::new(),
            window_start: 0,
            arrivals: record_arrivals.then(Vec::new),
            mem_peak: 0,
            degraded_reads: 0,
            degraded_writes: 0,
            failed_reads: 0,
            nacked_msgs: 0,
            reaped_ops: 0,
            blocks_rebuilt: 0,
            blocks_unrecoverable: 0,
            recovery_copies: 0,
            recovery_bytes_copied: 0,
            payload_copies: 0,
            payload_bytes_copied: 0,
            buf_pool_hits: 0,
            buf_pool_misses: 0,
            blocks_scrubbed: 0,
            corruptions_detected: 0,
            corruptions_repaired: 0,
            corruptions_unrecoverable: 0,
            torn_detected: 0,
            torn_replayed: 0,
            torn_discarded: 0,
        }
    }

    /// Folds a window of buffer statistics (`tsue_buf::stats().since(..)`
    /// of the run's start snapshot) into the copy/allocation counters.
    pub fn absorb_buf_stats(&mut self, window: tsue_buf::BufStats) {
        self.payload_copies += window.deep_copies;
        self.payload_bytes_copied += window.bytes_copied;
        self.buf_pool_hits += window.pool_hits;
        self.buf_pool_misses += window.pool_misses;
    }

    /// Pool hit rate over everything absorbed so far, in `[0, 1]`.
    pub fn buf_pool_hit_rate(&self) -> f64 {
        let total = self.buf_pool_hits + self.buf_pool_misses;
        if total == 0 {
            0.0
        } else {
            self.buf_pool_hits as f64 / total as f64
        }
    }

    /// Records one completed client op into the counters and the
    /// matching op-class histogram. `degraded` marks updates that parked
    /// in the degraded-write journal (their own class); degraded reads
    /// stay in the read class — `degraded_reads` counts them separately.
    pub fn record_completion(&mut self, op: &crate::PendingOp, op_id: u64, now: Time) {
        self.ops_completed += 1;
        if op.is_write {
            self.updates_completed += 1;
        } else {
            self.reads_completed += 1;
        }
        let class = match (op.is_write, op.degraded) {
            (true, true) => OpClass::DegradedWrite,
            (true, false) => OpClass::Update,
            (false, _) => OpClass::Read,
        };
        self.obs
            .op_complete(class, op_id, op.client, op.issued_at, now);
        let bucket = (now.saturating_sub(self.window_start) / SECOND) as usize;
        if self.per_second.len() <= bucket {
            self.per_second.resize(bucket + 1, 0);
        }
        self.per_second[bucket] += 1;
    }

    /// Logs an update-extent arrival (correctness mode).
    pub fn record_arrival(&mut self, op_id: u64, ext: usize, block: BlockId, off: u64, len: u64) {
        if let Some(log) = self.arrivals.as_mut() {
            log.push(ArrivalRecord {
                op_id,
                ext,
                block,
                off,
                len,
            });
        }
    }

    /// Sum of completed client-op latencies, ns — derived from the
    /// op-class histogram sums (every completion lands in exactly one of
    /// update/read/degraded-write).
    pub fn total_latency(&self) -> Time {
        self.obs.total_client_latency()
    }

    /// Maximum completed client-op latency, ns (histogram-derived).
    pub fn max_latency(&self) -> Time {
        self.obs.max_client_latency()
    }

    /// Mean completed-op latency in nanoseconds, derived from the
    /// histogram sums so it stays consistent with the quantile fields.
    pub fn mean_latency(&self) -> f64 {
        if self.ops_completed == 0 {
            0.0
        } else {
            self.total_latency() as f64 / self.ops_completed as f64
        }
    }

    /// Aggregate operations per second over `[window_start, end]`.
    pub fn iops(&self, end: Time) -> f64 {
        let span = end.saturating_sub(self.window_start);
        if span == 0 {
            0.0
        } else {
            self.ops_completed as f64 * 1e9 / span as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(issued_at: Time, is_write: bool, degraded: bool) -> crate::PendingOp {
        crate::PendingOp {
            client: 0,
            remaining: 0,
            issued_at,
            is_write,
            degraded,
        }
    }

    #[test]
    fn completion_updates_all_counters() {
        let mut m = ClusterMetrics::new(false);
        m.window_start = 0;
        m.record_completion(&op(0, true, false), 1, SECOND / 2);
        m.record_completion(&op(SECOND, false, false), 2, 3 * SECOND / 2);
        assert_eq!(m.ops_completed, 2);
        assert_eq!(m.updates_completed, 1);
        assert_eq!(m.reads_completed, 1);
        assert_eq!(m.per_second, vec![1, 1]);
        assert_eq!(m.max_latency(), SECOND / 2);
        assert_eq!(m.total_latency(), SECOND);
        assert!((m.mean_latency() - (SECOND / 2) as f64).abs() < 1.0);
    }

    #[test]
    fn completions_classify_into_op_class_histograms() {
        use tsue_obs::OpClass;
        let mut m = ClusterMetrics::new(false);
        m.record_completion(&op(0, true, false), 1, 100);
        m.record_completion(&op(0, true, true), 2, 200);
        m.record_completion(&op(0, false, false), 3, 300);
        // Degraded *reads* stay in the read class.
        m.record_completion(&op(0, false, true), 4, 400);
        assert_eq!(m.obs.class_hist(OpClass::Update).count(), 1);
        assert_eq!(m.obs.class_hist(OpClass::DegradedWrite).count(), 1);
        assert_eq!(m.obs.class_hist(OpClass::Read).count(), 2);
        assert_eq!(m.total_latency(), 1000);
        assert_eq!(m.max_latency(), 400);
    }

    #[test]
    fn iops_over_window() {
        let mut m = ClusterMetrics::new(false);
        m.window_start = SECOND;
        for i in 0..100 {
            m.record_completion(&op(SECOND, true, false), i, SECOND + i * 10_000_000);
        }
        let iops = m.iops(2 * SECOND);
        assert!((iops - 100.0).abs() < 1e-6, "iops {iops}");
    }

    #[test]
    fn buf_stats_absorb_and_hit_rate() {
        let mut m = ClusterMetrics::new(false);
        assert_eq!(m.buf_pool_hit_rate(), 0.0);
        m.absorb_buf_stats(tsue_buf::BufStats {
            pool_hits: 6,
            pool_misses: 2,
            recycled: 5,
            deep_copies: 3,
            bytes_copied: 300,
        });
        assert_eq!(m.payload_copies, 3);
        assert_eq!(m.payload_bytes_copied, 300);
        assert!((m.buf_pool_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn arrival_log_respects_flag() {
        let mut off = ClusterMetrics::new(false);
        off.record_arrival(
            1,
            0,
            BlockId {
                file: 0,
                stripe: 0,
                role: 0,
            },
            0,
            10,
        );
        assert!(off.arrivals.is_none());
        let mut on = ClusterMetrics::new(true);
        on.record_arrival(
            1,
            0,
            BlockId {
                file: 0,
                stripe: 0,
                role: 0,
            },
            0,
            10,
        );
        assert_eq!(on.arrivals.as_ref().unwrap().len(), 1);
    }
}
