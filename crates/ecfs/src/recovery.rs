//! Failure injection and data reconstruction (the paper's §5.4 recovery
//! test), online-capable.
//!
//! The measured quantity is recovery *bandwidth*: lost bytes divided by the
//! wall time from the moment recovery is requested. That window includes
//! whatever log merging the active update scheme still owes — which is the
//! paper's point: schemes with lazily-recycled logs (PL/PLR/PARIX) stall
//! recovery behind a recycle storm, while TSUE's real-time recycling leaves
//! (almost) nothing to drain and recovers at FO speed.
//!
//! Two entry modes share the same rebuild machinery:
//!
//! * **offline** — [`run_recovery`]: the seed behavior. Traffic has
//!   stopped; drain all logs, kill the node, rebuild everything, block
//!   until done.
//! * **online** — [`start_recovery`] + the [`RecoveryState`] queue inside
//!   [`crate::ClusterCore`]: rebuild jobs run *through* the simulation with
//!   bounded concurrency while clients keep issuing (degraded) I/O. The
//!   `tsue_fault` crate's scripted engine drives this mode, gating the
//!   rebuild start on the scheme-log drain and reporting per-phase
//!   bandwidth and cross-rack traffic.
//!
//! Rebuilt blocks are *rehomed*: the MDS override table points the block's
//! role at its new OSD, so degraded reads shrink as the rebuild
//! progresses. Blocks with fewer than `k` survivors (a correlated failure
//! beyond the code's tolerance, e.g. a rack kill under rack-oblivious
//! placement) are counted unrecoverable rather than asserted on — data
//! loss is a reportable outcome, not a simulator bug.

use crate::osd::BlockId;
use crate::{Cluster, ClusterCore};
use std::collections::VecDeque;
use tsue_buf::Bytes;
use tsue_sim::{Sim, Time};

/// Outcome of an offline recovery run.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Bytes of lost blocks reconstructed.
    pub bytes_rebuilt: u64,
    /// Number of blocks reconstructed.
    pub blocks_rebuilt: u64,
    /// Blocks that could not be rebuilt (fewer than `k` survivors).
    pub blocks_unrecoverable: u64,
    /// Time spent draining scheme logs before rebuild could start, ns.
    pub flush_time: Time,
    /// Total recovery wall time (flush + rebuild), ns.
    pub total_time: Time,
}

impl RecoveryReport {
    /// Aggregate recovery bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        if self.total_time == 0 {
            0.0
        } else {
            self.bytes_rebuilt as f64 * 1e9 / self.total_time as f64
        }
    }
}

/// Per-phase rebuild accounting: one [`start_recovery`] call = one
/// phase, so overlapping failures (a second kill landing before the
/// first rebuild finishes) report exact, disjoint counts instead of
/// global-delta approximations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Blocks this phase enqueued (already-scheduled blocks from an
    /// overlapping earlier phase are not re-queued or re-counted).
    pub enqueued: u64,
    /// Blocks still waiting for a rebuild slot.
    pub queued: u64,
    /// Rebuild jobs currently in flight.
    pub inflight: u64,
    /// Blocks successfully rebuilt.
    pub rebuilt: u64,
    /// Blocks skipped because their home was alive again by the time
    /// the job ran (the victim healed mid-queue).
    pub skipped: u64,
    /// Blocks with fewer than `k` survivors.
    pub unrecoverable: u64,
    /// Bytes of reconstructed blocks.
    pub bytes_rebuilt: u64,
    /// Journaled degraded-write bytes replayed into blocks this phase
    /// rebuilt (applied after `reconstruct_one`, before the rehome).
    pub journal_replayed_bytes: u64,
    /// Replicated data-log bytes replayed into blocks this phase rebuilt
    /// (acked appends the dead home never merged; see [`crate::replica`]).
    pub replica_replayed_bytes: u64,
}

impl PhaseStats {
    /// Outstanding work for this phase.
    pub fn pending(&self) -> u64 {
        self.queued + self.inflight
    }
}

/// The online recovery engine: a bounded-concurrency queue of block
/// rebuild jobs plus cumulative statistics, owned by [`crate::ClusterCore`].
#[derive(Debug)]
pub struct RecoveryState {
    /// Blocks awaiting a rebuild slot, tagged with their phase.
    queue: VecDeque<(BlockId, u64)>,
    /// Rebuild jobs currently in flight.
    inflight: usize,
    /// Maximum concurrent rebuild jobs (throttles how hard recovery
    /// competes with client traffic for devices and uplinks).
    pub concurrency: usize,
    /// Round-robin cursor for target selection.
    rr: usize,
    /// Next phase token handed out by [`start_recovery`].
    next_phase: u64,
    /// Per-phase counters, keyed by phase token.
    phases: std::collections::HashMap<u64, PhaseStats>,
    /// Targets of rebuilds still in flight, `(gstripe, role, node)`:
    /// the MDS rehome table only learns a target at completion, so
    /// concurrent rebuilds of one stripe consult this to avoid doubling
    /// up on a node or rack. Bounded by `concurrency`.
    inflight_targets: Vec<(u64, usize, usize)>,
    /// Blocks currently queued or in flight — overlapping victim sets
    /// (a rack kill followed by a kill of one of its nodes) must not
    /// rebuild the same block twice.
    scheduled: std::collections::HashSet<BlockId>,
    /// Blocks rebuilt so far (all phases).
    pub blocks_rebuilt: u64,
    /// Blocks skipped so far (all phases; see [`PhaseStats::skipped`]).
    pub blocks_skipped: u64,
    /// Blocks with fewer than `k` survivors (all phases).
    pub blocks_unrecoverable: u64,
    /// Bytes of reconstructed blocks (all phases).
    pub bytes_rebuilt: u64,
    /// Rebuild wire bytes that stayed inside a rack.
    pub intra_rack_bytes: u64,
    /// Rebuild wire bytes that crossed racks.
    pub cross_rack_bytes: u64,
}

impl Default for RecoveryState {
    fn default() -> Self {
        RecoveryState {
            queue: VecDeque::new(),
            inflight: 0,
            concurrency: 8,
            rr: 0,
            next_phase: 0,
            phases: std::collections::HashMap::new(),
            inflight_targets: Vec::new(),
            scheduled: std::collections::HashSet::new(),
            blocks_rebuilt: 0,
            blocks_skipped: 0,
            blocks_unrecoverable: 0,
            bytes_rebuilt: 0,
            intra_rack_bytes: 0,
            cross_rack_bytes: 0,
        }
    }
}

impl RecoveryState {
    /// Outstanding work: queued plus in-flight rebuild jobs (all phases).
    pub fn pending(&self) -> u64 {
        self.queue.len() as u64 + self.inflight as u64
    }

    /// True when any role of `block`'s stripe has a rebuild queued or in
    /// flight. Materialized runs fence client updates to such stripes
    /// (see [`crate::scheme::deliver_update`]): the rebuild decodes from
    /// a consistent data/parity cut at completion, and a sibling write
    /// admitted mid-rebuild whose parity delta is still on the wire
    /// would tear that cut.
    pub fn stripe_fenced(&self, block: &BlockId, blocks_per_stripe: usize) -> bool {
        !self.scheduled.is_empty()
            && (0..blocks_per_stripe)
                .any(|role| self.scheduled.contains(&BlockId { role, ..*block }))
    }

    /// This phase's counters (zeroes for an unknown token).
    pub fn phase_stats(&self, phase: u64) -> PhaseStats {
        self.phases.get(&phase).copied().unwrap_or_default()
    }

    fn phase_mut(&mut self, phase: u64) -> &mut PhaseStats {
        self.phases.entry(phase).or_default()
    }
}

/// Marks a node dead (heartbeat loss). Pending messages to it bounce as
/// failover NACKs (see [`crate::scheme::deliver_msg`]).
pub fn fail_node(world: &mut Cluster, node: usize) {
    world.core.osds[node].dead = true;
    world.core.mds.mark_dead(node);
}

/// Kills every OSD in `rack` (ToR/PDU failure). Returns the victims.
pub fn fail_rack(world: &mut Cluster, rack: usize) -> Vec<usize> {
    let victims: Vec<usize> = (0..world.core.cfg.osds)
        .filter(|&n| world.core.net.rack_of(n) == rack)
        .collect();
    for &v in &victims {
        fail_node(world, v);
    }
    victims
}

/// Failover watchdog sweep: force-completes client ops issued at or
/// before `deadline` that are still in flight — the modeled client
/// timeout + retry that keeps closed loops alive through failure windows
/// no matter what scheme state died with a node. Returns the number of
/// ops reaped.
pub fn reap_stalled_ops(world: &mut Cluster, sim: &mut Sim<Cluster>, deadline: Time) -> u64 {
    let stalled = world.core.pending.stalled(deadline);
    let mut reaped = 0;
    for op_id in stalled {
        let Some(op) = world.core.pending.force_remove(op_id) else {
            continue;
        };
        reaped += 1;
        world.core.metrics.reaped_ops += 1;
        world.core.metrics.record_completion(&op, op_id, sim.now());
        crate::client::client_issue(world, sim, op.client);
    }
    reaped
}

/// Enqueues a rebuild job for every block homed on the (dead) `victims`
/// and starts pumping jobs through the engine. Online-safe: client
/// traffic may keep running; jobs respect [`RecoveryState::concurrency`].
/// Returns the phase token identifying this batch's
/// [`RecoveryState::phase_stats`] — overlapping failures each get their
/// own exact accounting.
pub fn start_recovery(world: &mut Cluster, sim: &mut Sim<Cluster>, victims: &[usize]) -> u64 {
    let mut lost: Vec<BlockId> = victims
        .iter()
        .flat_map(|&v| world.core.osds[v].block_ids())
        .collect();
    // Deterministic rebuild order regardless of HashMap iteration.
    lost.sort_unstable();
    let rec = &mut world.core.recovery;
    let phase = rec.next_phase;
    rec.next_phase += 1;
    // Skip blocks an overlapping earlier phase already has queued or in
    // flight (e.g. a rack kill followed by a kill of one of its nodes).
    lost.retain(|b| rec.scheduled.insert(*b));
    let stats = rec.phase_mut(phase);
    stats.enqueued = lost.len() as u64;
    stats.queued = lost.len() as u64;
    rec.queue.extend(lost.into_iter().map(|b| (b, phase)));
    pump_recovery(world, sim);
    phase
}

/// Launches queued rebuild jobs until the concurrency limit binds.
fn pump_recovery(world: &mut Cluster, sim: &mut Sim<Cluster>) {
    while world.core.recovery.inflight < world.core.recovery.concurrency {
        let Some((block, phase)) = world.core.recovery.queue.pop_front() else {
            break;
        };
        spawn_rebuild(world, sim, block, phase);
    }
}

/// Rebuilds one block: `k` survivor range-reads → transfers to the chosen
/// target → zero-copy decode ([`tsue_ec::RsCode::reconstruct_one`]) →
/// sequential write of the reconstructed block → rehome. Counts blocks
/// with too few survivors as unrecoverable instead of panicking.
fn spawn_rebuild(world: &mut Cluster, sim: &mut Sim<Cluster>, block: BlockId, phase: u64) {
    let now = sim.now();
    let core = &mut world.core;
    let gstripe = core.global_stripe(block.file, block.stripe);
    let k = core.cfg.stripe.k;
    let bps = core.cfg.stripe.blocks_per_stripe();
    let block_size = core.cfg.stripe.block_size;

    // The victim may have healed (transient failure) while this job sat
    // in the queue; nothing to do then.
    let home = core.owner_of(gstripe, block.role);
    if core.mds.is_alive(home) && core.osds[home].hosts(block) {
        core.recovery.blocks_skipped += 1;
        core.recovery.scheduled.remove(&block);
        let p = core.recovery.phase_mut(phase);
        p.queued -= 1;
        p.skipped += 1;
        return;
    }

    // Live peers hosting any role of this stripe are both our survivor
    // sources and ineligible rebuild targets (one stripe block per node);
    // in-flight rebuilds of sibling roles likewise reserve their targets.
    // Shards whose checksums flag rot are a last resort: decoding
    // through one bakes its garbage into the rebuilt block under a
    // fresh digest, and the rot then algebraically reproduces itself
    // when the scrubber later decodes the rotted original back out of
    // the contaminated rebuild.
    let mut survivors: Vec<(usize, usize)> = Vec::with_capacity(k); // (role, owner)
    let mut rotted: Vec<(usize, usize)> = Vec::new();
    let mut occupied = vec![false; core.cfg.osds];
    for role in 0..bps {
        let owner = core.owner_of(gstripe, role);
        if role == block.role || !core.mds.is_alive(owner) {
            continue;
        }
        occupied[owner] = true;
        let sib = BlockId {
            file: block.file,
            stripe: block.stripe,
            role,
        };
        if !core.osds[owner].corrupt_pages(sib).is_empty() {
            rotted.push((role, owner));
            continue;
        }
        if survivors.len() < k {
            survivors.push((role, owner));
        }
    }
    for (role, owner) in rotted {
        if survivors.len() < k {
            survivors.push((role, owner));
        }
    }
    for &(gs, _, node) in &core.recovery.inflight_targets {
        if gs == gstripe {
            occupied[node] = true;
        }
    }
    if survivors.len() < k {
        core.recovery.blocks_unrecoverable += 1;
        core.metrics.blocks_unrecoverable += 1;
        core.recovery.scheduled.remove(&block);
        let p = core.recovery.phase_mut(phase);
        p.queued -= 1;
        p.unrecoverable += 1;
        return;
    }

    // Target: among live, stripe-free nodes (round-robin tie-break),
    // prefer the rack currently holding the fewest live blocks of this
    // stripe — rebuilds must not erode the rack-aware spread, or a later
    // single-rack failure could exceed the code's tolerance even though
    // placement promised otherwise. (Rack-blind targeting would pile a
    // dead rack's blocks onto one survivor rack.)
    let live = core.mds.live_nodes();
    assert!(!live.is_empty(), "no live nodes left to rebuild onto");
    let mut rack_load = vec![0u32; core.net.racks()];
    for role in 0..bps {
        if role == block.role {
            continue;
        }
        let owner = core.owner_of(gstripe, role);
        if core.mds.is_alive(owner) {
            rack_load[core.net.rack_of(core.osds[owner].node)] += 1;
        }
    }
    for &(gs, _, node) in &core.recovery.inflight_targets {
        if gs == gstripe {
            rack_load[core.net.rack_of(core.osds[node].node)] += 1;
        }
    }
    let start = core.recovery.rr % live.len();
    let mut target: Option<usize> = None;
    for i in 0..live.len() {
        let n = live[(start + i) % live.len()];
        if occupied[n] {
            continue;
        }
        let load = rack_load[core.net.rack_of(core.osds[n].node)];
        if target.is_none_or(|t| load < rack_load[core.net.rack_of(core.osds[t].node)]) {
            target = Some(n);
        }
    }
    // Fallback (every live node already hosts a block of this stripe —
    // only possible in clusters barely wider than the stripe): accept a
    // doubled-up node rather than dropping the rebuild.
    let target = target.unwrap_or(live[start]);
    core.recovery.rr = core.recovery.rr.wrapping_add(1);

    // Survivor reads + transfers; the decode starts when the last shard
    // arrives at the target. The per-tier split of the rebuild traffic
    // is read back from the fabric's own accounting (tier deltas around
    // these transfers), so there is a single source of truth for
    // wire-byte classification. The timing is charged here; the *content*
    // cut is taken at completion (below), when every parity delta that
    // was on the wire at failure time has landed — a spawn-time snapshot
    // could tear a data write from its in-flight parity update and
    // decode garbage.
    let mut ready = now;
    let tier0 = *core.net.tier_traffic();
    for &(role, owner) in &survivors {
        let src_block = BlockId { role, ..block };
        let dev_off = core.osds[owner].block_offset(src_block);
        let t_read = core.osds[owner].device.submit(
            now,
            tsue_device::IoKind::Read,
            dev_off,
            block_size,
            crate::osd::STREAM_BLOCK,
        );
        let src_node = core.osds[owner].node;
        let arrive = core
            .net
            .transfer(t_read, src_node, core.osds[target].node, block_size);
        ready = ready.max(arrive);
    }
    let moved = core.net.tier_traffic().since(&tier0);
    core.recovery.intra_rack_bytes += moved.intra_wire;
    core.recovery.cross_rack_bytes += moved.cross_wire;

    // Decode cost: k GF multiply-accumulates over the block.
    let t_decoded = ready + core.gf_time(block_size * k as u64);

    let placeholder = core
        .cfg
        .materialize
        .then(|| vec![0u8; block_size as usize].into_boxed_slice());
    core.osds[target].install_block(block, block_size, placeholder);
    let t_written = {
        // Sequential write of the freshly installed block.
        let dev_off = core.osds[target].block_offset(block);
        core.osds[target].device.submit(
            t_decoded,
            tsue_device::IoKind::Write,
            dev_off,
            block_size,
            crate::osd::STREAM_BLOCK,
        )
    };
    // The whole per-block rebuild chain (survivor reads → transfers →
    // decode → device write) is deterministic at spawn time, so the
    // recovery-decode round records here. Lane id = stripe/role, a
    // namespace the client span table never uses.
    core.metrics.obs.op_complete(
        tsue_obs::OpClass::RecoveryDecode,
        (gstripe << 8) | block.role as u64,
        target,
        now,
        t_written,
    );
    core.recovery.inflight += 1;
    core.recovery
        .inflight_targets
        .push((gstripe, block.role, target));
    {
        let p = core.recovery.phase_mut(phase);
        p.queued -= 1;
        p.inflight += 1;
    }
    sim.schedule_at(t_written, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
        let core = &mut w.core;
        core.recovery.inflight -= 1;
        core.recovery
            .inflight_targets
            .retain(|&(gs, r, _)| (gs, r) != (gstripe, block.role));
        core.recovery.scheduled.remove(&block);
        let home = core.owner_of(gstripe, block.role);
        if core.mds.is_alive(home) && home != target && core.osds[home].hosts(block) {
            // The home healed while this job was in flight: the heal-time
            // re-sync already caught its copy up (journal replay), so the
            // freshly rebuilt copy is redundant. Discard it and keep the
            // home authoritative — rehoming now would shadow the healed
            // copy and leak a rehome entry past the re-sync.
            core.osds[target].evict_block(block);
            core.recovery.blocks_skipped += 1;
            let p = core.recovery.phase_mut(phase);
            p.inflight -= 1;
            p.skipped += 1;
            pump_recovery(w, sim);
            return;
        }
        core.recovery.blocks_rebuilt += 1;
        core.recovery.bytes_rebuilt += block_size;
        core.metrics.blocks_rebuilt += 1;
        // Materialized reconstruction from the *completion-time* cut:
        // survivors re-resolved through `owner_of` (a sibling rebuilt or
        // replayed meanwhile hands over its current copy), peeked in one
        // DES event so the data/parity cut is consistent — client writes
        // to this stripe were fenced while the job was scheduled.
        if core.cfg.materialize {
            let mut shards: Vec<(usize, Bytes)> = Vec::with_capacity(survivors.len());
            for &(role, _) in &survivors {
                let src_block = BlockId { role, ..block };
                let owner_now = core.owner_of(gstripe, role);
                if let Some(bytes) = core.osds[owner_now].peek_block_range(src_block, 0, block_size)
                {
                    // The store→shard copy is the cold path's one
                    // remaining copy per survivor; the decode is in-place.
                    core.metrics.recovery_copies += 1;
                    core.metrics.recovery_bytes_copied += block_size;
                    shards.push((role, bytes));
                }
            }
            // Field-split so workers can read `rs` while the target
            // block's buffer is borrowed mutably for in-place decode.
            let ClusterCore { osds, rs, pool, .. } = core;
            if let Some(out) = osds[target].block_data_mut(block) {
                let parts = pool.threads();
                if pool.worth_splitting(parts, block_size) {
                    // Chunk-split the decode: GF reconstruction is
                    // bytewise, so disjoint output segments decoded from
                    // the matching survivor segments are bit-identical
                    // to one full-range pass at any thread count.
                    let mut segments: Vec<((usize, usize), &mut [u8])> = Vec::new();
                    let mut rest = out;
                    let mut start = 0usize;
                    for (s, e) in tsue_sim::chunk_ranges(block_size as usize, parts) {
                        let (head, tail) = rest.split_at_mut(e - s);
                        segments.push(((s, e), head));
                        rest = tail;
                        start = e;
                    }
                    debug_assert_eq!(start, block_size as usize);
                    let rs = &*rs;
                    let shards = &shards;
                    pool.run(segments, |_, ((s, e), seg_out)| {
                        let seg: Vec<(usize, &[u8])> = shards
                            .iter()
                            .map(|(r, b)| (*r, &b.as_slice()[s..e]))
                            .collect();
                        rs.reconstruct_one(&seg, block.role, seg_out)
                            // INVARIANT: the shard set was assembled from exactly k live
                            // roles above; decode only fails with fewer than k.
                            .expect("k survivors by construction");
                    });
                } else {
                    let borrowed: Vec<(usize, &[u8])> =
                        shards.iter().map(|(r, b)| (*r, b.as_slice())).collect();
                    rs.reconstruct_one(&borrowed, block.role, out)
                        // INVARIANT: the shard set was assembled from exactly k live
                        // roles above; decode only fails with fewer than k.
                        .expect("k survivors by construction");
                }
            }
        }
        // Acked appends still sitting in the dead home's data log are
        // invisible to the reconstruct (survivors decode the block as of
        // the last log merge): land their replica copies first, in
        // append order, so the rebuilt block carries every acked write.
        let from_replicas = crate::replica::replay_replicas(w, sim, target, home, block);
        let core = &mut w.core;
        // Then acked failure-window writes parked in the degraded-write
        // journal — after the reconstruct, before the rehome — so the
        // block goes live current.
        let replayed = crate::journal::replay_block(core, sim, target, block);
        // The reconstruct re-encoded a parity block from current data,
        // so any missed-delta mark is now satisfied.
        core.mds.clear_parity_dirty(gstripe, block.role);
        let p = core.recovery.phase_mut(phase);
        p.inflight -= 1;
        p.rebuilt += 1;
        p.bytes_rebuilt += block_size;
        p.journal_replayed_bytes += replayed;
        p.replica_replayed_bytes += from_replicas;
        core.mds.rehome(gstripe, block.role, target);
        pump_recovery(w, sim);
    });
}

/// Runs a full **offline** recovery of `victim`'s blocks onto the
/// surviving nodes and returns the report. Call after client traffic has
/// stopped.
///
/// Sequence (mirroring §5.4): drain every scheme's logs (the consistency
/// prerequisite — logs must merge before reconstruction), fail the node,
/// rebuild every lost block from `k` survivors through the shared online
/// engine with unbounded concurrency, and block until done.
pub fn run_recovery(world: &mut Cluster, sim: &mut Sim<Cluster>, victim: usize) -> RecoveryReport {
    let t0 = sim.now();
    // 1. Drain logs so blocks+parity are authoritative.
    let t_flush = world.flush_all(sim);

    // 2. Fail the node and rebuild everything it hosted.
    fail_node(world, victim);
    world.core.recovery.concurrency = usize::MAX;
    let phase = start_recovery(world, sim, &[victim]);
    sim.run_while(world, move |w| {
        w.core.recovery.phase_stats(phase).pending() > 0
    });

    let stats = world.core.recovery.phase_stats(phase);
    let total_time = sim.now().saturating_sub(t0);
    RecoveryReport {
        bytes_rebuilt: stats.bytes_rebuilt,
        blocks_rebuilt: stats.rebuilt,
        blocks_unrecoverable: stats.unrecoverable,
        flush_time: t_flush.saturating_sub(t0),
        total_time,
    }
}
