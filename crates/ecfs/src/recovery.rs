//! Failure injection and data reconstruction (the paper's §5.4 recovery
//! test).
//!
//! The measured quantity is recovery *bandwidth*: lost bytes divided by the
//! wall time from the moment recovery is requested. That window includes
//! whatever log merging the active update scheme still owes — which is the
//! paper's point: schemes with lazily-recycled logs (PL/PLR/PARIX) stall
//! recovery behind a recycle storm, while TSUE's real-time recycling leaves
//! (almost) nothing to drain and recovers at FO speed.

use crate::osd::BlockId;
use crate::Cluster;
use tsue_sim::{Sim, Time};

/// Outcome of a recovery run.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Bytes of lost blocks reconstructed.
    pub bytes_rebuilt: u64,
    /// Number of blocks reconstructed.
    pub blocks_rebuilt: u64,
    /// Time spent draining scheme logs before rebuild could start, ns.
    pub flush_time: Time,
    /// Total recovery wall time (flush + rebuild), ns.
    pub total_time: Time,
}

impl RecoveryReport {
    /// Aggregate recovery bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        if self.total_time == 0 {
            0.0
        } else {
            self.bytes_rebuilt as f64 * 1e9 / self.total_time as f64
        }
    }
}

/// Marks a node dead (heartbeat loss). Pending messages to it are dropped.
pub fn fail_node(world: &mut Cluster, node: usize) {
    world.core.osds[node].dead = true;
    world.core.mds.mark_dead(node);
}

/// Runs a full recovery of `victim`'s blocks onto the surviving nodes and
/// returns the report. Call after client traffic has stopped.
///
/// Sequence (mirroring §5.4): drain every scheme's logs (the consistency
/// prerequisite — logs must merge before reconstruction), fail the node,
/// rebuild every lost block from `k` survivors, spreading targets
/// round-robin over live nodes.
pub fn run_recovery(world: &mut Cluster, sim: &mut Sim<Cluster>, victim: usize) -> RecoveryReport {
    let t0 = sim.now();
    // 1. Drain logs so blocks+parity are authoritative.
    let t_flush = world.flush_all(sim);

    // 2. Fail the node and enumerate its blocks.
    fail_node(world, victim);
    let lost: Vec<BlockId> = world.core.osds[victim].blocks.keys().copied().collect();
    let block_size = world.core.cfg.stripe.block_size;
    let k = world.core.cfg.stripe.k;
    let bps = world.core.cfg.stripe.blocks_per_stripe();

    // 3. Schedule one rebuild job per lost block.
    world.core.recovery_pending = lost.len() as u64;
    let live: Vec<usize> = world.core.mds.live_nodes();
    for (i, block) in lost.iter().copied().enumerate() {
        let target = live[i % live.len()];
        schedule_rebuild(world, sim, block, victim, target, k, bps, block_size);
    }
    sim.run_while(world, |w| w.core.recovery_pending > 0);

    let total_time = sim.now().saturating_sub(t0);
    RecoveryReport {
        bytes_rebuilt: lost.len() as u64 * block_size,
        blocks_rebuilt: lost.len() as u64,
        flush_time: t_flush.saturating_sub(t0),
        total_time,
    }
}

/// Rebuilds one block: k survivor reads → transfers to `target` → decode →
/// sequential write of the reconstructed block.
#[allow(clippy::too_many_arguments)]
fn schedule_rebuild(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    block: BlockId,
    victim: usize,
    target: usize,
    k: usize,
    bps: usize,
    block_size: u64,
) {
    let now = sim.now();
    let core = &mut world.core;
    let gstripe = core.global_stripe(block.file, block.stripe);

    // Pick the first k live roles other than the lost one.
    let mut sources = Vec::with_capacity(k);
    for role in 0..bps {
        if role == block.role {
            continue;
        }
        let owner = core.owner_of(gstripe, role);
        if owner == victim || !core.mds.is_alive(owner) {
            continue;
        }
        sources.push((role, owner));
        if sources.len() == k {
            break;
        }
    }
    assert!(
        sources.len() == k,
        "not enough survivors to rebuild {block:?}"
    );

    // Survivor reads + transfers; the rebuild starts when the last shard
    // arrives at the target.
    let mut ready = now;
    let mut shard_data: Vec<(usize, Option<Vec<u8>>)> = Vec::with_capacity(k);
    for &(role, owner) in &sources {
        let src_block = BlockId { role, ..block };
        let (t_read, data) = core.osds[owner].read_block_range(now, src_block, 0, block_size);
        let arrive = core.net.transfer(
            t_read,
            core.osds[owner].node,
            core.osds[target].node,
            block_size,
        );
        ready = ready.max(arrive);
        // Reconstruction is a cold path; decode works on owned shards.
        shard_data.push((role, data.map(|b| b.to_vec())));
    }

    // Decode cost: k GF multiply-accumulates over the block.
    let t_decoded = ready + core.gf_time(block_size * k as u64);

    // Reconstruct content when materialized.
    let rebuilt: Option<Box<[u8]>> = if core.cfg.materialize {
        let n = bps;
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
        for (role, data) in shard_data {
            shards[role] = data;
        }
        core.rs
            .reconstruct(&mut shards)
            .expect("enough shards by construction");
        shards[block.role].take().map(|v| v.into_boxed_slice())
    } else {
        None
    };

    core.osds[target].install_block(block, block_size, rebuilt);
    let t_written = {
        // Sequential write of the freshly installed block.
        let dev_off = core.osds[target].block_offset(block);
        core.osds[target].device.submit(
            t_decoded,
            tsue_device::IoKind::Write,
            dev_off,
            block_size,
            crate::osd::STREAM_BLOCK,
        )
    };
    sim.schedule_at(t_written, move |w: &mut Cluster, _: &mut Sim<Cluster>| {
        w.core.recovery_pending -= 1;
    });
}
