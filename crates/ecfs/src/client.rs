//! Closed-loop trace-replay clients.
//!
//! Each client owns one pre-populated file and replays a seeded workload
//! against it: issue one op, wait for every extent to be acknowledged,
//! issue the next — the paper's aggregate-IOPS methodology with 4–64
//! concurrent clients.

use crate::osd::BlockId;
use crate::scheme::{deliver_read, deliver_update, Chunk, UpdateReq};
use crate::{payload_into, Cluster, FileId};
use tsue_net::NodeId;
use tsue_sim::Sim;
use tsue_trace::{OpKind, TraceGen, WorkloadProfile};

/// One closed-loop client.
pub struct ClientState {
    /// Client index.
    pub id: usize,
    /// Network node id.
    pub node: NodeId,
    /// The file this client updates.
    pub file: FileId,
    /// Workload source (installed by [`Cluster::set_workload`]).
    pub gen: Option<TraceGen>,
    /// Set when the client has stopped issuing.
    pub stopped: bool,
    /// Ops issued so far.
    pub ops_issued: u64,
    /// Optional issue budget (tests); `None` = run until `stop_at`.
    pub max_ops: Option<u64>,
    seed: u64,
}

impl ClientState {
    /// Creates a client bound to `file`; the workload is installed later.
    pub fn new(id: usize, node: NodeId, file: FileId, seed: u64) -> Self {
        ClientState {
            id,
            node,
            file,
            gen: None,
            stopped: false,
            ops_issued: 0,
            max_ops: None,
            seed,
        }
    }
}

impl Cluster {
    /// Installs the same workload profile on every client (per-client
    /// seeds keep their streams distinct but deterministic).
    pub fn set_workload(&mut self, profile: &WorkloadProfile) {
        let volume = self.core.cfg.file_size_per_client;
        for c in &mut self.core.clients {
            c.gen = Some(TraceGen::new(profile.clone(), volume, c.seed));
            c.stopped = false;
        }
    }

    /// Installs a recorded trace (e.g. a parsed MSR/Ali CSV) on every
    /// client; each client starts at a different phase of the recording.
    ///
    /// # Panics
    /// Panics if `ops` is empty or exceeds the per-client volume.
    pub fn set_replay(&mut self, ops: &[tsue_trace::TraceOp]) {
        let volume = self.core.cfg.file_size_per_client;
        let stride = (ops.len() / self.core.clients.len().max(1)).max(1);
        for (i, c) in self.core.clients.iter_mut().enumerate() {
            c.gen = Some(TraceGen::from_ops(ops.to_vec(), volume, i * stride));
            c.stopped = false;
        }
    }
}

/// Kicks every idle client into its issue loop.
pub fn start_clients(world: &mut Cluster, sim: &mut Sim<Cluster>) {
    for cid in 0..world.core.clients.len() {
        client_issue(world, sim, cid);
    }
}

/// Issues the next operation of client `cid`, dispatching its extents to
/// the owning OSDs.
pub fn client_issue(world: &mut Cluster, sim: &mut Sim<Cluster>, cid: usize) {
    let now = sim.now();
    let core = &mut world.core;
    if core.clients[cid].stopped {
        return;
    }
    if !core.accepting(now)
        || core.clients[cid]
            .max_ops
            .is_some_and(|m| core.clients[cid].ops_issued >= m)
    {
        core.clients[cid].stopped = true;
        return;
    }

    let file = core.clients[cid].file;
    let op = core.clients[cid]
        .gen
        .as_mut()
        // INVARIANT: the driver installs a generator on every client
        // (set_workload) before the first issue event is scheduled.
        .expect("workload not installed — call set_workload first")
        .next_op();
    core.clients[cid].ops_issued += 1;

    let is_write = op.kind == OpKind::Write;
    if is_write {
        // Maintain the MDS page bitmap; pre-populated files always classify
        // as updates, matching the paper's replay setup.
        let _ = core.mds.classify_write(file, op.offset, op.len);
    }

    let extents = core.cfg.stripe.split_range(op.offset, op.len);
    let op_id = core.pending.insert(cid, extents.len(), now, is_write);
    let client_node = core.clients[cid].node;
    // Span start: the MDS map above is charged zero time by the model.
    core.metrics.obs.op_issued(op_id, client_node, now);

    // Batched payload generation: each extent's payload is a pure
    // function of `(op_id, ext_idx)`, so a wide multi-extent write fills
    // all its buffers on the worker pool before the dispatch loop runs.
    // (A payload pre-generated for an extent that then parks in the
    // degraded-write journal is simply dropped back into the pool.)
    let mut pregen: Vec<Option<Chunk>> = Vec::new();
    if is_write && core.cfg.materialize && core.pool.worth_splitting(extents.len(), op.len) {
        let lens: Vec<u64> = extents.iter().map(|e| e.len).collect();
        pregen = core.pool.run(lens, |ext_idx, len| {
            let mut buf = tsue_buf::BytesMut::take(len as usize);
            payload_into(op_id, ext_idx, buf.as_mut());
            Some(Chunk::real(buf.freeze()))
        });
    }

    for (ext_idx, e) in extents.into_iter().enumerate() {
        let gstripe = core.global_stripe(file, e.addr.stripe);
        let owner = core.owner_of(gstripe, e.addr.block);
        let owner_node = core.osds[owner].node;
        let block = BlockId {
            file,
            stripe: e.addr.stripe,
            role: e.addr.block,
        };
        if is_write && !core.mds.is_alive(owner) {
            // Degraded write: the block's home is dead and not yet
            // rebuilt. The extent is parked in the degraded-write journal
            // (shipped to a surviving peer) and acked once durable; the
            // recovery/re-sync engines replay it into the rebuilt or
            // healed block, so acked writes survive the failure window.
            crate::journal::park_degraded_write(
                core,
                sim,
                op_id,
                ext_idx,
                block,
                e.addr.offset,
                e.len,
                None,
                client_node,
            );
        } else if is_write {
            let data = if let Some(c) = pregen.get_mut(ext_idx).and_then(Option::take) {
                c
            } else if core.cfg.materialize {
                // Generate straight into a pool-recycled buffer: the
                // payload is born zero-copy and travels by refcount from
                // here to the data log.
                let mut buf = tsue_buf::BytesMut::take(e.len as usize);
                payload_into(op_id, ext_idx, buf.as_mut());
                Chunk::real(buf.freeze())
            } else {
                Chunk::ghost(e.len)
            };
            // The fabric model accounts lengths only — the payload buffer
            // itself moves by refcount, never serialized into a copy.
            let arrival = core.net.transfer(now, client_node, owner_node, e.len);
            let req = UpdateReq {
                op_id,
                ext: ext_idx,
                block,
                off: e.addr.offset,
                data,
            };
            sim.schedule_at(arrival, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                deliver_update(w, sim, owner, req);
            });
        } else if core.mds.is_alive(owner) {
            let (off, len) = (e.addr.offset, e.len);
            let arrival = core
                .net
                .transfer(now, client_node, owner_node, crate::ACK_BYTES);
            sim.schedule_at(arrival, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
                deliver_read(w, sim, owner, op_id, block, off, len);
            });
        } else {
            // Degraded read: the owner is dead, so fetch the same byte
            // range from k surviving blocks of the stripe and decode at
            // the client (RS codewords are positional, so ranges align).
            degraded_read(core, sim, cid, op_id, gstripe, block, e.addr.offset, e.len);
        }
    }
}

/// Re-dispatches a read whose owner died while the request was on the
/// wire: after the failover timeout the client retries it as a regular
/// degraded read (survivor range-reads + decode). No-op when the op was
/// already reaped.
pub(crate) fn retry_degraded_read(
    world: &mut Cluster,
    sim: &mut Sim<Cluster>,
    op_id: u64,
    block: BlockId,
    off: u64,
    len: u64,
) {
    let Some(cid) = world.core.pending.client_of(op_id) else {
        return;
    };
    let gstripe = world.core.global_stripe(block.file, block.stripe);
    degraded_read(&mut world.core, sim, cid, op_id, gstripe, block, off, len);
}

/// Serves a read extent whose owner is dead: range reads from `k` live
/// blocks of the stripe, transfers to the client, and a decode — the
/// degraded-read path every erasure-coded file system must provide.
#[allow(clippy::too_many_arguments)] // one parameter per field of the op descriptor
fn degraded_read(
    core: &mut crate::ClusterCore,
    sim: &mut Sim<Cluster>,
    cid: usize,
    op_id: u64,
    gstripe: u64,
    block: BlockId,
    off: u64,
    len: u64,
) {
    let now = sim.now();
    let bps = core.cfg.stripe.blocks_per_stripe();
    let k = core.cfg.stripe.k;
    let client_node = core.clients[cid].node;
    let mut collected = 0usize;
    let mut ready = now;
    for role in 0..bps {
        if role == block.role || collected == k {
            continue;
        }
        let owner = core.owner_of(gstripe, role);
        if !core.mds.is_alive(owner) {
            continue;
        }
        let src = BlockId { role, ..block };
        let (t_read, _) = core.osds[owner].read_block_range(now, src, off, len);
        let arrive = core
            .net
            .transfer(t_read, core.osds[owner].node, client_node, len);
        ready = ready.max(arrive);
        collected += 1;
    }
    if collected < k {
        // Correlated failure beyond the code's tolerance: the range is
        // unreadable until (unless) more nodes heal. The op completes
        // with an error after the failover timeout — data-loss windows
        // must not wedge the client loop.
        core.metrics.failed_reads += 1;
        crate::fail_over_ack(sim, op_id);
        return;
    }
    let done = ready + core.gf_time(len * k as u64);
    core.metrics.degraded_reads += 1;
    sim.schedule_at(done, move |w: &mut Cluster, sim: &mut Sim<Cluster>| {
        client_ack(w, sim, op_id);
    });
}

/// An extent acknowledgement reached the client; when the whole op is
/// complete, record it and issue the next one.
pub fn client_ack(world: &mut Cluster, sim: &mut Sim<Cluster>, op_id: u64) {
    let finished = world.core.pending.complete_extent(op_id);
    if let Some(op) = finished {
        world.core.metrics.record_completion(&op, op_id, sim.now());
        client_issue(world, sim, op.client);
    }
}
