//! The metadata server: file registry, stripe allocation, the page-level
//! write/update bitmap (§4.3), node liveness tracking, and the block
//! rehome table filled by online recovery (a rebuilt block's new home
//! overrides the placement policy until the layout is next rebalanced).

use crate::shard::ShardedMap;

/// File identifier.
pub type FileId = u32;

/// Page granularity of the write/update discrimination bitmap.
pub const MDS_PAGE: u64 = 4096;

/// Per-file metadata.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// Logical size in bytes.
    pub size: u64,
    /// First global stripe index owned by this file.
    pub base_stripe: u64,
    /// Number of stripes.
    pub stripes: u64,
}

/// The metadata server.
///
/// Real MDS duties that matter to the evaluation are modeled: the scalable
/// per-file page bitmap that distinguishes first writes from updates (the
/// paper's "scalable linked list based on a page-level bitmap"), stripe
/// address allocation, and heartbeat-driven liveness.
pub struct Mds {
    files: Vec<FileMeta>,
    next_stripe: u64,
    /// Pages that have been written at least once: `(file, page_index)`.
    /// Sharded by page group so parallel client batches touching
    /// different stripe groups never contend on one lock.
    written_pages: ShardedMap<(FileId, u64), ()>,
    /// Liveness per OSD node.
    alive: Vec<bool>,
    /// Recovery overrides: `(global stripe, role)` → new home OSD.
    /// Sharded by stripe group: rebuild completions for independent
    /// stripe groups rehome concurrently.
    rehomed: ShardedMap<(u64, usize), usize>,
    /// Parity blocks known to have missed deltas (the delta NACK-bounced
    /// off a dead owner): `(global stripe, role)`. Cleared when recovery
    /// re-encodes the block or a heal-time re-sync recomputes it.
    dirty_parity: ShardedMap<(u64, usize), ()>,
}

impl Mds {
    /// Creates an MDS tracking `osds` nodes.
    pub fn new(osds: usize) -> Self {
        Mds {
            files: Vec::new(),
            next_stripe: 0,
            written_pages: ShardedMap::new(),
            alive: vec![true; osds],
            rehomed: ShardedMap::new(),
            dirty_parity: ShardedMap::new(),
        }
    }

    /// Registers a file and allocates its stripe range.
    pub fn register_file(&mut self, size: u64, stripes: u64) -> FileId {
        let id = self.files.len() as FileId;
        self.files.push(FileMeta {
            size,
            base_stripe: self.next_stripe,
            stripes,
        });
        self.next_stripe += stripes;
        id
    }

    /// File metadata.
    ///
    /// # Panics
    /// Panics on an unknown file id.
    pub fn file(&self, id: FileId) -> &FileMeta {
        &self.files[id as usize]
    }

    /// Number of registered files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Maps a global stripe index back to `(file, stripe-within-file)`.
    ///
    /// # Panics
    /// Panics if no file owns the stripe.
    pub fn locate_stripe(&self, gstripe: u64) -> (FileId, u64) {
        for (i, f) in self.files.iter().enumerate() {
            if gstripe >= f.base_stripe && gstripe < f.base_stripe + f.stripes {
                return (i as FileId, gstripe - f.base_stripe);
            }
        }
        // INVARIANT: documented contract (# Panics above) — every global
        // stripe handled by the cluster was minted from a registered file.
        panic!("global stripe {gstripe} not registered");
    }

    /// Marks every page of `file` as written (post-provisioning state).
    pub fn mark_prepopulated(&mut self, file: FileId) {
        let size = self.file(file).size;
        for p in 0..size.div_ceil(MDS_PAGE) {
            self.written_pages.insert((file, p), ());
        }
    }

    /// Classifies a write: `true` if *every* touched page was written
    /// before (pure update); `false` if any page is fresh (normal write).
    /// Marks the pages written either way — exactly the bitmap maintenance
    /// the paper's CLIENT consults before dispatch.
    pub fn classify_write(&mut self, file: FileId, offset: u64, len: u64) -> bool {
        let first = offset / MDS_PAGE;
        let last = (offset + len.max(1) - 1) / MDS_PAGE;
        let mut all_old = true;
        for p in first..=last {
            if self.written_pages.insert((file, p), ()).is_none() {
                all_old = false;
            }
        }
        all_old
    }

    /// Heartbeat bookkeeping: marks a node dead.
    pub fn mark_dead(&mut self, node: usize) {
        self.alive[node] = false;
    }

    /// Marks a node alive again (post-recovery).
    pub fn mark_alive(&mut self, node: usize) {
        self.alive[node] = true;
    }

    /// Is the node alive?
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// Indices of all live nodes.
    pub fn live_nodes(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&n| self.alive[n]).collect()
    }

    /// Records that `role` of global stripe `gstripe` now lives on
    /// `node` (a recovery rebuild landed there).
    pub fn rehome(&mut self, gstripe: u64, role: usize, node: usize) {
        self.rehomed.insert((gstripe, role), node);
    }

    /// Shared-plane [`Mds::rehome`]: takes only the stripe group's
    /// segment lock, so rebuild workers on disjoint stripe groups
    /// rehome without serializing on the whole table.
    pub fn rehome_shared(&self, gstripe: u64, role: usize, node: usize) {
        self.rehomed.insert_shared((gstripe, role), node);
    }

    /// The recovery override for `(gstripe, role)`, if any. A single map
    /// lookup: an empty-map short-circuit would race the staleness that
    /// reclaim introduces (an entry removed between the emptiness check
    /// and the read), and the lookup is already free on an empty map.
    #[inline]
    pub fn rehomed(&self, gstripe: u64, role: usize) -> Option<usize> {
        self.rehomed.read(&(gstripe, role))
    }

    /// Removes the recovery override for `(gstripe, role)` — the healed
    /// placement home has been caught up and owns the block again.
    /// Returns the node the block was rehomed to, if any.
    pub fn reclaim(&mut self, gstripe: u64, role: usize) -> Option<usize> {
        self.rehomed.remove(&(gstripe, role))
    }

    /// Shared-plane [`Mds::reclaim`] for workers holding `&Mds`.
    pub fn reclaim_shared(&self, gstripe: u64, role: usize) -> Option<usize> {
        self.rehomed.remove_shared(&(gstripe, role))
    }

    /// Number of rehomed blocks (recovery progress / diagnostics).
    pub fn rehomed_count(&self) -> usize {
        self.rehomed.len()
    }

    /// All rehome overrides, sorted for deterministic scheduling.
    pub fn rehomed_entries(&self) -> Vec<((u64, usize), usize)> {
        self.rehomed.entries_sorted()
    }

    /// Marks a parity block as having missed a delta (its owner was dead
    /// when the delta arrived, so the update bounced).
    pub fn mark_parity_dirty(&mut self, gstripe: u64, role: usize) {
        self.dirty_parity.insert((gstripe, role), ());
    }

    /// Clears the missed-delta mark (the block was re-encoded from data).
    pub fn clear_parity_dirty(&mut self, gstripe: u64, role: usize) {
        self.dirty_parity.remove(&(gstripe, role));
    }

    /// Dirty parity blocks, sorted for deterministic scheduling.
    pub fn dirty_parity_entries(&self) -> Vec<(u64, usize)> {
        self.dirty_parity.keys_sorted()
    }

    /// True when `role` of `gstripe` is marked as missing deltas — such
    /// parity is internally consistent but stale relative to the stripe,
    /// so it must not serve as a reconstruction source.
    pub fn parity_is_dirty(&self, gstripe: u64, role: usize) -> bool {
        self.dirty_parity.contains(&(gstripe, role))
    }

    /// Number of parity blocks still missing deltas.
    pub fn dirty_parity_count(&self) -> usize {
        self.dirty_parity.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_ranges_are_disjoint_and_contiguous() {
        let mut m = Mds::new(4);
        let a = m.register_file(1 << 20, 10);
        let b = m.register_file(2 << 20, 20);
        assert_eq!(m.file(a).base_stripe, 0);
        assert_eq!(m.file(b).base_stripe, 10);
        assert_eq!(m.file_count(), 2);
    }

    #[test]
    fn classify_write_distinguishes_update_from_first_write() {
        let mut m = Mds::new(1);
        let f = m.register_file(64 << 10, 1);
        assert!(
            !m.classify_write(f, 0, 4096),
            "first write is not an update"
        );
        assert!(m.classify_write(f, 0, 4096), "second write is an update");
        assert!(!m.classify_write(f, 8192, 100), "fresh page");
        // Straddling a written and an unwritten page => normal write.
        assert!(!m.classify_write(f, 4096, 8192 + 1));
    }

    #[test]
    fn prepopulated_files_are_all_updates() {
        let mut m = Mds::new(1);
        let f = m.register_file(32 << 10, 1);
        m.mark_prepopulated(f);
        assert!(m.classify_write(f, 0, 32 << 10));
        assert!(m.classify_write(f, 12_288, 512));
    }

    #[test]
    fn rehome_then_reclaim_resolves_to_the_healed_home() {
        let mut m = Mds::new(4);
        assert_eq!(m.rehomed(7, 1), None, "empty table resolves to placement");
        m.rehome(7, 1, 3);
        assert_eq!(m.rehomed(7, 1), Some(3), "override points at the rebuild");
        assert_eq!(m.rehomed_count(), 1);
        assert_eq!(m.reclaim(7, 1), Some(3));
        assert_eq!(
            m.rehomed(7, 1),
            None,
            "after reclaim the placement (healed) home owns the block again"
        );
        assert_eq!(m.rehomed_count(), 0, "the table shrinks back to empty");
        assert_eq!(m.reclaim(7, 1), None, "reclaim is idempotent");
    }

    #[test]
    fn dirty_parity_set_tracks_missed_deltas() {
        let mut m = Mds::new(4);
        m.mark_parity_dirty(3, 5);
        m.mark_parity_dirty(1, 4);
        m.mark_parity_dirty(3, 5);
        assert_eq!(m.dirty_parity_count(), 2);
        assert_eq!(m.dirty_parity_entries(), vec![(1, 4), (3, 5)]);
        m.clear_parity_dirty(1, 4);
        assert_eq!(m.dirty_parity_count(), 1);
    }

    #[test]
    fn liveness_tracking() {
        let mut m = Mds::new(3);
        assert_eq!(m.live_nodes(), vec![0, 1, 2]);
        m.mark_dead(1);
        assert!(!m.is_alive(1));
        assert_eq!(m.live_nodes(), vec![0, 2]);
        m.mark_alive(1);
        assert_eq!(m.live_nodes(), vec![0, 1, 2]);
    }
}
