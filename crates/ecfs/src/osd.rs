//! The object storage device server: one per node, owning one device.
//!
//! An OSD stores whole erasure-code blocks (data or parity roles of a
//! stripe) at device offsets handed out by a bump allocator, plus arbitrary
//! *regions* that update schemes lease for their logs. Block payload bytes
//! are kept in memory only when the cluster runs in materialized
//! (correctness) mode; the device model is timing/wear-only either way.

use crate::mds::FileId;
use crate::shard::ShardedMap;
use tsue_buf::{Bytes, BytesMut};
use tsue_device::{Device, IoKind, StreamId};
use tsue_sim::Time;

/// Identifies one block of one stripe of one file.
///
/// `role < k` are data blocks; `role >= k` are parity blocks `role - k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Owning file.
    pub file: FileId,
    /// Stripe index *within the file*.
    pub stripe: u64,
    /// Position within the stripe (0..k+m).
    pub role: usize,
}

/// A block resident on an OSD.
#[derive(Debug)]
pub struct StoredBlock {
    /// Device byte offset of the block.
    pub dev_offset: u64,
    /// Payload (materialized mode only).
    pub data: Option<Box<[u8]>>,
}

/// Device stream id used for in-place block I/O.
pub const STREAM_BLOCK: StreamId = 0;
/// Device stream id used for degraded-write journal appends on the
/// journal peer (see [`crate::journal`]).
pub const STREAM_JOURNAL: StreamId = 15;
/// First stream id free for scheme-private use (log pools etc.).
pub const STREAM_SCHEME_BASE: StreamId = 16;

/// One storage server.
///
/// The block store is sharded ([`ShardedMap`], segments keyed by stripe
/// group), so the **content plane** — byte reads/writes decoupled from
/// device timing — is `&self` and safe to drive from worker threads
/// inside a tick barrier, while the **timing plane** (device submits)
/// stays `&mut self` on the coordinator.
pub struct Osd {
    /// Network node id (OSDs occupy ids `0..cfg.osds`).
    pub node: usize,
    /// The backing device model.
    pub device: Device,
    /// Blocks hosted here, behind per-stripe-group lock segments.
    store: ShardedMap<BlockId, StoredBlock>,
    /// True once [`crate::fail_node`] kills this node.
    pub dead: bool,
    next_offset: u64,
}

impl Osd {
    /// Creates an empty OSD on `node`.
    pub fn new(node: usize, device: Device) -> Self {
        Osd {
            node,
            device,
            store: ShardedMap::new(),
            dead: false,
            next_offset: 0,
        }
    }

    /// Leases `len` bytes of device space (for blocks or scheme logs).
    pub fn alloc_region(&mut self, len: u64) -> u64 {
        let off = self.next_offset;
        // 4 KiB alignment keeps FTL page accounting clean.
        self.next_offset = (off + len + 4095) & !4095;
        off
    }

    /// Allocates and pre-populates a block: device space is marked written
    /// (so later writes count as overwrites and the FTL starts realistic),
    /// and zero content is materialized when requested.
    pub fn provision_block(&mut self, id: BlockId, block_size: u64, materialize: bool) {
        let dev_offset = self.alloc_region(block_size);
        // Initial population happens at virtual time zero on the block
        // stream; the caller resets stats afterwards.
        self.device
            .submit(0, IoKind::Write, dev_offset, block_size, STREAM_BLOCK);
        let data = materialize.then(|| vec![0u8; block_size as usize].into_boxed_slice());
        self.store.insert(id, StoredBlock { dev_offset, data });
    }

    /// Device offset of a hosted block.
    ///
    /// # Panics
    /// Panics if the block is not hosted here.
    pub fn block_offset(&self, id: BlockId) -> u64 {
        self.store
            .with(&id, |b| b.map(|b| b.dev_offset))
            .expect("block not hosted here")
    }

    /// True if this OSD hosts `id`.
    pub fn hosts(&self, id: BlockId) -> bool {
        self.store.contains(&id)
    }

    /// Every hosted block id, sorted (deterministic scheduling source
    /// for recovery and re-sync listings).
    pub fn block_ids(&self) -> Vec<BlockId> {
        self.store.keys_sorted()
    }

    /// Reads `[off, off+len)` of a block: charges a device read and returns
    /// `(completion_time, bytes-if-materialized)`. The returned bytes live
    /// in a pool-recycled buffer, so steady-state reads allocate nothing.
    ///
    /// # Panics
    /// Panics if the block is absent or the range exceeds it.
    pub fn read_block_range(
        &mut self,
        now: Time,
        id: BlockId,
        off: u64,
        len: u64,
    ) -> (Time, Option<Bytes>) {
        let (dev_off, data) = self.store.with(&id, |b| {
            let b = b.expect("block not hosted here");
            let data = b.data.as_ref().map(|d| {
                assert!((off + len) as usize <= d.len(), "read beyond block");
                Bytes::copy_from_slice(&d[off as usize..(off + len) as usize])
            });
            (b.dev_offset + off, data)
        });
        let t = self
            .device
            .submit(now, IoKind::Read, dev_off, len, STREAM_BLOCK);
        (t, data)
    }

    /// Writes `[off, off+len)` of a block in place: charges a device write
    /// (an overwrite, by construction) and stores bytes when materialized.
    ///
    /// # Panics
    /// Panics if the block is absent or the range exceeds it.
    pub fn write_block_range(
        &mut self,
        now: Time,
        id: BlockId,
        off: u64,
        len: u64,
        data: Option<&[u8]>,
    ) -> Time {
        let dev_off = {
            let b = self.store.get_mut(&id).expect("block not hosted here");
            if let (Some(store), Some(src)) = (b.data.as_mut(), data) {
                assert_eq!(src.len() as u64, len, "payload length mismatch");
                assert!((off + len) as usize <= store.len(), "write beyond block");
                store[off as usize..(off + len) as usize].copy_from_slice(src);
            }
            b.dev_offset + off
        };
        self.device
            .submit(now, IoKind::Write, dev_off, len, STREAM_BLOCK)
    }

    /// Applies `delta` into block content with XOR (parity merge) and
    /// charges the read-modify-write device traffic.
    ///
    /// Returns the completion time of the final write.
    pub fn xor_block_range(
        &mut self,
        now: Time,
        id: BlockId,
        off: u64,
        len: u64,
        delta: Option<&[u8]>,
        compute: Time,
    ) -> Time {
        // Read-modify-write on the device, with the XOR cost in between.
        // The XOR is applied directly into the block store — no buffer
        // materializes on this path.
        let dev_off = {
            let b = self.store.get_mut(&id).expect("block not hosted here");
            if let (Some(store), Some(d)) = (b.data.as_mut(), delta) {
                assert_eq!(d.len() as u64, len, "delta length mismatch");
                tsue_gf::xor_slice(d, &mut store[off as usize..(off + len) as usize]);
            }
            b.dev_offset + off
        };
        let t_read = self
            .device
            .submit(now, IoKind::Read, dev_off, len, STREAM_BLOCK);
        self.device
            .submit(t_read + compute, IoKind::Write, dev_off, len, STREAM_BLOCK)
    }

    /// Content-only read of a block range (no device charge) — used when
    /// content application and timing accounting are decoupled. Returns a
    /// pool-recycled buffer. `&self`: safe from worker threads (segment
    /// read lock).
    pub fn peek_block_range(&self, id: BlockId, off: u64, len: u64) -> Option<Bytes> {
        self.store.with(&id, |b| {
            b.and_then(|b| {
                b.data
                    .as_ref()
                    .map(|d| Bytes::copy_from_slice(&d[off as usize..(off + len) as usize]))
            })
        })
    }

    /// Content-only XOR of `delta` into a block range (no device charge,
    /// no intermediate buffer) — the zero-copy counterpart of peek → xor →
    /// poke on paths that decouple content from timing. `&self`: safe
    /// from worker threads (segment write lock); XOR commutes, so even
    /// overlapping worker ranges stay deterministic.
    pub fn xor_poke_range(&self, id: BlockId, off: u64, delta: &[u8]) {
        self.store.with_mut(&id, |b| {
            if let Some(store) = b.and_then(|b| b.data.as_mut()) {
                tsue_gf::xor_slice(delta, &mut store[off as usize..off as usize + delta.len()]);
            }
        });
    }

    /// Content-only delta capture: writes `new ⊕ current` for
    /// `[off, off + new.len())` into a pool-recycled buffer and replaces
    /// the stored range with `new`, in one pass over the store (no device
    /// charge — the timed I/O is charged separately by the caller).
    /// Returns `None` when the block is not materialized. `&self`: safe
    /// from worker threads provided jobs touch disjoint ranges (the
    /// recycle planner guarantees it — merged ranges never overlap).
    pub fn delta_poke_range(&self, id: BlockId, off: u64, new: &[u8]) -> Option<Bytes> {
        self.store.with_mut(&id, |b| {
            let store = b.and_then(|b| b.data.as_mut())?;
            let dst = &mut store[off as usize..off as usize + new.len()];
            let mut d = BytesMut::take(new.len());
            tsue_gf::xor_into(dst, new, d.as_mut());
            dst.copy_from_slice(new);
            Some(d.freeze())
        })
    }

    /// Content-only write of a block range (no device charge). `&self`:
    /// safe from worker threads on disjoint ranges.
    pub fn poke_block_range(&self, id: BlockId, off: u64, data: Option<&[u8]>) {
        if let Some(src) = data {
            self.store.with_mut(&id, |b| {
                if let Some(store) = b.and_then(|b| b.data.as_mut()) {
                    store[off as usize..off as usize + src.len()].copy_from_slice(src);
                }
            });
        }
    }

    /// Mutable access to materialized block bytes (tests, recovery).
    pub fn block_data_mut(&mut self, id: BlockId) -> Option<&mut [u8]> {
        self.store.get_mut(&id).and_then(|b| b.data.as_deref_mut())
    }

    /// Runs `f` over the materialized bytes of `id` (verification,
    /// reference checks) under the segment read lock.
    pub fn with_block_data<R>(&self, id: BlockId, f: impl FnOnce(Option<&[u8]>) -> R) -> R {
        self.store
            .with(&id, |b| f(b.and_then(|b| b.data.as_deref())))
    }

    /// Drops a block (node failure cleanup / migration source).
    pub fn evict_block(&mut self, id: BlockId) -> Option<StoredBlock> {
        self.store.remove(&id)
    }

    /// Installs a reconstructed block.
    pub fn install_block(&mut self, id: BlockId, block_size: u64, data: Option<Box<[u8]>>) {
        let dev_offset = self.alloc_region(block_size);
        self.store.insert(id, StoredBlock { dev_offset, data });
    }

    /// Zeroes the accumulated device statistics (end of setup phase).
    pub fn reset_stats(&mut self) {
        self.device.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsue_device::SsdModel;

    fn osd() -> Osd {
        Osd::new(0, Device::new_ssd(SsdModel::datacenter(64 << 20)))
    }

    fn bid(stripe: u64, role: usize) -> BlockId {
        BlockId {
            file: 0,
            stripe,
            role,
        }
    }

    #[test]
    fn alloc_region_is_aligned_and_disjoint() {
        let mut o = osd();
        let a = o.alloc_region(5000);
        let b = o.alloc_region(100);
        let c = o.alloc_region(4096);
        assert_eq!(a % 4096, 0);
        assert_eq!(b % 4096, 0);
        assert!(b >= a + 5000);
        assert!(c >= b + 100);
    }

    #[test]
    fn provision_then_read_write_roundtrip() {
        let mut o = osd();
        o.provision_block(bid(0, 1), 8192, true);
        let payload = vec![7u8; 100];
        let t1 = o.write_block_range(0, bid(0, 1), 50, 100, Some(&payload));
        assert!(t1 > 0);
        let (_, data) = o.read_block_range(t1, bid(0, 1), 50, 100);
        assert_eq!(data.unwrap(), payload);
        // Outside the written range stays zero.
        let (_, zeros) = o.read_block_range(t1, bid(0, 1), 0, 50);
        assert!(zeros.unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn provisioned_blocks_count_overwrites_on_update() {
        let mut o = osd();
        o.provision_block(bid(0, 0), 4096, false);
        o.reset_stats();
        o.write_block_range(0, bid(0, 0), 0, 4096, None);
        assert_eq!(o.device.stats().overwrite_ops, 1);
    }

    #[test]
    fn xor_block_range_applies_delta() {
        let mut o = osd();
        o.provision_block(bid(2, 3), 4096, true);
        let base = vec![0xF0u8; 64];
        o.write_block_range(0, bid(2, 3), 0, 64, Some(&base));
        let delta = vec![0x0Fu8; 64];
        o.xor_block_range(0, bid(2, 3), 0, 64, Some(&delta), 0);
        let (_, got) = o.read_block_range(0, bid(2, 3), 0, 64);
        assert!(got.unwrap().iter().all(|&b| b == 0xFF));
    }

    #[test]
    #[should_panic(expected = "block not hosted here")]
    fn reading_foreign_block_panics() {
        let mut o = osd();
        o.read_block_range(0, bid(9, 9), 0, 1);
    }

    #[test]
    fn timing_only_mode_skips_bytes() {
        let mut o = osd();
        o.provision_block(bid(1, 0), 4096, false);
        let (_, data) = o.read_block_range(0, bid(1, 0), 0, 128);
        assert!(data.is_none());
        assert!(o.with_block_data(bid(1, 0), |d| d.is_none()));
    }
}
