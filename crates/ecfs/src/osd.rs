//! The object storage device server: one per node, owning one device.
//!
//! An OSD stores whole erasure-code blocks (data or parity roles of a
//! stripe) at device offsets handed out by a bump allocator, plus arbitrary
//! *regions* that update schemes lease for their logs. Block payload bytes
//! are kept in memory only when the cluster runs in materialized
//! (correctness) mode; the device model is timing/wear-only either way.

use crate::mds::FileId;
use crate::shard::ShardedMap;
use parking_lot::Mutex;
use tsue_buf::{Bytes, BytesMut};
use tsue_device::{Device, IoKind, StreamId};
use tsue_integrity::{BlockChecksums, IntegrityError, SplitRng};
use tsue_sim::Time;

/// Identifies one block of one stripe of one file.
///
/// `role < k` are data blocks; `role >= k` are parity blocks `role - k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Owning file.
    pub file: FileId,
    /// Stripe index *within the file*.
    pub stripe: u64,
    /// Position within the stripe (0..k+m).
    pub role: usize,
}

/// A block resident on an OSD.
#[derive(Debug)]
pub struct StoredBlock {
    /// Device byte offset of the block.
    pub dev_offset: u64,
    /// Payload (materialized mode only).
    pub data: Option<Box<[u8]>>,
    /// Per-page checksums, maintained under the same segment lock as the
    /// payload (materialized mode with checksums enabled only).
    pub sums: Option<BlockChecksums>,
}

/// Device stream id used for in-place block I/O.
pub const STREAM_BLOCK: StreamId = 0;
/// Device stream id used for degraded-write journal appends on the
/// journal peer (see [`crate::journal`]).
pub const STREAM_JOURNAL: StreamId = 15;
/// First stream id free for scheme-private use (log pools etc.).
pub const STREAM_SCHEME_BASE: StreamId = 16;

/// One storage server.
///
/// The block store is sharded ([`ShardedMap`], segments keyed by stripe
/// group), so the **content plane** — byte reads/writes decoupled from
/// device timing — is `&self` and safe to drive from worker threads
/// inside a tick barrier, while the **timing plane** (device submits)
/// stays `&mut self` on the coordinator.
pub struct Osd {
    /// Network node id (OSDs occupy ids `0..cfg.osds`).
    pub node: usize,
    /// The backing device model.
    pub device: Device,
    /// Blocks hosted here, behind per-stripe-group lock segments.
    store: ShardedMap<BlockId, StoredBlock>,
    /// True once [`crate::fail_node`] kills this node.
    pub dead: bool,
    /// Maintain per-page block checksums (materialized mode only; set
    /// from [`crate::ClusterConfig::checksums`]).
    pub checksums: bool,
    /// Blocks whose corrupt content sourced a parity delta: the delta
    /// carried the rot to parity, so the scrubber must re-encode the
    /// stripe's parity after repairing the data. Interior-mutable — the
    /// producing paths run on the `&self` content plane.
    poisoned: Mutex<Vec<BlockId>>,
    next_offset: u64,
}

impl Osd {
    /// Creates an empty OSD on `node`.
    pub fn new(node: usize, device: Device) -> Self {
        Osd {
            node,
            device,
            store: ShardedMap::new(),
            dead: false,
            checksums: false,
            poisoned: Mutex::new(Vec::new()),
            next_offset: 0,
        }
    }

    /// Leases `len` bytes of device space (for blocks or scheme logs).
    pub fn alloc_region(&mut self, len: u64) -> u64 {
        let off = self.next_offset;
        // 4 KiB alignment keeps FTL page accounting clean.
        self.next_offset = (off + len + 4095) & !4095;
        off
    }

    /// Allocates and pre-populates a block: device space is marked written
    /// (so later writes count as overwrites and the FTL starts realistic),
    /// and zero content is materialized when requested.
    pub fn provision_block(&mut self, id: BlockId, block_size: u64, materialize: bool) {
        let dev_offset = self.alloc_region(block_size);
        // Initial population happens at virtual time zero on the block
        // stream; the caller resets stats afterwards.
        self.device
            .submit(0, IoKind::Write, dev_offset, block_size, STREAM_BLOCK);
        let data = materialize.then(|| vec![0u8; block_size as usize].into_boxed_slice());
        let sums = (materialize && self.checksums).then(|| BlockChecksums::new_zeroed(block_size));
        self.store.insert(
            id,
            StoredBlock {
                dev_offset,
                data,
                sums,
            },
        );
    }

    /// Device offset of a hosted block.
    ///
    /// # Panics
    /// Panics if the block is not hosted here.
    pub fn block_offset(&self, id: BlockId) -> u64 {
        self.store
            .with(&id, |b| b.map(|b| b.dev_offset))
            // INVARIANT: documented contract (# Panics above) — callers
            // resolve placement (owner_of) before touching a block.
            .expect("block not hosted here")
    }

    /// True if this OSD hosts `id`.
    pub fn hosts(&self, id: BlockId) -> bool {
        self.store.contains(&id)
    }

    /// Every hosted block id, sorted (deterministic scheduling source
    /// for recovery and re-sync listings).
    pub fn block_ids(&self) -> Vec<BlockId> {
        self.store.keys_sorted()
    }

    /// Reads `[off, off+len)` of a block: charges a device read and returns
    /// `(completion_time, bytes-if-materialized)`. The returned bytes live
    /// in a pool-recycled buffer, so steady-state reads allocate nothing.
    ///
    /// # Panics
    /// Panics if the block is absent or the range exceeds it.
    pub fn read_block_range(
        &mut self,
        now: Time,
        id: BlockId,
        off: u64,
        len: u64,
    ) -> (Time, Option<Bytes>) {
        let (dev_off, data) = self.store.with(&id, |b| {
            // INVARIANT: callers route I/O through owner_of placement, so
            // the block is hosted on this OSD.
            let b = b.expect("block not hosted here");
            let data = b.data.as_ref().map(|d| {
                assert!((off + len) as usize <= d.len(), "read beyond block");
                Bytes::copy_from_slice(&d[off as usize..(off + len) as usize])
            });
            (b.dev_offset + off, data)
        });
        let t = self
            .device
            .submit(now, IoKind::Read, dev_off, len, STREAM_BLOCK);
        (t, data)
    }

    /// Writes `[off, off+len)` of a block in place: charges a device write
    /// (an overwrite, by construction) and stores bytes when materialized.
    ///
    /// # Panics
    /// Panics if the block is absent or the range exceeds it.
    pub fn write_block_range(
        &mut self,
        now: Time,
        id: BlockId,
        off: u64,
        len: u64,
        data: Option<&[u8]>,
    ) -> Time {
        let dev_off = {
            // INVARIANT: callers route I/O through owner_of placement, so
            // the block is hosted on this OSD.
            let b = self.store.get_mut(&id).expect("block not hosted here");
            if let (Some(store), Some(src)) = (b.data.as_mut(), data) {
                assert_eq!(src.len() as u64, len, "payload length mismatch");
                assert!((off + len) as usize <= store.len(), "write beyond block");
                if let Some(sums) = b.sums.as_mut() {
                    sums.pre_write_scan(store, off, len, true);
                }
                store[off as usize..(off + len) as usize].copy_from_slice(src);
                if let Some(sums) = b.sums.as_mut() {
                    sums.update_range(store, off, len);
                }
            }
            b.dev_offset + off
        };
        self.device
            .submit(now, IoKind::Write, dev_off, len, STREAM_BLOCK)
    }

    /// Applies `delta` into block content with XOR (parity merge) and
    /// charges the read-modify-write device traffic.
    ///
    /// Returns the completion time of the final write.
    pub fn xor_block_range(
        &mut self,
        now: Time,
        id: BlockId,
        off: u64,
        len: u64,
        delta: Option<&[u8]>,
        compute: Time,
    ) -> Time {
        // Read-modify-write on the device, with the XOR cost in between.
        // The XOR is applied directly into the block store — no buffer
        // materializes on this path.
        let dev_off = {
            // INVARIANT: callers route I/O through owner_of placement, so
            // the block is hosted on this OSD.
            let b = self.store.get_mut(&id).expect("block not hosted here");
            if let (Some(store), Some(d)) = (b.data.as_mut(), delta) {
                assert_eq!(d.len() as u64, len, "delta length mismatch");
                if let Some(sums) = b.sums.as_mut() {
                    sums.pre_write_scan(store, off, len, false);
                }
                tsue_gf::xor_slice(d, &mut store[off as usize..(off + len) as usize]);
                if let Some(sums) = b.sums.as_mut() {
                    sums.update_range(store, off, len);
                }
            }
            b.dev_offset + off
        };
        let t_read = self
            .device
            .submit(now, IoKind::Read, dev_off, len, STREAM_BLOCK);
        self.device
            .submit(t_read + compute, IoKind::Write, dev_off, len, STREAM_BLOCK)
    }

    /// Content-only read of a block range (no device charge) — used when
    /// content application and timing accounting are decoupled. Returns a
    /// pool-recycled buffer. `&self`: safe from worker threads (segment
    /// read lock).
    pub fn peek_block_range(&self, id: BlockId, off: u64, len: u64) -> Option<Bytes> {
        self.store.with(&id, |b| {
            b.and_then(|b| {
                b.data
                    .as_ref()
                    .map(|d| Bytes::copy_from_slice(&d[off as usize..(off + len) as usize]))
            })
        })
    }

    /// Content-only XOR of `delta` into a block range (no device charge,
    /// no intermediate buffer) — the zero-copy counterpart of peek → xor →
    /// poke on paths that decouple content from timing. `&self`: safe
    /// from worker threads (segment write lock); XOR commutes, so even
    /// overlapping worker ranges stay deterministic.
    pub fn xor_poke_range(&self, id: BlockId, off: u64, delta: &[u8]) {
        self.store.with_mut(&id, |b| {
            if let Some(b) = b {
                if let Some(store) = b.data.as_mut() {
                    if let Some(sums) = b.sums.as_mut() {
                        sums.pre_write_scan(store, off, delta.len() as u64, false);
                    }
                    tsue_gf::xor_slice(delta, &mut store[off as usize..off as usize + delta.len()]);
                    if let Some(sums) = b.sums.as_mut() {
                        sums.update_range(store, off, delta.len() as u64);
                    }
                }
            }
        });
    }

    /// Content-only delta capture: writes `new ⊕ current` for
    /// `[off, off + new.len())` into a pool-recycled buffer and replaces
    /// the stored range with `new`, in one pass over the store (no device
    /// charge — the timed I/O is charged separately by the caller).
    /// Returns `None` when the block is not materialized. `&self`: safe
    /// from worker threads provided jobs touch disjoint ranges (the
    /// recycle planner guarantees it — merged ranges never overlap).
    pub fn delta_poke_range(&self, id: BlockId, off: u64, new: &[u8]) -> Option<Bytes> {
        self.store.with_mut(&id, |b| {
            let b = b?;
            let store = b.data.as_mut()?;
            if let Some(sums) = b.sums.as_mut() {
                // The delta XORs in the current bytes — rot here poisons
                // the parity it feeds, so queue the stripe for a parity
                // re-encode after the data is repaired.
                if sums.verify_range(store, off, new.len() as u64).is_err() {
                    self.poisoned.lock().push(id);
                }
                sums.pre_write_scan(store, off, new.len() as u64, true);
            }
            let dst = &mut store[off as usize..off as usize + new.len()];
            let mut d = BytesMut::take(new.len());
            tsue_gf::xor_into(dst, new, d.as_mut());
            dst.copy_from_slice(new);
            if let Some(sums) = b.sums.as_mut() {
                sums.update_range(store, off, new.len() as u64);
            }
            Some(d.freeze())
        })
    }

    /// Content-only write of a block range (no device charge). `&self`:
    /// safe from worker threads on disjoint ranges.
    pub fn poke_block_range(&self, id: BlockId, off: u64, data: Option<&[u8]>) {
        if let Some(src) = data {
            self.store.with_mut(&id, |b| {
                if let Some(b) = b {
                    if let Some(store) = b.data.as_mut() {
                        if let Some(sums) = b.sums.as_mut() {
                            sums.pre_write_scan(store, off, src.len() as u64, true);
                        }
                        store[off as usize..off as usize + src.len()].copy_from_slice(src);
                        if let Some(sums) = b.sums.as_mut() {
                            sums.update_range(store, off, src.len() as u64);
                        }
                    }
                }
            });
        }
    }

    /// Mutable access to materialized block bytes (tests, recovery).
    pub fn block_data_mut(&mut self, id: BlockId) -> Option<&mut [u8]> {
        self.store.get_mut(&id).and_then(|b| b.data.as_deref_mut())
    }

    /// Runs `f` over the materialized bytes of `id` (verification,
    /// reference checks) under the segment read lock.
    pub fn with_block_data<R>(&self, id: BlockId, f: impl FnOnce(Option<&[u8]>) -> R) -> R {
        self.store
            .with(&id, |b| f(b.and_then(|b| b.data.as_deref())))
    }

    /// Drops a block (node failure cleanup / migration source).
    pub fn evict_block(&mut self, id: BlockId) -> Option<StoredBlock> {
        self.store.remove(&id)
    }

    /// Installs a reconstructed block (its checksum table is rebuilt from
    /// the installed bytes).
    pub fn install_block(&mut self, id: BlockId, block_size: u64, data: Option<Box<[u8]>>) {
        let dev_offset = self.alloc_region(block_size);
        let sums = match (&data, self.checksums) {
            (Some(d), true) => {
                let mut s = BlockChecksums::new_zeroed(block_size);
                s.update_all(d);
                Some(s)
            }
            _ => None,
        };
        self.store.insert(
            id,
            StoredBlock {
                dev_offset,
                data,
                sums,
            },
        );
    }

    /// Silently flips `flips` random bits of the block's content — the
    /// checksum table is deliberately **not** updated, which is exactly
    /// what bit rot looks like. Returns the number of bits flipped (0 in
    /// timing-only mode, where there are no bytes to rot).
    pub fn corrupt_bits(&mut self, id: BlockId, rng: &mut SplitRng, flips: usize) -> usize {
        // INVARIANT: fault injection targets blocks the placement map
        // hosts on this OSD.
        let b = self.store.get_mut(&id).expect("block not hosted here");
        let Some(store) = b.data.as_mut() else {
            return 0;
        };
        for _ in 0..flips {
            let byte = rng.below(store.len() as u64) as usize;
            let bit = rng.below(8) as u8;
            store[byte] ^= 1 << bit;
        }
        flips
    }

    /// Verifies the checksums of every page of `id` overlapping
    /// `[off, off + len)`.
    ///
    /// # Errors
    /// The first corrupt page, as a typed [`IntegrityError`]. Blocks
    /// without a checksum table (timing-only mode, checksums disabled)
    /// verify vacuously.
    pub fn verify_range(&self, id: BlockId, off: u64, len: u64) -> Result<(), IntegrityError> {
        self.store.with(&id, |b| match b {
            Some(StoredBlock {
                data: Some(d),
                sums: Some(s),
                ..
            }) => s.verify_range(d, off, len),
            _ => Ok(()),
        })
    }

    /// Scans the whole block against its checksum table, returning the
    /// indices of corrupt pages (empty when clean or untracked).
    pub fn corrupt_pages(&self, id: BlockId) -> Vec<usize> {
        self.store.with(&id, |b| match b {
            Some(StoredBlock {
                data: Some(d),
                sums: Some(s),
                ..
            }) => s.corrupt_pages(d),
            _ => Vec::new(),
        })
    }

    /// Recomputes the checksum table of `id` from its current content
    /// (post-repair, post-out-of-band mutation via
    /// [`Osd::block_data_mut`]); clears all taint — the caller asserts
    /// the content is authoritative.
    pub fn rehash_block(&self, id: BlockId) {
        self.store.with_mut(&id, |b| {
            if let Some(b) = b {
                if let (Some(d), Some(s)) = (b.data.as_ref(), b.sums.as_mut()) {
                    s.update_all(d);
                }
            }
        });
    }

    /// Stored digest of `page` of `id`, when a checksum table exists.
    pub fn page_digest(&self, id: BlockId, page: usize) -> Option<u64> {
        self.store.with(&id, |b| {
            b.and_then(|b| b.sums.as_ref().map(|s| s.digest(page)))
        })
    }

    /// Whether `page` of `id` is flagged written-while-corrupt (its
    /// stored digest blesses untrustworthy bytes).
    pub fn page_tainted(&self, id: BlockId, page: usize) -> bool {
        self.store.with(&id, |b| {
            b.and_then(|b| b.sums.as_ref().map(|s| s.is_tainted(page)))
                .unwrap_or(false)
        })
    }

    /// Declares that `[off, off + len)` of `id` is about to source a
    /// parity delta (read-modify-write paths). A corrupt source range
    /// poisons the emitted delta, so the block is queued for the
    /// scrubber's stripe-level parity re-encode.
    pub fn note_delta_source(&self, id: BlockId, off: u64, len: u64) {
        if self.verify_range(id, off, len).is_err() {
            self.poisoned.lock().push(id);
        }
    }

    /// Drains the queue of blocks whose rot reached parity through a
    /// delta (consumed by the scrubber).
    pub fn take_poisoned(&mut self) -> Vec<BlockId> {
        std::mem::take(&mut *self.poisoned.lock())
    }

    /// Installs repaired content for one page of `id`: overwrites the
    /// page bytes, recomputes its digest, and clears its taint flag.
    /// No-op in timing-only mode.
    pub fn install_repaired_page(&self, id: BlockId, page: usize, bytes: &[u8]) {
        self.store.with_mut(&id, |b| {
            if let Some(b) = b {
                if let (Some(data), Some(sums)) = (b.data.as_mut(), b.sums.as_mut()) {
                    let s = page * tsue_integrity::PAGE as usize;
                    let e = (s + tsue_integrity::PAGE as usize).min(data.len());
                    data[s..e].copy_from_slice(&bytes[..e - s]);
                    sums.update_range(data, s as u64, (e - s) as u64);
                    sums.clear_taint(page);
                }
            }
        });
    }

    /// Zeroes the accumulated device statistics (end of setup phase).
    pub fn reset_stats(&mut self) {
        self.device.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsue_device::SsdModel;

    fn osd() -> Osd {
        Osd::new(0, Device::new_ssd(SsdModel::datacenter(64 << 20)))
    }

    fn bid(stripe: u64, role: usize) -> BlockId {
        BlockId {
            file: 0,
            stripe,
            role,
        }
    }

    #[test]
    fn alloc_region_is_aligned_and_disjoint() {
        let mut o = osd();
        let a = o.alloc_region(5000);
        let b = o.alloc_region(100);
        let c = o.alloc_region(4096);
        assert_eq!(a % 4096, 0);
        assert_eq!(b % 4096, 0);
        assert!(b >= a + 5000);
        assert!(c >= b + 100);
    }

    #[test]
    fn provision_then_read_write_roundtrip() {
        let mut o = osd();
        o.provision_block(bid(0, 1), 8192, true);
        let payload = vec![7u8; 100];
        let t1 = o.write_block_range(0, bid(0, 1), 50, 100, Some(&payload));
        assert!(t1 > 0);
        let (_, data) = o.read_block_range(t1, bid(0, 1), 50, 100);
        assert_eq!(data.unwrap(), payload);
        // Outside the written range stays zero.
        let (_, zeros) = o.read_block_range(t1, bid(0, 1), 0, 50);
        assert!(zeros.unwrap().iter().all(|&b| b == 0));
    }

    #[test]
    fn provisioned_blocks_count_overwrites_on_update() {
        let mut o = osd();
        o.provision_block(bid(0, 0), 4096, false);
        o.reset_stats();
        o.write_block_range(0, bid(0, 0), 0, 4096, None);
        assert_eq!(o.device.stats().overwrite_ops, 1);
    }

    #[test]
    fn xor_block_range_applies_delta() {
        let mut o = osd();
        o.provision_block(bid(2, 3), 4096, true);
        let base = vec![0xF0u8; 64];
        o.write_block_range(0, bid(2, 3), 0, 64, Some(&base));
        let delta = vec![0x0Fu8; 64];
        o.xor_block_range(0, bid(2, 3), 0, 64, Some(&delta), 0);
        let (_, got) = o.read_block_range(0, bid(2, 3), 0, 64);
        assert!(got.unwrap().iter().all(|&b| b == 0xFF));
    }

    #[test]
    #[should_panic(expected = "block not hosted here")]
    fn reading_foreign_block_panics() {
        let mut o = osd();
        o.read_block_range(0, bid(9, 9), 0, 1);
    }

    #[test]
    fn checksums_follow_every_mutation_path() {
        let mut o = osd();
        o.checksums = true;
        o.provision_block(bid(0, 0), 16 << 10, true);
        assert!(o.verify_range(bid(0, 0), 0, 16 << 10).is_ok());

        // Timed write, content pokes, delta capture, and XOR merges all
        // keep the table consistent.
        o.write_block_range(0, bid(0, 0), 100, 64, Some(&[3u8; 64]));
        o.poke_block_range(bid(0, 0), 5000, Some(&[9u8; 32]));
        o.delta_poke_range(bid(0, 0), 9000, &[1u8; 16]);
        o.xor_poke_range(bid(0, 0), 9000, &[0xFFu8; 16]);
        o.xor_block_range(0, bid(0, 0), 12 << 10, 8, Some(&[0x55u8; 8]), 0);
        assert!(o.verify_range(bid(0, 0), 0, 16 << 10).is_ok());
        assert!(o.corrupt_pages(bid(0, 0)).is_empty());
    }

    #[test]
    fn bit_rot_is_detected_and_rehash_clears_it() {
        let mut o = osd();
        o.checksums = true;
        o.provision_block(bid(1, 1), 8192, true);
        let mut rng = SplitRng::new(99);
        assert_eq!(o.corrupt_bits(bid(1, 1), &mut rng, 3), 3);
        assert!(!o.corrupt_pages(bid(1, 1)).is_empty(), "rot must be seen");
        assert!(o.verify_range(bid(1, 1), 0, 8192).is_err());
        // A repair path rewrites content and rehashes.
        o.rehash_block(bid(1, 1));
        assert!(o.verify_range(bid(1, 1), 0, 8192).is_ok());
    }

    #[test]
    fn checksums_disabled_means_silent_corruption() {
        let mut o = osd();
        o.provision_block(bid(2, 0), 4096, true);
        let mut rng = SplitRng::new(7);
        o.corrupt_bits(bid(2, 0), &mut rng, 2);
        assert!(o.verify_range(bid(2, 0), 0, 4096).is_ok(), "nothing checks");
        assert!(o.corrupt_pages(bid(2, 0)).is_empty());
    }

    #[test]
    fn timing_only_mode_skips_bytes() {
        let mut o = osd();
        o.provision_block(bid(1, 0), 4096, false);
        let (_, data) = o.read_block_range(0, bid(1, 0), 0, 128);
        assert!(data.is_none());
        assert!(o.with_block_data(bid(1, 0), |d| d.is_none()));
    }
}
